//! Fabric — the Simulate-Order-Validate baseline (Hyperledger Fabric).
//!
//! The SOV workflow (§2.1.1 of the paper) is reproduced end-to-end at the
//! database layer:
//!
//! 1. **Simulate**: endorsers execute the transaction against their *local
//!    latest* state — which may lag the true latest state. The read-set
//!    records keys **and versions**.
//! 2. **Endorsement reconciliation**: the client compares the read-write
//!    sets returned by different endorsers; if they diverge (an endorser
//!    lagged across a block that rewrote a read key), no valid endorsement
//!    exists → [`AbortReason::EndorsementMismatch`]. This is why Fabric
//!    aborts transactions even at zero skew (Figure 12).
//! 3. **Order**: the ordering service batches transactions (ships full
//!    read-write sets — the SOV network cost modelled by `harmony-sim`).
//! 4. **Validate** (serial, TID order): abort on any stale read — a read
//!    whose version no longer matches the replica's current state
//!    ([`AbortReason::StaleRead`]; the single-rw-edge "dangerous
//!    structure" that makes Fabric's false-abort rate the highest).
//!
//! Endorser lag is sampled deterministically per (block, txn) from a seed,
//! so runs are reproducible.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use harmony_common::error::AbortReason;
use harmony_common::{vtime, BlockId, DetRng, Result, TxnId};
use harmony_core::executor::{ExecBlock, TxnOutcome};
use harmony_core::par::run_indexed;
use harmony_core::{BlockStats, SnapshotStore};
use harmony_txn::{Key, RwSet, TxnCtx, Value};
use parking_lot::Mutex;

use crate::protocol::{install_writes, Architecture, DccEngine, ProtocolBlockResult};

/// Fabric configuration.
#[derive(Clone, Copy, Debug)]
pub struct FabricConfig {
    /// Worker threads for the endorsement simulations.
    pub workers: usize,
    /// Probability that the second endorser lags behind the first.
    pub endorser_lag_prob: f64,
    /// Maximum endorser lag in blocks.
    pub max_lag: u64,
    /// Blocks elapsing between endorsement and validation (client →
    /// orderer → block formation round trips).
    pub validation_delay: u64,
    /// Seed for the deterministic lag sampling.
    pub seed: u64,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            workers: 8,
            endorser_lag_prob: 0.15,
            max_lag: 2,
            validation_delay: 1,
            seed: 0xFAB0_51C5,
        }
    }
}

/// One endorsed transaction: the chosen read-write set, the snapshot it
/// was computed against, and whether endorsers agreed.
pub(crate) struct Endorsement {
    pub rwset: Option<RwSet>,
    pub endorse_snapshot: BlockId,
    pub mismatch: bool,
    pub sim_ns: u64,
}

/// Run the endorsement phase for a block (shared with FastFabric#).
pub(crate) fn endorse_block(
    store: &SnapshotStore,
    block: &ExecBlock,
    config: &FabricConfig,
) -> Vec<Endorsement> {
    let latest = BlockId(block.id.0 - 1);
    run_indexed(block.txns.len(), config.workers, |i| {
        // Deterministic per-(block, txn) lag stream.
        let mut rng = DetRng::new(
            config
                .seed
                .wrapping_add(block.id.0.wrapping_mul(0x9E37_79B9))
                .wrapping_add(i as u64),
        );
        let lag_primary = 0u64; // the endorser whose rwset the client picks
        let lag_secondary = if rng.gen_bool(config.endorser_lag_prob) {
            1 + rng.gen_range(config.max_lag)
        } else {
            0
        };
        // Endorsement happened `validation_delay` blocks before this block
        // validates, so the endorser's "latest" state is older still.
        let base = latest.0.saturating_sub(config.validation_delay);
        let snap_primary = BlockId(base.saturating_sub(lag_primary));
        let snap_secondary = BlockId(base.saturating_sub(lag_secondary));

        let view = store.view_at(snap_primary);
        let (rwset, sim_ns) = vtime::scope(|| {
            vtime::charge(block.txns[i].think_time_ns());
            let mut ctx = TxnCtx::new(&view);
            match block.txns[i].execute(&mut ctx) {
                Ok(()) => Some(ctx.into_rwset()),
                Err(_) => None,
            }
        });
        // Divergence check: would the secondary endorser have observed
        // different versions for any key the primary read?
        let mismatch = rwset.as_ref().is_some_and(|rw| {
            snap_primary != snap_secondary
                && rw.reads.iter().any(|r| {
                    store.version_at(snap_primary, &r.key)
                        != store.version_at(snap_secondary, &r.key)
                })
        });
        Endorsement {
            rwset,
            endorse_snapshot: snap_primary,
            mismatch,
            sim_ns,
        }
    })
}

/// Evaluate the writes of an endorsed transaction against its endorsement
/// snapshot (the values Fabric ships in the write-set).
pub(crate) fn endorsed_writes(
    store: &SnapshotStore,
    endorsement_snapshot: BlockId,
    rwset: &RwSet,
) -> Result<Vec<(Key, Option<Value>)>> {
    crate::protocol::eval_writes(store, endorsement_snapshot, rwset)
}

/// The Fabric engine.
pub struct Fabric {
    store: Arc<SnapshotStore>,
    config: FabricConfig,
    next_block: Mutex<BlockId>,
}

impl Fabric {
    /// New engine starting at block 1.
    #[must_use]
    pub fn new(store: Arc<SnapshotStore>, config: FabricConfig) -> Fabric {
        Fabric::starting_at(store, config, BlockId(1))
    }

    /// Resume at an arbitrary block (recovery).
    #[must_use]
    pub fn starting_at(store: Arc<SnapshotStore>, config: FabricConfig, next: BlockId) -> Fabric {
        Fabric {
            store,
            config,
            next_block: Mutex::new(next),
        }
    }

    pub(crate) fn gc_horizon(&self, block: BlockId) -> BlockId {
        BlockId(
            block
                .0
                .saturating_sub(2 + self.config.validation_delay + self.config.max_lag),
        )
    }
}

impl DccEngine for Fabric {
    fn name(&self) -> &'static str {
        "Fabric"
    }

    fn architecture(&self) -> Architecture {
        Architecture::Sov
    }

    fn commit_is_serial(&self) -> bool {
        true
    }

    fn store(&self) -> &Arc<SnapshotStore> {
        &self.store
    }

    fn execute_block(&self, block: &ExecBlock) -> Result<ProtocolBlockResult> {
        {
            let mut next = self.next_block.lock();
            assert_eq!(block.id, *next, "blocks must be consecutive");
            *next = next.next();
        }
        let n = block.txns.len();
        let latest = BlockId(block.id.0 - 1);
        let endorsements = endorse_block(&self.store, block, &self.config);

        // Serial validation in TID order against the replica's current
        // state (versions advance as in-block commits apply).
        let mut in_block_version: HashMap<Key, u64> = HashMap::new();
        let mut written_this_block: HashSet<Key> = HashSet::new();
        let mut outcomes = Vec::with_capacity(n);
        let mut commit_ns = vec![0u64; n];
        let mut stats = BlockStats {
            txns: n,
            ..BlockStats::default()
        };
        for (i, e) in endorsements.iter().enumerate() {
            let Some(rwset) = &e.rwset else {
                outcomes.push(TxnOutcome::Aborted(AbortReason::UserAbort));
                stats.user_aborted += 1;
                continue;
            };
            if e.mismatch {
                outcomes.push(TxnOutcome::Aborted(AbortReason::EndorsementMismatch));
                stats.aborted_endorsement += 1;
                continue;
            }
            let tid = TxnId::new(block.id, i as u32).0;
            let (apply_res, ns) = vtime::scope(|| -> Result<TxnOutcome> {
                // MVCC check: every read version must still be current.
                let stale = rwset.reads.iter().any(|r| {
                    let current = in_block_version
                        .get(&r.key)
                        .copied()
                        .or_else(|| self.store.version_at(latest, &r.key));
                    current != r.version
                });
                if stale {
                    return Ok(TxnOutcome::Aborted(AbortReason::StaleRead));
                }
                let writes = endorsed_writes(&self.store, e.endorse_snapshot, rwset)?;
                install_writes(&self.store, block.id, tid, &writes, &mut written_this_block)?;
                for (key, _) in &writes {
                    in_block_version.insert(key.clone(), tid);
                }
                Ok(TxnOutcome::Committed)
            });
            let outcome = apply_res?;
            commit_ns[i] = ns;
            match outcome {
                TxnOutcome::Committed => stats.committed += 1,
                TxnOutcome::Aborted(AbortReason::StaleRead) => stats.aborted_stale += 1,
                _ => {}
            }
            outcomes.push(outcome);
        }

        self.store.gc(self.gc_horizon(block.id));
        let (rwsets, sim_ns): (Vec<_>, Vec<_>) = endorsements
            .into_iter()
            .map(|e| (e.rwset, e.sim_ns))
            .unzip();
        stats.sim_ns_total = sim_ns.iter().sum();
        stats.commit_ns_total = commit_ns.iter().sum();
        Ok(ProtocolBlockResult {
            block: block.id,
            outcomes,
            rwsets,
            stats,
            sim_ns,
            commit_ns,
            orderer_ns: 0,
            summary: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::testutil::*;

    fn config_no_lag(workers: usize) -> FabricConfig {
        FabricConfig {
            workers,
            endorser_lag_prob: 0.0,
            validation_delay: 0,
            ..FabricConfig::default()
        }
    }

    #[test]
    fn clean_block_commits_everything() {
        let (store, t) = setup(16);
        let fabric = Fabric::new(Arc::clone(&store), config_no_lag(2));
        let block = ExecBlock::new(
            BlockId(1),
            (0..4)
                .map(|i| read_add_txn(t, vec![i], vec![i + 8]))
                .collect(),
        );
        let res = fabric.execute_block(&block).unwrap();
        assert_eq!(res.stats.committed, 4);
        assert_eq!(read_i64(&store, t, 9), Some(101));
    }

    #[test]
    fn single_stale_read_aborts_unlike_rbc() {
        // T0 writes x, T1 reads x: within one block T1's read version is
        // stale once T0 commits — Fabric aborts it (the over-conservative
        // rw dangerous structure of §2.2.2).
        let (store, t) = setup(4);
        let fabric = Fabric::new(Arc::clone(&store), config_no_lag(2));
        let block = ExecBlock::new(
            BlockId(1),
            vec![
                read_add_txn(t, vec![], vec![0]),
                read_add_txn(t, vec![0], vec![1]),
            ],
        );
        let res = fabric.execute_block(&block).unwrap();
        assert_eq!(res.stats.committed, 1);
        assert_eq!(res.stats.aborted_stale, 1);
        assert_eq!(res.outcomes[1], TxnOutcome::Aborted(AbortReason::StaleRead));
    }

    #[test]
    fn validation_delay_causes_interblock_staleness() {
        // With validation_delay = 1 the rwset is endorsed against block
        // b−2. If block b−1 wrote a read key, validation aborts.
        let (store, t) = setup(4);
        let config = FabricConfig {
            workers: 1,
            endorser_lag_prob: 0.0,
            validation_delay: 1,
            ..FabricConfig::default()
        };
        let fabric = Fabric::new(Arc::clone(&store), config);
        // Block 1: write key 0 (endorsed at snapshot 0; no prior writes —
        // commits).
        let b1 = ExecBlock::new(BlockId(1), vec![read_add_txn(t, vec![], vec![0])]);
        assert_eq!(fabric.execute_block(&b1).unwrap().stats.committed, 1);
        // Block 2: reads key 0, endorsed against snapshot 0 (stale: block 1
        // updated it).
        let b2 = ExecBlock::new(BlockId(2), vec![read_add_txn(t, vec![0], vec![1])]);
        let res = fabric.execute_block(&b2).unwrap();
        assert_eq!(res.stats.aborted_stale, 1);
    }

    #[test]
    fn endorser_divergence_aborts_hot_readers() {
        // Force max lag probability: every secondary endorsement lags, so
        // reads of recently-written keys mismatch.
        let (store, t) = setup(4);
        let config = FabricConfig {
            workers: 1,
            endorser_lag_prob: 1.0,
            max_lag: 1,
            validation_delay: 0,
            ..FabricConfig::default()
        };
        let fabric = Fabric::new(Arc::clone(&store), config);
        let b1 = ExecBlock::new(BlockId(1), vec![read_add_txn(t, vec![], vec![0])]);
        fabric.execute_block(&b1).unwrap();
        // Block 2 reads key 0: primary endorser sees block 1's write,
        // lagged secondary does not → divergent read-write sets.
        let b2 = ExecBlock::new(BlockId(2), vec![read_add_txn(t, vec![0], vec![1])]);
        let res = fabric.execute_block(&b2).unwrap();
        assert_eq!(res.stats.aborted_endorsement, 1);
        // A read of a never-written key cannot mismatch.
        let b3 = ExecBlock::new(BlockId(3), vec![read_add_txn(t, vec![3], vec![2])]);
        let res = fabric.execute_block(&b3).unwrap();
        assert_eq!(res.stats.committed, 1);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let (store, t) = setup(8);
            let config = FabricConfig {
                workers: 4,
                ..FabricConfig::default()
            };
            let fabric = Fabric::new(Arc::clone(&store), config);
            let mut committed = 0;
            for b in 1..=5u64 {
                let block = ExecBlock::new(
                    BlockId(b),
                    (0..10)
                        .map(|i| read_add_txn(t, vec![i % 8], vec![(i + 1) % 8]))
                        .collect(),
                );
                committed += fabric.execute_block(&block).unwrap().stats.committed;
            }
            (
                committed,
                (0..8).map(|i| read_i64(&store, t, i)).collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(), run());
    }
}
