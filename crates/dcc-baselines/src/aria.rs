//! AriaBC — Aria's ODCC (Lu et al., VLDB 2020) chainified as an
//! order-execute blockchain, the paper's strongest DCC baseline.
//!
//! Aria simulates every transaction against the block snapshot, reserves
//! reads and writes, and commits `T_j` unless:
//!
//! * `T_j` has a **waw**-dependency (an earlier transaction writes a key
//!   `T_j` writes) — always an abort (Figure 2 of the HarmonyBC paper), or
//! * without the reordering optimization: `T_j` has a **raw**-dependency
//!   (it read a key an earlier transaction writes);
//! * with the reordering optimization: `T_j` has both a **raw**- and a
//!   **war**-dependency.
//!
//! Surviving transactions have disjoint write sets, so the commit step is
//! fully parallel — Aria's strength, bought with a high abort rate under
//! write contention, which is exactly the axis Harmony improves on.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use harmony_common::error::AbortReason;
use harmony_common::{vtime, BlockId, Result, TxnId};
use harmony_core::executor::{ExecBlock, TxnOutcome};
use harmony_core::par::run_indexed;
use harmony_core::{BlockStats, SnapshotStore};
use harmony_txn::Key;
use parking_lot::Mutex;

use crate::protocol::{
    eval_writes, install_writes, simulate_block, Architecture, DccEngine, ProtocolBlockResult,
};

/// Aria configuration.
#[derive(Clone, Copy, Debug)]
pub struct AriaConfig {
    /// Worker threads.
    pub workers: usize,
    /// Aria's deterministic reordering optimization (commit raw-only
    /// transactions by logically reordering them before their writers).
    pub reordering: bool,
}

impl Default for AriaConfig {
    fn default() -> Self {
        AriaConfig {
            workers: 8,
            reordering: true,
        }
    }
}

/// The Aria engine.
pub struct Aria {
    store: Arc<SnapshotStore>,
    config: AriaConfig,
    next_block: Mutex<BlockId>,
}

impl Aria {
    /// New engine starting at block 1.
    #[must_use]
    pub fn new(store: Arc<SnapshotStore>, config: AriaConfig) -> Aria {
        Aria::starting_at(store, config, BlockId(1))
    }

    /// Resume at an arbitrary block (recovery).
    #[must_use]
    pub fn starting_at(store: Arc<SnapshotStore>, config: AriaConfig, next: BlockId) -> Aria {
        Aria {
            store,
            config,
            next_block: Mutex::new(next),
        }
    }
}

impl DccEngine for Aria {
    fn name(&self) -> &'static str {
        "AriaBC"
    }

    fn architecture(&self) -> Architecture {
        Architecture::Oe
    }

    fn commit_is_serial(&self) -> bool {
        false
    }

    fn store(&self) -> &Arc<SnapshotStore> {
        &self.store
    }

    fn execute_block(&self, block: &ExecBlock) -> Result<ProtocolBlockResult> {
        {
            let mut next = self.next_block.lock();
            assert_eq!(block.id, *next, "blocks must be consecutive");
            *next = next.next();
        }
        let snapshot = BlockId(block.id.0 - 1);
        let n = block.txns.len();
        let (rwsets, sim_ns) = simulate_block(&self.store, snapshot, block, self.config.workers);

        // Reservation phase: smallest reader/writer TID per key.
        let mut min_writer: HashMap<&Key, u64> = HashMap::new();
        let mut min_reader: HashMap<&Key, u64> = HashMap::new();
        for (i, rwset) in rwsets.iter().enumerate() {
            let Some(rwset) = rwset else { continue };
            let tid = TxnId::new(block.id, i as u32).0;
            for (key, _) in &rwset.updates {
                min_writer
                    .entry(key)
                    .and_modify(|t| *t = (*t).min(tid))
                    .or_insert(tid);
            }
            for r in &rwset.reads {
                min_reader
                    .entry(&r.key)
                    .and_modify(|t| *t = (*t).min(tid))
                    .or_insert(tid);
            }
        }

        // Commit decision per transaction (parallelizable; cheap).
        let mut outcomes = Vec::with_capacity(n);
        for (i, rwset) in rwsets.iter().enumerate() {
            let Some(rwset) = rwset else {
                outcomes.push(TxnOutcome::Aborted(AbortReason::UserAbort));
                continue;
            };
            let tid = TxnId::new(block.id, i as u32).0;
            let waw = rwset
                .write_keys()
                .any(|k| min_writer.get(k).copied().unwrap_or(u64::MAX) < tid);
            let raw = rwset
                .read_keys()
                .any(|k| min_writer.get(k).copied().unwrap_or(u64::MAX) < tid);
            let war = rwset
                .write_keys()
                .any(|k| min_reader.get(k).copied().unwrap_or(u64::MAX) < tid);
            let outcome = if waw {
                TxnOutcome::Aborted(AbortReason::WwConflict)
            } else if self.config.reordering {
                if raw && war {
                    TxnOutcome::Aborted(AbortReason::StaleRead)
                } else {
                    TxnOutcome::Committed
                }
            } else if raw {
                TxnOutcome::Aborted(AbortReason::StaleRead)
            } else {
                TxnOutcome::Committed
            };
            outcomes.push(outcome);
        }

        // Parallel commit: committed write sets are disjoint by
        // construction (any overlap implies a waw on the larger TID).
        let store = &self.store;
        let commit_out = run_indexed(n, self.config.workers, |i| {
            vtime::scope(|| -> Result<()> {
                if outcomes[i] != TxnOutcome::Committed {
                    return Ok(());
                }
                let rwset = rwsets[i].as_ref().expect("committed implies rwset");
                let tid = TxnId::new(block.id, i as u32).0;
                let writes = eval_writes(store, snapshot, rwset)?;
                let mut seen = HashSet::new();
                install_writes(store, block.id, tid, &writes, &mut seen)
            })
        });
        let mut commit_ns = vec![0u64; n];
        for (i, (res, ns)) in commit_out.into_iter().enumerate() {
            res?;
            commit_ns[i] = ns;
        }

        self.store.gc(snapshot);
        let mut stats = BlockStats {
            txns: n,
            sim_ns_total: sim_ns.iter().sum(),
            commit_ns_total: commit_ns.iter().sum(),
            ..BlockStats::default()
        };
        for o in &outcomes {
            match o {
                TxnOutcome::Committed => stats.committed += 1,
                TxnOutcome::Aborted(AbortReason::WwConflict) => stats.aborted_ww += 1,
                TxnOutcome::Aborted(AbortReason::StaleRead) => stats.aborted_stale += 1,
                TxnOutcome::Aborted(AbortReason::UserAbort) => stats.user_aborted += 1,
                TxnOutcome::Aborted(_) => {}
            }
        }
        Ok(ProtocolBlockResult {
            block: block.id,
            outcomes,
            rwsets,
            stats,
            sim_ns,
            commit_ns,
            orderer_ns: 0,
            summary: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::testutil::*;

    fn engine(reordering: bool) -> (Aria, harmony_common::ids::TableId, Arc<SnapshotStore>) {
        let (store, t) = setup(16);
        (
            Aria::new(
                Arc::clone(&store),
                AriaConfig {
                    workers: 2,
                    reordering,
                },
            ),
            t,
            store,
        )
    }

    #[test]
    fn disjoint_txns_commit() {
        let (aria, t, store) = engine(true);
        let block = ExecBlock::new(
            BlockId(1),
            (0..4)
                .map(|i| read_add_txn(t, vec![i], vec![i + 8]))
                .collect(),
        );
        let res = aria.execute_block(&block).unwrap();
        assert_eq!(res.stats.committed, 4);
        assert_eq!(read_i64(&store, t, 8), Some(101));
    }

    #[test]
    fn ww_aborts_larger_tid() {
        // Two writers of one key: Aria aborts the larger TID — the
        // motivating difference from Harmony (Figure 2).
        let (aria, t, store) = engine(true);
        let block = ExecBlock::new(
            BlockId(1),
            vec![
                read_add_txn(t, vec![], vec![0]),
                read_add_txn(t, vec![], vec![0]),
            ],
        );
        let res = aria.execute_block(&block).unwrap();
        assert_eq!(res.stats.committed, 1);
        assert_eq!(res.stats.aborted_ww, 1);
        assert_eq!(res.outcomes[0], TxnOutcome::Committed);
        assert_eq!(read_i64(&store, t, 0), Some(101));
    }

    #[test]
    fn raw_only_commits_with_reordering() {
        // T0 writes x; T1 reads x (raw) but nothing reads T1's writes (no
        // war): the reordering optimization commits T1 "before" T0.
        let (aria, t, _) = engine(true);
        let block = ExecBlock::new(
            BlockId(1),
            vec![
                read_add_txn(t, vec![], vec![0]),
                read_add_txn(t, vec![0], vec![1]),
            ],
        );
        let res = aria.execute_block(&block).unwrap();
        assert_eq!(res.stats.committed, 2, "raw-only must commit");
    }

    #[test]
    fn raw_aborts_without_reordering() {
        let (aria, t, _) = engine(false);
        let block = ExecBlock::new(
            BlockId(1),
            vec![
                read_add_txn(t, vec![], vec![0]),
                read_add_txn(t, vec![0], vec![1]),
            ],
        );
        let res = aria.execute_block(&block).unwrap();
        assert_eq!(res.stats.committed, 1);
        assert_eq!(res.stats.aborted_stale, 1);
    }

    #[test]
    fn raw_and_war_aborts_even_with_reordering() {
        // T0 writes x reads y... construct: T1 reads x (raw vs T0) and
        // writes y which T0 reads (war vs T0) => T1 aborts.
        let (aria, t, _) = engine(true);
        let block = ExecBlock::new(
            BlockId(1),
            vec![
                read_add_txn(t, vec![1], vec![0]),
                read_add_txn(t, vec![0], vec![1]),
            ],
        );
        let res = aria.execute_block(&block).unwrap();
        assert_eq!(res.stats.committed, 1);
        assert_eq!(res.outcomes[1], TxnOutcome::Aborted(AbortReason::StaleRead));
    }

    #[test]
    fn snapshot_semantics_across_blocks() {
        let (aria, t, store) = engine(true);
        // Block 1 adds 1 to key 0; block 2 adds 1 again: both read their
        // respective previous-block snapshots.
        for b in 1..=2u64 {
            let block = ExecBlock::new(BlockId(b), vec![read_add_txn(t, vec![], vec![0])]);
            aria.execute_block(&block).unwrap();
        }
        assert_eq!(read_i64(&store, t, 0), Some(102));
    }

    #[test]
    #[should_panic(expected = "consecutive")]
    fn out_of_order_blocks_panic() {
        let (aria, t, _) = engine(true);
        let block = ExecBlock::new(BlockId(5), vec![read_add_txn(t, vec![], vec![0])]);
        let _ = aria.execute_block(&block);
    }
}
