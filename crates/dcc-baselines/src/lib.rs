//! Baseline DCC protocols the paper evaluates HarmonyBC against.
//!
//! Every protocol implements [`DccEngine`] over the same snapshot store and
//! block format as Harmony, so the benchmark harness drives them uniformly:
//!
//! * [`aria`] — **AriaBC**: Aria's reservation-based ODCC (abort on
//!   ww-dependency; with the deterministic-reordering optimization, commit
//!   unless both raw- and war-dependencies exist). Parallel commit.
//! * [`rbc`] — **RBC**: order-execute with serial SSI-style validation
//!   (first-updater-wins + dangerous-structure pivots), serial commit.
//! * [`fabric`] — **Fabric**: simulate-order-validate with endorsement
//!   divergence and MVCC stale-read validation, serial commit.
//! * [`fastfabric`] — **FastFabric#**: SOV plus an orderer-side dependency
//!   graph that eliminates false aborts at the cost of an unparallelizable
//!   graph traversal (and drops transactions when the graph grows too
//!   large).
//! * [`harmony_engine`] — adapter exposing Harmony itself through the same
//!   [`DccEngine`] interface.

pub mod aria;
pub mod fabric;
pub mod fastfabric;
pub mod harmony_engine;
pub mod protocol;
pub mod rbc;

pub use aria::{Aria, AriaConfig};
pub use fabric::{Fabric, FabricConfig};
pub use fastfabric::{FastFabric, FastFabricConfig};
pub use harmony_engine::HarmonyEngine;
pub use protocol::{Architecture, DccEngine, ProtocolBlockResult};
pub use rbc::Rbc;
