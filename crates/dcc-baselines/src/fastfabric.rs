//! FastFabric# — the strongest SOV baseline (Ruan et al., SIGMOD 2020):
//! Fabric plus *early validation* in the ordering service.
//!
//! The orderer receives endorsed read-write sets, builds the **full
//! dependency graph** over the block's transactions, and drops the minimal
//! transactions needed to break cycles — eliminating the false aborts of
//! dangerous-structure validation. The price (the paper's §5.1 profiling
//! shows ~75 % of runtime here) is an *unparallelizable* graph traversal:
//! every admitted transaction triggers a DFS over the accumulated graph,
//! and the cost is charged to the centralized `orderer_ns` budget. To
//! bound the graph, the orderer drops transactions once the edge count
//! exceeds a cap — the extra aborts FastFabric# shows at zero skew
//! (Figure 12).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use harmony_common::error::AbortReason;
use harmony_common::{vtime, BlockId, Result, TxnId};
use harmony_core::executor::{ExecBlock, TxnOutcome};
use harmony_core::{BlockStats, SnapshotStore};
use harmony_txn::Key;
use parking_lot::Mutex;

use crate::fabric::{endorse_block, endorsed_writes, FabricConfig};
use crate::protocol::{install_writes, Architecture, DccEngine, ProtocolBlockResult};

/// FastFabric# configuration.
#[derive(Clone, Copy, Debug)]
pub struct FastFabricConfig {
    /// The underlying SOV/endorsement parameters.
    pub fabric: FabricConfig,
    /// Edge cap: beyond this the orderer drops transactions outright.
    pub max_graph_edges: usize,
    /// Virtual cost per node+edge visited during each cycle check.
    pub traversal_ns_per_edge: u64,
}

impl Default for FastFabricConfig {
    fn default() -> Self {
        FastFabricConfig {
            fabric: FabricConfig::default(),
            max_graph_edges: 4_096,
            traversal_ns_per_edge: 120,
        }
    }
}

/// The FastFabric# engine.
pub struct FastFabric {
    store: Arc<SnapshotStore>,
    config: FastFabricConfig,
    next_block: Mutex<BlockId>,
}

impl FastFabric {
    /// New engine starting at block 1.
    #[must_use]
    pub fn new(store: Arc<SnapshotStore>, config: FastFabricConfig) -> FastFabric {
        FastFabric::starting_at(store, config, BlockId(1))
    }

    /// Resume at an arbitrary block (recovery). The dependency graph is
    /// per-block, so no cross-block state needs reseeding.
    #[must_use]
    pub fn starting_at(
        store: Arc<SnapshotStore>,
        config: FastFabricConfig,
        next: BlockId,
    ) -> FastFabric {
        FastFabric {
            store,
            config,
            next_block: Mutex::new(next),
        }
    }
}

/// Dependency graph under construction in the orderer.
#[derive(Default)]
struct DepGraph {
    /// Adjacency: node → successors (edges follow must-precede order).
    succ: HashMap<u32, Vec<u32>>,
    edges: usize,
}

impl DepGraph {
    fn add_edge(&mut self, from: u32, to: u32) {
        self.succ.entry(from).or_default().push(to);
        self.edges += 1;
    }

    fn remove_edge(&mut self, from: u32, to: u32) {
        if let Some(next) = self.succ.get_mut(&from) {
            if let Some(pos) = next.iter().rposition(|&n| n == to) {
                next.swap_remove(pos);
                self.edges -= 1;
            }
        }
    }

    /// DFS from `start`'s successors looking for a path back to `start`.
    /// The graph was acyclic before `start`'s edges were added, so any new
    /// cycle must pass through `start`. Returns (cycle found, nodes
    /// visited) — the visit count feeds the traversal cost model.
    fn has_cycle_through(&self, start: u32) -> (bool, usize) {
        let mut visited = HashSet::new();
        let mut stack: Vec<u32> = self.succ.get(&start).cloned().unwrap_or_default();
        let mut steps = 0usize;
        while let Some(node) = stack.pop() {
            steps += 1;
            if node == start {
                return (true, steps);
            }
            if !visited.insert(node) {
                continue;
            }
            if let Some(next) = self.succ.get(&node) {
                stack.extend(next.iter().copied());
            }
        }
        (false, steps)
    }
}

impl DccEngine for FastFabric {
    fn name(&self) -> &'static str {
        "FastFabric#"
    }

    fn architecture(&self) -> Architecture {
        Architecture::Sov
    }

    fn commit_is_serial(&self) -> bool {
        true
    }

    fn store(&self) -> &Arc<SnapshotStore> {
        &self.store
    }

    fn execute_block(&self, block: &ExecBlock) -> Result<ProtocolBlockResult> {
        {
            let mut next = self.next_block.lock();
            assert_eq!(block.id, *next, "blocks must be consecutive");
            *next = next.next();
        }
        let n = block.txns.len();
        let latest = BlockId(block.id.0 - 1);
        let endorsements = endorse_block(&self.store, block, &self.config.fabric);

        // ── Orderer: early validation over the dependency graph ────────
        let mut orderer_ns = 0u64;
        let mut outcomes: Vec<TxnOutcome> = Vec::with_capacity(n);
        let mut graph = DepGraph::default();
        // Per key: readers/writers admitted so far.
        let mut readers: HashMap<&Key, Vec<u32>> = HashMap::new();
        let mut writers: HashMap<&Key, Vec<u32>> = HashMap::new();
        let mut admitted: Vec<u32> = Vec::new();
        for (i, e) in endorsements.iter().enumerate() {
            let Some(rwset) = &e.rwset else {
                outcomes.push(TxnOutcome::Aborted(AbortReason::UserAbort));
                continue;
            };
            if e.mismatch {
                outcomes.push(TxnOutcome::Aborted(AbortReason::EndorsementMismatch));
                continue;
            }
            // Inter-block staleness is unfixable by reordering within the
            // block: the endorsed write values were computed from state a
            // later block already overwrote.
            let stale = rwset
                .reads
                .iter()
                .any(|r| self.store.version_at(latest, &r.key) != r.version);
            if stale {
                outcomes.push(TxnOutcome::Aborted(AbortReason::StaleRead));
                continue;
            }
            if graph.edges >= self.config.max_graph_edges {
                // Graph too large: drop to bound traversal cost.
                outcomes.push(TxnOutcome::Aborted(AbortReason::GraphCycle));
                continue;
            }
            let idx = i as u32;
            // Candidate edges against admitted transactions:
            //  * rw: admitted reader of k → this writer of k (reader first)
            //  * rw: this reader of k → admitted writer of k
            //  * ww: smaller TID → larger TID (block order).
            let mut new_edges: Vec<(u32, u32)> = Vec::new();
            for (key, _) in &rwset.updates {
                for &r in readers.get(key).into_iter().flatten() {
                    new_edges.push((r, idx));
                }
                for &w in writers.get(key).into_iter().flatten() {
                    new_edges.push((w.min(idx), w.max(idx)));
                }
            }
            for r in &rwset.reads {
                for &w in writers.get(&r.key).into_iter().flatten() {
                    new_edges.push((idx, w));
                }
            }
            // Tentatively add the candidate's edges, then DFS for a cycle
            // through it — the serial traversal cost the paper profiles.
            new_edges.retain(|(from, to)| from != to);
            new_edges.sort_unstable();
            new_edges.dedup();
            for &(from, to) in &new_edges {
                graph.add_edge(from, to);
            }
            let (cycle, steps) = graph.has_cycle_through(idx);
            orderer_ns +=
                self.config.traversal_ns_per_edge * (steps as u64 + new_edges.len() as u64 + 1);
            if cycle {
                for &(from, to) in &new_edges {
                    graph.remove_edge(from, to);
                }
                outcomes.push(TxnOutcome::Aborted(AbortReason::GraphCycle));
                continue;
            }
            for (key, _) in &rwset.updates {
                writers.entry(key).or_default().push(idx);
            }
            for r in &rwset.reads {
                readers.entry(&r.key).or_default().push(idx);
            }
            admitted.push(idx);
            outcomes.push(TxnOutcome::Committed);
        }

        // ── Replica: apply admitted transactions serially ──────────────
        let mut written_this_block: HashSet<Key> = HashSet::new();
        let mut commit_ns = vec![0u64; n];
        for &idx in &admitted {
            let i = idx as usize;
            let e = &endorsements[i];
            let rwset = e.rwset.as_ref().expect("admitted implies rwset");
            let tid = TxnId::new(block.id, idx).0;
            let (res, ns) = vtime::scope(|| -> Result<()> {
                let writes = endorsed_writes(&self.store, e.endorse_snapshot, rwset)?;
                install_writes(&self.store, block.id, tid, &writes, &mut written_this_block)
            });
            res?;
            commit_ns[i] = ns;
        }

        self.store.gc(BlockId(block.id.0.saturating_sub(
            2 + self.config.fabric.validation_delay + self.config.fabric.max_lag,
        )));

        let (rwsets, sim_ns): (Vec<_>, Vec<_>) = endorsements
            .into_iter()
            .map(|e| (e.rwset, e.sim_ns))
            .unzip();
        let mut stats = BlockStats {
            txns: n,
            sim_ns_total: sim_ns.iter().sum(),
            commit_ns_total: commit_ns.iter().sum(),
            ..BlockStats::default()
        };
        for o in &outcomes {
            match o {
                TxnOutcome::Committed => stats.committed += 1,
                TxnOutcome::Aborted(AbortReason::EndorsementMismatch) => {
                    stats.aborted_endorsement += 1;
                }
                TxnOutcome::Aborted(AbortReason::StaleRead) => stats.aborted_stale += 1,
                TxnOutcome::Aborted(AbortReason::GraphCycle) => stats.aborted_graph += 1,
                TxnOutcome::Aborted(AbortReason::UserAbort) => stats.user_aborted += 1,
                TxnOutcome::Aborted(_) => {}
            }
        }
        Ok(ProtocolBlockResult {
            block: block.id,
            outcomes,
            rwsets,
            stats,
            sim_ns,
            commit_ns,
            orderer_ns,
            summary: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::testutil::*;

    fn config(workers: usize) -> FastFabricConfig {
        FastFabricConfig {
            fabric: FabricConfig {
                workers,
                endorser_lag_prob: 0.0,
                validation_delay: 0,
                ..FabricConfig::default()
            },
            ..FastFabricConfig::default()
        }
    }

    #[test]
    fn clean_block_commits() {
        let (store, t) = setup(16);
        let ff = FastFabric::new(Arc::clone(&store), config(2));
        let block = ExecBlock::new(
            BlockId(1),
            (0..4)
                .map(|i| read_add_txn(t, vec![i], vec![i + 8]))
                .collect(),
        );
        let res = ff.execute_block(&block).unwrap();
        assert_eq!(res.stats.committed, 4);
    }

    #[test]
    fn single_rw_conflict_commits_unlike_fabric() {
        // T0 writes x, T1 reads x: a single rw edge is acyclic — the graph
        // admits both (Fabric would abort T1). Zero false aborts.
        let (store, t) = setup(4);
        let ff = FastFabric::new(Arc::clone(&store), config(1));
        let block = ExecBlock::new(
            BlockId(1),
            vec![
                read_add_txn(t, vec![], vec![0]),
                read_add_txn(t, vec![0], vec![1]),
            ],
        );
        let res = ff.execute_block(&block).unwrap();
        assert_eq!(res.stats.committed, 2);
        assert!(res.orderer_ns > 0, "graph traversal must be charged");
    }

    #[test]
    fn genuine_cycle_drops_one_txn() {
        // Write-skew cycle: T0 reads y writes x; T1 reads x writes y.
        let (store, t) = setup(4);
        let ff = FastFabric::new(Arc::clone(&store), config(1));
        let block = ExecBlock::new(
            BlockId(1),
            vec![
                read_add_txn(t, vec![1], vec![0]),
                read_add_txn(t, vec![0], vec![1]),
            ],
        );
        let res = ff.execute_block(&block).unwrap();
        assert_eq!(res.stats.committed, 1);
        assert_eq!(res.stats.aborted_graph, 1);
    }

    #[test]
    fn graph_cap_drops_excess_txns() {
        let (store, t) = setup(2);
        let mut cfg = config(2);
        cfg.max_graph_edges = 3;
        let ff = FastFabric::new(Arc::clone(&store), cfg);
        // Many txns all touching the same two keys -> explodes the edge
        // count immediately.
        let block = ExecBlock::new(
            BlockId(1),
            (0..12).map(|_| read_add_txn(t, vec![0], vec![1])).collect(),
        );
        let res = ff.execute_block(&block).unwrap();
        assert!(res.stats.aborted_graph > 0, "cap must drop transactions");
    }

    #[test]
    fn orderer_cost_grows_with_contention() {
        let cost_at = |contended: bool| {
            let (store, t) = setup(64);
            let ff = FastFabric::new(Arc::clone(&store), config(2));
            let txns: Vec<_> = (0..30u64)
                .map(|i| {
                    if contended {
                        read_add_txn(t, vec![0, 1], vec![2])
                    } else {
                        read_add_txn(t, vec![i], vec![i + 32])
                    }
                })
                .collect();
            let block = ExecBlock::new(BlockId(1), txns);
            ff.execute_block(&block).unwrap().orderer_ns
        };
        assert!(
            cost_at(true) > cost_at(false),
            "contention inflates the serial graph traversal"
        );
    }
}
