//! RBC — "Blockchain Meets Database" (Nathan et al., VLDB 2019): an
//! order-execute relational blockchain with *serial* deterministic commit
//! based on SSI dangerous structures.
//!
//! Per the paper's taxonomy: RBC obtains deterministic read-write sets from
//! block snapshots (like Aria) but validates transactions **one by one in
//! TID order** to uphold determinism. It aborts on (1) ww-dependencies
//! (first-updater-wins, inherited from snapshot isolation) and (2) SSI
//! pivots — a transaction with both an incoming and an outgoing
//! rw-dependency to already-committed transactions of the block. Fewer
//! false aborts than Fabric, but the serial commit step caps concurrency —
//! the reason RBC's optimal block size is small (Figure 9/10).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use harmony_common::error::AbortReason;
use harmony_common::{vtime, BlockId, Result, TxnId};
use harmony_core::executor::{ExecBlock, TxnOutcome};
use harmony_core::{BlockStats, SnapshotStore};
use harmony_txn::Key;
use parking_lot::Mutex;

use crate::protocol::{
    eval_writes, install_writes, simulate_block, Architecture, DccEngine, ProtocolBlockResult,
};

/// The RBC engine.
pub struct Rbc {
    store: Arc<SnapshotStore>,
    workers: usize,
    next_block: Mutex<BlockId>,
}

impl Rbc {
    /// New engine starting at block 1.
    #[must_use]
    pub fn new(store: Arc<SnapshotStore>, workers: usize) -> Rbc {
        Rbc::starting_at(store, workers, BlockId(1))
    }

    /// Resume at an arbitrary block (recovery).
    #[must_use]
    pub fn starting_at(store: Arc<SnapshotStore>, workers: usize, next: BlockId) -> Rbc {
        Rbc {
            store,
            workers,
            next_block: Mutex::new(next),
        }
    }
}

impl DccEngine for Rbc {
    fn name(&self) -> &'static str {
        "RBC"
    }

    fn architecture(&self) -> Architecture {
        Architecture::Oe
    }

    fn commit_is_serial(&self) -> bool {
        true
    }

    fn store(&self) -> &Arc<SnapshotStore> {
        &self.store
    }

    fn execute_block(&self, block: &ExecBlock) -> Result<ProtocolBlockResult> {
        {
            let mut next = self.next_block.lock();
            assert_eq!(block.id, *next, "blocks must be consecutive");
            *next = next.next();
        }
        let snapshot = BlockId(block.id.0 - 1);
        let n = block.txns.len();
        let (rwsets, sim_ns) = simulate_block(&self.store, snapshot, block, self.workers);

        // Serial validation + apply, in TID order.
        let mut committed_writes: HashMap<Key, ()> = HashMap::new();
        let mut committed_reads: HashMap<Key, ()> = HashMap::new();
        let mut written_this_block: HashSet<Key> = HashSet::new();
        let mut outcomes = Vec::with_capacity(n);
        let mut commit_ns = vec![0u64; n];
        let mut stats = BlockStats {
            txns: n,
            sim_ns_total: sim_ns.iter().sum(),
            ..BlockStats::default()
        };
        for i in 0..n {
            let Some(rwset) = &rwsets[i] else {
                outcomes.push(TxnOutcome::Aborted(AbortReason::UserAbort));
                stats.user_aborted += 1;
                continue;
            };
            let tid = TxnId::new(block.id, i as u32).0;
            let ((), ns) = vtime::scope(|| {
                // ww: first-updater-wins against committed predecessors.
                let ww = rwset.write_keys().any(|k| committed_writes.contains_key(k));
                // SSI pivot: out-edge (read something a committed txn
                // wrote) AND in-edge (wrote something a committed txn
                // read).
                let out_edge = rwset.read_keys().any(|k| committed_writes.contains_key(k))
                    || rwset
                        .scans
                        .iter()
                        .any(|p| committed_writes.keys().any(|k| p.covers(k)));
                let in_edge = rwset.write_keys().any(|k| committed_reads.contains_key(k));
                let outcome = if ww {
                    TxnOutcome::Aborted(AbortReason::WwConflict)
                } else if out_edge && in_edge {
                    TxnOutcome::Aborted(AbortReason::SsiDangerousStructure)
                } else {
                    TxnOutcome::Committed
                };
                outcomes.push(outcome);
            });
            commit_ns[i] += ns;
            if outcomes[i] != TxnOutcome::Committed {
                match outcomes[i] {
                    TxnOutcome::Aborted(AbortReason::WwConflict) => stats.aborted_ww += 1,
                    TxnOutcome::Aborted(AbortReason::SsiDangerousStructure) => {
                        stats.aborted_ssi += 1;
                    }
                    _ => {}
                }
                continue;
            }
            stats.committed += 1;
            let (apply_res, ns) = vtime::scope(|| -> Result<()> {
                let writes = eval_writes(&self.store, snapshot, rwset)?;
                install_writes(&self.store, block.id, tid, &writes, &mut written_this_block)?;
                Ok(())
            });
            apply_res?;
            commit_ns[i] += ns;
            for k in rwset.write_keys() {
                committed_writes.insert(k.clone(), ());
            }
            for k in rwset.read_keys() {
                committed_reads.insert(k.clone(), ());
            }
        }

        self.store.gc(snapshot);
        stats.commit_ns_total = commit_ns.iter().sum();
        Ok(ProtocolBlockResult {
            block: block.id,
            outcomes,
            rwsets,
            stats,
            sim_ns,
            commit_ns,
            orderer_ns: 0,
            summary: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::testutil::*;

    fn engine() -> (Rbc, harmony_common::ids::TableId, Arc<SnapshotStore>) {
        let (store, t) = setup(16);
        (Rbc::new(Arc::clone(&store), 2), t, store)
    }

    #[test]
    fn disjoint_txns_commit() {
        let (rbc, t, store) = engine();
        let block = ExecBlock::new(
            BlockId(1),
            (0..4)
                .map(|i| read_add_txn(t, vec![i], vec![i + 8]))
                .collect(),
        );
        let res = rbc.execute_block(&block).unwrap();
        assert_eq!(res.stats.committed, 4);
        assert_eq!(read_i64(&store, t, 10), Some(101));
    }

    #[test]
    fn ww_first_updater_wins() {
        let (rbc, t, store) = engine();
        let block = ExecBlock::new(
            BlockId(1),
            vec![
                read_add_txn(t, vec![], vec![0]),
                read_add_txn(t, vec![], vec![0]),
                read_add_txn(t, vec![], vec![0]),
            ],
        );
        let res = rbc.execute_block(&block).unwrap();
        assert_eq!(res.stats.committed, 1);
        assert_eq!(res.stats.aborted_ww, 2);
        assert_eq!(read_i64(&store, t, 0), Some(101));
    }

    #[test]
    fn single_stale_read_commits_unlike_fabric() {
        // T0 writes x; T1 reads x and writes elsewhere: only an out-edge —
        // RBC commits it (the "T2 → T1 serializable order" insight §2.2.2).
        let (rbc, t, _) = engine();
        let block = ExecBlock::new(
            BlockId(1),
            vec![
                read_add_txn(t, vec![], vec![0]),
                read_add_txn(t, vec![0], vec![1]),
            ],
        );
        let res = rbc.execute_block(&block).unwrap();
        assert_eq!(res.stats.committed, 2);
    }

    #[test]
    fn ssi_pivot_aborts() {
        // Write-skew: T0 reads y writes x; T1 reads x writes y. T1 has an
        // out-edge (read x, committed T0 wrote x) and an in-edge (writes y,
        // committed T0 read y) => pivot.
        let (rbc, t, _) = engine();
        let block = ExecBlock::new(
            BlockId(1),
            vec![
                read_add_txn(t, vec![1], vec![0]),
                read_add_txn(t, vec![0], vec![1]),
            ],
        );
        let res = rbc.execute_block(&block).unwrap();
        assert_eq!(res.stats.committed, 1);
        assert_eq!(res.stats.aborted_ssi, 1);
        assert_eq!(
            res.outcomes[1],
            TxnOutcome::Aborted(AbortReason::SsiDangerousStructure)
        );
    }

    #[test]
    fn commit_cost_is_recorded_serially() {
        // Use a cost-bearing storage config so apply work accrues vtime.
        let engine = {
            let config = harmony_storage::StorageConfig {
                cost: harmony_storage::StorageCost::default(),
                ..harmony_storage::StorageConfig::memory()
            };
            Arc::new(harmony_storage::StorageEngine::open(&config).unwrap())
        };
        let t = engine.create_table("t").unwrap();
        for i in 0..8u64 {
            engine
                .put(t, &i.to_be_bytes(), &100i64.to_le_bytes())
                .unwrap();
        }
        let store = Arc::new(SnapshotStore::new(engine));
        let rbc = Rbc::new(Arc::clone(&store), 2);
        let block = ExecBlock::new(
            BlockId(1),
            (0..6).map(|i| read_add_txn(t, vec![], vec![i])).collect(),
        );
        let res = rbc.execute_block(&block).unwrap();
        assert!(rbc.commit_is_serial());
        assert!(
            res.commit_ns.iter().filter(|&&c| c > 0).count() >= 6,
            "every committed txn's serial apply must be costed: {:?}",
            res.commit_ns
        );
    }
}
