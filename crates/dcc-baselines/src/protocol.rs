//! The uniform protocol interface and shared simulation machinery.

use std::sync::Arc;

use harmony_common::{vtime, BlockId, Result};
use harmony_core::executor::{ExecBlock, TxnOutcome};
use harmony_core::par::run_indexed;
use harmony_core::{BlockStats, SnapshotStore};
use harmony_txn::{Key, RwSet, TxnCtx, Value};

/// Blockchain architecture (Table 1 of the paper). Drives the cluster
/// performance model: SOV ships read-write sets and needs client round
/// trips; OE ships only transaction commands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Architecture {
    /// Simulate-Order-Validate (Fabric family).
    Sov,
    /// Order-Execute (= deterministic databases' Sequence-Execute).
    Oe,
}

/// Result of pushing one block through a protocol.
#[derive(Debug)]
pub struct ProtocolBlockResult {
    /// The block.
    pub block: BlockId,
    /// Outcome per transaction (block order).
    pub outcomes: Vec<TxnOutcome>,
    /// Captured read-write sets (`None` for user aborts).
    pub rwsets: Vec<Option<RwSet>>,
    /// Counters.
    pub stats: BlockStats,
    /// Per-transaction simulation cost (parallelizable stage).
    pub sim_ns: Vec<u64>,
    /// Per-transaction validation+apply cost. Interpreted serially or in
    /// parallel according to [`DccEngine::commit_is_serial`].
    pub commit_ns: Vec<u64>,
    /// Centralized (unparallelizable) ordering-service work, e.g.
    /// FastFabric#'s dependency-graph traversal.
    pub orderer_ns: u64,
    /// Rule-3 digest for the next block (Harmony only; `None` elsewhere).
    pub summary: Option<harmony_core::executor::BlockSummary>,
}

/// A deterministic concurrency control engine executing whole blocks.
pub trait DccEngine: Send + Sync {
    /// Display name (matches the paper's system names).
    fn name(&self) -> &'static str;

    /// Architecture for the cluster network model.
    fn architecture(&self) -> Architecture;

    /// Whether the commit step processes transactions one-by-one.
    fn commit_is_serial(&self) -> bool;

    /// Pipeline depth for the scheduler: 1 = blocks strictly sequential,
    /// 2 = simulation of block `i+1` overlaps commit of block `i`.
    fn pipeline_depth(&self) -> usize {
        1
    }

    /// Execute the next block. Blocks must be fed in consecutive order.
    fn execute_block(&self, block: &ExecBlock) -> Result<ProtocolBlockResult>;

    /// The snapshot store this engine runs over.
    fn store(&self) -> &Arc<SnapshotStore>;
}

/// Shared simulation step: run every transaction against `snapshot` in
/// parallel, returning captured rwsets (`None` = user abort) and per-txn
/// virtual costs.
pub fn simulate_block(
    store: &SnapshotStore,
    snapshot: BlockId,
    block: &ExecBlock,
    workers: usize,
) -> (Vec<Option<RwSet>>, Vec<u64>) {
    let n = block.txns.len();
    let sims = run_indexed(n, workers, |i| {
        let view = store.view_at(snapshot);
        vtime::scope(|| {
            vtime::charge(block.txns[i].think_time_ns());
            let mut ctx = TxnCtx::new(&view);
            match block.txns[i].execute(&mut ctx) {
                Ok(()) => Some(ctx.into_rwset()),
                Err(_) => None,
            }
        })
    });
    sims.into_iter().unzip()
}

/// Evaluate a transaction's write set into concrete values against
/// `snapshot` — what value-shipping protocols (Aria, RBC, Fabric) install
/// at commit. RMW commands on missing records are zero-row no-ops.
pub fn eval_writes(
    store: &SnapshotStore,
    snapshot: BlockId,
    rwset: &RwSet,
) -> Result<Vec<(Key, Option<Value>)>> {
    let mut out = Vec::with_capacity(rwset.updates.len());
    for (key, seq) in &rwset.updates {
        let mut cur = store.read_at(snapshot, key)?;
        for cmd in seq.commands() {
            match cmd.apply(cur.as_ref()) {
                Ok(v) => cur = v,
                Err(harmony_common::Error::InvalidArgument(_)) => {}
                Err(e) => return Err(e),
            }
        }
        out.push((key.clone(), cur));
    }
    Ok(out)
}

/// Install evaluated writes for one committed transaction, respecting the
/// one-undo-entry-per-(key, block) discipline via `written_this_block`.
pub fn install_writes(
    store: &SnapshotStore,
    block: BlockId,
    tid: u64,
    writes: &[(Key, Option<Value>)],
    written_this_block: &mut std::collections::HashSet<Key>,
) -> Result<()> {
    for (key, value) in writes {
        if written_this_block.insert(key.clone()) {
            store.apply_write(block, tid, key, value.as_ref())?;
        } else {
            store.overwrite_in_block(tid, key, value.as_ref())?;
        }
    }
    Ok(())
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use harmony_common::ids::TableId;
    use harmony_storage::{StorageConfig, StorageEngine};
    use harmony_txn::{Contract, FnContract, UserAbort};

    /// Fresh store with `n` i64 records valued 100 in table "t".
    pub fn setup(n_keys: u64) -> (Arc<SnapshotStore>, TableId) {
        let engine = Arc::new(StorageEngine::open(&StorageConfig::memory()).unwrap());
        let t = engine.create_table("t").unwrap();
        for i in 0..n_keys {
            engine
                .put(t, &i.to_be_bytes(), &100i64.to_le_bytes())
                .unwrap();
        }
        (Arc::new(SnapshotStore::new(engine)), t)
    }

    pub fn key(t: TableId, i: u64) -> Key {
        Key::from_u64(t, i)
    }

    pub fn read_i64(store: &SnapshotStore, t: TableId, i: u64) -> Option<i64> {
        store
            .engine()
            .get(t, &i.to_be_bytes())
            .unwrap()
            .map(|v| i64::from_le_bytes(v.as_slice().try_into().unwrap()))
    }

    /// Reads `reads`, then `add(w, 1)` for each `w` in `writes`.
    pub fn read_add_txn(t: TableId, reads: Vec<u64>, writes: Vec<u64>) -> Arc<dyn Contract> {
        Arc::new(FnContract::new("read-add", move |ctx: &mut TxnCtx<'_>| {
            for &r in &reads {
                ctx.read(&key(t, r)).map_err(|e| UserAbort(e.to_string()))?;
            }
            for &w in &writes {
                ctx.add_i64(key(t, w), 0, 1);
            }
            Ok(())
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::*;
    use super::*;
    use harmony_txn::UpdateCommand;

    #[test]
    fn simulate_block_captures_rwsets() {
        let (store, t) = setup(4);
        let block = ExecBlock::new(
            BlockId(1),
            vec![
                read_add_txn(t, vec![0], vec![1]),
                read_add_txn(t, vec![2], vec![3]),
            ],
        );
        let (rwsets, costs) = simulate_block(&store, BlockId(0), &block, 2);
        assert_eq!(rwsets.len(), 2);
        assert!(rwsets.iter().all(Option::is_some));
        assert_eq!(costs.len(), 2);
        assert_eq!(rwsets[0].as_ref().unwrap().reads.len(), 1);
        assert_eq!(rwsets[0].as_ref().unwrap().updates.len(), 1);
    }

    #[test]
    fn eval_writes_resolves_rmw_against_snapshot() {
        let (store, t) = setup(1);
        let mut rw = RwSet::default();
        rw.record_update(
            key(t, 0),
            UpdateCommand::AddI64 {
                offset: 0,
                delta: 7,
            },
        );
        let writes = eval_writes(&store, BlockId(0), &rw).unwrap();
        assert_eq!(writes.len(), 1);
        let v = writes[0].1.as_ref().unwrap();
        assert_eq!(i64::from_le_bytes(v.as_ref().try_into().unwrap()), 107);
    }

    #[test]
    fn install_writes_once_per_key() {
        let (store, t) = setup(1);
        let mut seen = std::collections::HashSet::new();
        let v1 = Value::from(1i64.to_le_bytes().to_vec());
        let v2 = Value::from(2i64.to_le_bytes().to_vec());
        install_writes(&store, BlockId(1), 10, &[(key(t, 0), Some(v1))], &mut seen).unwrap();
        install_writes(&store, BlockId(1), 11, &[(key(t, 0), Some(v2))], &mut seen).unwrap();
        assert_eq!(read_i64(&store, t, 0), Some(2));
        // Snapshot 0 still sees the pre-block value through one undo entry.
        assert_eq!(
            store
                .read_at(BlockId(0), &key(t, 0))
                .unwrap()
                .map(|v| i64::from_le_bytes(v.as_ref().try_into().unwrap())),
            Some(100)
        );
    }
}
