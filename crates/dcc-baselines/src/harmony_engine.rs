//! Adapter exposing Harmony through the uniform [`DccEngine`] interface,
//! so the benchmark harness can drive all five systems identically.

use std::sync::Arc;

use harmony_common::Result;
use harmony_core::executor::ExecBlock;
use harmony_core::{ChainPipeline, HarmonyConfig, SnapshotStore};
use parking_lot::Mutex;

use crate::protocol::{Architecture, DccEngine, ProtocolBlockResult};

/// Harmony as a [`DccEngine`].
pub struct HarmonyEngine {
    store: Arc<SnapshotStore>,
    pipeline: Mutex<ChainPipeline>,
    config: HarmonyConfig,
}

impl HarmonyEngine {
    /// New engine starting at block 1.
    #[must_use]
    pub fn new(store: Arc<SnapshotStore>, config: HarmonyConfig) -> HarmonyEngine {
        HarmonyEngine {
            pipeline: Mutex::new(ChainPipeline::new(Arc::clone(&store), config)),
            store,
            config,
        }
    }

    /// Resume at an arbitrary block (recovery), optionally seeding the
    /// previous block's summary for Rule 3 continuity.
    #[must_use]
    pub fn starting_at(
        store: Arc<SnapshotStore>,
        config: HarmonyConfig,
        next_block: harmony_common::BlockId,
        prev_summary: Option<harmony_core::executor::BlockSummary>,
    ) -> HarmonyEngine {
        HarmonyEngine {
            pipeline: Mutex::new(ChainPipeline::starting_at(
                Arc::clone(&store),
                config,
                next_block,
                prev_summary,
            )),
            store,
            config,
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> HarmonyConfig {
        self.config
    }
}

impl DccEngine for HarmonyEngine {
    fn name(&self) -> &'static str {
        "HarmonyBC"
    }

    fn architecture(&self) -> Architecture {
        Architecture::Oe
    }

    fn commit_is_serial(&self) -> bool {
        false
    }

    fn pipeline_depth(&self) -> usize {
        if self.config.inter_block_parallelism {
            2
        } else {
            1
        }
    }

    fn store(&self) -> &Arc<SnapshotStore> {
        &self.store
    }

    fn execute_block(&self, block: &ExecBlock) -> Result<ProtocolBlockResult> {
        let result = self.pipeline.lock().execute_one(block)?;
        let (outcomes, costs): (Vec<_>, Vec<(u64, u64)>) = result
            .results
            .iter()
            .map(|r| (r.outcome, (r.sim_ns, r.commit_ns)))
            .unzip();
        let (sim_ns, commit_ns) = costs.into_iter().unzip();
        Ok(ProtocolBlockResult {
            block: result.block,
            outcomes,
            rwsets: result.rwsets,
            stats: result.stats,
            sim_ns,
            commit_ns,
            orderer_ns: 0,
            summary: Some(result.summary),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::testutil::*;
    use harmony_common::BlockId;

    #[test]
    fn adapter_executes_blocks() {
        let (store, t) = setup(8);
        let engine = HarmonyEngine::new(Arc::clone(&store), HarmonyConfig::default());
        assert_eq!(engine.name(), "HarmonyBC");
        assert_eq!(engine.pipeline_depth(), 2);
        assert!(!engine.commit_is_serial());
        for b in 1..=3u64 {
            // Blind contended adds: no rw edges, so reordering must commit
            // every transaction across all three pipelined blocks.
            let block = ExecBlock::new(
                BlockId(b),
                (0..6)
                    .map(|i| read_add_txn(t, vec![], vec![i % 3]))
                    .collect(),
            );
            let res = engine.execute_block(&block).unwrap();
            assert_eq!(res.stats.txns, 6);
            assert_eq!(res.stats.committed, 6);
        }
        let total: i64 = (0..8).map(|i| read_i64(&store, t, i).unwrap() - 100).sum();
        assert_eq!(total, 18, "every add must be applied exactly once");
    }

    #[test]
    fn non_ibp_depth_is_one() {
        let (store, _) = setup(1);
        let engine = HarmonyEngine::new(store, HarmonyConfig::with_coalescence());
        assert_eq!(engine.pipeline_depth(), 1);
    }
}
