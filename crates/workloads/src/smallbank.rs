//! Smallbank (Alomari et al., ICDE 2008) — the banking workload used by
//! most blockchain evaluations, including the paper's (§5: 10 K accounts,
//! standard mix).
//!
//! Six procedures over two tables (`checking`, `savings`), several with
//! data-dependent branches and business aborts — the transaction shape
//! that defeats static analysis and motivates optimistic DCC.

use std::sync::Arc;

use harmony_common::ids::TableId;
use harmony_common::zipf::ScrambledZipfian;
use harmony_common::{DetRng, Result};
use harmony_storage::StorageEngine;
use harmony_txn::row::{read_i64, RowBuilder};
use harmony_txn::{Contract, FnContract, Key, TxnCtx, UserAbort};

use crate::workload::Workload;

/// Offset of the balance field in account rows.
pub const BALANCE_OFFSET: usize = 0;
const ROW_PAD: usize = 40; // name-ish columns

/// Initial balance loaded into every account.
pub const INITIAL_BALANCE: i64 = 10_000;

/// Smallbank configuration.
#[derive(Clone, Debug)]
pub struct SmallbankConfig {
    /// Number of accounts (paper: 10 000).
    pub accounts: u64,
    /// Zipfian skew for account selection (the paper's contention axis).
    pub theta: f64,
}

impl Default for SmallbankConfig {
    fn default() -> Self {
        SmallbankConfig {
            accounts: 10_000,
            theta: 0.6,
        }
    }
}

/// Transaction mix (standard Smallbank distribution).
const MIX: [(Procedure, f64); 6] = [
    (Procedure::Balance, 0.15),
    (Procedure::DepositChecking, 0.15),
    (Procedure::TransactSavings, 0.15),
    (Procedure::Amalgamate, 0.15),
    (Procedure::WriteCheck, 0.25),
    (Procedure::SendPayment, 0.15),
];

/// Smallbank procedure selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Procedure {
    /// Read both balances of one customer.
    Balance,
    /// Add to a customer's checking balance.
    DepositChecking,
    /// Add to a customer's savings balance (aborts if it would go negative).
    TransactSavings,
    /// Move a customer's full savings into checking.
    Amalgamate,
    /// Cash a check against combined balances (penalty on overdraft).
    WriteCheck,
    /// Transfer checking funds between two customers.
    SendPayment,
}

/// The Smallbank workload.
pub struct Smallbank {
    config: SmallbankConfig,
    zipf: ScrambledZipfian,
    checking: TableId,
    savings: TableId,
}

impl Smallbank {
    /// Build with the given configuration.
    #[must_use]
    pub fn new(config: SmallbankConfig) -> Smallbank {
        let zipf = ScrambledZipfian::new(config.accounts, config.theta);
        Smallbank {
            config,
            zipf,
            checking: TableId(0),
            savings: TableId(0),
        }
    }

    /// `(checking, savings)` table ids (valid after `setup`).
    #[must_use]
    pub fn tables(&self) -> (TableId, TableId) {
        (self.checking, self.savings)
    }

    fn account_row(balance: i64) -> bytes::Bytes {
        let mut b = RowBuilder::new();
        b.push_i64(balance);
        b.push_pad(ROW_PAD, 0x20);
        b.finish()
    }

    fn pick_account(&self, rng: &mut DetRng) -> u64 {
        self.zipf.sample(rng)
    }
}

fn balance_of(v: &harmony_txn::Value) -> i64 {
    read_i64(v, BALANCE_OFFSET).unwrap_or(0)
}

impl Workload for Smallbank {
    fn name(&self) -> &'static str {
        "Smallbank"
    }

    fn setup(&mut self, engine: &StorageEngine) -> Result<()> {
        self.checking = engine.create_table("checking")?;
        self.savings = engine.create_table("savings")?;
        let row = Self::account_row(INITIAL_BALANCE);
        for a in 0..self.config.accounts {
            engine.put(self.checking, &a.to_be_bytes(), &row)?;
            engine.put(self.savings, &a.to_be_bytes(), &row)?;
        }
        Ok(())
    }

    fn next_txn(&self, rng: &mut DetRng) -> Arc<dyn Contract> {
        let weights: Vec<f64> = MIX.iter().map(|(_, w)| *w).collect();
        let proc = MIX[rng.weighted_index(&weights)].0;
        let a0 = self.pick_account(rng);
        let mut a1 = self.pick_account(rng);
        if a1 == a0 {
            a1 = (a1 + 1) % self.config.accounts;
        }
        let amount = 1 + rng.gen_range(100) as i64;
        build_txn(self.checking, self.savings, proc, a0, a1, amount)
    }
}

/// Build the executable contract for concrete Smallbank parameters.
pub fn build_txn(
    checking: TableId,
    savings: TableId,
    proc: Procedure,
    a0: u64,
    a1: u64,
    amount: i64,
) -> Arc<dyn Contract> {
    {
        let payload = {
            let mut p = vec![proc as u8];
            p.extend_from_slice(&a0.to_le_bytes());
            p.extend_from_slice(&a1.to_le_bytes());
            p.extend_from_slice(&amount.to_le_bytes());
            p
        };
        let name = match proc {
            Procedure::Balance => "sb-balance",
            Procedure::DepositChecking => "sb-deposit",
            Procedure::TransactSavings => "sb-transact",
            Procedure::Amalgamate => "sb-amalgamate",
            Procedure::WriteCheck => "sb-writecheck",
            Procedure::SendPayment => "sb-sendpayment",
        };
        Arc::new(
            FnContract::new(name, move |ctx: &mut TxnCtx<'_>| {
                let ck = |a: u64| Key::from_u64(checking, a);
                let sv = |a: u64| Key::from_u64(savings, a);
                let read_bal = |ctx: &mut TxnCtx<'_>, key: &Key| -> Result<i64, UserAbort> {
                    Ok(ctx
                        .read(key)
                        .map_err(|e| UserAbort(e.to_string()))?
                        .as_ref()
                        .map(balance_of)
                        .unwrap_or(0))
                };
                match proc {
                    Procedure::Balance => {
                        let _ = read_bal(ctx, &ck(a0))? + read_bal(ctx, &sv(a0))?;
                    }
                    Procedure::DepositChecking => {
                        // Single UPDATE statement: pure RMW command — the
                        // coalescible shape.
                        ctx.add_i64(ck(a0), BALANCE_OFFSET, amount);
                    }
                    Procedure::TransactSavings => {
                        let bal = read_bal(ctx, &sv(a0))?;
                        if bal - amount < 0 {
                            return Err(UserAbort("insufficient savings".into()));
                        }
                        ctx.add_i64(sv(a0), BALANCE_OFFSET, -amount);
                    }
                    Procedure::Amalgamate => {
                        let s = read_bal(ctx, &sv(a0))?;
                        let c = read_bal(ctx, &ck(a0))?;
                        ctx.add_i64(sv(a0), BALANCE_OFFSET, -s);
                        ctx.add_i64(ck(a0), BALANCE_OFFSET, -c);
                        ctx.add_i64(ck(a1), BALANCE_OFFSET, s + c);
                    }
                    Procedure::WriteCheck => {
                        let total = read_bal(ctx, &sv(a0))? + read_bal(ctx, &ck(a0))?;
                        let fee = if total < amount { 1 } else { 0 };
                        ctx.add_i64(ck(a0), BALANCE_OFFSET, -(amount + fee));
                    }
                    Procedure::SendPayment => {
                        let c = read_bal(ctx, &ck(a0))?;
                        if c < amount {
                            return Err(UserAbort("insufficient checking".into()));
                        }
                        ctx.add_i64(ck(a0), BALANCE_OFFSET, -amount);
                        ctx.add_i64(ck(a1), BALANCE_OFFSET, amount);
                    }
                }
                Ok(())
            })
            .with_payload(payload),
        )
    }
}

/// [`harmony_txn::ContractCodec`] for Smallbank procedures.
pub struct SmallbankCodec {
    /// Checking table.
    pub checking: TableId,
    /// Savings table.
    pub savings: TableId,
}

impl harmony_txn::ContractCodec for SmallbankCodec {
    fn decode(&self, bytes: &[u8]) -> Result<Arc<dyn Contract>> {
        let (name, payload) = harmony_txn::split_encoded(bytes)?;
        if !name.starts_with("sb-") || payload.len() != 25 {
            return Err(harmony_common::Error::Corruption(format!(
                "not a smallbank contract: {name} ({} bytes)",
                payload.len()
            )));
        }
        let proc = match payload[0] {
            0 => Procedure::Balance,
            1 => Procedure::DepositChecking,
            2 => Procedure::TransactSavings,
            3 => Procedure::Amalgamate,
            4 => Procedure::WriteCheck,
            5 => Procedure::SendPayment,
            t => {
                return Err(harmony_common::Error::Corruption(format!(
                    "bad smallbank procedure tag {t}"
                )))
            }
        };
        let a0 = u64::from_le_bytes(payload[1..9].try_into().expect("8 bytes"));
        let a1 = u64::from_le_bytes(payload[9..17].try_into().expect("8 bytes"));
        let amount = i64::from_le_bytes(payload[17..25].try_into().expect("8 bytes"));
        Ok(build_txn(self.checking, self.savings, proc, a0, a1, amount))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_storage::StorageConfig;

    fn setup_sb(accounts: u64, theta: f64) -> (StorageEngine, Smallbank) {
        let engine = StorageEngine::open(&StorageConfig::memory()).unwrap();
        let mut w = Smallbank::new(SmallbankConfig { accounts, theta });
        w.setup(&engine).unwrap();
        (engine, w)
    }

    #[test]
    fn setup_loads_both_tables() {
        let (engine, w) = setup_sb(100, 0.0);
        let (ck, sv) = w.tables();
        assert_eq!(engine.table_len(ck).unwrap(), 100);
        assert_eq!(engine.table_len(sv).unwrap(), 100);
        let row = engine.get(ck, &0u64.to_be_bytes()).unwrap().unwrap();
        assert_eq!(read_i64(&row, BALANCE_OFFSET).unwrap(), INITIAL_BALANCE);
    }

    #[test]
    fn mix_covers_all_procedures() {
        let (_, w) = setup_sb(1000, 0.0);
        let mut rng = DetRng::new(2);
        let mut names = std::collections::HashSet::new();
        for _ in 0..500 {
            names.insert(w.next_txn(&mut rng).name().to_string());
        }
        assert_eq!(names.len(), 6, "all six procedures generated: {names:?}");
    }

    #[test]
    fn deterministic_stream() {
        let (_, w) = setup_sb(100, 0.5);
        let mut a = DetRng::new(11);
        let mut b = DetRng::new(11);
        for _ in 0..50 {
            assert_eq!(w.next_txn(&mut a).payload(), w.next_txn(&mut b).payload());
        }
    }

    /// Money conservation: running the whole mix through Harmony must keep
    /// the total balance constant, modulo WriteCheck penalties which only
    /// ever *reduce* by writing checks (amount leaves the system).
    #[test]
    fn money_flows_are_consistent_under_harmony() {
        use harmony_core::executor::ExecBlock;
        use harmony_core::{ChainPipeline, HarmonyConfig, SnapshotStore};
        use std::sync::Arc as SArc;

        let engine = SArc::new(StorageEngine::open(&StorageConfig::memory()).unwrap());
        let mut w = Smallbank::new(SmallbankConfig {
            accounts: 50,
            theta: 0.9,
        });
        w.setup(&engine).unwrap();
        let (ck, sv) = w.tables();
        let store = SArc::new(SnapshotStore::new(SArc::clone(&engine)));
        let mut pipeline = ChainPipeline::new(SArc::clone(&store), HarmonyConfig::default());
        let mut rng = DetRng::new(3);
        // Only SendPayment/Amalgamate/Balance conserve money; generate the
        // full mix but track WriteCheck/Deposit/Transact deltas from the
        // committed transactions' payloads.
        let mut blocks = Vec::new();
        for b in 1..=10u64 {
            blocks.push(ExecBlock::new(
                harmony_common::BlockId(b),
                w.next_block(&mut rng, 20),
            ));
        }
        let report = pipeline.run_blocks(&blocks).unwrap();

        // Compute expected delta from committed, non-conserving procedures.
        let mut expected_delta: i64 = 0;
        for (bi, block) in blocks.iter().enumerate() {
            for (ti, txn) in block.txns.iter().enumerate() {
                let committed = report.blocks[bi].results[ti].outcome.is_committed();
                if !committed {
                    continue;
                }
                let p = txn.payload();
                let amount = i64::from_le_bytes(p[17..25].try_into().unwrap());
                match txn.name() {
                    "sb-deposit" => expected_delta += amount,
                    "sb-transact" => expected_delta -= amount,
                    "sb-writecheck" => {
                        // Fee depends on balance at execution; bound check
                        // below instead of exact accounting.
                        expected_delta -= amount;
                    }
                    _ => {}
                }
            }
        }
        let mut total: i64 = 0;
        for table in [ck, sv] {
            engine
                .scan(table, b"", None, |_, v| {
                    total += read_i64(v, BALANCE_OFFSET).unwrap();
                    true
                })
                .unwrap();
        }
        let initial = 2 * 50 * INITIAL_BALANCE;
        let drift = total - (initial + expected_delta);
        // Only writecheck fees (1 per txn) may remain unaccounted.
        assert!(
            (0..=60).contains(&(-drift)) || drift == 0,
            "total={total} expected≈{} drift={drift}",
            initial + expected_delta
        );
    }
}
