//! Smallbank (Alomari et al., ICDE 2008) — the banking workload used by
//! most blockchain evaluations, including the paper's (§5: 10 K accounts,
//! standard mix).
//!
//! Six procedures over two tables (`checking`, `savings`), several with
//! data-dependent branches and business aborts — the transaction shape
//! that defeats static analysis and motivates optimistic DCC.

use std::sync::Arc;

use harmony_common::ids::TableId;
use harmony_common::zipf::ScrambledZipfian;
use harmony_common::{DetRng, Result};
use harmony_storage::StorageEngine;
use harmony_txn::row::{read_i64, RowBuilder};
use harmony_txn::{Contract, FnContract, Key, TxnCtx, UserAbort};

use crate::workload::Workload;

/// Offset of the balance field in account rows.
pub const BALANCE_OFFSET: usize = 0;
const ROW_PAD: usize = 40; // name-ish columns

/// Initial balance loaded into every account.
pub const INITIAL_BALANCE: i64 = 10_000;

/// Smallbank configuration.
#[derive(Clone, Debug)]
pub struct SmallbankConfig {
    /// Number of accounts (paper: 10 000).
    pub accounts: u64,
    /// Zipfian skew for account selection (the paper's contention axis).
    pub theta: f64,
    /// Partition-aware mode: the number of logical keyspace partitions the
    /// shard router will use (`0` disables partition awareness and keeps
    /// the classic transaction stream bit-for-bit).
    pub partitions: u64,
    /// Probability that a two-account procedure (SendPayment, Amalgamate)
    /// picks its counterparty in a *different* partition — the cross-shard
    /// ratio axis of the shard-scaling experiment. Ignored unless
    /// `partitions > 0`.
    pub multi_partition_ratio: f64,
}

impl Default for SmallbankConfig {
    fn default() -> Self {
        SmallbankConfig {
            accounts: 10_000,
            theta: 0.6,
            partitions: 0,
            multi_partition_ratio: 0.0,
        }
    }
}

/// Logical partition of an account id — the canonical hash partitioning
/// shared with the shard router.
#[must_use]
pub fn partition_of_account(account: u64, partitions: u64) -> u64 {
    harmony_common::hash::partition_of_u64(account, partitions)
}

use crate::workload::walk_u64 as walk_account;

/// Transaction mix (standard Smallbank distribution).
const MIX: [(Procedure, f64); 6] = [
    (Procedure::Balance, 0.15),
    (Procedure::DepositChecking, 0.15),
    (Procedure::TransactSavings, 0.15),
    (Procedure::Amalgamate, 0.15),
    (Procedure::WriteCheck, 0.25),
    (Procedure::SendPayment, 0.15),
];

/// Smallbank procedure selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Procedure {
    /// Read both balances of one customer.
    Balance,
    /// Add to a customer's checking balance.
    DepositChecking,
    /// Add to a customer's savings balance (aborts if it would go negative).
    TransactSavings,
    /// Move a customer's full savings into checking.
    Amalgamate,
    /// Cash a check against combined balances (penalty on overdraft).
    WriteCheck,
    /// Transfer checking funds between two customers.
    SendPayment,
}

/// The Smallbank workload.
pub struct Smallbank {
    config: SmallbankConfig,
    zipf: ScrambledZipfian,
    checking: TableId,
    savings: TableId,
}

impl Smallbank {
    /// Build with the given configuration.
    #[must_use]
    pub fn new(config: SmallbankConfig) -> Smallbank {
        let zipf = ScrambledZipfian::new(config.accounts, config.theta);
        Smallbank {
            config,
            zipf,
            checking: TableId(0),
            savings: TableId(0),
        }
    }

    /// `(checking, savings)` table ids (valid after `setup`).
    #[must_use]
    pub fn tables(&self) -> (TableId, TableId) {
        (self.checking, self.savings)
    }

    fn account_row(balance: i64) -> bytes::Bytes {
        let mut b = RowBuilder::new();
        b.push_i64(balance);
        b.push_pad(ROW_PAD, 0x20);
        b.finish()
    }

    fn pick_account(&self, rng: &mut DetRng) -> u64 {
        self.zipf.sample(rng)
    }
}

fn balance_of(v: &harmony_txn::Value) -> i64 {
    read_i64(v, BALANCE_OFFSET).unwrap_or(0)
}

impl Workload for Smallbank {
    fn name(&self) -> &'static str {
        "Smallbank"
    }

    fn setup(&mut self, engine: &StorageEngine) -> Result<()> {
        self.checking = engine.create_table("checking")?;
        self.savings = engine.create_table("savings")?;
        let row = Self::account_row(INITIAL_BALANCE);
        for a in 0..self.config.accounts {
            engine.put(self.checking, &a.to_be_bytes(), &row)?;
            engine.put(self.savings, &a.to_be_bytes(), &row)?;
        }
        Ok(())
    }

    fn next_txn(&self, rng: &mut DetRng) -> Arc<dyn Contract> {
        let weights: Vec<f64> = MIX.iter().map(|(_, w)| *w).collect();
        let proc = MIX[rng.weighted_index(&weights)].0;
        let a0 = self.pick_account(rng);
        let mut a1 = self.pick_account(rng);
        if a1 == a0 {
            a1 = (a1 + 1) % self.config.accounts;
        }
        // Partition-aware counterparty choice: steer `a1` into (or out of)
        // `a0`'s partition with the configured cross-partition probability.
        // Only the two-account procedures consult `a1`, so only they draw.
        let two_account = matches!(proc, Procedure::Amalgamate | Procedure::SendPayment);
        if self.config.partitions > 0 && two_account {
            let parts = self.config.partitions;
            let accounts = self.config.accounts;
            let home = partition_of_account(a0, parts);
            if rng.gen_bool(self.config.multi_partition_ratio) {
                if partition_of_account(a1, parts) == home {
                    a1 = walk_account(accounts, a1, |c| partition_of_account(c, parts) != home);
                }
            } else if partition_of_account(a1, parts) != home {
                a1 = walk_account(accounts, a1, |c| {
                    c != a0 && partition_of_account(c, parts) == home
                });
            }
        }
        let amount = 1 + rng.gen_range(100) as i64;
        build_txn(self.checking, self.savings, proc, a0, a1, amount)
    }
}

/// Build the executable contract for concrete Smallbank parameters.
pub fn build_txn(
    checking: TableId,
    savings: TableId,
    proc: Procedure,
    a0: u64,
    a1: u64,
    amount: i64,
) -> Arc<dyn Contract> {
    {
        let payload = {
            let mut p = vec![proc as u8];
            p.extend_from_slice(&a0.to_le_bytes());
            p.extend_from_slice(&a1.to_le_bytes());
            p.extend_from_slice(&amount.to_le_bytes());
            p
        };
        let name = match proc {
            Procedure::Balance => "sb-balance",
            Procedure::DepositChecking => "sb-deposit",
            Procedure::TransactSavings => "sb-transact",
            Procedure::Amalgamate => "sb-amalgamate",
            Procedure::WriteCheck => "sb-writecheck",
            Procedure::SendPayment => "sb-sendpayment",
        };
        // Complete point-key footprint per procedure (enables single-shard
        // routing; every access below stays within these keys).
        let footprint: Vec<Key> = {
            let ck = |a: u64| Key::from_u64(checking, a);
            let sv = |a: u64| Key::from_u64(savings, a);
            match proc {
                Procedure::Balance | Procedure::WriteCheck => vec![ck(a0), sv(a0)],
                Procedure::DepositChecking => vec![ck(a0)],
                Procedure::TransactSavings => vec![sv(a0)],
                Procedure::Amalgamate => vec![sv(a0), ck(a0), ck(a1)],
                Procedure::SendPayment => vec![ck(a0), ck(a1)],
            }
        };
        Arc::new(
            FnContract::new(name, move |ctx: &mut TxnCtx<'_>| {
                let ck = |a: u64| Key::from_u64(checking, a);
                let sv = |a: u64| Key::from_u64(savings, a);
                let read_bal = |ctx: &mut TxnCtx<'_>, key: &Key| -> Result<i64, UserAbort> {
                    Ok(ctx
                        .read(key)
                        .map_err(|e| UserAbort(e.to_string()))?
                        .as_ref()
                        .map(balance_of)
                        .unwrap_or(0))
                };
                match proc {
                    Procedure::Balance => {
                        let _ = read_bal(ctx, &ck(a0))? + read_bal(ctx, &sv(a0))?;
                    }
                    Procedure::DepositChecking => {
                        // Single UPDATE statement: pure RMW command — the
                        // coalescible shape.
                        ctx.add_i64(ck(a0), BALANCE_OFFSET, amount);
                    }
                    Procedure::TransactSavings => {
                        let bal = read_bal(ctx, &sv(a0))?;
                        if bal - amount < 0 {
                            return Err(UserAbort("insufficient savings".into()));
                        }
                        ctx.add_i64(sv(a0), BALANCE_OFFSET, -amount);
                    }
                    Procedure::Amalgamate => {
                        let s = read_bal(ctx, &sv(a0))?;
                        let c = read_bal(ctx, &ck(a0))?;
                        ctx.add_i64(sv(a0), BALANCE_OFFSET, -s);
                        ctx.add_i64(ck(a0), BALANCE_OFFSET, -c);
                        ctx.add_i64(ck(a1), BALANCE_OFFSET, s + c);
                    }
                    Procedure::WriteCheck => {
                        let total = read_bal(ctx, &sv(a0))? + read_bal(ctx, &ck(a0))?;
                        let fee = if total < amount { 1 } else { 0 };
                        ctx.add_i64(ck(a0), BALANCE_OFFSET, -(amount + fee));
                    }
                    Procedure::SendPayment => {
                        let c = read_bal(ctx, &ck(a0))?;
                        if c < amount {
                            return Err(UserAbort("insufficient checking".into()));
                        }
                        ctx.add_i64(ck(a0), BALANCE_OFFSET, -amount);
                        ctx.add_i64(ck(a1), BALANCE_OFFSET, amount);
                    }
                }
                Ok(())
            })
            .with_payload(payload)
            .with_footprint(footprint),
        )
    }
}

/// [`harmony_txn::ContractCodec`] for Smallbank procedures.
pub struct SmallbankCodec {
    /// Checking table.
    pub checking: TableId,
    /// Savings table.
    pub savings: TableId,
}

impl harmony_txn::ContractCodec for SmallbankCodec {
    fn decode(&self, bytes: &[u8]) -> Result<Arc<dyn Contract>> {
        let (name, payload) = harmony_txn::split_encoded(bytes)?;
        if !name.starts_with("sb-") || payload.len() != 25 {
            return Err(harmony_common::Error::Corruption(format!(
                "not a smallbank contract: {name} ({} bytes)",
                payload.len()
            )));
        }
        let proc = match payload[0] {
            0 => Procedure::Balance,
            1 => Procedure::DepositChecking,
            2 => Procedure::TransactSavings,
            3 => Procedure::Amalgamate,
            4 => Procedure::WriteCheck,
            5 => Procedure::SendPayment,
            t => {
                return Err(harmony_common::Error::Corruption(format!(
                    "bad smallbank procedure tag {t}"
                )))
            }
        };
        let a0 = u64::from_le_bytes(payload[1..9].try_into().expect("8 bytes"));
        let a1 = u64::from_le_bytes(payload[9..17].try_into().expect("8 bytes"));
        let amount = i64::from_le_bytes(payload[17..25].try_into().expect("8 bytes"));
        Ok(build_txn(self.checking, self.savings, proc, a0, a1, amount))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_storage::StorageConfig;

    fn setup_sb(accounts: u64, theta: f64) -> (StorageEngine, Smallbank) {
        let engine = StorageEngine::open(&StorageConfig::memory()).unwrap();
        let mut w = Smallbank::new(SmallbankConfig {
            accounts,
            theta,
            ..SmallbankConfig::default()
        });
        w.setup(&engine).unwrap();
        (engine, w)
    }

    #[test]
    fn setup_loads_both_tables() {
        let (engine, w) = setup_sb(100, 0.0);
        let (ck, sv) = w.tables();
        assert_eq!(engine.table_len(ck).unwrap(), 100);
        assert_eq!(engine.table_len(sv).unwrap(), 100);
        let row = engine.get(ck, &0u64.to_be_bytes()).unwrap().unwrap();
        assert_eq!(read_i64(&row, BALANCE_OFFSET).unwrap(), INITIAL_BALANCE);
    }

    #[test]
    fn mix_covers_all_procedures() {
        let (_, w) = setup_sb(1000, 0.0);
        let mut rng = DetRng::new(2);
        let mut names = std::collections::HashSet::new();
        for _ in 0..500 {
            names.insert(w.next_txn(&mut rng).name().to_string());
        }
        assert_eq!(names.len(), 6, "all six procedures generated: {names:?}");
    }

    #[test]
    fn deterministic_stream() {
        let (_, w) = setup_sb(100, 0.5);
        let mut a = DetRng::new(11);
        let mut b = DetRng::new(11);
        for _ in 0..50 {
            assert_eq!(w.next_txn(&mut a).payload(), w.next_txn(&mut b).payload());
        }
    }

    #[test]
    fn partition_mode_steers_counterparties() {
        let cross_counts = |ratio: f64| {
            let (_, w) = setup_sb(1000, 0.0);
            let mut w = w;
            w.config.partitions = 8;
            w.config.multi_partition_ratio = ratio;
            let mut rng = DetRng::new(13);
            let (mut two_account, mut cross) = (0u32, 0u32);
            for _ in 0..400 {
                let txn = w.next_txn(&mut rng);
                if !matches!(txn.name(), "sb-amalgamate" | "sb-sendpayment") {
                    continue;
                }
                two_account += 1;
                let p = txn.payload();
                let a0 = u64::from_le_bytes(p[1..9].try_into().unwrap());
                let a1 = u64::from_le_bytes(p[9..17].try_into().unwrap());
                if partition_of_account(a0, 8) != partition_of_account(a1, 8) {
                    cross += 1;
                }
            }
            (two_account, cross)
        };
        let (n0, c0) = cross_counts(0.0);
        assert!(n0 > 50);
        assert_eq!(c0, 0, "ratio 0 must keep counterparties co-partitioned");
        let (n1, c1) = cross_counts(1.0);
        assert_eq!(c1, n1, "ratio 1 must always cross partitions");
    }

    #[test]
    fn footprint_matches_procedure() {
        let ck = TableId(1);
        let sv = TableId(2);
        let t = build_txn(ck, sv, Procedure::SendPayment, 3, 9, 10);
        assert_eq!(
            t.declared_keys().unwrap(),
            &[Key::from_u64(ck, 3), Key::from_u64(ck, 9)]
        );
        let t = build_txn(ck, sv, Procedure::Balance, 4, 0, 0);
        assert_eq!(
            t.declared_keys().unwrap(),
            &[Key::from_u64(ck, 4), Key::from_u64(sv, 4)]
        );
    }

    /// Money conservation: running the whole mix through Harmony must keep
    /// the total balance constant, modulo WriteCheck penalties which only
    /// ever *reduce* by writing checks (amount leaves the system).
    #[test]
    fn money_flows_are_consistent_under_harmony() {
        use harmony_core::executor::ExecBlock;
        use harmony_core::{ChainPipeline, HarmonyConfig, SnapshotStore};
        use std::sync::Arc as SArc;

        let engine = SArc::new(StorageEngine::open(&StorageConfig::memory()).unwrap());
        let mut w = Smallbank::new(SmallbankConfig {
            accounts: 50,
            theta: 0.9,
            ..SmallbankConfig::default()
        });
        w.setup(&engine).unwrap();
        let (ck, sv) = w.tables();
        let store = SArc::new(SnapshotStore::new(SArc::clone(&engine)));
        let mut pipeline = ChainPipeline::new(SArc::clone(&store), HarmonyConfig::default());
        let mut rng = DetRng::new(3);
        // Only SendPayment/Amalgamate/Balance conserve money; generate the
        // full mix but track WriteCheck/Deposit/Transact deltas from the
        // committed transactions' payloads.
        let mut blocks = Vec::new();
        for b in 1..=10u64 {
            blocks.push(ExecBlock::new(
                harmony_common::BlockId(b),
                w.next_block(&mut rng, 20),
            ));
        }
        let report = pipeline.run_blocks(&blocks).unwrap();

        // Compute expected delta from committed, non-conserving procedures.
        let mut expected_delta: i64 = 0;
        for (bi, block) in blocks.iter().enumerate() {
            for (ti, txn) in block.txns.iter().enumerate() {
                let committed = report.blocks[bi].results[ti].outcome.is_committed();
                if !committed {
                    continue;
                }
                let p = txn.payload();
                let amount = i64::from_le_bytes(p[17..25].try_into().unwrap());
                match txn.name() {
                    "sb-deposit" => expected_delta += amount,
                    "sb-transact" => expected_delta -= amount,
                    "sb-writecheck" => {
                        // Fee depends on balance at execution; bound check
                        // below instead of exact accounting.
                        expected_delta -= amount;
                    }
                    _ => {}
                }
            }
        }
        let mut total: i64 = 0;
        for table in [ck, sv] {
            engine
                .scan(table, b"", None, |_, v| {
                    total += read_i64(v, BALANCE_OFFSET).unwrap();
                    true
                })
                .unwrap();
        }
        let initial = 2 * 50 * INITIAL_BALANCE;
        let drift = total - (initial + expected_delta);
        // Only writecheck fees (1 per txn) may remain unaccounted.
        assert!(
            (0..=60).contains(&(-drift)) || drift == 0,
            "total={total} expected≈{} drift={drift}",
            initial + expected_delta
        );
    }
}
