//! TPC-C — the relational benchmark of the paper's §5.6 (Figure 19).
//!
//! Full nine-table schema and all five transaction profiles (NewOrder 45 %,
//! Payment 43 %, OrderStatus 4 %, Delivery 4 %, StockLevel 4 %). The
//! `warehouses` knob is the paper's contention axis: one warehouse makes
//! the district `next_o_id` counter a fierce hotspot (Table 3 reports a
//! 47.9 % backward-dangerous-structure hit rate there), while more
//! warehouses grow the database past the buffer pool.
//!
//! Scaled-down sizing: `scale` multiplies the per-warehouse table
//! cardinalities (spec: 3 000 customers/district, 100 000 stock rows) so
//! laptop runs stay tractable; access *patterns* are unchanged.
//! Simplifications (documented in DESIGN.md): customers are selected by id
//! (no last-name secondary index), and History rows get a random unique
//! suffix instead of a timestamp.

use std::sync::Arc;

use harmony_common::ids::TableId;
use harmony_common::{DetRng, Result};
use harmony_storage::StorageEngine;
use harmony_txn::row::{read_i64, RowBuilder};
use harmony_txn::{Contract, FnContract, Key, TxnCtx, UpdateCommand, UserAbort};

use crate::workload::Workload;

/// Districts per warehouse (spec value).
pub const DISTRICTS: u64 = 10;

/// TPC-C configuration.
#[derive(Clone, Debug)]
pub struct TpccConfig {
    /// Number of warehouses.
    pub warehouses: u64,
    /// Cardinality scale factor vs. the spec (1.0 = full size).
    pub scale: f64,
    /// Probability an order line supplies from a remote warehouse.
    pub remote_prob: f64,
    /// Probability a NewOrder carries an invalid item (1 % rollback rule).
    pub invalid_item_prob: f64,
}

impl Default for TpccConfig {
    fn default() -> Self {
        TpccConfig {
            warehouses: 1,
            scale: 0.05,
            remote_prob: 0.01,
            invalid_item_prob: 0.01,
        }
    }
}

impl TpccConfig {
    /// Customers per district after scaling.
    #[must_use]
    pub fn customers_per_district(&self) -> u64 {
        ((3_000.0 * self.scale) as u64).max(10)
    }

    /// Stock rows (and catalog items) after scaling.
    #[must_use]
    pub fn items(&self) -> u64 {
        ((100_000.0 * self.scale) as u64).max(100)
    }

    /// Orders preloaded per district.
    #[must_use]
    pub fn initial_orders(&self) -> u64 {
        self.customers_per_district()
    }
}

/// Table handles (valid after `setup`).
#[derive(Clone, Copy, Debug, Default)]
pub struct TpccTables {
    /// WAREHOUSE.
    pub warehouse: TableId,
    /// DISTRICT.
    pub district: TableId,
    /// CUSTOMER.
    pub customer: TableId,
    /// STOCK.
    pub stock: TableId,
    /// ITEM.
    pub item: TableId,
    /// ORDERS.
    pub orders: TableId,
    /// NEW-ORDER.
    pub new_order: TableId,
    /// ORDER-LINE.
    pub order_line: TableId,
    /// HISTORY.
    pub history: TableId,
}

// ── Row schemas (fixed offsets) ─────────────────────────────────────────
/// warehouse: ytd(0), tax(8).
pub mod wh {
    /// Year-to-date balance.
    pub const YTD: usize = 0;
    /// Tax rate ×10⁴.
    pub const TAX: usize = 8;
}
/// district: next_o_id(0), ytd(8), tax(16).
pub mod dist {
    /// Next order id — the TPC-C hotspot.
    pub const NEXT_O_ID: usize = 0;
    /// Year-to-date balance.
    pub const YTD: usize = 8;
    /// Tax rate ×10⁴.
    pub const TAX: usize = 16;
}
/// customer: balance(0), ytd_payment(8), payment_cnt(16), delivery_cnt(24).
pub mod cust {
    /// Balance.
    pub const BALANCE: usize = 0;
    /// Sum of payments.
    pub const YTD_PAYMENT: usize = 8;
    /// Payment count.
    pub const PAYMENT_CNT: usize = 16;
    /// Delivery count.
    pub const DELIVERY_CNT: usize = 24;
}
/// stock: quantity(0), ytd(8), order_cnt(16), remote_cnt(24).
pub mod stk {
    /// Quantity on hand.
    pub const QUANTITY: usize = 0;
    /// Year-to-date units.
    pub const YTD: usize = 8;
    /// Orders served.
    pub const ORDER_CNT: usize = 16;
    /// Remote orders served.
    pub const REMOTE_CNT: usize = 24;
}
/// orders: c_id(0), entry_d(8), carrier_id(16), ol_cnt(24).
pub mod ord {
    /// Customer id.
    pub const C_ID: usize = 0;
    /// Entry date surrogate.
    pub const ENTRY_D: usize = 8;
    /// Carrier id (0 = undelivered).
    pub const CARRIER_ID: usize = 16;
    /// Order line count.
    pub const OL_CNT: usize = 24;
}
/// order_line: i_id(0), qty(8), amount(16), supply_w(24).
pub mod ol {
    /// Item id.
    pub const I_ID: usize = 0;
    /// Quantity.
    pub const QTY: usize = 8;
    /// Amount ×10².
    pub const AMOUNT: usize = 16;
    /// Supplying warehouse.
    pub const SUPPLY_W: usize = 24;
}

// ── Composite key encoders (big-endian so ranges scan in order) ─────────
fn k_wh(w: u64) -> Vec<u8> {
    w.to_be_bytes().to_vec()
}
fn k_dist(w: u64, d: u64) -> Vec<u8> {
    let mut k = w.to_be_bytes().to_vec();
    k.push(d as u8);
    k
}
fn k_cust(w: u64, d: u64, c: u64) -> Vec<u8> {
    let mut k = k_dist(w, d);
    k.extend_from_slice(&(c as u32).to_be_bytes());
    k
}
fn k_stock(w: u64, i: u64) -> Vec<u8> {
    let mut k = w.to_be_bytes().to_vec();
    k.extend_from_slice(&(i as u32).to_be_bytes());
    k
}
fn k_item(i: u64) -> Vec<u8> {
    (i as u32).to_be_bytes().to_vec()
}
fn k_order(w: u64, d: u64, o: u64) -> Vec<u8> {
    let mut k = k_dist(w, d);
    k.extend_from_slice(&(o as u32).to_be_bytes());
    k
}
fn k_order_line(w: u64, d: u64, o: u64, l: u64) -> Vec<u8> {
    let mut k = k_order(w, d, o);
    k.push(l as u8);
    k
}
fn k_history(w: u64, d: u64, c: u64, uniq: u64) -> Vec<u8> {
    let mut k = k_cust(w, d, c);
    k.extend_from_slice(&uniq.to_be_bytes());
    k
}

fn row4(a: i64, b: i64, c: i64, d: i64, pad: usize) -> bytes::Bytes {
    let mut r = RowBuilder::new();
    r.push_i64(a);
    r.push_i64(b);
    r.push_i64(c);
    r.push_i64(d);
    r.push_pad(pad, 0x20);
    r.finish()
}

/// The TPC-C workload.
pub struct Tpcc {
    config: TpccConfig,
    tables: TpccTables,
}

impl Tpcc {
    /// Build with the given configuration.
    #[must_use]
    pub fn new(config: TpccConfig) -> Tpcc {
        Tpcc {
            config,
            tables: TpccTables::default(),
        }
    }

    /// Table handles (valid after `setup`).
    #[must_use]
    pub fn tables(&self) -> TpccTables {
        self.tables
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &TpccConfig {
        &self.config
    }

    fn new_order_txn(&self, rng: &mut DetRng) -> Arc<dyn Contract> {
        let cfg = &self.config;
        let w = rng.gen_range(cfg.warehouses);
        let d = rng.gen_range(DISTRICTS);
        let c = rng.gen_range(cfg.customers_per_district());
        let n_lines = 5 + rng.gen_range(11);
        let invalid = rng.gen_bool(cfg.invalid_item_prob);
        let lines: Vec<(u64, u64, u64)> = (0..n_lines)
            .map(|l| {
                let item = if invalid && l == n_lines - 1 {
                    u64::MAX // unused item id => rollback
                } else {
                    rng.gen_range(cfg.items())
                };
                let supply_w = if cfg.warehouses > 1 && rng.gen_bool(cfg.remote_prob) {
                    rng.gen_range(cfg.warehouses)
                } else {
                    w
                };
                (item, supply_w, 1 + rng.gen_range(10))
            })
            .collect();
        build_new_order(self.tables, w, d, c, lines)
    }

    fn payment_txn(&self, rng: &mut DetRng) -> Arc<dyn Contract> {
        let cfg = &self.config;
        let w = rng.gen_range(cfg.warehouses);
        let d = rng.gen_range(DISTRICTS);
        // 15%: customer pays through a remote warehouse/district.
        let (cw, cd) = if cfg.warehouses > 1 && rng.gen_bool(0.15) {
            (rng.gen_range(cfg.warehouses), rng.gen_range(DISTRICTS))
        } else {
            (w, d)
        };
        let c = rng.gen_range(cfg.customers_per_district());
        let amount = 100 + rng.gen_range(500_000) as i64;
        let uniq = rng.next_u64();
        build_payment(self.tables, w, d, cw, cd, c, amount, uniq)
    }

    fn order_status_txn(&self, rng: &mut DetRng) -> Arc<dyn Contract> {
        let cfg = &self.config;
        let w = rng.gen_range(cfg.warehouses);
        let d = rng.gen_range(DISTRICTS);
        let c = rng.gen_range(cfg.customers_per_district());
        build_order_status(self.tables, w, d, c)
    }

    fn delivery_txn(&self, rng: &mut DetRng) -> Arc<dyn Contract> {
        let w = rng.gen_range(self.config.warehouses);
        let carrier = 1 + rng.gen_range(10) as i64;
        build_delivery(self.tables, w, carrier)
    }

    fn stock_level_txn(&self, rng: &mut DetRng) -> Arc<dyn Contract> {
        let w = rng.gen_range(self.config.warehouses);
        let d = rng.gen_range(DISTRICTS);
        let threshold = 10 + rng.gen_range(11) as i64;
        build_stock_level(self.tables, w, d, threshold)
    }
}

// ── Parameter-explicit contract builders (+ payloads) ───────────────────
// Every procedure is a pure function of (tables, sampled parameters), and
// its payload encodes exactly those parameters — so the node runtime's
// logical block log can reconstruct an executable contract through
// [`TpccCodec`] for replicated delivery, crash replay, and state-sync.

fn payload_u64s(vals: &[u64]) -> Vec<u8> {
    let mut p = Vec::with_capacity(vals.len() * 8);
    for v in vals {
        p.extend_from_slice(&v.to_le_bytes());
    }
    p
}

fn read_u64s<const N: usize>(payload: &[u8]) -> Result<[u64; N]> {
    if payload.len() < N * 8 {
        return Err(harmony_common::Error::Corruption(format!(
            "tpcc payload too short: {} < {}",
            payload.len(),
            N * 8
        )));
    }
    let mut out = [0u64; N];
    for (i, v) in out.iter_mut().enumerate() {
        *v = u64::from_le_bytes(payload[i * 8..(i + 1) * 8].try_into().expect("8 bytes"));
    }
    Ok(out)
}

/// NewOrder for explicit parameters; `lines` is `(item, supply_w, qty)`.
///
/// Declares its footprint, so a sharded router can place it without a
/// reconnaissance run. The declaration is *prefix-complete*: the order
/// id is handed out by the district row at execution time, so the
/// orders/new-order/order-line keys cannot be named in advance — but
/// every one of them starts with the home warehouse's 8 bytes, and the
/// declared set carries an order-id-zero guard key per order table with
/// that same prefix. Under [`harmony_shard::PrefixPartitioner`] (the
/// recommended TPC-C partitioning) the guards pin exactly the partitions
/// the real keys will land on, so an all-local order runs single-shard;
/// under whole-row hashing the guards scatter and the order keeps
/// today's conservative cross-shard route. Item reads ride along in the
/// declaration and are discounted by routers that replicate the
/// read-only `item` table on every shard.
#[must_use]
pub fn build_new_order(
    t: TpccTables,
    w: u64,
    d: u64,
    c: u64,
    lines: Vec<(u64, u64, u64)>,
) -> Arc<dyn Contract> {
    let mut payload = payload_u64s(&[w, d, c, lines.len() as u64]);
    for (item, supply_w, qty) in &lines {
        payload.extend_from_slice(&payload_u64s(&[*item, *supply_w, *qty]));
    }
    let mut footprint = vec![
        Key::new(t.warehouse, k_wh(w)),
        Key::new(t.district, k_dist(w, d)),
        // Order-id-zero guard keys: stand-ins for the execution-time
        // o_id rows, sharing their warehouse prefix.
        Key::new(t.orders, k_order(w, d, 0)),
        Key::new(t.new_order, k_order(w, d, 0)),
        Key::new(t.order_line, k_order_line(w, d, 0, 0)),
    ];
    for (item, supply_w, _) in &lines {
        footprint.push(Key::new(t.item, k_item(*item)));
        footprint.push(Key::new(t.stock, k_stock(*supply_w, *item)));
    }
    Arc::new(
        FnContract::new("tpcc-neworder", move |ctx: &mut TxnCtx<'_>| {
            let err = |e: harmony_common::Error| UserAbort(e.to_string());
            // Warehouse + district taxes; district hands out the order id.
            let wrow = ctx
                .read(&Key::new(t.warehouse, k_wh(w)))
                .map_err(err)?
                .ok_or_else(|| UserAbort("missing warehouse".into()))?;
            let _w_tax = read_i64(&wrow, wh::TAX).map_err(err)?;
            let drow = ctx
                .read(&Key::new(t.district, k_dist(w, d)))
                .map_err(err)?
                .ok_or_else(|| UserAbort("missing district".into()))?;
            let o_id = read_i64(&drow, dist::NEXT_O_ID).map_err(err)? as u64;
            let _d_tax = read_i64(&drow, dist::TAX).map_err(err)?;
            ctx.add_i64(Key::new(t.district, k_dist(w, d)), dist::NEXT_O_ID, 1);

            let mut total = 0i64;
            for (l, (item, supply_w, qty)) in lines.iter().enumerate() {
                // 1% rule: invalid item rolls the whole order back.
                let Some(irow) = ctx.read(&Key::new(t.item, k_item(*item))).map_err(err)? else {
                    return Err(UserAbort("invalid item".into()));
                };
                let price = read_i64(&irow, 0).map_err(err)?;
                let srow = ctx
                    .read(&Key::new(t.stock, k_stock(*supply_w, *item)))
                    .map_err(err)?
                    .ok_or_else(|| UserAbort("missing stock".into()))?;
                let quantity = read_i64(&srow, stk::QUANTITY).map_err(err)?;
                let delta = if quantity - (*qty as i64) >= 10 {
                    -(*qty as i64)
                } else {
                    91 - (*qty as i64)
                };
                let skey = Key::new(t.stock, k_stock(*supply_w, *item));
                ctx.add_i64(skey.clone(), stk::QUANTITY, delta);
                ctx.add_i64(skey.clone(), stk::YTD, *qty as i64);
                ctx.add_i64(skey.clone(), stk::ORDER_CNT, 1);
                if *supply_w != w {
                    ctx.add_i64(skey, stk::REMOTE_CNT, 1);
                }
                let amount = price * (*qty as i64);
                total += amount;
                ctx.put(
                    Key::new(t.order_line, k_order_line(w, d, o_id, l as u64)),
                    row4(*item as i64, *qty as i64, amount, *supply_w as i64, 8),
                );
            }
            let _ = total;
            ctx.put(
                Key::new(t.orders, k_order(w, d, o_id)),
                row4(c as i64, o_id as i64, 0, lines.len() as i64, 8),
            );
            ctx.put(
                Key::new(t.new_order, k_order(w, d, o_id)),
                bytes::Bytes::from_static(&[1]),
            );
            Ok(())
        })
        .with_payload(payload)
        .with_footprint(footprint),
    )
}

/// Payment for explicit parameters.
///
/// Declares its complete point-key footprint — all four rows it touches
/// are pure functions of the sampled parameters. The 85% of payments
/// whose customer lives in the home warehouse are single-partition
/// under a prefix partitioner; remote payments legitimately span two
/// warehouses and stay on the cross-shard path.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn build_payment(
    t: TpccTables,
    w: u64,
    d: u64,
    cw: u64,
    cd: u64,
    c: u64,
    amount: i64,
    uniq: u64,
) -> Arc<dyn Contract> {
    let payload = payload_u64s(&[w, d, cw, cd, c, amount as u64, uniq]);
    let footprint = vec![
        Key::new(t.warehouse, k_wh(w)),
        Key::new(t.district, k_dist(w, d)),
        Key::new(t.customer, k_cust(cw, cd, c)),
        Key::new(t.history, k_history(cw, cd, c, uniq)),
    ];
    Arc::new(
        FnContract::new("tpcc-payment", move |ctx: &mut TxnCtx<'_>| {
            let err = |e: harmony_common::Error| UserAbort(e.to_string());
            // Single-statement RMWs (the paper's recommended contract
            // style): warehouse/district YTD never need reading first.
            ctx.add_i64(Key::new(t.warehouse, k_wh(w)), wh::YTD, amount);
            ctx.add_i64(Key::new(t.district, k_dist(w, d)), dist::YTD, amount);
            let ckey = Key::new(t.customer, k_cust(cw, cd, c));
            let crow = ctx
                .read(&ckey)
                .map_err(err)?
                .ok_or_else(|| UserAbort("missing customer".into()))?;
            let _balance = read_i64(&crow, cust::BALANCE).map_err(err)?;
            ctx.add_i64(ckey.clone(), cust::BALANCE, -amount);
            ctx.add_i64(ckey.clone(), cust::YTD_PAYMENT, amount);
            ctx.add_i64(ckey, cust::PAYMENT_CNT, 1);
            ctx.put(
                Key::new(t.history, k_history(cw, cd, c, uniq)),
                row4(amount, w as i64, d as i64, 0, 0),
            );
            Ok(())
        })
        .with_payload(payload)
        .with_footprint(footprint),
    )
}

/// OrderStatus for explicit parameters.
#[must_use]
pub fn build_order_status(t: TpccTables, w: u64, d: u64, c: u64) -> Arc<dyn Contract> {
    let payload = payload_u64s(&[w, d, c]);
    Arc::new(
        FnContract::new("tpcc-orderstatus", move |ctx: &mut TxnCtx<'_>| {
            let err = |e: harmony_common::Error| UserAbort(e.to_string());
            let _ = ctx
                .read(&Key::new(t.customer, k_cust(w, d, c)))
                .map_err(err)?;
            // Most recent order of the customer: scan the district's
            // orders from the end (bounded window).
            let rows = ctx
                .scan(t.orders, &k_dist(w, d), Some(&k_dist(w, d + 1)), 10_000)
                .map_err(err)?;
            let last = rows
                .iter()
                .rev()
                .find(|(_, v)| read_i64(v, ord::C_ID).unwrap_or(-1) == c as i64);
            if let Some((okey, orow)) = last {
                let o_id = u64::from(u32::from_be_bytes(
                    okey[okey.len() - 4..].try_into().expect("4 bytes"),
                ));
                let n = read_i64(orow, ord::OL_CNT).map_err(err)? as u64;
                let _lines = ctx
                    .scan(
                        t.order_line,
                        &k_order_line(w, d, o_id, 0),
                        Some(&k_order_line(w, d, o_id, n + 1)),
                        32,
                    )
                    .map_err(err)?;
            }
            Ok(())
        })
        .with_payload(payload),
    )
}

/// Delivery for explicit parameters.
#[must_use]
pub fn build_delivery(t: TpccTables, w: u64, carrier: i64) -> Arc<dyn Contract> {
    let payload = payload_u64s(&[w, carrier as u64]);
    Arc::new(
        FnContract::new("tpcc-delivery", move |ctx: &mut TxnCtx<'_>| {
            let err = |e: harmony_common::Error| UserAbort(e.to_string());
            for d in 0..DISTRICTS {
                // Oldest undelivered order in the district.
                let oldest = ctx
                    .scan(t.new_order, &k_dist(w, d), Some(&k_dist(w, d + 1)), 1)
                    .map_err(err)?;
                let Some((no_key, _)) = oldest.first() else {
                    continue;
                };
                let o_id = u64::from(u32::from_be_bytes(
                    no_key[no_key.len() - 4..].try_into().expect("4 bytes"),
                ));
                ctx.delete(Key::new(t.new_order, k_order(w, d, o_id)));
                let okey = Key::new(t.orders, k_order(w, d, o_id));
                let Some(orow) = ctx.read(&okey).map_err(err)? else {
                    continue;
                };
                let c = read_i64(&orow, ord::C_ID).map_err(err)? as u64;
                let n = read_i64(&orow, ord::OL_CNT).map_err(err)? as u64;
                ctx.update(
                    okey,
                    UpdateCommand::SetBytes {
                        offset: ord::CARRIER_ID,
                        bytes: bytes::Bytes::from(carrier.to_le_bytes().to_vec()),
                    },
                );
                let lines = ctx
                    .scan(
                        t.order_line,
                        &k_order_line(w, d, o_id, 0),
                        Some(&k_order_line(w, d, o_id, n + 1)),
                        32,
                    )
                    .map_err(err)?;
                let total: i64 = lines
                    .iter()
                    .map(|(_, v)| read_i64(v, ol::AMOUNT).unwrap_or(0))
                    .sum();
                let ckey = Key::new(t.customer, k_cust(w, d, c));
                ctx.add_i64(ckey.clone(), cust::BALANCE, total);
                ctx.add_i64(ckey, cust::DELIVERY_CNT, 1);
            }
            Ok(())
        })
        .with_payload(payload),
    )
}

/// StockLevel for explicit parameters.
#[must_use]
pub fn build_stock_level(t: TpccTables, w: u64, d: u64, threshold: i64) -> Arc<dyn Contract> {
    let payload = payload_u64s(&[w, d, threshold as u64]);
    Arc::new(
        FnContract::new("tpcc-stocklevel", move |ctx: &mut TxnCtx<'_>| {
            let err = |e: harmony_common::Error| UserAbort(e.to_string());
            let drow = ctx
                .read(&Key::new(t.district, k_dist(w, d)))
                .map_err(err)?
                .ok_or_else(|| UserAbort("missing district".into()))?;
            let next_o = read_i64(&drow, dist::NEXT_O_ID).map_err(err)? as u64;
            let from = next_o.saturating_sub(20);
            let lines = ctx
                .scan(
                    t.order_line,
                    &k_order_line(w, d, from, 0),
                    Some(&k_order_line(w, d, next_o, 0)),
                    512,
                )
                .map_err(err)?;
            let mut low = 0u32;
            let mut seen = std::collections::HashSet::new();
            for (_, v) in &lines {
                let item = read_i64(v, ol::I_ID).map_err(err)? as u64;
                if !seen.insert(item) {
                    continue;
                }
                if let Some(srow) = ctx
                    .read(&Key::new(t.stock, k_stock(w, item)))
                    .map_err(err)?
                {
                    if read_i64(&srow, stk::QUANTITY).map_err(err)? < threshold {
                        low += 1;
                    }
                }
            }
            let _ = low;
            Ok(())
        })
        .with_payload(payload),
    )
}

/// [`harmony_txn::ContractCodec`] for the five TPC-C procedures — the
/// smart-contract registry a replica needs to replay TPC-C blocks from
/// the logical log (and what wires TPC-C into the cluster runtime).
pub struct TpccCodec {
    /// Table handles (from `Tpcc::tables` after setup).
    pub tables: TpccTables,
}

impl harmony_txn::ContractCodec for TpccCodec {
    fn decode(&self, bytes: &[u8]) -> Result<Arc<dyn Contract>> {
        let (name, payload) = harmony_txn::split_encoded(bytes)?;
        let t = self.tables;
        match name {
            "tpcc-neworder" => {
                let [w, d, c, n_lines] = read_u64s::<4>(payload)?;
                let body = &payload[32..];
                if n_lines.checked_mul(24) != Some(body.len() as u64) {
                    return Err(harmony_common::Error::Corruption(format!(
                        "neworder lines truncated: {} bytes for {n_lines} lines",
                        body.len()
                    )));
                }
                let lines: Vec<(u64, u64, u64)> = (0..n_lines as usize)
                    .map(|l| {
                        let [item, supply_w, qty] =
                            read_u64s::<3>(&body[l * 24..]).expect("length checked");
                        (item, supply_w, qty)
                    })
                    .collect();
                Ok(build_new_order(t, w, d, c, lines))
            }
            "tpcc-payment" => {
                let [w, d, cw, cd, c, amount, uniq] = read_u64s::<7>(payload)?;
                Ok(build_payment(t, w, d, cw, cd, c, amount as i64, uniq))
            }
            "tpcc-orderstatus" => {
                let [w, d, c] = read_u64s::<3>(payload)?;
                Ok(build_order_status(t, w, d, c))
            }
            "tpcc-delivery" => {
                let [w, carrier] = read_u64s::<2>(payload)?;
                Ok(build_delivery(t, w, carrier as i64))
            }
            "tpcc-stocklevel" => {
                let [w, d, threshold] = read_u64s::<3>(payload)?;
                Ok(build_stock_level(t, w, d, threshold as i64))
            }
            other => Err(harmony_common::Error::Corruption(format!(
                "not a tpcc contract: {other}"
            ))),
        }
    }
}

impl Workload for Tpcc {
    fn name(&self) -> &'static str {
        "TPC-C"
    }

    fn setup(&mut self, engine: &StorageEngine) -> Result<()> {
        let t = TpccTables {
            warehouse: engine.create_table("warehouse")?,
            district: engine.create_table("district")?,
            customer: engine.create_table("customer")?,
            stock: engine.create_table("stock")?,
            item: engine.create_table("item")?,
            orders: engine.create_table("orders")?,
            new_order: engine.create_table("new_order")?,
            order_line: engine.create_table("order_line")?,
            history: engine.create_table("history")?,
        };
        self.tables = t;
        let cfg = &self.config;
        let mut load_rng = DetRng::new(0x7BCC_1234);
        for i in 0..cfg.items() {
            // price in cents, 100..10000
            let price = 100 + load_rng.gen_range(9_900) as i64;
            engine.put(t.item, &k_item(i), &row4(price, 0, 0, 0, 8))?;
        }
        for w in 0..cfg.warehouses {
            let tax = load_rng.gen_range(2_000) as i64;
            engine.put(t.warehouse, &k_wh(w), &row4(0, tax, 0, 0, 16))?;
            for i in 0..cfg.items() {
                let qty = 10 + load_rng.gen_range(91) as i64;
                engine.put(t.stock, &k_stock(w, i), &row4(qty, 0, 0, 0, 16))?;
            }
            for d in 0..DISTRICTS {
                let n_orders = cfg.initial_orders();
                engine.put(
                    t.district,
                    &k_dist(w, d),
                    &row4(n_orders as i64, 0, load_rng.gen_range(2_000) as i64, 0, 16),
                )?;
                for c in 0..cfg.customers_per_district() {
                    engine.put(t.customer, &k_cust(w, d, c), &row4(-1_000, 1_000, 1, 0, 32))?;
                }
                // Preloaded orders: one per customer, newest 30% undelivered.
                for o in 0..n_orders {
                    let c = o % cfg.customers_per_district();
                    let n_lines = 5 + load_rng.gen_range(11);
                    let delivered = o < n_orders * 7 / 10;
                    engine.put(
                        t.orders,
                        &k_order(w, d, o),
                        &row4(
                            c as i64,
                            o as i64,
                            if delivered { 1 } else { 0 },
                            n_lines as i64,
                            8,
                        ),
                    )?;
                    if !delivered {
                        engine.put(t.new_order, &k_order(w, d, o), &[1])?;
                    }
                    for l in 0..n_lines {
                        let item = load_rng.gen_range(cfg.items());
                        engine.put(
                            t.order_line,
                            &k_order_line(w, d, o, l),
                            &row4(item as i64, 5, 500, w as i64, 8),
                        )?;
                    }
                }
            }
        }
        Ok(())
    }

    fn next_txn(&self, rng: &mut DetRng) -> Arc<dyn Contract> {
        // Standard mix: 45/43/4/4/4.
        match rng.weighted_index(&[45.0, 43.0, 4.0, 4.0, 4.0]) {
            0 => self.new_order_txn(rng),
            1 => self.payment_txn(rng),
            2 => self.order_status_txn(rng),
            3 => self.delivery_txn(rng),
            _ => self.stock_level_txn(rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_core::executor::ExecBlock;
    use harmony_core::{ChainPipeline, HarmonyConfig, SnapshotStore};
    use harmony_storage::StorageConfig;

    fn tiny_config() -> TpccConfig {
        TpccConfig {
            warehouses: 2,
            scale: 0.01,
            ..TpccConfig::default()
        }
    }

    fn setup_tpcc(config: TpccConfig) -> (Arc<StorageEngine>, Tpcc) {
        let engine = Arc::new(StorageEngine::open(&StorageConfig::memory()).unwrap());
        let mut w = Tpcc::new(config);
        w.setup(&engine).unwrap();
        (engine, w)
    }

    #[test]
    fn setup_populates_all_tables() {
        let (engine, w) = setup_tpcc(tiny_config());
        let t = w.tables();
        let cfg = w.config();
        assert_eq!(engine.table_len(t.warehouse).unwrap(), 2);
        assert_eq!(engine.table_len(t.district).unwrap(), 2 * DISTRICTS);
        assert_eq!(
            engine.table_len(t.customer).unwrap(),
            2 * DISTRICTS * cfg.customers_per_district()
        );
        assert_eq!(engine.table_len(t.stock).unwrap(), 2 * cfg.items());
        assert_eq!(engine.table_len(t.item).unwrap(), cfg.items());
        assert!(engine.table_len(t.orders).unwrap() > 0);
        assert!(engine.table_len(t.new_order).unwrap() > 0);
        assert!(engine.table_len(t.order_line).unwrap() > 0);
    }

    #[test]
    fn full_mix_runs_under_harmony() {
        let (engine, w) = setup_tpcc(tiny_config());
        let store = Arc::new(SnapshotStore::new(Arc::clone(&engine)));
        let mut pipeline = ChainPipeline::new(Arc::clone(&store), HarmonyConfig::default());
        let mut rng = DetRng::new(7);
        let mut totals = harmony_core::BlockStats::default();
        let mut names = std::collections::HashSet::new();
        for b in 1..=8u64 {
            let txns = w.next_block(&mut rng, 15);
            for t in &txns {
                names.insert(t.name().to_string());
            }
            let block = ExecBlock::new(harmony_common::BlockId(b), txns);
            let res = pipeline.execute_one(&block).unwrap();
            totals.absorb(&res.stats);
        }
        assert_eq!(totals.txns, 120);
        assert!(
            totals.committed > 60,
            "most TPC-C txns must commit: {totals}"
        );
        assert!(names.len() >= 4, "mix variety: {names:?}");
    }

    #[test]
    fn new_order_increments_district_counter() {
        let (engine, w) = setup_tpcc(TpccConfig {
            warehouses: 1,
            scale: 0.01,
            invalid_item_prob: 0.0,
            ..TpccConfig::default()
        });
        let t = w.tables();
        let before = {
            let row = engine.get(t.district, &k_dist(0, 0)).unwrap().unwrap();
            read_i64(&row, dist::NEXT_O_ID).unwrap()
        };
        let store = Arc::new(SnapshotStore::new(Arc::clone(&engine)));
        let mut pipeline = ChainPipeline::new(Arc::clone(&store), HarmonyConfig::default());
        // Run enough NewOrders that district (0,0) is hit.
        let mut rng = DetRng::new(1);
        let mut committed_neworders = 0usize;
        for b in 1..=6u64 {
            let txns: Vec<_> = (0..10).map(|_| w.new_order_txn(&mut rng)).collect();
            let block = ExecBlock::new(harmony_common::BlockId(b), txns);
            let res = pipeline.execute_one(&block).unwrap();
            committed_neworders += res.stats.committed;
        }
        let after = {
            let row = engine.get(t.district, &k_dist(0, 0)).unwrap().unwrap();
            read_i64(&row, dist::NEXT_O_ID).unwrap()
        };
        assert!(committed_neworders > 0);
        // The counter moved (this district serves ~1/10 of the orders).
        assert!(after >= before, "next_o_id never decreases");
    }

    #[test]
    fn single_warehouse_is_contended() {
        // W=1: concurrent NewOrders on one district conflict via the
        // next_o_id read-modify-write — Table 3's 47.9% hit rate driver.
        let (engine, w) = setup_tpcc(TpccConfig {
            warehouses: 1,
            scale: 0.01,
            invalid_item_prob: 0.0,
            ..TpccConfig::default()
        });
        let store = Arc::new(SnapshotStore::new(engine));
        let mut pipeline = ChainPipeline::new(Arc::clone(&store), HarmonyConfig::default());
        let mut rng = DetRng::new(3);
        let mut totals = harmony_core::BlockStats::default();
        for b in 1..=5u64 {
            let txns: Vec<_> = (0..30).map(|_| w.new_order_txn(&mut rng)).collect();
            let block = ExecBlock::new(harmony_common::BlockId(b), txns);
            totals.absorb(&pipeline.execute_one(&block).unwrap().stats);
        }
        assert!(
            totals.protocol_aborts() > 10,
            "1-warehouse NewOrder storm must conflict: {totals}"
        );
    }

    #[test]
    fn codec_roundtrip_re_executes_identically() {
        // Encoding a generated contract and decoding it back must yield a
        // contract with the same name and payload (the payload is the
        // complete parameter set), and the decoded contract must produce
        // the same writes when run against identical state.
        let (engine_a, w) = setup_tpcc(tiny_config());
        let (engine_b, w2) = setup_tpcc(tiny_config());
        assert_eq!(w.tables().orders, w2.tables().orders);
        let codec = TpccCodec { tables: w.tables() };
        let mut rng = DetRng::new(17);
        let mut seen = std::collections::HashSet::new();
        // One executed roundtrip: original and decoded contracts must make
        // the same decisions against identical databases.
        let orig = w.next_txn(&mut rng);
        seen.insert(orig.name().to_string());
        let bytes = harmony_txn::ContractCodec::encode(&codec, orig.as_ref());
        let decoded = harmony_txn::ContractCodec::decode(&codec, &bytes).unwrap();
        assert_eq!(decoded.name(), orig.name());
        assert_eq!(decoded.payload(), orig.payload());
        let store_a = Arc::new(SnapshotStore::new(Arc::clone(&engine_a)));
        let store_b = Arc::new(SnapshotStore::new(Arc::clone(&engine_b)));
        let mut pa = ChainPipeline::new(store_a, HarmonyConfig::default());
        let mut pb = ChainPipeline::new(store_b, HarmonyConfig::default());
        let ra = pa
            .execute_one(&ExecBlock::new(harmony_common::BlockId(1), vec![orig]))
            .unwrap();
        let rb = pb
            .execute_one(&ExecBlock::new(harmony_common::BlockId(1), vec![decoded]))
            .unwrap();
        assert_eq!(
            ra.results.iter().map(|r| r.outcome).collect::<Vec<_>>(),
            rb.results.iter().map(|r| r.outcome).collect::<Vec<_>>(),
        );
        // Cover all five procedures through the codec without executing.
        let mut rng = DetRng::new(99);
        for _ in 0..200 {
            let orig = w.next_txn(&mut rng);
            let bytes = harmony_txn::ContractCodec::encode(&codec, orig.as_ref());
            let decoded = harmony_txn::ContractCodec::decode(&codec, &bytes).unwrap();
            assert_eq!(decoded.payload(), orig.payload());
            seen.insert(orig.name().to_string());
        }
        assert_eq!(seen.len(), 5, "all procedures covered: {seen:?}");
        // Foreign contracts are rejected.
        let foreign = harmony_txn::encode_contract(&harmony_txn::FnContract::new(
            "sb-deposit",
            |_: &mut TxnCtx<'_>| Ok(()),
        ));
        assert!(harmony_txn::ContractCodec::decode(&codec, &foreign).is_err());
    }

    #[test]
    fn deterministic_generation() {
        let (_, w) = setup_tpcc(tiny_config());
        let mut a = DetRng::new(5);
        let mut b = DetRng::new(5);
        for _ in 0..30 {
            assert_eq!(w.next_txn(&mut a).name(), w.next_txn(&mut b).name());
        }
    }

    struct EngineView<'a>(&'a StorageEngine);

    impl harmony_txn::SnapshotView for EngineView<'_> {
        fn get(&self, key: &Key) -> Result<Option<harmony_txn::Value>> {
            Ok(self
                .0
                .get(key.table(), key.row())?
                .map(harmony_txn::Value::from))
        }
        fn scan(
            &self,
            table: TableId,
            start: &[u8],
            end: Option<&[u8]>,
            f: &mut dyn FnMut(&[u8], &harmony_txn::Value) -> bool,
        ) -> Result<()> {
            self.0.scan(table, start, end, |k, v| {
                f(k, &harmony_txn::Value::copy_from_slice(v))
            })
        }
    }

    /// The routing soundness property behind single-shard TPC-C: every
    /// key a declared contract actually touches is either declared
    /// outright, shares its leading 8 row bytes (the warehouse id) with
    /// a declared key of any table — so a prefix partitioner places it
    /// identically — or lives in the replicated `item` table.
    #[test]
    fn declared_footprints_are_prefix_complete() {
        let (engine, w) = setup_tpcc(tiny_config());
        let t = w.tables();
        let view = EngineView(&engine);
        let prefix = |k: &Key| -> Vec<u8> {
            let row = k.row();
            row[..row.len().min(8)].to_vec()
        };
        let mut rng = DetRng::new(0xF00D);
        let mut checked = std::collections::HashSet::new();
        for _ in 0..300 {
            let txn = w.next_txn(&mut rng);
            let Some(declared) = txn.declared_keys() else {
                // Scan-heavy procedures stay undeclared (conservative
                // cross-shard routing).
                assert!(
                    ["tpcc-orderstatus", "tpcc-delivery", "tpcc-stocklevel"].contains(&txn.name()),
                    "{} must declare a footprint",
                    txn.name()
                );
                continue;
            };
            let declared_prefixes: std::collections::HashSet<Vec<u8>> =
                declared.iter().map(prefix).collect();
            let declared: Vec<Key> = declared.to_vec();
            let mut ctx = TxnCtx::new(&view);
            // Executed on genesis state; user aborts (invalid item)
            // still leave a partial rwset worth checking.
            let _ = txn.execute(&mut ctx);
            let rwset = ctx.into_rwset();
            let touched: Vec<Key> = rwset
                .reads
                .iter()
                .map(|r| r.key.clone())
                .chain(rwset.updates.iter().map(|(k, _)| k.clone()))
                .collect();
            assert!(!touched.is_empty(), "{} touched nothing", txn.name());
            for key in touched {
                let covered = declared.contains(&key)
                    || key.table() == t.item
                    || declared_prefixes.contains(&prefix(&key));
                assert!(
                    covered,
                    "{}: touched key {key:?} not covered by the declared footprint",
                    txn.name()
                );
            }
            checked.insert(txn.name().to_string());
        }
        assert!(
            checked.contains("tpcc-neworder") && checked.contains("tpcc-payment"),
            "both declared procedures must be exercised: {checked:?}"
        );
    }
}
