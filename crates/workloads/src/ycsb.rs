//! YCSB (Cooper et al., SoCC 2010), configured as in the paper's §5: 10 K
//! keys, 10 operations per transaction, each operation a SELECT or UPDATE
//! with equal probability, key choice Zipfian with skew `theta`.
//!
//! The hotspot variant (Figure 14) marks 1 % of the records hot; each
//! statement targets a hot record with probability `hot_prob` and is issued
//! as a *merged read-modify-write UPDATE* (`balance = balance + x`) — the
//! statement shape Harmony's update reordering and coalescence exploit.

use std::sync::Arc;

use harmony_common::ids::TableId;
use harmony_common::zipf::ScrambledZipfian;
use harmony_common::{DetRng, Result};
use harmony_storage::StorageEngine;
use harmony_txn::row::RowBuilder;
use harmony_txn::{Contract, FnContract, Key, TxnCtx, UserAbort};

use crate::workload::Workload;

/// Byte offset of the numeric field RMW updates target.
pub const FIELD_OFFSET: usize = 0;
/// Total row payload size (one i64 field + padding).
pub const ROW_LEN: usize = 96;

/// YCSB configuration.
#[derive(Clone, Debug)]
pub struct YcsbConfig {
    /// Number of records (paper: 10 000).
    pub keys: u64,
    /// Operations per transaction (paper: 10).
    pub ops_per_txn: usize,
    /// Probability an operation is a read (paper: 0.5).
    pub read_ratio: f64,
    /// Zipfian skew θ ∈ [0, 1).
    pub theta: f64,
    /// Hotspot mode: fraction of records that are hot (0 disables).
    pub hot_fraction: f64,
    /// Probability a statement targets a hot record (hotspot mode).
    pub hot_prob: f64,
    /// Partition-aware mode: number of logical keyspace partitions (`0`
    /// disables partition awareness and keeps the classic stream).
    pub partitions: u64,
    /// Probability a transaction is multi-partition (its operations span at
    /// least two partitions); otherwise every operation is steered into the
    /// first operation's partition. Ignored unless `partitions > 0`.
    pub multi_partition_ratio: f64,
}

impl Default for YcsbConfig {
    fn default() -> Self {
        YcsbConfig {
            keys: 10_000,
            ops_per_txn: 10,
            read_ratio: 0.5,
            theta: 0.6,
            hot_fraction: 0.0,
            hot_prob: 0.0,
            partitions: 0,
            multi_partition_ratio: 0.0,
        }
    }
}

/// Logical partition of a record id — the canonical hash partitioning
/// shared with the shard router.
#[must_use]
pub fn partition_of_key(key: u64, partitions: u64) -> u64 {
    harmony_common::hash::partition_of_u64(key, partitions)
}

use crate::workload::walk_u64 as walk_key;

impl YcsbConfig {
    /// The Figure 14 hotspot variant: 1 % hot records, every statement a
    /// merged read-modify-write UPDATE, hot with probability `hot_prob`.
    #[must_use]
    pub fn hotspot(hot_prob: f64) -> YcsbConfig {
        YcsbConfig {
            theta: 0.0,
            hot_fraction: 0.01,
            hot_prob,
            ..YcsbConfig::default()
        }
    }
}

/// The YCSB workload.
pub struct Ycsb {
    config: YcsbConfig,
    zipf: ScrambledZipfian,
    table: TableId,
}

impl Ycsb {
    /// Build with the given configuration.
    #[must_use]
    pub fn new(config: YcsbConfig) -> Ycsb {
        let zipf = ScrambledZipfian::new(config.keys, config.theta);
        Ycsb {
            config,
            zipf,
            table: TableId(0),
        }
    }

    /// The user table id (valid after `setup`).
    #[must_use]
    pub fn table(&self) -> TableId {
        self.table
    }

    pub(crate) fn make_row(seed: u64) -> bytes::Bytes {
        let mut b = RowBuilder::new();
        b.push_i64(1_000);
        b.push_pad(ROW_LEN - 8, (seed & 0x7F) as u8);
        b.finish()
    }

    fn pick_key(&self, rng: &mut DetRng) -> u64 {
        if self.config.hot_fraction > 0.0 {
            let hot_keys = ((self.config.keys as f64) * self.config.hot_fraction).max(1.0) as u64;
            if rng.gen_bool(self.config.hot_prob) {
                rng.gen_range(hot_keys)
            } else {
                hot_keys + rng.gen_range(self.config.keys - hot_keys)
            }
        } else {
            self.zipf.sample(rng)
        }
    }
}

impl Workload for Ycsb {
    fn name(&self) -> &'static str {
        "YCSB"
    }

    fn setup(&mut self, engine: &StorageEngine) -> Result<()> {
        let table = engine.create_table("usertable")?;
        self.table = table;
        for k in 0..self.config.keys {
            engine.put(table, &k.to_be_bytes(), &Self::make_row(k))?;
        }
        Ok(())
    }

    fn next_txn(&self, rng: &mut DetRng) -> Arc<dyn Contract> {
        let table = self.table;
        let hotspot_mode = self.config.hot_fraction > 0.0;
        // Pre-draw the operation plan so the contract is deterministic.
        let mut ops: Vec<(u64, u8, i64)> = (0..self.config.ops_per_txn)
            .map(|_| {
                let key = self.pick_key(rng);
                let kind = if hotspot_mode {
                    2 // merged RMW UPDATE
                } else if rng.gen_bool(self.config.read_ratio) {
                    0 // SELECT
                } else {
                    1 // blind UPDATE
                };
                (key, kind, rng.gen_range(100) as i64)
            })
            .collect();
        // A one-operation transaction can never span two partitions, so
        // partition steering only applies to plans with ≥ 2 operations.
        if self.config.partitions > 0 && ops.len() >= 2 {
            let parts = self.config.partitions;
            let keys = self.config.keys;
            let home = partition_of_key(ops[0].0, parts);
            if rng.gen_bool(self.config.multi_partition_ratio) {
                // Multi-partition: keep the natural key spread but guarantee
                // at least one operation lands outside the home partition.
                if ops
                    .iter()
                    .all(|(k, _, _)| partition_of_key(*k, parts) == home)
                {
                    let last = ops.last_mut().expect("non-empty plan");
                    last.0 = walk_key(keys, last.0, |c| partition_of_key(c, parts) != home);
                }
            } else {
                // Single-partition: steer every operation into the home
                // partition of the first drawn key.
                for op in &mut ops[1..] {
                    if partition_of_key(op.0, parts) != home {
                        op.0 = walk_key(keys, op.0, |c| partition_of_key(c, parts) == home);
                    }
                }
            }
        }
        build_txn(table, ops)
    }
}

/// Build the executable YCSB contract for a concrete operation plan.
/// `ops` entries are `(key, kind, value)` with kind 0 = SELECT, 1 = blind
/// UPDATE, 2 = merged read-modify-write UPDATE.
pub fn build_txn(table: TableId, ops: Vec<(u64, u8, i64)>) -> Arc<dyn Contract> {
    let payload = {
        let mut p = Vec::with_capacity(ops.len() * 17);
        for (k, kind, v) in &ops {
            p.extend_from_slice(&k.to_le_bytes());
            p.push(*kind);
            p.extend_from_slice(&v.to_le_bytes());
        }
        p
    };
    let footprint: Vec<Key> = ops
        .iter()
        .map(|(k, _, _)| Key::from_u64(table, *k))
        .collect();
    Arc::new(
        FnContract::new("ycsb", move |ctx: &mut TxnCtx<'_>| {
            for (k, kind, v) in &ops {
                let key = Key::from_u64(table, *k);
                match kind {
                    0 => {
                        ctx.read(&key).map_err(|e| UserAbort(e.to_string()))?;
                    }
                    1 => ctx.put(key, Ycsb::make_row(*v as u64)),
                    _ => ctx.add_i64(key, FIELD_OFFSET, *v),
                }
            }
            Ok(())
        })
        .with_payload(payload)
        .with_footprint(footprint),
    )
}

/// [`ContractCodec`] for YCSB transactions — the smart-contract registry a
/// replica uses to re-execute logged blocks after recovery.
pub struct YcsbCodec {
    /// The user table.
    pub table: TableId,
}

impl harmony_txn::ContractCodec for YcsbCodec {
    fn decode(&self, bytes: &[u8]) -> harmony_common::Result<Arc<dyn Contract>> {
        let (name, payload) = harmony_txn::split_encoded(bytes)?;
        if name != "ycsb" {
            return Err(harmony_common::Error::InvalidArgument(format!(
                "YcsbCodec cannot decode contract {name}"
            )));
        }
        if payload.len() % 17 != 0 {
            return Err(harmony_common::Error::Corruption(
                "ycsb payload not a multiple of 17".into(),
            ));
        }
        let ops = payload
            .chunks(17)
            .map(|c| {
                (
                    u64::from_le_bytes(c[..8].try_into().expect("8 bytes")),
                    c[8],
                    i64::from_le_bytes(c[9..].try_into().expect("8 bytes")),
                )
            })
            .collect();
        Ok(build_txn(self.table, ops))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_storage::StorageConfig;
    use harmony_txn::SnapshotView;

    struct EngineView<'a>(&'a StorageEngine);

    impl SnapshotView for EngineView<'_> {
        fn get(&self, key: &Key) -> Result<Option<harmony_txn::Value>> {
            Ok(self
                .0
                .get(key.table(), key.row())?
                .map(harmony_txn::Value::from))
        }
        fn scan(
            &self,
            table: TableId,
            start: &[u8],
            end: Option<&[u8]>,
            f: &mut dyn FnMut(&[u8], &harmony_txn::Value) -> bool,
        ) -> Result<()> {
            self.0.scan(table, start, end, |k, v| {
                f(k, &harmony_txn::Value::copy_from_slice(v))
            })
        }
    }

    fn setup_ycsb(config: YcsbConfig) -> (StorageEngine, Ycsb) {
        let engine = StorageEngine::open(&StorageConfig::memory()).unwrap();
        let mut w = Ycsb::new(config);
        w.setup(&engine).unwrap();
        (engine, w)
    }

    #[test]
    fn setup_loads_all_keys() {
        let (engine, w) = setup_ycsb(YcsbConfig {
            keys: 500,
            ..YcsbConfig::default()
        });
        assert_eq!(engine.table_len(w.table()).unwrap(), 500);
    }

    #[test]
    fn txn_touches_requested_ops() {
        let (engine, w) = setup_ycsb(YcsbConfig {
            keys: 100,
            ops_per_txn: 10,
            ..YcsbConfig::default()
        });
        let mut rng = DetRng::new(1);
        let txn = w.next_txn(&mut rng);
        let view = EngineView(&engine);
        let mut ctx = TxnCtx::new(&view);
        txn.execute(&mut ctx).unwrap();
        let rw = ctx.into_rwset();
        assert!(rw.reads.len() + rw.updates.len() >= 5, "ops recorded");
        assert!(rw.op_count() <= 20);
    }

    #[test]
    fn deterministic_stream() {
        let (_, w) = setup_ycsb(YcsbConfig {
            keys: 100,
            ..YcsbConfig::default()
        });
        let mut r1 = DetRng::new(9);
        let mut r2 = DetRng::new(9);
        for _ in 0..10 {
            assert_eq!(w.next_txn(&mut r1).payload(), w.next_txn(&mut r2).payload());
        }
    }

    #[test]
    fn skew_concentrates_accesses() {
        let hot_hits = |theta: f64| {
            let (_, w) = setup_ycsb(YcsbConfig {
                keys: 1000,
                theta,
                ..YcsbConfig::default()
            });
            let mut rng = DetRng::new(5);
            let mut key_counts = std::collections::HashMap::new();
            for _ in 0..200 {
                let txn = w.next_txn(&mut rng);
                // Decode keys from payload (8 bytes key + 1 + 8 each).
                for chunk in txn.payload().chunks(17) {
                    let k = u64::from_le_bytes(chunk[..8].try_into().unwrap());
                    *key_counts.entry(k).or_insert(0u32) += 1;
                }
            }
            *key_counts.values().max().unwrap()
        };
        assert!(hot_hits(0.99) > 3 * hot_hits(0.0));
    }

    #[test]
    fn hotspot_mode_is_all_rmw() {
        let (engine, w) = setup_ycsb(YcsbConfig {
            keys: 1000,
            ..YcsbConfig::hotspot(0.8)
        });
        let mut rng = DetRng::new(3);
        let txn = w.next_txn(&mut rng);
        let view = EngineView(&engine);
        let mut ctx = TxnCtx::new(&view);
        txn.execute(&mut ctx).unwrap();
        let rw = ctx.into_rwset();
        assert_eq!(rw.updates.len(), rw.updates.len());
        assert!(rw.updates.iter().all(|(_, seq)| seq.has_rmw()));
        // Merged statements: no separate read set entries.
        assert!(rw.reads.is_empty());
    }

    #[test]
    fn partition_mode_controls_spread() {
        let spans = |ratio: f64| {
            let (_, w) = setup_ycsb(YcsbConfig {
                keys: 1000,
                partitions: 4,
                multi_partition_ratio: ratio,
                ..YcsbConfig::default()
            });
            let mut rng = DetRng::new(7);
            let mut multi = 0;
            for _ in 0..100 {
                let txn = w.next_txn(&mut rng);
                let mut parts = std::collections::HashSet::new();
                for chunk in txn.payload().chunks(17) {
                    let k = u64::from_le_bytes(chunk[..8].try_into().unwrap());
                    parts.insert(partition_of_key(k, 4));
                }
                if parts.len() > 1 {
                    multi += 1;
                }
            }
            multi
        };
        assert_eq!(spans(0.0), 0, "ratio 0 must be fully single-partition");
        assert_eq!(spans(1.0), 100, "ratio 1 must be fully multi-partition");
        let mid = spans(0.3);
        assert!((15..=45).contains(&mid), "ratio 0.3 gave {mid}/100");
    }

    #[test]
    fn footprint_covers_executed_keys() {
        let (engine, w) = setup_ycsb(YcsbConfig {
            keys: 100,
            ..YcsbConfig::default()
        });
        let mut rng = DetRng::new(2);
        let txn = w.next_txn(&mut rng);
        let declared: std::collections::HashSet<Key> =
            txn.declared_keys().unwrap().iter().cloned().collect();
        let view = EngineView(&engine);
        let mut ctx = TxnCtx::new(&view);
        txn.execute(&mut ctx).unwrap();
        let rw = ctx.into_rwset();
        for k in rw.read_keys().chain(rw.write_keys()) {
            assert!(declared.contains(k), "undeclared key {k:?}");
        }
    }

    #[test]
    fn hotspot_prob_targets_hot_range() {
        let (_, w) = setup_ycsb(YcsbConfig {
            keys: 1000,
            ..YcsbConfig::hotspot(1.0)
        });
        let mut rng = DetRng::new(4);
        for _ in 0..20 {
            let txn = w.next_txn(&mut rng);
            for chunk in txn.payload().chunks(17) {
                let k = u64::from_le_bytes(chunk[..8].try_into().unwrap());
                assert!(k < 10, "hot_prob=1.0 must stay within the 1% hot set");
            }
        }
    }
}
