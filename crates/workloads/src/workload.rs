//! The uniform workload interface.

use std::sync::Arc;

use harmony_common::{DetRng, Result};
use harmony_storage::StorageEngine;
use harmony_txn::Contract;

/// A transactional benchmark workload.
///
/// Implementations are deterministic: given the same RNG seed and engine
/// state, `setup` loads identical data and `next_txn` yields identical
/// transaction streams — the property replica-consistency tests rely on.
pub trait Workload: Send + Sync {
    /// Display name.
    fn name(&self) -> &'static str;

    /// Create tables and load the initial database. Must be called once
    /// before generating transactions; records the table ids internally.
    fn setup(&mut self, engine: &StorageEngine) -> Result<()>;

    /// Generate the next transaction using the caller's RNG.
    fn next_txn(&self, rng: &mut DetRng) -> Arc<dyn Contract>;

    /// Generate a whole block's worth of transactions.
    fn next_block(&self, rng: &mut DetRng, size: usize) -> Vec<Arc<dyn Contract>> {
        (0..size).map(|_| self.next_txn(rng)).collect()
    }
}

/// Deterministically walk forward from `from` (exclusive, wrapping modulo
/// `space`) to the first id satisfying `pred`; falls back to `from` if
/// none does. Shared by the partition-aware workload variants to steer
/// ids into (or out of) a target partition without extra RNG draws.
pub(crate) fn walk_u64(space: u64, from: u64, mut pred: impl FnMut(u64) -> bool) -> u64 {
    for step in 1..space {
        let cand = (from + step) % space;
        if pred(cand) {
            return cand;
        }
    }
    from
}
