//! Open-loop client arrival process.
//!
//! Closed-loop drivers (the experiment driver's block-filling loop) always
//! have the next transaction ready; a real deployment's mempool instead
//! sees an *open-loop* stream — clients fire at their own rate whether or
//! not the system keeps up, which is what exposes admission-control and
//! backpressure behavior. This module generates that stream
//! deterministically: Poisson arrivals (exponential inter-arrival times
//! from the deterministic RNG) multiplexed over a fixed population of
//! client sessions, each stamping its submissions with a monotonically
//! increasing nonce.

use harmony_common::DetRng;

/// Open-loop generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct OpenLoopConfig {
    /// Number of client sessions the stream multiplexes.
    pub clients: u64,
    /// Offered load in transactions per second (aggregate over clients).
    pub rate_tps: f64,
    /// Fraction of arrivals pinned to client 0 (the "hot" session);
    /// the remainder is uniform over clients `1..clients`. `0.0` keeps
    /// the original all-uniform draw — bit-identical to streams built
    /// before this knob existed. Used by overload scenarios to model an
    /// aggressive tenant next to well-behaved ones.
    pub hot_share: f64,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        OpenLoopConfig {
            clients: 16,
            rate_tps: 10_000.0,
            hot_share: 0.0,
        }
    }
}

/// One client submission event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Arrival {
    /// Absolute arrival time in virtual nanoseconds.
    pub at_ns: u64,
    /// Submitting client session.
    pub client: u64,
    /// The client's session nonce (0, 1, 2, … per client).
    pub nonce: u64,
}

/// Deterministic Poisson arrival stream over a population of clients.
pub struct OpenLoopClients {
    config: OpenLoopConfig,
    rng: DetRng,
    now_ns: u64,
    next_nonce: Vec<u64>,
}

impl OpenLoopClients {
    /// Build a stream. Identical `(config, seed)` pairs yield identical
    /// streams — the property the replica-determinism tests rely on.
    #[must_use]
    pub fn new(config: OpenLoopConfig, seed: u64) -> OpenLoopClients {
        assert!(config.clients > 0, "need at least one client");
        assert!(config.rate_tps > 0.0, "offered load must be positive");
        assert!(
            (0.0..1.0).contains(&config.hot_share),
            "hot client share must be in [0, 1)"
        );
        assert!(
            config.hot_share == 0.0 || config.clients >= 2,
            "a hot client needs at least one cold peer"
        );
        OpenLoopClients {
            rng: DetRng::new(seed),
            now_ns: 0,
            next_nonce: vec![0; config.clients as usize],
            config,
        }
    }

    /// Mean inter-arrival gap in nanoseconds.
    #[must_use]
    pub fn mean_gap_ns(&self) -> f64 {
        1e9 / self.config.rate_tps
    }

    /// Draw the next arrival: an exponential inter-arrival gap (clamped to
    /// ≥ 1 ns so virtual time always advances) and a uniformly chosen
    /// client, whose nonce advances.
    pub fn next_arrival(&mut self) -> Arrival {
        // Inverse-CDF sampling; keep u away from 0 so ln is finite.
        let u = self.rng.gen_f64().max(1e-12);
        let gap = (-u.ln() * self.mean_gap_ns()).max(1.0);
        self.now_ns += gap as u64;
        let client = if self.config.hot_share > 0.0 {
            if self.rng.gen_f64() < self.config.hot_share {
                0
            } else {
                1 + self.rng.gen_range(self.config.clients - 1)
            }
        } else {
            self.rng.gen_range(self.config.clients)
        };
        let nonce = self.next_nonce[client as usize];
        self.next_nonce[client as usize] += 1;
        Arrival {
            at_ns: self.now_ns,
            client,
            nonce,
        }
    }

    /// All arrivals up to (and including) `until_ns`, in time order.
    pub fn arrivals_until(&mut self, until_ns: u64) -> Vec<Arrival> {
        let mut out = Vec::new();
        loop {
            let save_rng = self.rng.clone();
            let save_now = self.now_ns;
            let a = self.next_arrival();
            if a.at_ns > until_ns {
                // Roll back the overshoot so the stream can be resumed.
                self.rng = save_rng;
                self.now_ns = save_now;
                self.next_nonce[a.client as usize] -= 1;
                return out;
            }
            out.push(a);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(rate_tps: f64) -> OpenLoopClients {
        OpenLoopClients::new(
            OpenLoopConfig {
                clients: 4,
                rate_tps,
                hot_share: 0.0,
            },
            7,
        )
    }

    #[test]
    fn rate_is_approximately_honored() {
        let mut s = stream(100_000.0);
        let arrivals = s.arrivals_until(1_000_000_000);
        let n = arrivals.len() as f64;
        assert!(
            (n - 100_000.0).abs() < 5_000.0,
            "expected ~100k arrivals/s, got {n}"
        );
    }

    #[test]
    fn deterministic_and_time_ordered() {
        let a: Vec<Arrival> = (0..500).map(|_| stream(50_000.0).next_arrival()).collect();
        let mut s1 = stream(50_000.0);
        let mut s2 = stream(50_000.0);
        let r1: Vec<Arrival> = (0..500).map(|_| s1.next_arrival()).collect();
        let r2: Vec<Arrival> = (0..500).map(|_| s2.next_arrival()).collect();
        assert_eq!(r1, r2, "same seed ⇒ same stream");
        assert!(r1.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        drop(a);
    }

    #[test]
    fn nonces_are_dense_per_client() {
        let mut s = stream(50_000.0);
        let arrivals: Vec<Arrival> = (0..1000).map(|_| s.next_arrival()).collect();
        for c in 0..4u64 {
            let nonces: Vec<u64> = arrivals
                .iter()
                .filter(|a| a.client == c)
                .map(|a| a.nonce)
                .collect();
            assert!(!nonces.is_empty());
            assert!(
                nonces.iter().copied().eq(0..nonces.len() as u64),
                "client {c} nonces must be 0..n in order: {nonces:?}"
            );
        }
    }

    #[test]
    fn hot_share_skews_toward_client_zero() {
        let mut s = OpenLoopClients::new(
            OpenLoopConfig {
                clients: 5,
                rate_tps: 50_000.0,
                hot_share: 0.6,
            },
            11,
        );
        let arrivals: Vec<Arrival> = (0..4000).map(|_| s.next_arrival()).collect();
        let hot = arrivals.iter().filter(|a| a.client == 0).count() as f64 / 4000.0;
        assert!(
            (hot - 0.6).abs() < 0.05,
            "hot client should take ~60% of arrivals, got {hot}"
        );
        // Cold clients split the rest roughly evenly, nonces stay dense.
        for c in 1..5u64 {
            let nonces: Vec<u64> = arrivals
                .iter()
                .filter(|a| a.client == c)
                .map(|a| a.nonce)
                .collect();
            assert!(nonces.iter().copied().eq(0..nonces.len() as u64));
        }
    }

    #[test]
    fn arrivals_until_resumes_without_loss() {
        let mut split = stream(20_000.0);
        let mut whole = stream(20_000.0);
        let mut merged = split.arrivals_until(500_000);
        merged.extend(split.arrivals_until(1_000_000));
        let reference = whole.arrivals_until(1_000_000);
        assert_eq!(merged, reference, "windowed draw must equal one draw");
    }
}
