//! The three benchmark workloads of the paper's evaluation, implemented as
//! smart contracts over the transaction substrate:
//!
//! * [`ycsb`] — YCSB: 10 operations per transaction, 50/50 SELECT/UPDATE,
//!   Zipfian skew (the contention axis of Figures 11–13), plus the hotspot
//!   variant of Figure 14 (1 % hot records, merged read-modify-write
//!   UPDATE statements).
//! * [`smallbank`] — Smallbank: six banking procedures with data-dependent
//!   branches and user aborts (insufficient funds).
//! * [`tpcc`] — TPC-C: the five standard transaction profiles over the
//!   full nine-table schema, with configurable warehouse count (the
//!   contention/database-size axis of Figure 19) and a scale factor for
//!   laptop-sized runs.
//!
//! All workloads implement [`Workload`], so the benchmark harness drives
//! any (engine × workload) pair uniformly and deterministically.
//!
//! [`arrival`] adds the *open-loop* client dimension: a deterministic
//! Poisson stream of (time, client, nonce) submission events that the node
//! runtime's mempool consumes — offered load decoupled from service rate.

pub mod arrival;
pub mod smallbank;
pub mod tpcc;
pub mod workload;
pub mod ycsb;

pub use arrival::{Arrival, OpenLoopClients, OpenLoopConfig};
pub use smallbank::{Smallbank, SmallbankCodec, SmallbankConfig};
pub use tpcc::{Tpcc, TpccCodec, TpccConfig, TpccTables};
pub use workload::Workload;
pub use ycsb::{Ycsb, YcsbCodec, YcsbConfig};
