//! Update commands and the coalescence algebra.
//!
//! Harmony stores *commands* (`add(x, 10)`) in write-sets instead of
//! evaluated values (`x = 20`). Deferring evaluation to the commit step is
//! what lets Rule 2 reorder conflicting updates instead of aborting them,
//! and what makes update coalescence possible: all commands touching one
//! record collapse into a single read-modify-write with one index lookup
//! and one page write (Figure 5 of the paper).

use std::fmt;

use bytes::Bytes;
use harmony_common::codec::{Reader, Writer};
use harmony_common::{Error, Result};

use crate::key::Value;

/// A single update command against one record.
#[derive(Clone, Debug, PartialEq)]
pub enum UpdateCommand {
    /// Blind overwrite of the whole value (also used for inserts).
    Put(Value),
    /// Remove the record.
    Delete,
    /// `v[offset..offset+8] += delta` over a little-endian `i64` field.
    AddI64 {
        /// Byte offset of the field.
        offset: usize,
        /// Signed delta.
        delta: i64,
    },
    /// `v[offset..offset+8] += delta` over a little-endian `f64` field.
    AddF64 {
        /// Byte offset of the field.
        offset: usize,
        /// Delta.
        delta: f64,
    },
    /// `v[offset..offset+8] *= factor` over a little-endian `f64` field.
    MulF64 {
        /// Byte offset of the field.
        offset: usize,
        /// Factor.
        factor: f64,
    },
    /// Overwrite a byte range of the value (record must exist and be long
    /// enough). A partial-field UPDATE.
    SetBytes {
        /// Byte offset the patch starts at.
        offset: usize,
        /// Replacement bytes.
        bytes: Bytes,
    },
}

impl UpdateCommand {
    /// Whether the command reads its target's current value
    /// (read-modify-write). RMW commands induce the wr-dependency the
    /// reordering proof of Theorem 1 tracks; `Put`/`Delete` are blind.
    #[must_use]
    pub fn is_rmw(&self) -> bool {
        !matches!(self, UpdateCommand::Put(_) | UpdateCommand::Delete)
    }

    /// Apply the command to the current value of the record.
    ///
    /// RMW commands on a missing record (or out-of-range field) are errors:
    /// the workloads always create records before mutating fields.
    pub fn apply(&self, current: Option<&Value>) -> Result<Option<Value>> {
        match self {
            UpdateCommand::Put(v) => Ok(Some(v.clone())),
            UpdateCommand::Delete => Ok(None),
            UpdateCommand::AddI64 { offset, delta } => {
                let mut v = require(current, "add_i64")?.to_vec();
                let field = field_mut(&mut v, *offset)?;
                let cur = i64::from_le_bytes(field.try_into().expect("8 bytes"));
                field.copy_from_slice(&cur.wrapping_add(*delta).to_le_bytes());
                Ok(Some(Bytes::from(v)))
            }
            UpdateCommand::AddF64 { offset, delta } => {
                let mut v = require(current, "add_f64")?.to_vec();
                let field = field_mut(&mut v, *offset)?;
                let cur = f64::from_le_bytes(field.try_into().expect("8 bytes"));
                field.copy_from_slice(&(cur + delta).to_le_bytes());
                Ok(Some(Bytes::from(v)))
            }
            UpdateCommand::MulF64 { offset, factor } => {
                let mut v = require(current, "mul_f64")?.to_vec();
                let field = field_mut(&mut v, *offset)?;
                let cur = f64::from_le_bytes(field.try_into().expect("8 bytes"));
                field.copy_from_slice(&(cur * factor).to_le_bytes());
                Ok(Some(Bytes::from(v)))
            }
            UpdateCommand::SetBytes { offset, bytes } => {
                let mut v = require(current, "set_bytes")?.to_vec();
                if offset + bytes.len() > v.len() {
                    return Err(Error::InvalidArgument(format!(
                        "set_bytes range {}..{} outside value of {} bytes",
                        offset,
                        offset + bytes.len(),
                        v.len()
                    )));
                }
                v[*offset..offset + bytes.len()].copy_from_slice(bytes);
                Ok(Some(Bytes::from(v)))
            }
        }
    }

    /// Serialize into `w` — the wire format transaction fragments carry in
    /// sealed sub-blocks, so a replica's block log can replay cross-shard
    /// writes bit-identically after a crash.
    pub fn encode_into(&self, w: &mut Writer) {
        match self {
            UpdateCommand::Put(v) => {
                w.put_u8(0);
                w.put_bytes(v);
            }
            UpdateCommand::Delete => w.put_u8(1),
            UpdateCommand::AddI64 { offset, delta } => {
                w.put_u8(2);
                w.put_u32(u32::try_from(*offset).expect("offset fits u32"));
                w.put_u64(*delta as u64);
            }
            UpdateCommand::AddF64 { offset, delta } => {
                w.put_u8(3);
                w.put_u32(u32::try_from(*offset).expect("offset fits u32"));
                w.put_u64(delta.to_bits());
            }
            UpdateCommand::MulF64 { offset, factor } => {
                w.put_u8(4);
                w.put_u32(u32::try_from(*offset).expect("offset fits u32"));
                w.put_u64(factor.to_bits());
            }
            UpdateCommand::SetBytes { offset, bytes } => {
                w.put_u8(5);
                w.put_u32(u32::try_from(*offset).expect("offset fits u32"));
                w.put_bytes(bytes);
            }
        }
    }

    /// Inverse of [`UpdateCommand::encode_into`].
    pub fn decode_from(r: &mut Reader<'_>) -> Result<UpdateCommand> {
        Ok(match r.get_u8()? {
            0 => UpdateCommand::Put(Value::from(r.get_bytes()?)),
            1 => UpdateCommand::Delete,
            2 => UpdateCommand::AddI64 {
                offset: r.get_u32()? as usize,
                delta: r.get_u64()? as i64,
            },
            3 => UpdateCommand::AddF64 {
                offset: r.get_u32()? as usize,
                delta: f64::from_bits(r.get_u64()?),
            },
            4 => UpdateCommand::MulF64 {
                offset: r.get_u32()? as usize,
                factor: f64::from_bits(r.get_u64()?),
            },
            5 => UpdateCommand::SetBytes {
                offset: r.get_u32()? as usize,
                bytes: Bytes::from(r.get_bytes()?),
            },
            t => return Err(Error::Corruption(format!("bad update command tag {t}"))),
        })
    }
}

fn require<'a>(current: Option<&'a Value>, op: &str) -> Result<&'a Value> {
    current.ok_or_else(|| Error::InvalidArgument(format!("{op} on missing record")))
}

fn field_mut(v: &mut [u8], offset: usize) -> Result<&mut [u8]> {
    if offset + 8 > v.len() {
        return Err(Error::InvalidArgument(format!(
            "field at {offset} outside value of {} bytes",
            v.len()
        )));
    }
    Ok(&mut v[offset..offset + 8])
}

/// An ordered sequence of update commands against one record — the
/// *coalesced update*. Applying the sequence costs one read and one write
/// regardless of its length.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CommandSeq {
    cmds: Vec<UpdateCommand>,
}

impl CommandSeq {
    /// Empty sequence.
    #[must_use]
    pub fn new() -> CommandSeq {
        CommandSeq::default()
    }

    /// Sequence holding one command.
    #[must_use]
    pub fn of(cmd: UpdateCommand) -> CommandSeq {
        CommandSeq { cmds: vec![cmd] }
    }

    /// Append a command, folding when algebra allows:
    /// * a blind `Put`/`Delete` absorbs everything before it;
    /// * consecutive `AddI64`/`AddF64` on one field merge their deltas;
    /// * consecutive `MulF64` on one field merge their factors.
    pub fn push(&mut self, cmd: UpdateCommand) {
        if !cmd.is_rmw() {
            self.cmds.clear();
            self.cmds.push(cmd);
            return;
        }
        if let (Some(last), new) = (self.cmds.last_mut(), &cmd) {
            match (last, new) {
                (
                    UpdateCommand::AddI64 {
                        offset: o1,
                        delta: d1,
                    },
                    UpdateCommand::AddI64 {
                        offset: o2,
                        delta: d2,
                    },
                ) if o1 == o2 => {
                    *d1 = d1.wrapping_add(*d2);
                    return;
                }
                (
                    UpdateCommand::AddF64 {
                        offset: o1,
                        delta: d1,
                    },
                    UpdateCommand::AddF64 {
                        offset: o2,
                        delta: d2,
                    },
                ) if o1 == o2 => {
                    *d1 += d2;
                    return;
                }
                (
                    UpdateCommand::MulF64 {
                        offset: o1,
                        factor: f1,
                    },
                    UpdateCommand::MulF64 {
                        offset: o2,
                        factor: f2,
                    },
                ) if o1 == o2 => {
                    *f1 *= f2;
                    return;
                }
                _ => {}
            }
        }
        self.cmds.push(cmd);
    }

    /// Concatenate another sequence after this one.
    pub fn extend(&mut self, other: &CommandSeq) {
        for c in &other.cmds {
            self.push(c.clone());
        }
    }

    /// Apply all commands in order to `current`.
    pub fn apply(&self, current: Option<&Value>) -> Result<Option<Value>> {
        let mut acc: Option<Value> = current.cloned();
        for cmd in &self.cmds {
            acc = cmd.apply(acc.as_ref())?;
        }
        Ok(acc)
    }

    /// Number of commands after folding.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cmds.len()
    }

    /// Whether the sequence is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cmds.is_empty()
    }

    /// Whether any command in the sequence is a read-modify-write.
    #[must_use]
    pub fn has_rmw(&self) -> bool {
        self.cmds.iter().any(UpdateCommand::is_rmw)
    }

    /// The commands in application order.
    #[must_use]
    pub fn commands(&self) -> &[UpdateCommand] {
        &self.cmds
    }

    /// Serialize the folded sequence into `w`.
    pub fn encode_into(&self, w: &mut Writer) {
        w.put_u32(u32::try_from(self.cmds.len()).expect("command count"));
        for cmd in &self.cmds {
            cmd.encode_into(w);
        }
    }

    /// Inverse of [`CommandSeq::encode_into`]. Commands are re-pushed
    /// through the folding algebra; folding is idempotent on an already
    /// folded sequence, so the round trip is exact.
    pub fn decode_from(r: &mut Reader<'_>) -> Result<CommandSeq> {
        let n = r.get_u32()? as usize;
        let mut seq = CommandSeq::new();
        for _ in 0..n {
            seq.push(UpdateCommand::decode_from(r)?);
        }
        Ok(seq)
    }
}

impl fmt::Display for CommandSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seq[{}]", self.cmds.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn val(n: i64) -> Value {
        Bytes::from(n.to_le_bytes().to_vec())
    }

    fn as_i64(v: &Value) -> i64 {
        i64::from_le_bytes(v.as_ref().try_into().unwrap())
    }

    #[test]
    fn put_and_delete() {
        let put = UpdateCommand::Put(val(7));
        assert_eq!(put.apply(None).unwrap(), Some(val(7)));
        assert_eq!(put.apply(Some(&val(1))).unwrap(), Some(val(7)));
        assert_eq!(UpdateCommand::Delete.apply(Some(&val(1))).unwrap(), None);
        assert!(!put.is_rmw());
        assert!(!UpdateCommand::Delete.is_rmw());
    }

    #[test]
    fn add_i64() {
        let add = UpdateCommand::AddI64 {
            offset: 0,
            delta: 10,
        };
        assert!(add.is_rmw());
        let out = add.apply(Some(&val(5))).unwrap().unwrap();
        assert_eq!(as_i64(&out), 15);
    }

    #[test]
    fn add_on_missing_record_errors() {
        let add = UpdateCommand::AddI64 {
            offset: 0,
            delta: 1,
        };
        assert!(add.apply(None).is_err());
    }

    #[test]
    fn field_out_of_range_errors() {
        let add = UpdateCommand::AddI64 {
            offset: 4,
            delta: 1,
        };
        assert!(add.apply(Some(&val(0))).is_err());
    }

    #[test]
    fn mul_then_add_matches_paper_example() {
        // Paper §3.3.1: x = 10; T2 applies mul(x,3) then T1 applies
        // add(x,10) after reordering => 40.
        let x = Bytes::from(10f64.to_le_bytes().to_vec());
        let mul = UpdateCommand::MulF64 {
            offset: 0,
            factor: 3.0,
        };
        let add = UpdateCommand::AddF64 {
            offset: 0,
            delta: 10.0,
        };
        let after_mul = mul.apply(Some(&x)).unwrap().unwrap();
        let after_add = add.apply(Some(&after_mul)).unwrap().unwrap();
        let out = f64::from_le_bytes(after_add.as_ref().try_into().unwrap());
        assert_eq!(out, 40.0);
    }

    #[test]
    fn set_bytes_patches_range() {
        let v = Bytes::from(vec![0u8; 8]);
        let cmd = UpdateCommand::SetBytes {
            offset: 2,
            bytes: Bytes::from_static(&[9, 9]),
        };
        let out = cmd.apply(Some(&v)).unwrap().unwrap();
        assert_eq!(out.as_ref(), &[0, 0, 9, 9, 0, 0, 0, 0]);
        let oob = UpdateCommand::SetBytes {
            offset: 7,
            bytes: Bytes::from_static(&[1, 1]),
        };
        assert!(oob.apply(Some(&v)).is_err());
    }

    #[test]
    fn seq_applies_in_order() {
        let mut seq = CommandSeq::new();
        seq.push(UpdateCommand::AddI64 {
            offset: 0,
            delta: 5,
        });
        seq.push(UpdateCommand::Put(val(100)));
        seq.push(UpdateCommand::AddI64 {
            offset: 0,
            delta: 1,
        });
        let out = seq.apply(Some(&val(0))).unwrap().unwrap();
        assert_eq!(as_i64(&out), 101);
    }

    #[test]
    fn blind_put_absorbs_prefix() {
        let mut seq = CommandSeq::new();
        seq.push(UpdateCommand::AddI64 {
            offset: 0,
            delta: 5,
        });
        seq.push(UpdateCommand::AddI64 {
            offset: 0,
            delta: 6,
        });
        seq.push(UpdateCommand::Put(val(1)));
        assert_eq!(seq.len(), 1, "Put absorbs earlier commands");
        // Semantics unchanged: applies as just Put(1).
        assert_eq!(as_i64(&seq.apply(None).unwrap().unwrap()), 1);
    }

    #[test]
    fn adjacent_adds_fold() {
        let mut seq = CommandSeq::new();
        seq.push(UpdateCommand::AddI64 {
            offset: 0,
            delta: 5,
        });
        seq.push(UpdateCommand::AddI64 {
            offset: 0,
            delta: -2,
        });
        assert_eq!(seq.len(), 1);
        assert_eq!(as_i64(&seq.apply(Some(&val(10))).unwrap().unwrap()), 13);
        // Different offsets do not fold.
        let mut seq2 = CommandSeq::new();
        seq2.push(UpdateCommand::AddI64 {
            offset: 0,
            delta: 1,
        });
        seq2.push(UpdateCommand::AddI64 {
            offset: 8,
            delta: 1,
        });
        assert_eq!(seq2.len(), 2);
    }

    #[test]
    fn folding_preserves_semantics_against_unfolded() {
        use harmony_common::DetRng;
        let mut rng = DetRng::new(21);
        for _ in 0..200 {
            let mut folded = CommandSeq::new();
            let mut raw: Vec<UpdateCommand> = Vec::new();
            for _ in 0..rng.gen_range(6) + 1 {
                let cmd = match rng.gen_range(4) {
                    0 => UpdateCommand::Put(val(rng.gen_range(100) as i64)),
                    1 => UpdateCommand::AddI64 {
                        offset: 0,
                        delta: rng.gen_range(20) as i64 - 10,
                    },
                    2 => UpdateCommand::AddI64 {
                        offset: 8,
                        delta: 3,
                    },
                    _ => UpdateCommand::SetBytes {
                        offset: 0,
                        bytes: Bytes::from(vec![rng.gen_range(255) as u8]),
                    },
                };
                folded.push(cmd.clone());
                raw.push(cmd);
            }
            let start = Bytes::from([7i64.to_le_bytes(), 9i64.to_le_bytes()].concat());
            let mut expect: Option<Value> = Some(start.clone());
            let mut ok = true;
            for c in &raw {
                match c.apply(expect.as_ref()) {
                    Ok(v) => expect = v,
                    Err(_) => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                assert_eq!(folded.apply(Some(&start)).unwrap(), expect);
            }
        }
    }

    #[test]
    fn command_seq_wire_roundtrip() {
        let mut seq = CommandSeq::new();
        seq.push(UpdateCommand::AddI64 {
            offset: 8,
            delta: -3,
        });
        seq.push(UpdateCommand::SetBytes {
            offset: 2,
            bytes: Bytes::from_static(&[7, 7]),
        });
        seq.push(UpdateCommand::AddF64 {
            offset: 16,
            delta: 1.5,
        });
        seq.push(UpdateCommand::MulF64 {
            offset: 16,
            factor: -0.25,
        });
        seq.push(UpdateCommand::Put(val(9)));
        seq.push(UpdateCommand::Delete);
        let mut w = Writer::with_capacity(64);
        seq.encode_into(&mut w);
        let bytes = w.finish().to_vec();
        let mut r = Reader::new(&bytes);
        let decoded = CommandSeq::decode_from(&mut r).unwrap();
        assert_eq!(decoded, seq);
        // Truncated input is an error, not a panic.
        let mut short = Reader::new(&bytes[..bytes.len() - 1]);
        assert!(CommandSeq::decode_from(&mut short).is_err());
    }

    #[test]
    fn has_rmw_detection() {
        let mut blind = CommandSeq::new();
        blind.push(UpdateCommand::Put(val(1)));
        assert!(!blind.has_rmw());
        let mut rmw = CommandSeq::new();
        rmw.push(UpdateCommand::Put(val(1)));
        rmw.push(UpdateCommand::AddI64 {
            offset: 0,
            delta: 1,
        });
        assert!(rmw.has_rmw());
    }
}
