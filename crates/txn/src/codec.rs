//! Contract serialization for logical logging.
//!
//! OE chains persist *input blocks* (transaction commands) rather than
//! effects. To re-execute after recovery, someone must turn the persisted
//! bytes back into executable contracts — that is the smart-contract
//! registry's job, abstracted as [`ContractCodec`]. Each workload ships a
//! codec for its own procedures.

use std::sync::Arc;

use harmony_common::Result;

use crate::contract::Contract;

/// Serialize a contract in the default wire format
/// `[name_len u16][name][payload]` — usable without a codec instance
/// (ordering services encode; only replay needs the decoding registry).
#[must_use]
pub fn encode_contract(contract: &dyn Contract) -> Vec<u8> {
    let name = contract.name().as_bytes();
    let payload = contract.payload();
    let mut out = Vec::with_capacity(2 + name.len() + payload.len());
    out.extend_from_slice(
        &u16::try_from(name.len())
            .expect("name length")
            .to_le_bytes(),
    );
    out.extend_from_slice(name);
    out.extend_from_slice(&payload);
    out
}

/// Encodes/decodes contracts for the logical block log.
pub trait ContractCodec: Send + Sync {
    /// Serialize a contract (default wire format: [`encode_contract`]).
    fn encode(&self, contract: &dyn Contract) -> Vec<u8> {
        encode_contract(contract)
    }

    /// Reconstruct an executable contract from its serialized form.
    fn decode(&self, bytes: &[u8]) -> Result<Arc<dyn Contract>>;
}

/// A decoding registry composed of several codecs tried in order — how a
/// replica whose blocks mix workload contracts with protocol-synthesized
/// ones (e.g. cross-shard fragments) reconstructs every transaction kind.
/// The first codec that decodes wins; if none does, the last error is
/// returned.
pub struct MultiCodec {
    codecs: Vec<Arc<dyn ContractCodec>>,
}

impl MultiCodec {
    /// Build from the codecs to try, in priority order.
    ///
    /// # Panics
    /// Panics when `codecs` is empty — an empty registry could decode
    /// nothing and would turn every replay into an error.
    #[must_use]
    pub fn new(codecs: Vec<Arc<dyn ContractCodec>>) -> MultiCodec {
        assert!(!codecs.is_empty(), "MultiCodec needs at least one codec");
        MultiCodec { codecs }
    }
}

impl ContractCodec for MultiCodec {
    fn decode(&self, bytes: &[u8]) -> Result<Arc<dyn Contract>> {
        let mut last_err = None;
        for codec in &self.codecs {
            match codec.decode(bytes) {
                Ok(contract) => return Ok(contract),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.expect("at least one codec"))
    }
}

/// Split the default wire format into `(name, payload)`.
pub fn split_encoded(bytes: &[u8]) -> Result<(&str, &[u8])> {
    if bytes.len() < 2 {
        return Err(harmony_common::Error::Corruption(
            "encoded contract too short".into(),
        ));
    }
    let name_len = u16::from_le_bytes([bytes[0], bytes[1]]) as usize;
    if bytes.len() < 2 + name_len {
        return Err(harmony_common::Error::Corruption(
            "encoded contract name truncated".into(),
        ));
    }
    let name = std::str::from_utf8(&bytes[2..2 + name_len])
        .map_err(|_| harmony_common::Error::Corruption("contract name not utf-8".into()))?;
    Ok((name, &bytes[2 + name_len..]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::FnContract;
    use crate::ctx::TxnCtx;

    struct NopCodec;

    impl ContractCodec for NopCodec {
        fn decode(&self, bytes: &[u8]) -> Result<Arc<dyn Contract>> {
            let (name, payload) = split_encoded(bytes)?;
            let name = name.to_string();
            let payload = payload.to_vec();
            Ok(Arc::new(
                FnContract::new(name, move |_: &mut TxnCtx<'_>| Ok(())).with_payload(payload),
            ))
        }
    }

    #[test]
    fn roundtrip_default_format() {
        let c = FnContract::new("demo", |_: &mut TxnCtx<'_>| Ok(())).with_payload(vec![1, 2, 3]);
        let codec = NopCodec;
        let bytes = codec.encode(&c);
        let decoded = codec.decode(&bytes).unwrap();
        assert_eq!(decoded.name(), "demo");
        assert_eq!(decoded.payload(), vec![1, 2, 3]);
    }

    #[test]
    fn truncated_rejected() {
        let codec = NopCodec;
        assert!(codec.decode(&[5]).is_err());
        assert!(codec.decode(&[9, 0, b'x']).is_err());
    }

    struct PickyCodec {
        prefix: &'static str,
    }

    impl ContractCodec for PickyCodec {
        fn decode(&self, bytes: &[u8]) -> Result<Arc<dyn Contract>> {
            let (name, _) = split_encoded(bytes)?;
            if !name.starts_with(self.prefix) {
                return Err(harmony_common::Error::Corruption(format!(
                    "not a {} contract: {name}",
                    self.prefix
                )));
            }
            let name = name.to_string();
            Ok(Arc::new(FnContract::new(
                name,
                move |_: &mut TxnCtx<'_>| Ok(()),
            )))
        }
    }

    #[test]
    fn multi_codec_dispatches_by_first_success() {
        let multi = MultiCodec::new(vec![
            Arc::new(PickyCodec { prefix: "aa-" }),
            Arc::new(PickyCodec { prefix: "bb-" }),
        ]);
        let enc = |name: &str| encode_contract(&FnContract::new(name, |_: &mut TxnCtx<'_>| Ok(())));
        assert_eq!(multi.decode(&enc("aa-x")).unwrap().name(), "aa-x");
        assert_eq!(multi.decode(&enc("bb-y")).unwrap().name(), "bb-y");
        let Err(err) = multi.decode(&enc("cc-z")) else {
            panic!("cc-z must not decode");
        };
        let err = err.to_string();
        assert!(err.contains("bb-"), "last error surfaces: {err}");
    }
}
