//! Contract serialization for logical logging.
//!
//! OE chains persist *input blocks* (transaction commands) rather than
//! effects. To re-execute after recovery, someone must turn the persisted
//! bytes back into executable contracts — that is the smart-contract
//! registry's job, abstracted as [`ContractCodec`]. Each workload ships a
//! codec for its own procedures.

use std::sync::Arc;

use harmony_common::Result;

use crate::contract::Contract;

/// Serialize a contract in the default wire format
/// `[name_len u16][name][payload]` — usable without a codec instance
/// (ordering services encode; only replay needs the decoding registry).
#[must_use]
pub fn encode_contract(contract: &dyn Contract) -> Vec<u8> {
    let name = contract.name().as_bytes();
    let payload = contract.payload();
    let mut out = Vec::with_capacity(2 + name.len() + payload.len());
    out.extend_from_slice(
        &u16::try_from(name.len())
            .expect("name length")
            .to_le_bytes(),
    );
    out.extend_from_slice(name);
    out.extend_from_slice(&payload);
    out
}

/// Encodes/decodes contracts for the logical block log.
pub trait ContractCodec: Send + Sync {
    /// Serialize a contract (default wire format: [`encode_contract`]).
    fn encode(&self, contract: &dyn Contract) -> Vec<u8> {
        encode_contract(contract)
    }

    /// Reconstruct an executable contract from its serialized form.
    fn decode(&self, bytes: &[u8]) -> Result<Arc<dyn Contract>>;
}

/// Split the default wire format into `(name, payload)`.
pub fn split_encoded(bytes: &[u8]) -> Result<(&str, &[u8])> {
    if bytes.len() < 2 {
        return Err(harmony_common::Error::Corruption(
            "encoded contract too short".into(),
        ));
    }
    let name_len = u16::from_le_bytes([bytes[0], bytes[1]]) as usize;
    if bytes.len() < 2 + name_len {
        return Err(harmony_common::Error::Corruption(
            "encoded contract name truncated".into(),
        ));
    }
    let name = std::str::from_utf8(&bytes[2..2 + name_len])
        .map_err(|_| harmony_common::Error::Corruption("contract name not utf-8".into()))?;
    Ok((name, &bytes[2 + name_len..]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::FnContract;
    use crate::ctx::TxnCtx;

    struct NopCodec;

    impl ContractCodec for NopCodec {
        fn decode(&self, bytes: &[u8]) -> Result<Arc<dyn Contract>> {
            let (name, payload) = split_encoded(bytes)?;
            let name = name.to_string();
            let payload = payload.to_vec();
            Ok(Arc::new(
                FnContract::new(name, move |_: &mut TxnCtx<'_>| Ok(())).with_payload(payload),
            ))
        }
    }

    #[test]
    fn roundtrip_default_format() {
        let c = FnContract::new("demo", |_: &mut TxnCtx<'_>| Ok(())).with_payload(vec![1, 2, 3]);
        let codec = NopCodec;
        let bytes = codec.encode(&c);
        let decoded = codec.decode(&bytes).unwrap();
        assert_eq!(decoded.name(), "demo");
        assert_eq!(decoded.payload(), vec![1, 2, 3]);
    }

    #[test]
    fn truncated_rejected() {
        let codec = NopCodec;
        assert!(codec.decode(&[5]).is_err());
        assert!(codec.decode(&[9, 0, b'x']).is_err());
    }
}
