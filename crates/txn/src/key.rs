//! Table-qualified row keys and values.

use std::fmt;
use std::hash::{Hash, Hasher};

use bytes::Bytes;
use harmony_common::hash::{fnv1a64, fnv1a64_seeded};
use harmony_common::ids::TableId;

/// A row value. `Bytes` keeps clones cheap: values flow through read sets,
/// update commands and undo records.
pub type Value = Bytes;

/// A table-qualified row key with a cached stable hash.
///
/// The 64-bit FNV-1a digest of `table ∥ row` is computed **once** at
/// construction and reused everywhere the key is hashed afterwards —
/// snapshot/reservation shard selection and (via a pass-through hasher
/// like [`harmony_common::hash::NoRehash`]) every hash-map probe on the
/// execution hot path. Because the digest is FNV-1a rather than `std`'s
/// release-unstable `DefaultHasher`, hash-derived placement is identical
/// across platforms and compiler versions — a correctness property for a
/// deterministic system, not just a perf knob.
///
/// Fields are private so the cached digest can never drift from the
/// `(table, row)` pair it was computed over; use [`Key::table`],
/// [`Key::row`] and [`Key::into_row`] to access them.
#[derive(Clone)]
pub struct Key {
    table: TableId,
    row: Bytes,
    hash: u64,
}

impl Key {
    /// Build a key (computes and caches the stable hash).
    pub fn new(table: TableId, row: impl Into<Bytes>) -> Key {
        let row = row.into();
        let hash = fnv1a64_seeded(fnv1a64(&table.0.to_be_bytes()), &row);
        Key { table, row, hash }
    }

    /// Convenience constructor from a `u64` row id (big-endian so byte
    /// order matches numeric order in the B+Tree).
    #[must_use]
    pub fn from_u64(table: TableId, id: u64) -> Key {
        Key::new(table, id.to_be_bytes().to_vec())
    }

    /// Table the row lives in.
    #[inline]
    #[must_use]
    pub fn table(&self) -> TableId {
        self.table
    }

    /// Row key bytes within the table.
    #[inline]
    #[must_use]
    pub fn row(&self) -> &Bytes {
        &self.row
    }

    /// Consume the key, yielding its row bytes (no copy).
    #[inline]
    #[must_use]
    pub fn into_row(self) -> Bytes {
        self.row
    }

    /// The cached 64-bit FNV-1a digest of `table ∥ row`.
    #[inline]
    #[must_use]
    pub fn hash64(&self) -> u64 {
        self.hash
    }
}

impl PartialEq for Key {
    fn eq(&self, other: &Key) -> bool {
        // The cached digest is a pure function of (table, row): a mismatch
        // proves inequality without touching the row bytes.
        self.hash == other.hash && self.table == other.table && self.row == other.row
    }
}

impl Eq for Key {}

impl Hash for Key {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Key) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Key) -> std::cmp::Ordering {
        // Ordering ignores the cached hash: keys sort by (table, row) so
        // ordered containers and deterministic tie-breaks see byte order.
        (self.table, &self.row).cmp(&(other.table, &other.row))
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.table.0, HexOrText(&self.row))
    }
}

struct HexOrText<'a>(&'a [u8]);

impl fmt::Display for HexOrText<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.iter().all(|b| b.is_ascii_graphic()) && !self.0.is_empty() {
            write!(f, "{}", String::from_utf8_lossy(self.0))
        } else {
            for b in self.0 {
                write!(f, "{b:02x}")?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_equality_and_hash() {
        use std::collections::HashSet;
        let a = Key::new(TableId(1), &b"alice"[..]);
        let b = Key::new(TableId(1), b"alice".to_vec());
        let c = Key::new(TableId(2), &b"alice"[..]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut set = HashSet::new();
        set.insert(a.clone());
        assert!(set.contains(&b));
        assert!(!set.contains(&c));
    }

    #[test]
    fn from_u64_preserves_order() {
        let a = Key::from_u64(TableId(0), 5);
        let b = Key::from_u64(TableId(0), 300);
        assert!(a.row() < b.row(), "big-endian keys sort numerically");
        assert!(a < b, "key order follows row order within a table");
    }

    #[test]
    fn cached_hash_is_stable_fnv_of_table_and_row() {
        let k = Key::new(TableId(7), &b"acct-1"[..]);
        let expected = fnv1a64_seeded(fnv1a64(&7u16.to_be_bytes()), b"acct-1");
        assert_eq!(k.hash64(), expected);
        // Same digest regardless of how the row buffer was produced.
        assert_eq!(Key::new(TableId(7), b"acct-1".to_vec()).hash64(), expected);
    }

    #[test]
    fn hash_distinguishes_tables_with_same_row() {
        let a = Key::new(TableId(1), &b"row"[..]);
        let b = Key::new(TableId(2), &b"row"[..]);
        assert_ne!(a.hash64(), b.hash64());
    }

    #[test]
    fn std_hash_emits_cached_digest() {
        use harmony_common::hash::BuildNoRehash;
        use std::hash::BuildHasher;
        let k = Key::new(TableId(3), &b"k"[..]);
        let h = BuildNoRehash::default().hash_one(&k);
        assert_eq!(h, k.hash64(), "pass-through hasher sees the cached hash");
    }

    #[test]
    fn debug_renders_text_and_hex() {
        let text = Key::new(TableId(3), &b"acct-9"[..]);
        assert_eq!(format!("{text:?}"), "3:acct-9");
        let bin = Key::new(TableId(3), vec![0u8, 255u8]);
        assert_eq!(format!("{bin:?}"), "3:00ff");
    }
}
