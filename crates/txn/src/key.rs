//! Table-qualified row keys and values.

use std::fmt;

use bytes::Bytes;
use harmony_common::ids::TableId;

/// A row value. `Bytes` keeps clones cheap: values flow through read sets,
/// update commands and undo records.
pub type Value = Bytes;

/// A table-qualified row key.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key {
    /// Table the row lives in.
    pub table: TableId,
    /// Row key bytes within the table.
    pub row: Bytes,
}

impl Key {
    /// Build a key.
    pub fn new(table: TableId, row: impl Into<Bytes>) -> Key {
        Key {
            table,
            row: row.into(),
        }
    }

    /// Convenience constructor from a `u64` row id (big-endian so byte
    /// order matches numeric order in the B+Tree).
    #[must_use]
    pub fn from_u64(table: TableId, id: u64) -> Key {
        Key::new(table, id.to_be_bytes().to_vec())
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.table.0, HexOrText(&self.row))
    }
}

struct HexOrText<'a>(&'a [u8]);

impl fmt::Display for HexOrText<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.iter().all(|b| b.is_ascii_graphic()) && !self.0.is_empty() {
            write!(f, "{}", String::from_utf8_lossy(self.0))
        } else {
            for b in self.0 {
                write!(f, "{b:02x}")?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_equality_and_hash() {
        use std::collections::HashSet;
        let a = Key::new(TableId(1), &b"alice"[..]);
        let b = Key::new(TableId(1), b"alice".to_vec());
        let c = Key::new(TableId(2), &b"alice"[..]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut set = HashSet::new();
        set.insert(a.clone());
        assert!(set.contains(&b));
        assert!(!set.contains(&c));
    }

    #[test]
    fn from_u64_preserves_order() {
        let a = Key::from_u64(TableId(0), 5);
        let b = Key::from_u64(TableId(0), 300);
        assert!(a.row < b.row, "big-endian keys sort numerically");
    }

    #[test]
    fn debug_renders_text_and_hex() {
        let text = Key::new(TableId(3), &b"acct-9"[..]);
        assert_eq!(format!("{text:?}"), "3:acct-9");
        let bin = Key::new(TableId(3), vec![0u8, 255u8]);
        assert_eq!(format!("{bin:?}"), "3:00ff");
    }
}
