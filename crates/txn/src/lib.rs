//! Transaction substrate: the vocabulary shared by every concurrency
//! control protocol in the workspace.
//!
//! * [`key`] — table-qualified row keys and values.
//! * [`update`] — *update commands* (`put`, `delete`, `add`, `mul`, …): the
//!   command-level write representation Harmony keeps in write-sets instead
//!   of evaluated values (§3.3 of the paper), with the coalescence algebra.
//! * [`rwset`] — read/write-set capture, including range predicates so
//!   phantom-producing scans participate in dependency tracking.
//! * [`ctx`] — [`TxnCtx`], the execution context handed to smart contracts:
//!   reads-own-writes, predicate reads, user aborts.
//! * [`contract`] — the [`Contract`] trait: stored procedures with
//!   data-dependent branches (the workloads that defeat static analysis).
//! * [`row`] — fixed-width row codec helpers used by the workloads.

pub mod codec;
pub mod contract;
pub mod ctx;
pub mod key;
pub mod row;
pub mod rwset;
pub mod update;

pub use codec::{encode_contract, split_encoded, ContractCodec, MultiCodec};
pub use contract::{Contract, FnContract, UserAbort};
pub use ctx::{SnapshotView, TxnCtx};
pub use key::{Key, Value};
pub use rwset::{RangePredicate, ReadRecord, RwSet};
pub use update::{CommandSeq, UpdateCommand};
