//! The transaction execution context.
//!
//! A [`TxnCtx`] is what a smart contract sees while it is *simulated*
//! against a block snapshot: reads go to the snapshot (or to the
//! transaction's own pending writes — corner case (1) of Algorithm 2),
//! writes are captured as update commands, scans register range predicates
//! so phantoms are covered by dependency tracking.

use bytes::Bytes;
use harmony_common::ids::TableId;
use harmony_common::Result;

use crate::contract::UserAbort;
use crate::key::{Key, Value};
use crate::rwset::{RangePredicate, RwSet};
use crate::update::UpdateCommand;

/// A read-only view of a deterministic block snapshot.
///
/// Implementations: the MVCC overlay in `harmony-core` (block snapshots),
/// plain storage (single-node execution), or endorser-local state (SOV
/// simulation, possibly stale).
pub trait SnapshotView: Sync {
    /// Point read.
    fn get(&self, key: &Key) -> Result<Option<Value>>;

    /// Ordered scan of `[start, end)` in `table`; stop when `f` returns
    /// `false`.
    fn scan(
        &self,
        table: TableId,
        start: &[u8],
        end: Option<&[u8]>,
        f: &mut dyn FnMut(&[u8], &Value) -> bool,
    ) -> Result<()>;

    /// Version (last-writer TID) of `key`, if the view tracks versions.
    /// SOV validation compares these to detect stale reads.
    fn version_of(&self, _key: &Key) -> Option<u64> {
        None
    }
}

/// Execution context handed to [`crate::contract::Contract::execute`].
pub struct TxnCtx<'a> {
    view: &'a dyn SnapshotView,
    rwset: RwSet,
}

impl<'a> TxnCtx<'a> {
    /// Create a context over a snapshot view.
    pub fn new(view: &'a dyn SnapshotView) -> TxnCtx<'a> {
        TxnCtx {
            view,
            rwset: RwSet::default(),
        }
    }

    /// Read a record. Own pending updates are visible (read-your-writes);
    /// a read whose value depends on the snapshot records a read-set entry.
    pub fn read(&mut self, key: &Key) -> Result<Option<Value>> {
        if let Some(seq) = self.rwset.pending_for(key) {
            let seq = seq.clone();
            let depends_on_snapshot = seq.commands().first().is_none_or(UpdateCommand::is_rmw);
            let base = if depends_on_snapshot {
                let v = self.view.get(key)?;
                self.rwset
                    .record_read(key.clone(), self.view.version_of(key));
                v
            } else {
                None
            };
            return seq.apply(base.as_ref());
        }
        let v = self.view.get(key)?;
        self.rwset
            .record_read(key.clone(), self.view.version_of(key));
        Ok(v)
    }

    /// Record an update command against `key`.
    pub fn update(&mut self, key: Key, cmd: UpdateCommand) {
        self.rwset.record_update(key, cmd);
    }

    /// Blind overwrite (also used for inserts).
    pub fn put(&mut self, key: Key, value: impl Into<Value>) {
        self.update(key, UpdateCommand::Put(value.into()));
    }

    /// Delete a record.
    pub fn delete(&mut self, key: Key) {
        self.update(key, UpdateCommand::Delete);
    }

    /// Read-modify-write: add to a little-endian `i64` field — the SQL
    /// `UPDATE t SET f = f + delta` shape Harmony reorders and coalesces.
    pub fn add_i64(&mut self, key: Key, offset: usize, delta: i64) {
        self.update(key, UpdateCommand::AddI64 { offset, delta });
    }

    /// Read-modify-write: add to a little-endian `f64` field.
    pub fn add_f64(&mut self, key: Key, offset: usize, delta: f64) {
        self.update(key, UpdateCommand::AddF64 { offset, delta });
    }

    /// Ordered scan of `[start, end)` returning at most `limit` rows. The
    /// predicate joins the read set; the transaction's own pending writes
    /// in range are merged into the result.
    pub fn scan(
        &mut self,
        table: TableId,
        start: &[u8],
        end: Option<&[u8]>,
        limit: usize,
    ) -> Result<Vec<(Bytes, Value)>> {
        self.rwset.record_scan(RangePredicate {
            table,
            start: Bytes::copy_from_slice(start),
            end: end.map(Bytes::copy_from_slice),
        });
        let mut rows: Vec<(Bytes, Value)> = Vec::new();
        self.view.scan(table, start, end, &mut |k, v| {
            rows.push((Bytes::copy_from_slice(k), v.clone()));
            // Over-collect a little so pending deletes cannot starve the
            // limit; trimmed after the merge below.
            rows.len() < limit.saturating_mul(2).max(limit + 8)
        })?;
        // Merge own pending writes that fall inside the range.
        let pending: Vec<(Key, Option<Value>)> = self
            .rwset
            .updates
            .iter()
            .filter(|(k, _)| {
                k.table() == table
                    && k.row().as_ref() >= start
                    && end.is_none_or(|e| k.row().as_ref() < e)
            })
            .map(|(k, seq)| {
                let base = rows
                    .iter()
                    .find(|(rk, _)| rk == k.row())
                    .map(|(_, v)| v.clone());
                (k.clone(), seq.apply(base.as_ref()).unwrap_or(None))
            })
            .collect();
        for (k, v) in pending {
            rows.retain(|(rk, _)| rk != k.row());
            if let Some(v) = v {
                rows.push((k.into_row(), v));
            }
        }
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows.truncate(limit);
        // Returned rows join the read set with their observed versions.
        for (row, _) in &rows {
            let key = Key::new(table, row.clone());
            let version = self.view.version_of(&key);
            self.rwset.record_read(key, version);
        }
        Ok(rows)
    }

    /// Abort the transaction from contract logic (e.g. insufficient
    /// balance). Returned as `Err` so `?` propagates it.
    pub fn user_abort<T>(&self, reason: impl Into<String>) -> Result<T, UserAbort> {
        Err(UserAbort(reason.into()))
    }

    /// Consume the context, yielding the captured read-write set.
    #[must_use]
    pub fn into_rwset(self) -> RwSet {
        self.rwset
    }

    /// Inspect the read-write set captured so far.
    #[must_use]
    pub fn rwset(&self) -> &RwSet {
        &self.rwset
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::collections::BTreeMap;

    /// Simple in-memory snapshot for tests.
    #[derive(Default)]
    pub struct MapView {
        #[allow(clippy::type_complexity)]
        rows: Mutex<BTreeMap<(u16, Vec<u8>), (Value, u64)>>,
    }

    impl MapView {
        fn insert(&self, table: u16, row: &[u8], value: &[u8], version: u64) {
            self.rows.lock().insert(
                (table, row.to_vec()),
                (Bytes::copy_from_slice(value), version),
            );
        }
    }

    impl SnapshotView for MapView {
        fn get(&self, key: &Key) -> Result<Option<Value>> {
            Ok(self
                .rows
                .lock()
                .get(&(key.table().0, key.row().to_vec()))
                .map(|(v, _)| v.clone()))
        }

        fn scan(
            &self,
            table: TableId,
            start: &[u8],
            end: Option<&[u8]>,
            f: &mut dyn FnMut(&[u8], &Value) -> bool,
        ) -> Result<()> {
            for ((t, row), (v, _)) in self.rows.lock().iter() {
                if *t != table.0 || row.as_slice() < start {
                    continue;
                }
                if let Some(e) = end {
                    if row.as_slice() >= e {
                        continue;
                    }
                }
                if !f(row, v) {
                    break;
                }
            }
            Ok(())
        }

        fn version_of(&self, key: &Key) -> Option<u64> {
            self.rows
                .lock()
                .get(&(key.table().0, key.row().to_vec()))
                .map(|(_, ver)| *ver)
        }
    }

    fn k(row: &str) -> Key {
        Key::new(TableId(0), row.as_bytes().to_vec())
    }

    fn i64v(n: i64) -> Vec<u8> {
        n.to_le_bytes().to_vec()
    }

    #[test]
    fn read_records_version() {
        let view = MapView::default();
        view.insert(0, b"a", &i64v(5), 42);
        let mut ctx = TxnCtx::new(&view);
        let v = ctx.read(&k("a")).unwrap().unwrap();
        assert_eq!(v.as_ref(), i64v(5));
        let rw = ctx.into_rwset();
        assert_eq!(rw.reads.len(), 1);
        assert_eq!(rw.reads[0].version, Some(42));
    }

    #[test]
    fn read_your_own_blind_write_skips_read_set() {
        let view = MapView::default();
        let mut ctx = TxnCtx::new(&view);
        ctx.put(k("new"), i64v(9));
        let v = ctx.read(&k("new")).unwrap().unwrap();
        assert_eq!(v.as_ref(), i64v(9));
        // Value independent of snapshot => no rw-dependency created.
        assert!(ctx.rwset().reads.is_empty());
    }

    #[test]
    fn read_your_own_rmw_records_read() {
        let view = MapView::default();
        view.insert(0, b"x", &i64v(10), 1);
        let mut ctx = TxnCtx::new(&view);
        ctx.add_i64(k("x"), 0, 5);
        let v = ctx.read(&k("x")).unwrap().unwrap();
        assert_eq!(v.as_ref(), i64v(15), "pending add applied to snapshot");
        assert_eq!(ctx.rwset().reads.len(), 1, "RMW read depends on snapshot");
    }

    #[test]
    fn deleted_by_self_reads_none() {
        let view = MapView::default();
        view.insert(0, b"gone", &i64v(1), 1);
        let mut ctx = TxnCtx::new(&view);
        ctx.delete(k("gone"));
        assert!(ctx.read(&k("gone")).unwrap().is_none());
    }

    #[test]
    fn scan_merges_pending_writes() {
        let view = MapView::default();
        view.insert(0, b"b", &i64v(2), 1);
        view.insert(0, b"c", &i64v(3), 1);
        view.insert(0, b"d", &i64v(4), 1);
        let mut ctx = TxnCtx::new(&view);
        ctx.put(k("a"), i64v(1)); // insert before range start? "a" < "b"
        ctx.put(k("bb"), i64v(22)); // insert inside range
        ctx.delete(k("c")); // delete inside range
        let rows = ctx.scan(TableId(0), b"b", Some(b"e"), 10).unwrap();
        let keys: Vec<&[u8]> = rows.iter().map(|(kk, _)| kk.as_ref()).collect();
        assert_eq!(keys, vec![b"b".as_ref(), b"bb".as_ref(), b"d".as_ref()]);
        // Predicate registered.
        assert_eq!(ctx.rwset().scans.len(), 1);
    }

    #[test]
    fn scan_respects_limit() {
        let view = MapView::default();
        for i in 0..20u8 {
            view.insert(0, &[i], &i64v(i64::from(i)), 1);
        }
        let mut ctx = TxnCtx::new(&view);
        let rows = ctx.scan(TableId(0), &[0], None, 5).unwrap();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[4].0.as_ref(), &[4]);
    }

    #[test]
    fn scan_records_row_reads() {
        let view = MapView::default();
        view.insert(0, b"p", &i64v(1), 7);
        let mut ctx = TxnCtx::new(&view);
        ctx.scan(TableId(0), b"p", None, 10).unwrap();
        let rw = ctx.into_rwset();
        assert_eq!(rw.reads.len(), 1);
        assert_eq!(rw.reads[0].version, Some(7));
    }

    #[test]
    fn user_abort_propagates() {
        let view = MapView::default();
        let ctx = TxnCtx::new(&view);
        let r: Result<(), UserAbort> = ctx.user_abort("insufficient funds");
        assert_eq!(r.unwrap_err().0, "insufficient funds");
    }
}
