//! Fixed-width row codec helpers.
//!
//! Workload schemas (Smallbank balances, TPC-C rows) are encoded as
//! fixed-offset little-endian fields so that `AddI64 { offset, .. }`-style
//! update commands can patch individual columns. `RowBuilder` returns the
//! offset of each appended field, which workloads store as schema
//! constants.

use bytes::Bytes;
use harmony_common::{Error, Result};

/// Read a little-endian `i64` field.
pub fn read_i64(v: &[u8], offset: usize) -> Result<i64> {
    field(v, offset).map(|b| i64::from_le_bytes(b.try_into().expect("8 bytes")))
}

/// Read a little-endian `f64` field.
pub fn read_f64(v: &[u8], offset: usize) -> Result<f64> {
    field(v, offset).map(|b| f64::from_le_bytes(b.try_into().expect("8 bytes")))
}

/// Read a little-endian `u64` field.
pub fn read_u64(v: &[u8], offset: usize) -> Result<u64> {
    field(v, offset).map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
}

fn field(v: &[u8], offset: usize) -> Result<&[u8]> {
    v.get(offset..offset + 8).ok_or_else(|| {
        Error::InvalidArgument(format!(
            "field at {offset} outside row of {} bytes",
            v.len()
        ))
    })
}

/// Builder for fixed-width rows. `push_*` methods return the field offset.
#[derive(Default, Clone, Debug)]
pub struct RowBuilder {
    buf: Vec<u8>,
}

impl RowBuilder {
    /// Empty builder.
    #[must_use]
    pub fn new() -> RowBuilder {
        RowBuilder::default()
    }

    /// Append an `i64`; returns its offset.
    pub fn push_i64(&mut self, v: i64) -> usize {
        let off = self.buf.len();
        self.buf.extend_from_slice(&v.to_le_bytes());
        off
    }

    /// Append an `f64`; returns its offset.
    pub fn push_f64(&mut self, v: f64) -> usize {
        let off = self.buf.len();
        self.buf.extend_from_slice(&v.to_le_bytes());
        off
    }

    /// Append a `u64`; returns its offset.
    pub fn push_u64(&mut self, v: u64) -> usize {
        let off = self.buf.len();
        self.buf.extend_from_slice(&v.to_le_bytes());
        off
    }

    /// Append fixed-width padding bytes (simulating wide columns); returns
    /// the offset.
    pub fn push_pad(&mut self, len: usize, fill: u8) -> usize {
        let off = self.buf.len();
        self.buf.resize(off + len, fill);
        off
    }

    /// Finish the row.
    #[must_use]
    pub fn finish(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Current length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been appended.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_offsets_and_reads() {
        let mut b = RowBuilder::new();
        let o1 = b.push_i64(-5);
        let o2 = b.push_f64(2.5);
        let o3 = b.push_u64(77);
        let o4 = b.push_pad(10, 0xAA);
        assert_eq!((o1, o2, o3, o4), (0, 8, 16, 24));
        let row = b.finish();
        assert_eq!(row.len(), 34);
        assert_eq!(read_i64(&row, o1).unwrap(), -5);
        assert_eq!(read_f64(&row, o2).unwrap(), 2.5);
        assert_eq!(read_u64(&row, o3).unwrap(), 77);
        assert_eq!(row[o4], 0xAA);
    }

    #[test]
    fn out_of_range_read_errors() {
        let row = vec![0u8; 8];
        assert!(read_i64(&row, 0).is_ok());
        assert!(read_i64(&row, 1).is_err());
        assert!(read_i64(&row, 100).is_err());
    }
}
