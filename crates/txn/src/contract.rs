//! Smart contracts (stored procedures).
//!
//! A contract is arbitrary Rust logic executed against a [`TxnCtx`] — it
//! may branch on query results, loop, scan, and abort. This is precisely
//! the class of workloads where pessimistic DCC's static analysis fails
//! (§2.2.1 of the paper) and where ODCC protocols like Harmony shine: the
//! read-write set is discovered *by running the contract*, never declared.
//!
//! Orthogonally, a contract *may* declare the superset of point keys it can
//! touch ([`Contract::declared_keys`]). Declaration is never required for
//! correctness — it only lets the shard router place a transaction on a
//! single shard instead of the conservative multi-partition path.

use crate::ctx::TxnCtx;
use crate::key::Key;

/// A transaction aborted by its own logic (business rule), e.g.
/// "insufficient balance". Distinct from protocol-induced aborts: user
/// aborts are deterministic and final (no retry).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UserAbort(pub String);

impl std::fmt::Display for UserAbort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "user abort: {}", self.0)
    }
}

impl std::error::Error for UserAbort {}

/// A smart contract / stored procedure.
pub trait Contract: Send + Sync {
    /// Execute against the given context. Reads/writes are captured by the
    /// context; returning `Err` is a deterministic business abort.
    ///
    /// # Errors
    /// Returns [`UserAbort`] when the contract's own logic rejects the
    /// transaction.
    fn execute(&self, ctx: &mut TxnCtx<'_>) -> Result<(), UserAbort>;

    /// Human-readable name (for logging and stats).
    fn name(&self) -> &str {
        "contract"
    }

    /// Serialized form included in block payloads (hashed into the Merkle
    /// root). Defaults to the name; workloads encode their parameters.
    fn payload(&self) -> Vec<u8> {
        self.name().as_bytes().to_vec()
    }

    /// Extra simulated compute this transaction performs besides data
    /// access (straggler modelling for inter-block-parallelism tests).
    fn think_time_ns(&self) -> u64 {
        0
    }

    /// The complete set of point keys this transaction may touch, if the
    /// submitter can declare it a priori (Calvin-style). Used by the shard
    /// router to place transactions without a reconnaissance run: a
    /// declared footprint confined to one partition makes the transaction
    /// single-shard; `None` (the general contract case — data-dependent
    /// accesses, scans) is routed conservatively as multi-partition.
    fn declared_keys(&self) -> Option<&[Key]> {
        None
    }
}

/// Adapter turning a closure into a [`Contract`].
pub struct FnContract<F> {
    name: String,
    payload: Vec<u8>,
    think_ns: u64,
    footprint: Option<Vec<Key>>,
    f: F,
}

impl<F> FnContract<F>
where
    F: Fn(&mut TxnCtx<'_>) -> Result<(), UserAbort> + Send + Sync,
{
    /// Wrap a closure.
    pub fn new(name: impl Into<String>, f: F) -> FnContract<F> {
        let name = name.into();
        FnContract {
            payload: name.as_bytes().to_vec(),
            name,
            think_ns: 0,
            footprint: None,
            f,
        }
    }

    /// Attach a payload (identifies the transaction in block hashes).
    #[must_use]
    pub fn with_payload(mut self, payload: Vec<u8>) -> Self {
        self.payload = payload;
        self
    }

    /// Attach simulated extra compute.
    #[must_use]
    pub fn with_think_time(mut self, ns: u64) -> Self {
        self.think_ns = ns;
        self
    }

    /// Declare the complete point-key footprint (enables single-shard
    /// routing; see [`Contract::declared_keys`]).
    #[must_use]
    pub fn with_footprint(mut self, keys: Vec<Key>) -> Self {
        self.footprint = Some(keys);
        self
    }
}

impl<F> Contract for FnContract<F>
where
    F: Fn(&mut TxnCtx<'_>) -> Result<(), UserAbort> + Send + Sync,
{
    fn execute(&self, ctx: &mut TxnCtx<'_>) -> Result<(), UserAbort> {
        (self.f)(ctx)
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn payload(&self) -> Vec<u8> {
        self.payload.clone()
    }

    fn think_time_ns(&self) -> u64 {
        self.think_ns
    }

    fn declared_keys(&self) -> Option<&[Key]> {
        self.footprint.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::SnapshotView;
    use crate::key::{Key, Value};
    use harmony_common::ids::TableId;
    use harmony_common::Result;

    struct EmptyView;

    impl SnapshotView for EmptyView {
        fn get(&self, _key: &Key) -> Result<Option<Value>> {
            Ok(None)
        }
        fn scan(
            &self,
            _table: TableId,
            _start: &[u8],
            _end: Option<&[u8]>,
            _f: &mut dyn FnMut(&[u8], &Value) -> bool,
        ) -> Result<()> {
            Ok(())
        }
    }

    #[test]
    fn fn_contract_executes_and_captures() {
        let c = FnContract::new("touch", |ctx: &mut TxnCtx<'_>| {
            ctx.put(Key::from_u64(TableId(0), 1), vec![1u8]);
            Ok(())
        });
        let mut ctx = TxnCtx::new(&EmptyView);
        c.execute(&mut ctx).unwrap();
        assert_eq!(ctx.rwset().updates.len(), 1);
        assert_eq!(c.name(), "touch");
        assert_eq!(c.payload(), b"touch");
    }

    #[test]
    fn fn_contract_branches_on_read() {
        // Data-dependent branching: the write set depends on what was read
        // — exactly what static analysis cannot pre-compute.
        let c = FnContract::new("branchy", |ctx: &mut TxnCtx<'_>| {
            let key = Key::from_u64(TableId(0), 7);
            match ctx.read(&key).map_err(|e| UserAbort(e.to_string()))? {
                Some(_) => ctx.put(Key::from_u64(TableId(0), 8), vec![1]),
                None => ctx.put(Key::from_u64(TableId(0), 9), vec![2]),
            }
            Ok(())
        });
        let mut ctx = TxnCtx::new(&EmptyView);
        c.execute(&mut ctx).unwrap();
        let rw = ctx.into_rwset();
        assert_eq!(rw.updates[0].0, Key::from_u64(TableId(0), 9));
    }

    #[test]
    fn user_abort_from_contract() {
        let c = FnContract::new("abort", |ctx: &mut TxnCtx<'_>| ctx.user_abort("no funds"));
        let mut ctx = TxnCtx::new(&EmptyView);
        assert_eq!(c.execute(&mut ctx).unwrap_err().0, "no funds");
    }

    #[test]
    fn builder_options() {
        let c = FnContract::new("x", |_: &mut TxnCtx<'_>| Ok(()))
            .with_payload(vec![9, 9])
            .with_think_time(1234);
        assert_eq!(c.payload(), vec![9, 9]);
        assert_eq!(c.think_time_ns(), 1234);
        assert!(c.declared_keys().is_none(), "footprint is opt-in");
    }

    #[test]
    fn footprint_is_declared() {
        let keys = vec![Key::from_u64(TableId(0), 1), Key::from_u64(TableId(1), 2)];
        let c = FnContract::new("x", |_: &mut TxnCtx<'_>| Ok(())).with_footprint(keys.clone());
        assert_eq!(c.declared_keys(), Some(keys.as_slice()));
    }
}
