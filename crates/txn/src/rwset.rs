//! Read/write-set capture.
//!
//! Every ODCC in the taxonomy (Table 2c of the paper) first obtains a
//! deterministic read-write set by simulating the transaction against a
//! block snapshot. `RwSet` is that artifact: point reads (with the version
//! observed, for SOV stale-read validation), range predicates (so scans
//! participate in dependency detection — no phantoms), and the ordered
//! update commands.

use bytes::Bytes;
use harmony_common::ids::TableId;

use crate::key::Key;
use crate::update::{CommandSeq, UpdateCommand};

/// One point read and the version it observed (`None` = key absent).
///
/// Versions are the TID of the last writer, which is how Fabric-style
/// validation detects stale reads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReadRecord {
    /// What was read.
    pub key: Key,
    /// Version observed at simulation time.
    pub version: Option<u64>,
}

/// A range predicate registered by a scan: `[start, end)` in `table`
/// (`end = None` = unbounded).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RangePredicate {
    /// Table scanned.
    pub table: TableId,
    /// Inclusive start of the scanned range.
    pub start: Bytes,
    /// Exclusive end, or `None` for an unbounded scan.
    pub end: Option<Bytes>,
}

impl RangePredicate {
    /// Whether `key` falls inside the predicate.
    #[must_use]
    pub fn covers(&self, key: &Key) -> bool {
        if key.table() != self.table || *key.row() < self.start {
            return false;
        }
        match &self.end {
            Some(end) => key.row() < end,
            None => true,
        }
    }
}

/// The deterministic read-write set produced by one simulation.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RwSet {
    /// Point reads in program order (deduplicated per key).
    pub reads: Vec<ReadRecord>,
    /// Range predicates registered by scans.
    pub scans: Vec<RangePredicate>,
    /// Update commands per key, folded into per-key sequences, in first-
    /// touch order.
    pub updates: Vec<(Key, CommandSeq)>,
}

impl RwSet {
    /// Record a point read (first observation per key wins).
    pub fn record_read(&mut self, key: Key, version: Option<u64>) {
        if !self.reads.iter().any(|r| r.key == key) {
            self.reads.push(ReadRecord { key, version });
        }
    }

    /// Record a scan predicate.
    pub fn record_scan(&mut self, pred: RangePredicate) {
        if !self.scans.contains(&pred) {
            self.scans.push(pred);
        }
    }

    /// Record an update command (folds into the key's sequence — corner
    /// case (2) of Algorithm 2: a transaction updating `x` twice keeps at
    /// most one command slot for `x`).
    pub fn record_update(&mut self, key: Key, cmd: UpdateCommand) {
        if let Some((_, seq)) = self.updates.iter_mut().find(|(k, _)| *k == key) {
            seq.push(cmd);
        } else {
            self.updates.push((key, CommandSeq::of(cmd)));
        }
    }

    /// The pending command sequence for `key`, if the transaction updated
    /// it (used for reads-own-writes).
    #[must_use]
    pub fn pending_for(&self, key: &Key) -> Option<&CommandSeq> {
        self.updates
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, seq)| seq)
    }

    /// Keys written by this transaction.
    pub fn write_keys(&self) -> impl Iterator<Item = &Key> {
        self.updates.iter().map(|(k, _)| k)
    }

    /// Keys read by this transaction (point reads only).
    pub fn read_keys(&self) -> impl Iterator<Item = &Key> {
        self.reads.iter().map(|r| &r.key)
    }

    /// Whether `key` is covered by any point read or scan predicate.
    #[must_use]
    pub fn reads_cover(&self, key: &Key) -> bool {
        self.reads.iter().any(|r| r.key == *key) || self.scans.iter().any(|s| s.covers(key))
    }

    /// Total number of operations captured (for cost accounting).
    #[must_use]
    pub fn op_count(&self) -> usize {
        self.reads.len() + self.scans.len() + self.updates.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(table: u16, row: &str) -> Key {
        Key::new(TableId(table), row.as_bytes().to_vec())
    }

    #[test]
    fn reads_dedupe_first_version_wins() {
        let mut rw = RwSet::default();
        rw.record_read(key(0, "a"), Some(5));
        rw.record_read(key(0, "a"), Some(9));
        rw.record_read(key(0, "b"), None);
        assert_eq!(rw.reads.len(), 2);
        assert_eq!(rw.reads[0].version, Some(5));
    }

    #[test]
    fn updates_fold_per_key() {
        let mut rw = RwSet::default();
        rw.record_update(
            key(0, "x"),
            UpdateCommand::AddI64 {
                offset: 0,
                delta: 1,
            },
        );
        rw.record_update(
            key(0, "x"),
            UpdateCommand::AddI64 {
                offset: 0,
                delta: 2,
            },
        );
        rw.record_update(key(0, "y"), UpdateCommand::Delete);
        assert_eq!(rw.updates.len(), 2);
        assert_eq!(rw.pending_for(&key(0, "x")).unwrap().len(), 1);
        assert!(rw.pending_for(&key(0, "z")).is_none());
    }

    #[test]
    fn predicate_covers() {
        let pred = RangePredicate {
            table: TableId(1),
            start: Bytes::from_static(b"c"),
            end: Some(Bytes::from_static(b"m")),
        };
        assert!(pred.covers(&key(1, "d")));
        assert!(pred.covers(&key(1, "c")));
        assert!(!pred.covers(&key(1, "m")), "end is exclusive");
        assert!(!pred.covers(&key(1, "a")));
        assert!(!pred.covers(&key(2, "d")), "different table");
        let unbounded = RangePredicate {
            table: TableId(1),
            start: Bytes::from_static(b"c"),
            end: None,
        };
        assert!(unbounded.covers(&key(1, "zzz")));
    }

    #[test]
    fn reads_cover_includes_scans() {
        let mut rw = RwSet::default();
        rw.record_read(key(0, "p"), None);
        rw.record_scan(RangePredicate {
            table: TableId(1),
            start: Bytes::from_static(b"a"),
            end: Some(Bytes::from_static(b"f")),
        });
        assert!(rw.reads_cover(&key(0, "p")));
        assert!(rw.reads_cover(&key(1, "b")), "phantom coverage via scan");
        assert!(!rw.reads_cover(&key(1, "g")));
    }

    #[test]
    fn scan_dedupe() {
        let mut rw = RwSet::default();
        let pred = RangePredicate {
            table: TableId(0),
            start: Bytes::from_static(b"a"),
            end: None,
        };
        rw.record_scan(pred.clone());
        rw.record_scan(pred);
        assert_eq!(rw.scans.len(), 1);
    }
}
