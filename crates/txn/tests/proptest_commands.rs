//! Property-based tests on the update-command algebra — the foundation of
//! Harmony's reordering/coalescence correctness.

use bytes::Bytes;
use harmony_txn::{CommandSeq, UpdateCommand, Value};
use proptest::prelude::*;

fn cmd_strategy() -> impl Strategy<Value = UpdateCommand> {
    prop_oneof![
        prop::collection::vec(any::<u8>(), 16..24).prop_map(|v| UpdateCommand::Put(Bytes::from(v))),
        Just(UpdateCommand::Delete),
        (0usize..2, -100i64..100).prop_map(|(slot, delta)| UpdateCommand::AddI64 {
            offset: slot * 8,
            delta,
        }),
        (0usize..2, prop::collection::vec(any::<u8>(), 1..8)).prop_map(|(slot, bytes)| {
            UpdateCommand::SetBytes {
                offset: slot * 8,
                bytes: Bytes::from(bytes),
            }
        }),
    ]
}

fn apply_raw(cmds: &[UpdateCommand], start: Option<Value>) -> Result<Option<Value>, ()> {
    let mut cur = start;
    for c in cmds {
        match c.apply(cur.as_ref()) {
            Ok(v) => cur = v,
            Err(_) => return Err(()),
        }
    }
    Ok(cur)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// CommandSeq's algebraic folding (Put absorbs prefixes, adjacent adds
    /// merge) never changes application semantics.
    #[test]
    fn folding_preserves_semantics(cmds in prop::collection::vec(cmd_strategy(), 1..12)) {
        let start = Some(Value::from(vec![7u8; 16]));
        let mut seq = CommandSeq::new();
        for c in &cmds {
            seq.push(c.clone());
        }
        match apply_raw(&cmds, start.clone()) {
            Ok(expect) => prop_assert_eq!(seq.apply(start.as_ref()).ok(), Some(expect)),
            Err(()) => { /* raw application errored (RMW on missing) —
                            seq may legally differ; skip */ }
        }
    }

    /// Folding never grows the sequence.
    #[test]
    fn folding_never_grows(cmds in prop::collection::vec(cmd_strategy(), 1..12)) {
        let mut seq = CommandSeq::new();
        for c in &cmds {
            seq.push(c.clone());
        }
        prop_assert!(seq.len() <= cmds.len());
    }

    /// extend() is associative with push(): building a sequence in two
    /// halves equals building it in one pass.
    #[test]
    fn extend_equals_pushes(
        left in prop::collection::vec(cmd_strategy(), 0..6),
        right in prop::collection::vec(cmd_strategy(), 0..6)
    ) {
        let mut whole = CommandSeq::new();
        for c in left.iter().chain(right.iter()) {
            whole.push(c.clone());
        }
        let mut a = CommandSeq::new();
        for c in &left {
            a.push(c.clone());
        }
        let mut b = CommandSeq::new();
        for c in &right {
            b.push(c.clone());
        }
        a.extend(&b);
        let start = Some(Value::from(vec![3u8; 16]));
        prop_assert_eq!(a.apply(start.as_ref()).ok(), whole.apply(start.as_ref()).ok());
    }

    /// Pure AddI64 sequences commute on the same field — the property that
    /// makes Harmony's hotspot coalescence exact for counter updates.
    #[test]
    fn adds_commute(mut deltas in prop::collection::vec(-50i64..50, 1..10)) {
        let start = Some(Value::from(0i64.to_le_bytes().to_vec()));
        let forward: Vec<UpdateCommand> = deltas
            .iter()
            .map(|&d| UpdateCommand::AddI64 { offset: 0, delta: d })
            .collect();
        let fwd = apply_raw(&forward, start.clone()).unwrap();
        deltas.reverse();
        let backward: Vec<UpdateCommand> = deltas
            .iter()
            .map(|&d| UpdateCommand::AddI64 { offset: 0, delta: d })
            .collect();
        let bwd = apply_raw(&backward, start).unwrap();
        prop_assert_eq!(fwd, bwd);
    }

    /// Blind Put always wins regardless of what preceded it.
    #[test]
    fn put_is_absorbing(
        cmds in prop::collection::vec(cmd_strategy(), 0..8),
        fin in prop::collection::vec(any::<u8>(), 16..24)
    ) {
        let mut seq = CommandSeq::new();
        for c in &cmds {
            seq.push(c.clone());
        }
        seq.push(UpdateCommand::Put(Bytes::from(fin.clone())));
        let out = seq.apply(None).unwrap();
        prop_assert_eq!(out, Some(Value::from(fin)));
        prop_assert_eq!(seq.len(), 1, "Put absorbs everything before it");
    }
}
