//! Regression for the spawn-time port TOCTOU: `harmonyctl spawn`
//! allocates ports by binding ephemeral listeners, releasing them, and
//! handing the addresses to child processes through the spec file —
//! so another process can steal a port inside that window, and a node
//! that loses the race used to fail its one `bind` and die. The node
//! runtime now retries `AddrInUse` with the cluster's deterministic
//! backoff policy: a transient holder delays startup, a permanent one
//! yields a typed error (never a hang or a panic).

use std::net::{SocketAddr, TcpListener};
use std::time::Duration;

use harmony_chain::ChainConfig;
use harmony_crypto::CryptoCost;
use harmony_node::{
    ClusterConfig, ClusterWorkload, MempoolConfig, OrderingMode, ReplicaConfig, RetryPolicy,
    SyncPolicy,
};
use harmony_sim::EngineKind;
use harmony_storage::StorageConfig;
use harmony_transport::{CtlClient, NodeRuntime, NodeRuntimeConfig};
use harmony_workloads::{OpenLoopConfig, SmallbankConfig};

/// Minimal flat single-replica cluster; layout = client 0, orderer 1
/// (which doubles as the single Kafka broker), replica 2.
fn cluster() -> ClusterConfig {
    ClusterConfig {
        replicas: 1,
        replica: ReplicaConfig {
            chain: ChainConfig {
                storage: StorageConfig::memory(),
                crypto: CryptoCost::free(),
                ..ChainConfig::default()
            },
            engine: EngineKind::Rbc,
            workers: 2,
            gossip_every: 4,
        },
        topology: None,
        workload: ClusterWorkload::Smallbank(SmallbankConfig {
            accounts: 100,
            ..SmallbankConfig::default()
        }),
        ordering: OrderingMode::Kafka { brokers: 1 },
        mempool: MempoolConfig::default(),
        open_loop: OpenLoopConfig {
            clients: 1,
            rate_tps: 1_000.0,
            hot_share: 0.0,
        },
        load_ns: 1_000_000,
        drain_ns: 10_000_000,
        block_txns: 10,
        batch_interval_ns: 500_000,
        window: 4,
        sync: SyncPolicy::default(),
        seed: 0xB19D,
        ..ClusterConfig::default()
    }
}

fn config_for(addr: SocketAddr) -> NodeRuntimeConfig {
    // Replica slot (index 2) is the only listener this test starts.
    NodeRuntimeConfig {
        cluster: cluster(),
        index: 2,
        peers: vec![None, None, Some(addr)],
        http: None,
    }
}

#[test]
fn node_comes_up_after_a_transient_port_holder_releases() {
    // Occupy a kernel-assigned port, hand the node that exact address,
    // and release the holder only after the node has started retrying.
    let holder = TcpListener::bind("127.0.0.1:0").expect("bind holder");
    let addr = holder.local_addr().expect("holder addr");
    let release = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(100));
        drop(holder);
    });
    // Default backoff: 4ms·2^n, ≈316ms of cumulative retry budget —
    // comfortably beyond the 100ms hold.
    let runtime = NodeRuntime::start(config_for(addr)).expect("bind retry must win the race");
    release.join().expect("release thread");
    CtlClient::connect(addr)
        .and_then(|mut c| c.shutdown())
        .expect("shutdown");
    runtime.join();
}

#[test]
fn permanently_stolen_port_fails_with_typed_error() {
    let holder = TcpListener::bind("127.0.0.1:0").expect("bind holder");
    let addr = holder.local_addr().expect("holder addr");
    let mut cfg = config_for(addr);
    // Tight budget so the failure is fast: 2 retries ≈ a few ms.
    cfg.cluster.sync_retry = RetryPolicy {
        base_timeout_ns: 1_000_000,
        max_backoff_ns: 2_000_000,
        max_retries: 2,
    };
    let started = std::time::Instant::now();
    assert!(
        NodeRuntime::start(cfg).is_err(),
        "a permanently occupied port must be a startup error"
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "bind retry must give up, not spin"
    );
    drop(holder);
}
