//! Wire-codec contract: every cluster message and control message
//! round-trips bit-identically through the codec, and no untrusted
//! input — truncation, bit flips, garbage — can make decoding panic.
//!
//! Message equality is checked as `encode(decode(encode(m))) ==
//! encode(m)`: contracts are trait objects without `PartialEq`, but a
//! bit-identical re-encoding is exactly the property the transport
//! needs (the bytes a replica hashes are the bytes the orderer sealed).

use std::sync::Arc;

use harmony_chain::{ChainBlock, StateSnapshot, TableDump};
use harmony_common::BlockId;
use harmony_crypto::{CryptoCost, Digest, KeyPair};
use harmony_node::cluster::Msg;
use harmony_node::{
    submission_trace, ClusterConfig, ClusterWorkload, ShardedSyncResponse, SyncFrom, SyncReplyBody,
    SyncResponse,
};
use harmony_transport::wire::{
    decode_ctl, encode_ctl, frame_tag, read_frame, CtlMsg, WireCodec, MAX_FRAME_BYTES,
};
use harmony_workloads::{SmallbankConfig, TpccConfig, YcsbConfig};
use proptest::prelude::*;

/// A workload fixture: the codec plus a pool of real generated
/// contracts to embed in Submit/Reject messages.
struct Fixture {
    codec: WireCodec,
    submissions: Vec<harmony_node::Submission>,
}

fn fixture(workload: ClusterWorkload) -> Fixture {
    let cfg = ClusterConfig {
        workload,
        ..ClusterConfig::default()
    };
    let submissions = submission_trace(&cfg, 24).expect("trace");
    Fixture {
        codec: WireCodec::new(cfg.workload.codec().expect("codec")),
        submissions,
    }
}

fn fixtures() -> Vec<Fixture> {
    vec![
        fixture(ClusterWorkload::Smallbank(SmallbankConfig {
            accounts: 200,
            ..SmallbankConfig::default()
        })),
        fixture(ClusterWorkload::Ycsb(YcsbConfig {
            keys: 500,
            ..YcsbConfig::default()
        })),
        fixture(ClusterWorkload::Tpcc(TpccConfig::default())),
    ]
}

fn digest(seed: u8) -> Digest {
    Digest([seed; 32])
}

fn block(id: u64, txns: Vec<Vec<u8>>, sealer_seed: u64) -> ChainBlock {
    let sealer = KeyPair::derive(b"wire-roundtrip", sealer_seed, CryptoCost::default());
    ChainBlock::seal(BlockId(id), digest(id as u8), txns, &sealer)
}

fn snapshot(height: u64, tables: usize) -> StateSnapshot {
    StateSnapshot {
        height: BlockId(height),
        last_hash: digest(0xA5),
        tables: (0..tables)
            .map(|t| TableDump {
                name: format!("table-{t}"),
                rows: (0..3u8)
                    .map(|r| (vec![t as u8, r], vec![r; (t % 5) + 1]))
                    .collect(),
            })
            .collect(),
        undo: Vec::new(),
        summary: None,
    }
}

/// Every Msg variant, exercised across all three workload codecs.
#[test]
fn every_msg_variant_roundtrips_bit_identically() {
    for fx in fixtures() {
        let contract_msgs = fx.submissions.iter().enumerate().flat_map(|(i, s)| {
            [
                Msg::Submit {
                    client: s.client,
                    nonce: s.nonce,
                    submitted_ns: s.at_ns,
                    contract: Arc::clone(&s.contract),
                },
                Msg::Reject {
                    client: s.client,
                    nonce: i as u64,
                    submitted_ns: s.at_ns ^ 0xFF,
                    contract: Arc::clone(&s.contract),
                },
            ]
        });
        let txns: Vec<Vec<u8>> = fx
            .submissions
            .iter()
            .take(4)
            .map(|s| harmony_txn::encode_contract(s.contract.as_ref()))
            .collect();
        let structural = vec![
            Msg::Replicate { seq: 7 },
            Msg::Ack { seq: u64::MAX },
            Msg::Prepare { seq: 3, round: 2 },
            Msg::Vote { seq: 0, round: 255 },
            Msg::Deliver {
                block: Arc::new(block(5, txns.clone(), 11)),
                born_ns: 123,
                mean_submit_ns: 456,
            },
            Msg::Deliver {
                block: Arc::new(block(1, Vec::new(), 12)),
                born_ns: 0,
                mean_submit_ns: u64::MAX,
            },
            Msg::RootGossip {
                height: 42,
                root: digest(0x42),
            },
            Msg::SyncRequest {
                from: SyncFrom::Flat(9),
                epoch: 1,
            },
            Msg::SyncRequest {
                from: SyncFrom::Sharded(vec![BlockId(1), BlockId(0), BlockId(u64::MAX)]),
                epoch: 2,
            },
            Msg::SyncReply {
                response: Arc::new(SyncReplyBody::Flat(SyncResponse::Range(vec![
                    block(2, txns.clone(), 13),
                    block(3, Vec::new(), 13),
                ]))),
                epoch: 3,
            },
            Msg::SyncReply {
                response: Arc::new(SyncReplyBody::Flat(SyncResponse::Snapshot(
                    Box::new(snapshot(4, 3)),
                    vec![block(5, txns.clone(), 14)],
                ))),
                epoch: 4,
            },
            Msg::SyncReply {
                response: Arc::new(SyncReplyBody::Sharded(ShardedSyncResponse {
                    height: BlockId(6),
                    global_hash: digest(0x66),
                    epoch: 2,
                    parts: vec![
                        SyncResponse::Range(vec![block(6, txns.clone(), 15)]),
                        SyncResponse::Snapshot(Box::new(snapshot(6, 0)), Vec::new()),
                    ],
                })),
                epoch: 5,
            },
            Msg::SyncRefused { epoch: u64::MAX },
            Msg::Reshard { new_shards: 4 },
            Msg::Reshard {
                new_shards: u32::MAX,
            },
        ];
        for msg in contract_msgs.chain(structural) {
            let frame = fx.codec.encode_msg(&msg);
            // The frame is length-prefixed; decode_msg takes the body.
            let body = &frame[4..];
            let decoded = fx.codec.decode_msg(body).expect("decode valid frame");
            let reframed = fx.codec.encode_msg(&decoded);
            assert_eq!(frame, reframed, "re-encoding drifted for {body:?}");
        }
    }
}

/// Every control message round-trips by direct equality.
#[test]
fn every_ctl_msg_roundtrips() {
    let msgs = vec![
        CtlMsg::Hello { index: 0 },
        CtlMsg::Hello { index: u32::MAX },
        CtlMsg::StatusReq,
        CtlMsg::StatusReply(harmony_node::NodeStatus {
            role: "replica".into(),
            state: "up".into(),
            height: 12,
            root: "ab".repeat(32),
            logical_root: "cd".repeat(32),
            committed_txns: 1,
            delivered: 2,
            mempool_len: 3,
            sealed_blocks: 4,
            submitted: 5,
            recoveries: 6,
            sync_blocks: 7,
        }),
        CtlMsg::BlockReq { shard: 3, seq: 9 },
        CtlMsg::BlockReply(None),
        CtlMsg::BlockReply(Some(harmony_node::BlockSummary {
            id: 9,
            txns: 8,
            hash: "ef".repeat(32),
            prev_hash: "01".repeat(32),
        })),
        CtlMsg::Crash,
        CtlMsg::Recover,
        CtlMsg::Reshard { new_shards: 2 },
        CtlMsg::MetricsReq,
        CtlMsg::Text("# HELP harmony…\n".into()),
        CtlMsg::Shutdown,
        CtlMsg::Ok,
        CtlMsg::Err("boom".into()),
    ];
    for msg in msgs {
        let frame = encode_ctl(&msg);
        let decoded = decode_ctl(&frame[4..]).expect("decode valid ctl frame");
        assert_eq!(msg, decoded);
        assert_eq!(frame, encode_ctl(&decoded));
    }
}

/// Truncating a valid frame at any interior point must fail cleanly.
#[test]
fn truncated_frames_are_rejected_without_panic() {
    let fx = &fixtures()[0];
    let msg = Msg::Deliver {
        block: Arc::new(block(
            3,
            fx.submissions
                .iter()
                .take(3)
                .map(|s| harmony_txn::encode_contract(s.contract.as_ref()))
                .collect(),
            9,
        )),
        born_ns: 1,
        mean_submit_ns: 2,
    };
    let frame = fx.codec.encode_msg(&msg);
    let body = &frame[4..];
    for cut in 0..body.len() {
        assert!(
            fx.codec.decode_msg(&body[..cut]).is_err(),
            "truncation at {cut} of {} decoded successfully",
            body.len()
        );
    }
    let ctl = encode_ctl(&CtlMsg::StatusReply(harmony_node::NodeStatus::default()));
    for cut in 0..ctl.len() - 4 {
        assert!(decode_ctl(&ctl[4..4 + cut]).is_err());
    }
}

/// An oversized or lying length prefix must be refused before any
/// allocation happens.
#[test]
fn oversized_length_prefix_is_refused() {
    let huge = u32::try_from(MAX_FRAME_BYTES).expect("fits") + 1;
    let mut stream: &[u8] = &huge.to_le_bytes();
    assert!(read_frame(&mut stream).is_err());

    // A prefix longer than the available bytes is an UnexpectedEof, not
    // a hang or a panic.
    let mut short: &[u8] = &[8, 0, 0, 0, 1, 2];
    assert!(read_frame(&mut short).is_err());

    // Clean EOF at a frame boundary is None, not an error.
    let mut empty: &[u8] = &[];
    assert!(matches!(read_frame(&mut empty), Ok(None)));
}

/// The reshard tags are wire-version-2 additions: the same bytes with
/// the version byte rewritten to 1 must be refused (a v1 peer never
/// emits them, so their appearance on a v1 frame is corruption), while
/// every pre-existing tag still decodes as v1.
#[test]
fn reshard_tags_are_rejected_on_version_1_frames() {
    let fx = &fixtures()[0];
    let frame = fx.codec.encode_msg(&Msg::Reshard { new_shards: 4 });
    let mut body = frame[4..].to_vec();
    assert!(fx.codec.decode_msg(&body).is_ok(), "v2 frame decodes");
    body[0] = 1;
    let Err(err) = fx.codec.decode_msg(&body) else {
        panic!("v1 reshard frame decoded");
    };
    assert!(
        err.to_string().contains("wire version 2"),
        "wrong error: {err}"
    );

    let ctl = encode_ctl(&CtlMsg::Reshard { new_shards: 2 });
    let mut body = ctl[4..].to_vec();
    assert!(decode_ctl(&body).is_ok());
    body[0] = 1;
    let err = decode_ctl(&body).unwrap_err();
    assert!(
        err.to_string().contains("wire version 2"),
        "wrong error: {err}"
    );

    // A v1 tag on a v1 frame still decodes: version bumps are additive.
    let frame = fx.codec.encode_msg(&Msg::Ack { seq: 9 });
    let mut body = frame[4..].to_vec();
    body[0] = 1;
    assert!(fx.codec.decode_msg(&body).is_ok(), "v1 compat broken");
}

/// A v1 sharded sync reply has no topology-epoch field; decoding one
/// must succeed and default the epoch to 0 (a v1 peer necessarily
/// predates elastic resharding).
#[test]
fn v1_sharded_sync_reply_defaults_topology_epoch_to_zero() {
    let fx = &fixtures()[0];
    let msg = Msg::SyncReply {
        response: Arc::new(SyncReplyBody::Sharded(ShardedSyncResponse {
            height: BlockId(6),
            global_hash: digest(0x66),
            epoch: 0,
            parts: vec![SyncResponse::Range(Vec::new())],
        })),
        epoch: 5,
    };
    let frame = fx.codec.encode_msg(&msg);
    let mut body = frame[4..].to_vec();
    // Body layout: version, tag, sync-epoch u64, kind u8, height u64,
    // 32-byte digest, then the v2 topology-epoch u64. Strip it and mark
    // the frame v1.
    const EPOCH_AT: usize = 2 + 8 + 1 + 8 + 32;
    body.drain(EPOCH_AT..EPOCH_AT + 8);
    body[0] = 1;
    match fx.codec.decode_msg(&body).expect("v1 reply decodes") {
        Msg::SyncReply { response, epoch } => {
            assert_eq!(epoch, 5);
            match response.as_ref() {
                SyncReplyBody::Sharded(resp) => {
                    assert_eq!(resp.epoch, 0, "v1 peers are at topology epoch 0");
                    assert_eq!(resp.height, BlockId(6));
                    assert_eq!(resp.parts.len(), 1);
                }
                SyncReplyBody::Flat(_) => panic!("wrong reply body: flat"),
            }
        }
        _ => panic!("wrong message kind"),
    }
}

proptest! {
    /// Arbitrary bytes never panic any decoder.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let fx = fixture(ClusterWorkload::Smallbank(SmallbankConfig {
            accounts: 100,
            ..SmallbankConfig::default()
        }));
        let _ = fx.codec.decode_msg(&bytes);
        let _ = decode_ctl(&bytes);
        let _ = frame_tag(&bytes);
    }

    /// Flipping any single byte of a valid structural frame either
    /// still decodes (payload bytes the codec doesn't constrain) or
    /// fails cleanly — never panics.
    #[test]
    fn bit_flips_never_panic(pos in 0usize..64, flip in 1u16..256) {
        let fx = fixture(ClusterWorkload::Smallbank(SmallbankConfig {
            accounts: 100,
            ..SmallbankConfig::default()
        }));
        let msg = Msg::SyncRequest {
            from: SyncFrom::Sharded(vec![BlockId(3), BlockId(4)]),
            epoch: 8,
        };
        let frame = fx.codec.encode_msg(&msg);
        let mut body = frame[4..].to_vec();
        let pos = pos % body.len();
        body[pos] ^= u8::try_from(flip).expect("flip < 256");
        let _ = fx.codec.decode_msg(&body);
    }
}
