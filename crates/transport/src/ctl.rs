//! Operator control-plane clients.
//!
//! [`CtlClient`] speaks the request/reply control frames (status, block
//! inspection, crash/recover injection, metrics scrape, shutdown) over
//! a node's cluster port. [`SubmitClient`] occupies the cluster's
//! client slot (index 0) and streams transactions to the orderer —
//! the wire-level twin of the simulator's in-process client bank.

use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use harmony_common::{Error, Result};
use harmony_node::cluster::Msg;
use harmony_node::{BlockSummary, NodeStatus, Submission};
use harmony_txn::ContractCodec;

use crate::wire::{decode_ctl, encode_ctl, read_frame, write_frame, CtlMsg, WireCodec};

/// Request/reply client for a node's control plane.
pub struct CtlClient {
    stream: TcpStream,
}

impl CtlClient {
    /// Connect to a node's cluster listen address.
    ///
    /// # Errors
    /// Socket connect/configure failures.
    pub fn connect(addr: SocketAddr) -> Result<CtlClient> {
        let stream = TcpStream::connect(addr).map_err(Error::Io)?;
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .map_err(Error::Io)?;
        stream.set_nodelay(true).map_err(Error::Io)?;
        Ok(CtlClient { stream })
    }

    /// Send one control request and block for its reply.
    ///
    /// # Errors
    /// Socket errors, a closed connection, an undecodable reply, or an
    /// explicit `Err` reply from the node.
    pub fn request(&mut self, msg: &CtlMsg) -> Result<CtlMsg> {
        write_frame(&mut self.stream, &encode_ctl(msg)).map_err(Error::Io)?;
        let body = read_frame(&mut self.stream)
            .map_err(Error::Io)?
            .ok_or_else(|| Error::Corruption("connection closed before control reply".into()))?;
        match decode_ctl(&body)? {
            CtlMsg::Err(e) => Err(Error::InvalidArgument(e)),
            reply => Ok(reply),
        }
    }

    /// Fetch the node's [`NodeStatus`].
    ///
    /// # Errors
    /// Transport errors or an unexpected reply kind.
    pub fn status(&mut self) -> Result<NodeStatus> {
        match self.request(&CtlMsg::StatusReq)? {
            CtlMsg::StatusReply(status) => Ok(status),
            other => Err(unexpected("StatusReply", &other)),
        }
    }

    /// Fetch a committed block summary from a replica (shard 0 on flat
    /// clusters).
    ///
    /// # Errors
    /// Transport errors or an unexpected reply kind.
    pub fn block(&mut self, shard: u32, seq: u64) -> Result<Option<BlockSummary>> {
        match self.request(&CtlMsg::BlockReq { shard, seq })? {
            CtlMsg::BlockReply(summary) => Ok(summary),
            other => Err(unexpected("BlockReply", &other)),
        }
    }

    /// Inject a crash (node drops in-memory state, stops participating).
    ///
    /// # Errors
    /// Transport errors or an unexpected reply kind.
    pub fn crash(&mut self) -> Result<()> {
        match self.request(&CtlMsg::Crash)? {
            CtlMsg::Ok => Ok(()),
            other => Err(unexpected("Ok", &other)),
        }
    }

    /// Bring a crashed node back; it rejoins via real-socket state sync.
    ///
    /// # Errors
    /// Transport errors or an unexpected reply kind.
    pub fn recover(&mut self) -> Result<()> {
        match self.request(&CtlMsg::Recover)? {
            CtlMsg::Ok => Ok(()),
            other => Err(unexpected("Ok", &other)),
        }
    }

    /// Ask the orderer to change the cluster's shard count: it seals a
    /// topology-change marker block at the next sealable height and
    /// every replica splits/merges its shards at that epoch boundary.
    /// Must target the orderer's control port; out-of-range counts
    /// (zero, above the partition count, or any count on a flat
    /// cluster) are dropped by the orderer.
    ///
    /// # Errors
    /// Transport errors, an `Err` reply (non-orderer target), or an
    /// unexpected reply kind.
    pub fn reshard(&mut self, new_shards: u32) -> Result<()> {
        match self.request(&CtlMsg::Reshard { new_shards })? {
            CtlMsg::Ok => Ok(()),
            other => Err(unexpected("Ok", &other)),
        }
    }

    /// Scrape the node's live metrics in Prometheus text format over
    /// the control port (the HTTP endpoint serves the same text).
    ///
    /// # Errors
    /// Transport errors or an unexpected reply kind.
    pub fn metrics(&mut self) -> Result<String> {
        match self.request(&CtlMsg::MetricsReq)? {
            CtlMsg::Text(text) => Ok(text),
            other => Err(unexpected("Text", &other)),
        }
    }

    /// Ask the node's event loop to exit.
    ///
    /// # Errors
    /// Transport errors or an unexpected reply kind.
    pub fn shutdown(&mut self) -> Result<()> {
        match self.request(&CtlMsg::Shutdown)? {
            CtlMsg::Ok => Ok(()),
            other => Err(unexpected("Ok", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &CtlMsg) -> Error {
    Error::Corruption(format!("expected {wanted} control reply, got {got:?}"))
}

/// Transaction driver occupying the cluster's client slot.
pub struct SubmitClient {
    stream: TcpStream,
    codec: WireCodec,
}

impl SubmitClient {
    /// Connect to the orderer and introduce ourselves as the client
    /// slot (index 0), so admission rejects can be routed back over
    /// this connection.
    ///
    /// # Errors
    /// Socket connect/configure/handshake failures.
    pub fn connect(orderer: SocketAddr, codec: Arc<dyn ContractCodec>) -> Result<SubmitClient> {
        let mut stream = TcpStream::connect(orderer).map_err(Error::Io)?;
        stream.set_nodelay(true).map_err(Error::Io)?;
        // The client slot is index 0 in every ClusterLayout.
        let hello = encode_ctl(&CtlMsg::Hello { index: 0 });
        write_frame(&mut stream, &hello).map_err(Error::Io)?;
        Ok(SubmitClient {
            stream,
            codec: WireCodec::new(codec),
        })
    }

    /// Stream one transaction submission to the orderer.
    ///
    /// # Errors
    /// Socket write failures.
    pub fn submit(&mut self, s: &Submission) -> Result<()> {
        let frame = self.codec.encode_msg(&Msg::Submit {
            client: s.client,
            nonce: s.nonce,
            submitted_ns: s.at_ns,
            contract: Arc::clone(&s.contract),
        });
        self.stream.write_all(&frame).map_err(Error::Io)
    }

    /// Flush buffered submissions to the socket.
    ///
    /// # Errors
    /// Socket flush failures.
    pub fn flush(&mut self) -> Result<()> {
        self.stream.flush().map_err(Error::Io)
    }
}
