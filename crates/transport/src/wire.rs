//! Length-prefixed binary wire codec for the cluster's message enum.
//!
//! A frame on the wire is `[u32 LE body length][body]`, where the body
//! is `[version u8][tag u8][payload]`. The version byte makes frames
//! self-describing (a node refuses frames from an incompatible build
//! instead of misparsing them); the tag selects the [`Msg`] variant —
//! or, in the `0x80..` range, a control-plane message ([`CtlMsg`]).
//!
//! Payloads reuse the workspace's existing serialization: contracts
//! travel as [`encode_contract`] bytes (decoded by the workload's
//! [`ContractCodec`], so cross-shard fragments and every workload's
//! transactions survive the trip), blocks as [`ChainBlock::encode`],
//! snapshots as [`StateSnapshot::encode`], scalars through the
//! bounds-checked [`Reader`]/[`Writer`] pair. Decoding never panics:
//! truncated or garbage input surfaces as [`Error::Corruption`].

use std::io::{self, Read};
use std::sync::Arc;

use harmony_chain::{ChainBlock, StateSnapshot};
use harmony_common::codec::{Reader, Writer};
use harmony_common::{BlockId, Error, Result};
use harmony_crypto::Digest;
use harmony_node::cluster::{Msg, SyncFrom, SyncReplyBody};
use harmony_node::{BlockSummary, NodeStatus, ShardedSyncResponse, SyncResponse};
use harmony_txn::{encode_contract, ContractCodec};

/// Wire-format version carried in every frame body. Version 2 added the
/// topology-change (reshard) tags; frames are still emitted and accepted
/// down to [`MIN_WIRE_VERSION`], with the new tags rejected on old
/// versions, so a v1 peer interoperates until it sees a reshard.
pub const WIRE_VERSION: u8 = 2;

/// Oldest wire version this build still accepts.
pub const MIN_WIRE_VERSION: u8 = 1;

/// Upper bound on a frame body; longer length prefixes are rejected
/// before any allocation, so a garbage prefix can't balloon memory.
pub const MAX_FRAME_BYTES: usize = 256 << 20;

// Msg variant tags (0x00..0x7F).
const TAG_SUBMIT: u8 = 0;
const TAG_REPLICATE: u8 = 1;
const TAG_ACK: u8 = 2;
const TAG_PREPARE: u8 = 3;
const TAG_VOTE: u8 = 4;
const TAG_DELIVER: u8 = 5;
const TAG_ROOT_GOSSIP: u8 = 6;
const TAG_SYNC_REQUEST: u8 = 7;
const TAG_SYNC_REPLY: u8 = 8;
const TAG_SYNC_REFUSED: u8 = 9;
const TAG_REJECT: u8 = 10;
/// Topology change (wire v2+): a v1 frame carrying this tag is rejected.
const TAG_RESHARD: u8 = 11;

// Control-plane tags (0x80..).
const TAG_CTL_STATUS_REQ: u8 = 0x80;
const TAG_CTL_STATUS_REPLY: u8 = 0x81;
const TAG_CTL_BLOCK_REQ: u8 = 0x82;
const TAG_CTL_BLOCK_REPLY: u8 = 0x83;
const TAG_CTL_CRASH: u8 = 0x84;
const TAG_CTL_OK: u8 = 0x85;
const TAG_CTL_RECOVER: u8 = 0x86;
const TAG_CTL_RESHARD: u8 = 0x87;
const TAG_CTL_METRICS_REQ: u8 = 0x88;
const TAG_CTL_TEXT: u8 = 0x89;
const TAG_CTL_SHUTDOWN: u8 = 0x8A;
const TAG_CTL_ERR: u8 = 0x8B;
/// Peer handshake: the first frame of a node-to-node connection names
/// the sender's index in the cluster layout.
const TAG_HELLO: u8 = 0xFE;

/// The tag byte of a decoded frame body, if the body is well-formed
/// enough to carry one (used to route an inbound frame to the peer or
/// control plane before full decoding).
#[must_use]
pub fn frame_tag(body: &[u8]) -> Option<u8> {
    (body.len() >= 2 && (MIN_WIRE_VERSION..=WIRE_VERSION).contains(&body[0])).then(|| body[1])
}

/// Whether a frame tag belongs to the control plane (including the
/// handshake) rather than the cluster message enum.
#[must_use]
pub fn is_ctl_tag(tag: u8) -> bool {
    tag >= 0x80
}

fn corrupt(what: &str) -> Error {
    Error::Corruption(format!("wire: {what}"))
}

fn body_writer(tag: u8, cap: usize) -> Writer {
    let mut w = Writer::with_capacity(cap + 2);
    w.put_u8(WIRE_VERSION);
    w.put_u8(tag);
    w
}

/// Prefix a finished body with its u32 LE length.
fn frame(w: Writer) -> Vec<u8> {
    let body = w.finish();
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(
        &u32::try_from(body.len())
            .expect("frame length")
            .to_le_bytes(),
    );
    out.extend_from_slice(&body);
    out
}

/// Open a frame body: check the version byte and return
/// `(version, tag, reader)`. Tags introduced after a version are gated
/// by the caller against the frame's declared version.
fn open_body(body: &[u8]) -> Result<(u8, u8, Reader<'_>)> {
    let mut r = Reader::new(body);
    let version = r.get_u8().map_err(|_| corrupt("empty frame"))?;
    if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version) {
        return Err(corrupt(&format!("unknown wire version {version}")));
    }
    let tag = r.get_u8().map_err(|_| corrupt("missing tag"))?;
    Ok((version, tag, r))
}

fn put_digest(w: &mut Writer, d: &Digest) {
    w.put_raw(&d.0);
}

fn get_digest(r: &mut Reader<'_>) -> Result<Digest> {
    let raw = r.get_raw(32)?;
    let mut d = [0u8; 32];
    d.copy_from_slice(&raw);
    Ok(Digest(d))
}

fn put_blocks(w: &mut Writer, blocks: &[ChainBlock]) {
    w.put_u32(u32::try_from(blocks.len()).expect("block count"));
    for b in blocks {
        w.put_bytes(&b.encode());
    }
}

fn get_blocks(r: &mut Reader<'_>) -> Result<Vec<ChainBlock>> {
    let n = r.get_u32()?;
    // No `with_capacity(n)` from untrusted input: a lying count just
    // runs the reader off the end and errors.
    let mut out = Vec::new();
    for _ in 0..n {
        out.push(ChainBlock::decode(&r.get_bytes()?)?);
    }
    Ok(out)
}

fn put_sync_response(w: &mut Writer, resp: &SyncResponse) {
    match resp {
        SyncResponse::Range(blocks) => {
            w.put_u8(0);
            put_blocks(w, blocks);
        }
        SyncResponse::Snapshot(snap, tail) => {
            w.put_u8(1);
            w.put_bytes(&snap.encode());
            put_blocks(w, tail);
        }
    }
}

fn get_sync_response(r: &mut Reader<'_>) -> Result<SyncResponse> {
    match r.get_u8()? {
        0 => Ok(SyncResponse::Range(get_blocks(r)?)),
        1 => {
            let snap = StateSnapshot::decode(&r.get_bytes()?)?;
            Ok(SyncResponse::Snapshot(Box::new(snap), get_blocks(r)?))
        }
        t => Err(corrupt(&format!("unknown sync-response kind {t}"))),
    }
}

/// Encoder/decoder for [`Msg`] frames. Holds the workload's contract
/// codec so `Submit`/`Reject` payloads come back executable.
pub struct WireCodec {
    codec: Arc<dyn ContractCodec>,
}

impl WireCodec {
    /// A codec for one workload's contracts (see
    /// [`harmony_node::ClusterWorkload::codec`]).
    #[must_use]
    pub fn new(codec: Arc<dyn ContractCodec>) -> WireCodec {
        WireCodec { codec }
    }

    /// Encode a message as a complete frame (length prefix included).
    #[must_use]
    pub fn encode_msg(&self, msg: &Msg) -> Vec<u8> {
        let w = match msg {
            Msg::Submit {
                client,
                nonce,
                submitted_ns,
                contract,
            } => {
                let bytes = encode_contract(contract.as_ref());
                let mut w = body_writer(TAG_SUBMIT, 28 + bytes.len());
                w.put_u64(*client);
                w.put_u64(*nonce);
                w.put_u64(*submitted_ns);
                w.put_bytes(&bytes);
                w
            }
            Msg::Replicate { seq } => {
                let mut w = body_writer(TAG_REPLICATE, 8);
                w.put_u64(*seq);
                w
            }
            Msg::Ack { seq } => {
                let mut w = body_writer(TAG_ACK, 8);
                w.put_u64(*seq);
                w
            }
            Msg::Prepare { seq, round } => {
                let mut w = body_writer(TAG_PREPARE, 9);
                w.put_u64(*seq);
                w.put_u8(*round);
                w
            }
            Msg::Vote { seq, round } => {
                let mut w = body_writer(TAG_VOTE, 9);
                w.put_u64(*seq);
                w.put_u8(*round);
                w
            }
            Msg::Deliver {
                block,
                born_ns,
                mean_submit_ns,
            } => {
                let bytes = block.encode();
                let mut w = body_writer(TAG_DELIVER, 20 + bytes.len());
                w.put_u64(*born_ns);
                w.put_u64(*mean_submit_ns);
                w.put_bytes(&bytes);
                w
            }
            Msg::RootGossip { height, root } => {
                let mut w = body_writer(TAG_ROOT_GOSSIP, 40);
                w.put_u64(*height);
                put_digest(&mut w, root);
                w
            }
            Msg::SyncRequest { from, epoch } => {
                let mut w = body_writer(TAG_SYNC_REQUEST, 64);
                w.put_u64(*epoch);
                match from {
                    SyncFrom::Flat(height) => {
                        w.put_u8(0);
                        w.put_u64(*height);
                    }
                    SyncFrom::Sharded(heights) => {
                        w.put_u8(1);
                        w.put_u32(u32::try_from(heights.len()).expect("shard count"));
                        for h in heights {
                            w.put_u64(h.0);
                        }
                    }
                }
                w
            }
            Msg::SyncReply { response, epoch } => {
                let mut w = body_writer(TAG_SYNC_REPLY, 256);
                w.put_u64(*epoch);
                match response.as_ref() {
                    SyncReplyBody::Flat(resp) => {
                        w.put_u8(0);
                        put_sync_response(&mut w, resp);
                    }
                    SyncReplyBody::Sharded(resp) => {
                        w.put_u8(1);
                        w.put_u64(resp.height.0);
                        put_digest(&mut w, &resp.global_hash);
                        // v2 field: the peer's topology epoch (v1 peers
                        // decode it as absent and default to 0).
                        w.put_u64(resp.epoch);
                        w.put_u32(u32::try_from(resp.parts.len()).expect("part count"));
                        for part in &resp.parts {
                            put_sync_response(&mut w, part);
                        }
                    }
                }
                w
            }
            Msg::SyncRefused { epoch } => {
                let mut w = body_writer(TAG_SYNC_REFUSED, 8);
                w.put_u64(*epoch);
                w
            }
            Msg::Reject {
                client,
                nonce,
                submitted_ns,
                contract,
            } => {
                let bytes = encode_contract(contract.as_ref());
                let mut w = body_writer(TAG_REJECT, 28 + bytes.len());
                w.put_u64(*client);
                w.put_u64(*nonce);
                w.put_u64(*submitted_ns);
                w.put_bytes(&bytes);
                w
            }
            Msg::Reshard { new_shards } => {
                let mut w = body_writer(TAG_RESHARD, 4);
                w.put_u32(*new_shards);
                w
            }
        };
        frame(w)
    }

    /// Decode a frame body (length prefix already stripped).
    ///
    /// # Errors
    /// [`Error::Corruption`] on truncation, an unknown version or tag,
    /// or a payload the inner codecs reject — never a panic.
    pub fn decode_msg(&self, body: &[u8]) -> Result<Msg> {
        let (version, tag, mut r) = open_body(body)?;
        let msg = match tag {
            TAG_SUBMIT | TAG_REJECT => {
                let client = r.get_u64()?;
                let nonce = r.get_u64()?;
                let submitted_ns = r.get_u64()?;
                let contract = self.codec.decode(&r.get_bytes()?)?;
                if tag == TAG_SUBMIT {
                    Msg::Submit {
                        client,
                        nonce,
                        submitted_ns,
                        contract,
                    }
                } else {
                    Msg::Reject {
                        client,
                        nonce,
                        submitted_ns,
                        contract,
                    }
                }
            }
            TAG_REPLICATE => Msg::Replicate { seq: r.get_u64()? },
            TAG_ACK => Msg::Ack { seq: r.get_u64()? },
            TAG_PREPARE => Msg::Prepare {
                seq: r.get_u64()?,
                round: r.get_u8()?,
            },
            TAG_VOTE => Msg::Vote {
                seq: r.get_u64()?,
                round: r.get_u8()?,
            },
            TAG_DELIVER => {
                let born_ns = r.get_u64()?;
                let mean_submit_ns = r.get_u64()?;
                let block = ChainBlock::decode(&r.get_bytes()?)?;
                Msg::Deliver {
                    block: Arc::new(block),
                    born_ns,
                    mean_submit_ns,
                }
            }
            TAG_ROOT_GOSSIP => Msg::RootGossip {
                height: r.get_u64()?,
                root: get_digest(&mut r)?,
            },
            TAG_SYNC_REQUEST => {
                let epoch = r.get_u64()?;
                let from = match r.get_u8()? {
                    0 => SyncFrom::Flat(r.get_u64()?),
                    1 => {
                        let n = r.get_u32()?;
                        let mut heights = Vec::new();
                        for _ in 0..n {
                            heights.push(BlockId(r.get_u64()?));
                        }
                        SyncFrom::Sharded(heights)
                    }
                    t => return Err(corrupt(&format!("unknown sync-from kind {t}"))),
                };
                Msg::SyncRequest { from, epoch }
            }
            TAG_SYNC_REPLY => {
                let epoch = r.get_u64()?;
                let response = match r.get_u8()? {
                    0 => SyncReplyBody::Flat(get_sync_response(&mut r)?),
                    1 => {
                        let height = BlockId(r.get_u64()?);
                        let global_hash = get_digest(&mut r)?;
                        // A v1 peer predates elastic resharding and is
                        // necessarily at topology epoch 0.
                        let topology_epoch = if version >= 2 { r.get_u64()? } else { 0 };
                        let n = r.get_u32()?;
                        let mut parts = Vec::new();
                        for _ in 0..n {
                            parts.push(get_sync_response(&mut r)?);
                        }
                        SyncReplyBody::Sharded(ShardedSyncResponse {
                            height,
                            global_hash,
                            epoch: topology_epoch,
                            parts,
                        })
                    }
                    t => return Err(corrupt(&format!("unknown sync-reply kind {t}"))),
                };
                Msg::SyncReply {
                    response: Arc::new(response),
                    epoch,
                }
            }
            TAG_SYNC_REFUSED => Msg::SyncRefused {
                epoch: r.get_u64()?,
            },
            TAG_RESHARD => {
                // Version gate: a v1 build never defined this tag, so a
                // v1 frame claiming it is garbage, not a new feature.
                if version < 2 {
                    return Err(corrupt("reshard message requires wire version 2"));
                }
                Msg::Reshard {
                    new_shards: r.get_u32()?,
                }
            }
            t => return Err(corrupt(&format!("unknown message tag {t:#x}"))),
        };
        if r.remaining() != 0 {
            return Err(corrupt("trailing bytes after message"));
        }
        Ok(msg)
    }
}

// ── Control plane ───────────────────────────────────────────────────────

/// Control-plane messages: the operator CLI's request/reply protocol,
/// plus the peer handshake. Codec-free — no contracts travel here.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CtlMsg {
    /// First frame of a node-to-node connection: the sender's index.
    Hello {
        /// Sender's index in the cluster layout.
        index: u32,
    },
    /// Ask a node for its status snapshot.
    StatusReq,
    /// The status snapshot.
    StatusReply(NodeStatus),
    /// Ask a replica to describe one sealed block.
    BlockReq {
        /// Shard whose chain to inspect (ignored on flat replicas).
        shard: u32,
        /// Block id (height).
        seq: u64,
    },
    /// The block description (`None`: no such block on this node).
    BlockReply(Option<BlockSummary>),
    /// Crash the hosted replica (operator-driven fault injection).
    Crash,
    /// Recover the hosted replica: local checkpoint recovery, then
    /// state-sync catch-up over the real sockets.
    Recover,
    /// Ask the orderer to change the cluster's shard count: it seals a
    /// topology-change marker at the next sealable height and every
    /// replica splits/merges its shards at that epoch boundary.
    Reshard {
        /// Requested shard count.
        new_shards: u32,
    },
    /// Ask for the node's Prometheus exposition.
    MetricsReq,
    /// A text payload (exposition, timeline).
    Text(String),
    /// Ask the process to exit its event loop.
    Shutdown,
    /// Generic acknowledgement.
    Ok,
    /// The request failed; human-readable reason.
    Err(String),
}

/// Encode a control message as a complete frame (length prefix included).
#[must_use]
pub fn encode_ctl(msg: &CtlMsg) -> Vec<u8> {
    let w = match msg {
        CtlMsg::Hello { index } => {
            let mut w = body_writer(TAG_HELLO, 4);
            w.put_u32(*index);
            w
        }
        CtlMsg::StatusReq => body_writer(TAG_CTL_STATUS_REQ, 0),
        CtlMsg::StatusReply(s) => {
            let mut w = body_writer(TAG_CTL_STATUS_REPLY, 128);
            w.put_str(&s.role);
            w.put_str(&s.state);
            w.put_u64(s.height);
            w.put_str(&s.root);
            w.put_str(&s.logical_root);
            w.put_u64(s.committed_txns);
            w.put_u64(s.delivered);
            w.put_u64(s.mempool_len);
            w.put_u64(s.sealed_blocks);
            w.put_u64(s.submitted);
            w.put_u64(s.recoveries);
            w.put_u64(s.sync_blocks);
            w
        }
        CtlMsg::BlockReq { shard, seq } => {
            let mut w = body_writer(TAG_CTL_BLOCK_REQ, 12);
            w.put_u32(*shard);
            w.put_u64(*seq);
            w
        }
        CtlMsg::BlockReply(summary) => {
            let mut w = body_writer(TAG_CTL_BLOCK_REPLY, 160);
            match summary {
                None => w.put_u8(0),
                Some(b) => {
                    w.put_u8(1);
                    w.put_u64(b.id);
                    w.put_u64(b.txns);
                    w.put_str(&b.hash);
                    w.put_str(&b.prev_hash);
                }
            }
            w
        }
        CtlMsg::Crash => body_writer(TAG_CTL_CRASH, 0),
        CtlMsg::Recover => body_writer(TAG_CTL_RECOVER, 0),
        CtlMsg::Reshard { new_shards } => {
            let mut w = body_writer(TAG_CTL_RESHARD, 4);
            w.put_u32(*new_shards);
            w
        }
        CtlMsg::MetricsReq => body_writer(TAG_CTL_METRICS_REQ, 0),
        CtlMsg::Text(text) => {
            let mut w = body_writer(TAG_CTL_TEXT, text.len() + 4);
            w.put_str(text);
            w
        }
        CtlMsg::Shutdown => body_writer(TAG_CTL_SHUTDOWN, 0),
        CtlMsg::Ok => body_writer(TAG_CTL_OK, 0),
        CtlMsg::Err(reason) => {
            let mut w = body_writer(TAG_CTL_ERR, reason.len() + 4);
            w.put_str(reason);
            w
        }
    };
    frame(w)
}

/// Decode a control frame body (length prefix already stripped).
///
/// # Errors
/// [`Error::Corruption`] on truncation or an unknown version/tag.
pub fn decode_ctl(body: &[u8]) -> Result<CtlMsg> {
    let (version, tag, mut r) = open_body(body)?;
    let msg = match tag {
        TAG_HELLO => CtlMsg::Hello {
            index: r.get_u32()?,
        },
        TAG_CTL_STATUS_REQ => CtlMsg::StatusReq,
        TAG_CTL_STATUS_REPLY => CtlMsg::StatusReply(NodeStatus {
            role: r.get_str()?,
            state: r.get_str()?,
            height: r.get_u64()?,
            root: r.get_str()?,
            logical_root: r.get_str()?,
            committed_txns: r.get_u64()?,
            delivered: r.get_u64()?,
            mempool_len: r.get_u64()?,
            sealed_blocks: r.get_u64()?,
            submitted: r.get_u64()?,
            recoveries: r.get_u64()?,
            sync_blocks: r.get_u64()?,
        }),
        TAG_CTL_BLOCK_REQ => CtlMsg::BlockReq {
            shard: r.get_u32()?,
            seq: r.get_u64()?,
        },
        TAG_CTL_BLOCK_REPLY => CtlMsg::BlockReply(match r.get_u8()? {
            0 => None,
            1 => Some(BlockSummary {
                id: r.get_u64()?,
                txns: r.get_u64()?,
                hash: r.get_str()?,
                prev_hash: r.get_str()?,
            }),
            t => return Err(corrupt(&format!("unknown option marker {t}"))),
        }),
        TAG_CTL_CRASH => CtlMsg::Crash,
        TAG_CTL_RECOVER => CtlMsg::Recover,
        TAG_CTL_RESHARD => {
            if version < 2 {
                return Err(corrupt("reshard control message requires wire version 2"));
            }
            CtlMsg::Reshard {
                new_shards: r.get_u32()?,
            }
        }
        TAG_CTL_METRICS_REQ => CtlMsg::MetricsReq,
        TAG_CTL_TEXT => CtlMsg::Text(r.get_str()?),
        TAG_CTL_SHUTDOWN => CtlMsg::Shutdown,
        TAG_CTL_OK => CtlMsg::Ok,
        TAG_CTL_ERR => CtlMsg::Err(r.get_str()?),
        t => return Err(corrupt(&format!("unknown control tag {t:#x}"))),
    };
    if r.remaining() != 0 {
        return Err(corrupt("trailing bytes after control message"));
    }
    Ok(msg)
}

// ── Frame I/O ───────────────────────────────────────────────────────────

/// Read one frame body from a stream. `Ok(None)` means the peer closed
/// the connection cleanly at a frame boundary.
///
/// # Errors
/// I/O errors pass through; a length prefix beyond [`MAX_FRAME_BYTES`]
/// or an EOF inside a frame surface as [`io::ErrorKind::InvalidData`] /
/// [`io::ErrorKind::UnexpectedEof`].
pub fn read_frame(stream: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; 4];
    let mut have = 0;
    while have < 4 {
        match stream.read(&mut prefix[have..]) {
            Ok(0) if have == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame length",
                ))
            }
            Ok(n) => have += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds cap"),
        ));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Ok(Some(body))
}

/// Write one already-framed buffer (as produced by the encoders).
///
/// # Errors
/// I/O errors pass through.
pub fn write_frame(stream: &mut impl io::Write, frame: &[u8]) -> io::Result<()> {
    stream.write_all(frame)
}
