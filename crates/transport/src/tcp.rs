//! The socket/thread node runtime: one OS process hosting one
//! [`ClusterNode`] behind the [`Transport`] seam.
//!
//! Layout of a running process:
//!
//! * **Event-loop thread** — owns the node and a wall-clock timer heap;
//!   the *identical* `on_message`/`on_timer` handlers the deterministic
//!   simulator drives, fed from an mpsc channel and a
//!   `recv_timeout`-based timer wheel. Also takes wall-clock metric
//!   timeline snapshots and answers control-plane requests.
//! * **Listener + per-connection reader threads** — accept loop; each
//!   reader decodes length-prefixed frames and forwards them. A peer
//!   connection introduces itself with a `Hello{index}` handshake
//!   frame; control connections skip the handshake and speak
//!   request/reply.
//! * **Per-peer writer threads** — one bounded outbound queue per
//!   configured peer. `try_send` backpressure: when a peer can't drain
//!   its queue, frames are dropped and counted rather than stalling the
//!   event loop. Writers (re)connect lazily with [`RetryPolicy`]
//!   exponential backoff, so process start order doesn't matter and a
//!   restarted peer is re-reached automatically.
//!
//! Peers without a configured address (the client slot, where
//! `harmonyctl` lives) are reached over whatever inbound connection
//! last introduced itself with that index — which is how admission
//! rejects find their way back to an external driver.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::io::{self, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use harmony_common::{Error, Result};
use harmony_consensus::net::{SimNode, Transport};
use harmony_metrics::{Counter, Registry, Timeline};
use harmony_node::cluster::Msg;
use harmony_node::{build_node, ClusterConfig, ClusterLayout, ClusterNode, RetryPolicy};
use parking_lot::Mutex;

use crate::http::spawn_http;
use crate::wire::{
    decode_ctl, encode_ctl, frame_tag, is_ctl_tag, read_frame, write_frame, CtlMsg, WireCodec,
};

/// Configuration of one OS-process node.
#[derive(Clone, Debug)]
pub struct NodeRuntimeConfig {
    /// The cluster configuration — the *same* value every process (and
    /// any simulator reference run) must use.
    pub cluster: ClusterConfig,
    /// This process's node index in the [`ClusterLayout`].
    pub index: usize,
    /// Listen address per node index (`None` for slots without a
    /// listener, e.g. the client slot an external driver occupies).
    /// Must hold `Some` at `index`.
    pub peers: Vec<Option<SocketAddr>>,
    /// Address for the HTTP observability endpoint (`/metrics`,
    /// `/timeline`, `/healthz`); `None` disables it.
    pub http: Option<SocketAddr>,
}

enum Event {
    /// A cluster message from peer `from`.
    Peer { from: usize, body: Vec<u8> },
    /// A control request; the reply goes back down `stream`.
    Ctl { stream: TcpStream, body: Vec<u8> },
}

/// Outbound connectivity: bounded queues to configured peers, direct
/// streams to peers that introduced themselves inbound.
struct PeerTable {
    outbound: Vec<Option<SyncSender<Vec<u8>>>>,
    dynamic: Mutex<HashMap<usize, TcpStream>>,
    dropped: Counter,
}

impl PeerTable {
    fn send(&self, to: usize, frame: Vec<u8>) {
        if let Some(Some(tx)) = self.outbound.get(to) {
            match tx.try_send(frame) {
                Ok(()) => {}
                Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => self.dropped.inc(),
            }
            return;
        }
        let mut dynamic = self.dynamic.lock();
        match dynamic.get_mut(&to) {
            Some(stream) => {
                if stream.write_all(&frame).is_err() {
                    dynamic.remove(&to);
                    self.dropped.inc();
                }
            }
            None => self.dropped.inc(),
        }
    }
}

/// State shared across the runtime's threads.
struct Shared {
    shutdown: Arc<AtomicBool>,
    /// Accepted inbound streams, kept so shutdown can unblock readers.
    conns: Mutex<Vec<TcpStream>>,
    peers: PeerTable,
    listen_addr: SocketAddr,
}

/// Transport metric handles (interned once, cloned into threads).
#[derive(Clone)]
struct NetMetrics {
    frames_in: Counter,
    bytes_in: Counter,
    frames_out: Counter,
    bytes_out: Counter,
    reconnects: Counter,
    decode_errors: Counter,
}

impl NetMetrics {
    fn register(registry: &Registry) -> NetMetrics {
        NetMetrics {
            frames_in: registry.counter_with(
                "harmony_transport_frames_total",
                "Wire frames moved, by direction.",
                &[("dir", "in")],
            ),
            bytes_in: registry.counter_with(
                "harmony_transport_bytes_total",
                "Wire bytes moved, by direction.",
                &[("dir", "in")],
            ),
            frames_out: registry.counter_with(
                "harmony_transport_frames_total",
                "Wire frames moved, by direction.",
                &[("dir", "out")],
            ),
            bytes_out: registry.counter_with(
                "harmony_transport_bytes_total",
                "Wire bytes moved, by direction.",
                &[("dir", "out")],
            ),
            reconnects: registry.counter(
                "harmony_transport_reconnects_total",
                "Outbound peer connections (re)established.",
            ),
            decode_errors: registry.counter(
                "harmony_transport_decode_errors_total",
                "Inbound frames rejected by the wire codec.",
            ),
        }
    }
}

/// The wall-clock [`Transport`] impl handed to the node's handlers.
struct TcpCtx<'a> {
    me: usize,
    now_ns: u64,
    peers: &'a PeerTable,
    codec: &'a WireCodec,
    metrics: &'a NetMetrics,
    /// Timers armed during this dispatch: `(due_ns, id)`.
    new_timers: Vec<(u64, u64)>,
}

impl Transport<Msg> for TcpCtx<'_> {
    fn now(&self) -> u64 {
        self.now_ns
    }

    fn me(&self) -> usize {
        self.me
    }

    fn send(&mut self, to: usize, msg: Msg, _bytes: u64) {
        let frame = self.codec.encode_msg(&msg);
        self.metrics.frames_out.inc();
        self.metrics.bytes_out.add(frame.len() as u64);
        self.peers.send(to, frame);
    }

    fn set_timer(&mut self, delay_ns: u64, id: u64) {
        self.new_timers
            .push((self.now_ns.saturating_add(delay_ns), id));
    }

    fn charge_cpu(&mut self, _ns: u64) {
        // Real CPU time is spent for real here.
    }
}

/// A running OS-process node. Dropping the handle does **not** stop the
/// runtime; use [`NodeRuntime::stop`] or a control-plane `Shutdown`.
pub struct NodeRuntime {
    event_loop: JoinHandle<()>,
    shared: Arc<Shared>,
    http_addr: Option<SocketAddr>,
}

impl NodeRuntime {
    /// Bind the listener, spawn the runtime's threads, and start the
    /// node at `cfg.index` built by the same [`build_node`] factory the
    /// simulator uses.
    ///
    /// # Errors
    /// Configuration errors (bad index, missing listen address), node
    /// construction failures, and socket bind errors.
    pub fn start(cfg: NodeRuntimeConfig) -> Result<NodeRuntime> {
        let layout = ClusterLayout::of(&cfg.cluster);
        if cfg.index >= layout.total() || cfg.peers.len() != layout.total() {
            return Err(Error::InvalidArgument(format!(
                "runtime index {} / peer table {} vs layout of {} nodes",
                cfg.index,
                cfg.peers.len(),
                layout.total()
            )));
        }
        let listen = cfg.peers[cfg.index]
            .ok_or_else(|| Error::InvalidArgument("no listen address for this node".into()))?;
        let registry = Arc::new(Registry::new());
        let node = build_node(&cfg.cluster, &registry, cfg.index)?;
        let codec = WireCodec::new(cfg.cluster.workload.codec()?);
        let metrics = NetMetrics::register(&registry);
        let listener = bind_with_retry(listen, cfg.cluster.sync_retry, cfg.cluster.seed)?;
        let listen_addr = listener.local_addr().map_err(Error::Io)?;

        // Outbound writer per configured peer (lazy connect + reconnect).
        let mut outbound: Vec<Option<SyncSender<Vec<u8>>>> = Vec::new();
        let mut writer_specs = Vec::new();
        for (to, addr) in cfg.peers.iter().enumerate() {
            match addr {
                Some(addr) if to != cfg.index => {
                    let (tx, rx) = mpsc::sync_channel::<Vec<u8>>(1024);
                    outbound.push(Some(tx));
                    writer_specs.push((to, *addr, rx));
                }
                _ => outbound.push(None),
            }
        }
        let shared = Arc::new(Shared {
            shutdown: Arc::new(AtomicBool::new(false)),
            conns: Mutex::new(Vec::new()),
            peers: PeerTable {
                outbound,
                dynamic: Mutex::new(HashMap::new()),
                dropped: registry.counter(
                    "harmony_transport_dropped_frames_total",
                    "Outbound frames dropped by queue backpressure or dead peers.",
                ),
            },
            listen_addr,
        });
        for (to, addr, rx) in writer_specs {
            spawn_writer(
                cfg.index,
                to,
                addr,
                rx,
                cfg.cluster.sync_retry,
                cfg.cluster.seed,
                metrics.reconnects.clone(),
                Arc::clone(&shared),
            );
        }

        let timeline = Arc::new(Mutex::new(Timeline::new(
            &format!("tcp·node{}", cfg.index),
            cfg.cluster.seed,
            cfg.cluster.metrics_every_ns.max(1),
        )));
        let http_addr = match cfg.http {
            Some(addr) => Some(spawn_http(
                addr,
                Arc::clone(&registry),
                Arc::clone(&timeline),
                Arc::clone(&shared.shutdown),
            )?),
            None => None,
        };

        let (events_tx, events_rx) = mpsc::sync_channel::<Event>(4096);
        spawn_listener(listener, events_tx, metrics.clone(), Arc::clone(&shared));

        let loop_shared = Arc::clone(&shared);
        let every_ns = cfg.cluster.metrics_every_ns.max(1);
        let event_loop = thread::Builder::new()
            .name(format!("harmony-node-{}", cfg.index))
            .spawn(move || {
                run_event_loop(
                    node,
                    cfg.index,
                    codec,
                    events_rx,
                    loop_shared,
                    registry,
                    timeline,
                    every_ns,
                    metrics,
                );
            })
            .map_err(Error::Io)?;

        Ok(NodeRuntime {
            event_loop,
            shared,
            http_addr,
        })
    }

    /// The bound listen address (useful with port-0 configs).
    #[must_use]
    pub fn listen_addr(&self) -> SocketAddr {
        self.shared.listen_addr
    }

    /// The bound HTTP endpoint address, if one was configured.
    #[must_use]
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http_addr
    }

    /// Ask the event loop to exit (same as a control-plane `Shutdown`).
    pub fn stop(&self) {
        if let Ok(mut stream) = TcpStream::connect(self.shared.listen_addr) {
            let _ = write_frame(&mut stream, &encode_ctl(&CtlMsg::Shutdown));
            let mut s = stream;
            let _ = read_frame(&mut s);
        }
    }

    /// Block until the event loop exits (control-plane `Shutdown` or
    /// [`NodeRuntime::stop`]).
    pub fn join(self) {
        let _ = self.event_loop.join();
    }
}

/// Bind the node's listener, retrying with the cluster's deterministic
/// backoff policy while the address is still in use.
///
/// `harmonyctl spawn` allocates ports by bind-and-release, so the
/// spawned process can race the allocator's socket still closing (or a
/// predecessor process still unwinding) — the classic bind TOCTOU. A
/// bounded retry with the same jittered backoff the writer threads use
/// closes that window without hanging forever on a genuinely taken
/// port; any error other than `AddrInUse` still fails immediately.
fn bind_with_retry(addr: SocketAddr, retry: RetryPolicy, seed: u64) -> Result<TcpListener> {
    let mut attempt: u32 = 0;
    loop {
        match TcpListener::bind(addr) {
            Ok(listener) => return Ok(listener),
            Err(e) if e.kind() == io::ErrorKind::AddrInUse && attempt < retry.max_retries => {
                thread::sleep(Duration::from_nanos(retry.backoff_ns(
                    attempt,
                    seed,
                    u64::from(addr.port()),
                )));
                attempt += 1;
            }
            Err(e) => return Err(Error::Io(e)),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_event_loop(
    mut node: ClusterNode,
    me: usize,
    codec: WireCodec,
    events: Receiver<Event>,
    shared: Arc<Shared>,
    registry: Arc<Registry>,
    timeline: Arc<Mutex<Timeline>>,
    snapshot_every_ns: u64,
    metrics: NetMetrics,
) {
    let epoch = Instant::now();
    let now_ns = || u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let mut timers: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
    let mut next_snapshot = snapshot_every_ns;

    let drive = |node: &mut ClusterNode,
                 timers: &mut BinaryHeap<Reverse<(u64, u64)>>,
                 f: &mut dyn FnMut(&mut ClusterNode, &mut TcpCtx<'_>)| {
        let mut ctx = TcpCtx {
            me,
            now_ns: now_ns(),
            peers: &shared.peers,
            codec: &codec,
            metrics: &metrics,
            new_timers: Vec::new(),
        };
        f(node, &mut ctx);
        for (due, id) in ctx.new_timers {
            timers.push(Reverse((due, id)));
        }
    };

    loop {
        // Fire every due timer.
        loop {
            let now = now_ns();
            match timers.peek() {
                Some(&Reverse((due, id))) if due <= now => {
                    timers.pop();
                    drive(&mut node, &mut timers, &mut |n, ctx| n.on_timer(id, ctx));
                }
                _ => break,
            }
        }
        // Wall-clock timeline snapshot.
        let now = now_ns();
        if now >= next_snapshot {
            timeline.lock().record(now, &registry);
            while next_snapshot <= now {
                next_snapshot += snapshot_every_ns;
            }
        }
        // Sleep until the next deadline (or a short poll tick).
        let deadline = timers
            .peek()
            .map_or(next_snapshot, |&Reverse((due, _))| due.min(next_snapshot));
        let wait_ns = deadline.saturating_sub(now_ns()).clamp(1, 100_000_000);
        match events.recv_timeout(Duration::from_nanos(wait_ns)) {
            Ok(Event::Peer { from, body }) => match codec.decode_msg(&body) {
                Ok(msg) => {
                    drive(&mut node, &mut timers, &mut |n, ctx| {
                        n.on_message(from, msg.clone(), ctx);
                    });
                }
                Err(_) => metrics.decode_errors.inc(),
            },
            Ok(Event::Ctl { mut stream, body }) => {
                let mut stop = false;
                let reply = match decode_ctl(&body) {
                    Ok(CtlMsg::StatusReq) => CtlMsg::StatusReply(node.status()),
                    Ok(CtlMsg::BlockReq { shard, seq }) => {
                        CtlMsg::BlockReply(node.block_summary(shard as usize, seq))
                    }
                    Ok(CtlMsg::Crash) => {
                        drive(&mut node, &mut timers, &mut |n, ctx| {
                            n.on_timer(harmony_node::TIMER_CRASH, ctx);
                        });
                        CtlMsg::Ok
                    }
                    Ok(CtlMsg::Recover) => {
                        drive(&mut node, &mut timers, &mut |n, ctx| {
                            n.on_timer(harmony_node::TIMER_RECOVER, ctx);
                        });
                        CtlMsg::Ok
                    }
                    Ok(CtlMsg::Reshard { new_shards }) => {
                        if node.role() == "orderer" {
                            drive(&mut node, &mut timers, &mut |n, ctx| {
                                n.on_message(me, Msg::Reshard { new_shards }, ctx);
                            });
                            CtlMsg::Ok
                        } else {
                            CtlMsg::Err("reshard must target the orderer".into())
                        }
                    }
                    Ok(CtlMsg::MetricsReq) => CtlMsg::Text(registry.render_prometheus()),
                    Ok(CtlMsg::Shutdown) => {
                        stop = true;
                        CtlMsg::Ok
                    }
                    Ok(other) => CtlMsg::Err(format!("unexpected control request: {other:?}")),
                    Err(e) => CtlMsg::Err(format!("bad control frame: {e}")),
                };
                let _ = write_frame(&mut stream, &encode_ctl(&reply));
                if stop {
                    break;
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }

    // Shutdown: flip the flag, then unblock every blocked thread.
    shared.shutdown.store(true, Ordering::SeqCst);
    for tx in shared.peers.outbound.iter().flatten() {
        let _ = tx.try_send(Vec::new()); // writer sentinel
    }
    for stream in shared.conns.lock().iter() {
        let _ = stream.shutdown(Shutdown::Both);
    }
    // One last self-connect pops the listener out of accept().
    let _ = TcpStream::connect(shared.listen_addr);
}

#[allow(clippy::too_many_arguments)]
fn spawn_writer(
    me: usize,
    to: usize,
    addr: SocketAddr,
    rx: Receiver<Vec<u8>>,
    retry: RetryPolicy,
    seed: u64,
    reconnects: Counter,
    shared: Arc<Shared>,
) {
    let _ = thread::Builder::new()
        .name(format!("harmony-writer-{me}-{to}"))
        .spawn(move || {
            let mut attempt: u32 = 0;
            let mut pending: Option<Vec<u8>> = None;
            'reconnect: loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let mut stream = match TcpStream::connect(addr) {
                    Ok(s) => s,
                    Err(_) => {
                        // Exponential backoff with deterministic jitter —
                        // the PR 8 retry policy, reused on real sockets.
                        let wait =
                            retry.backoff_ns(attempt.min(retry.max_retries), seed, to as u64);
                        attempt = attempt.saturating_add(1);
                        thread::sleep(Duration::from_nanos(wait));
                        continue;
                    }
                };
                attempt = 0;
                reconnects.inc();
                let _ = stream.set_nodelay(true);
                let hello = encode_ctl(&CtlMsg::Hello {
                    index: u32::try_from(me).unwrap_or(u32::MAX),
                });
                if write_frame(&mut stream, &hello).is_err() {
                    continue 'reconnect;
                }
                // Re-send a frame that failed mid-write on the previous
                // connection before draining the queue.
                if let Some(frame) = pending.take() {
                    if write_frame(&mut stream, &frame).is_err() {
                        pending = Some(frame);
                        continue 'reconnect;
                    }
                }
                loop {
                    match rx.recv() {
                        Ok(frame) if frame.is_empty() => return, // sentinel
                        Ok(frame) => {
                            if write_frame(&mut stream, &frame).is_err() {
                                pending = Some(frame);
                                continue 'reconnect;
                            }
                        }
                        Err(_) => return,
                    }
                }
            }
        });
}

fn spawn_listener(
    listener: TcpListener,
    events: SyncSender<Event>,
    metrics: NetMetrics,
    shared: Arc<Shared>,
) {
    let _ = thread::Builder::new()
        .name("harmony-listener".into())
        .spawn(move || loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    let _ = stream.set_nodelay(true);
                    if let Ok(clone) = stream.try_clone() {
                        shared.conns.lock().push(clone);
                    }
                    spawn_reader(stream, events.clone(), metrics.clone(), Arc::clone(&shared));
                }
                Err(_) => {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                }
            }
        });
}

/// One inbound connection: route `Hello`-introduced peer frames to the
/// event loop with their sender index, control frames with a reply
/// handle, and drop anything from a peer that never introduced itself.
fn spawn_reader(
    stream: TcpStream,
    events: SyncSender<Event>,
    metrics: NetMetrics,
    shared: Arc<Shared>,
) {
    let _ = thread::Builder::new()
        .name("harmony-reader".into())
        .spawn(move || {
            let mut reading = match stream.try_clone() {
                Ok(s) => s,
                Err(_) => return,
            };
            let mut from: Option<usize> = None;
            while let Ok(Some(body)) = read_frame(&mut reading) {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                metrics.frames_in.inc();
                metrics.bytes_in.add(body.len() as u64 + 4);
                let Some(tag) = frame_tag(&body) else {
                    metrics.decode_errors.inc();
                    continue;
                };
                if is_ctl_tag(tag) {
                    if let Ok(CtlMsg::Hello { index }) = decode_ctl(&body) {
                        let index = index as usize;
                        from = Some(index);
                        // Peers without a configured address become
                        // reachable over this connection (e.g. replies
                        // to the external client driver).
                        if matches!(shared.peers.outbound.get(index), None | Some(None)) {
                            if let Ok(back) = stream.try_clone() {
                                shared.peers.dynamic.lock().insert(index, back);
                            }
                        }
                        continue;
                    }
                    let Ok(reply_stream) = stream.try_clone() else {
                        return;
                    };
                    if events
                        .send(Event::Ctl {
                            stream: reply_stream,
                            body,
                        })
                        .is_err()
                    {
                        return;
                    }
                    continue;
                }
                let Some(from) = from else {
                    metrics.decode_errors.inc();
                    continue;
                };
                if events.send(Event::Peer { from, body }).is_err() {
                    return;
                }
            }
        });
}
