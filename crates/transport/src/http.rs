//! A deliberately tiny HTTP/1.0 observability endpoint.
//!
//! Each process node serves:
//!
//! * `GET /metrics` — the live [`Registry`] in Prometheus text
//!   exposition format (the same renderer batch runs write to disk).
//! * `GET /timeline` — the wall-clock metric [`Timeline`] as JSON.
//! * `GET /healthz` — `ok` while the runtime is up.
//!
//! No external HTTP stack: the build environment is offline, and the
//! endpoint only needs `GET` + `Content-Length` + `Connection: close`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use harmony_common::{Error, Result};
use harmony_metrics::{Registry, Timeline};
use parking_lot::Mutex;

/// Spawn the observability server; returns the bound address.
pub(crate) fn spawn_http(
    addr: SocketAddr,
    registry: Arc<Registry>,
    timeline: Arc<Mutex<Timeline>>,
    shutdown: Arc<AtomicBool>,
) -> Result<SocketAddr> {
    let listener = TcpListener::bind(addr).map_err(Error::Io)?;
    let bound = listener.local_addr().map_err(Error::Io)?;
    let _ = thread::Builder::new()
        .name("harmony-http".into())
        .spawn(move || {
            for stream in listener.incoming() {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let Ok(stream) = stream else { continue };
                let registry = Arc::clone(&registry);
                let timeline = Arc::clone(&timeline);
                let _ = thread::Builder::new()
                    .name("harmony-http-conn".into())
                    .spawn(move || serve_conn(stream, &registry, &timeline));
            }
        });
    Ok(bound)
}

fn serve_conn(stream: TcpStream, registry: &Registry, timeline: &Mutex<Timeline>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain headers up to the blank line; we don't act on any of them.
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line == "\r\n" || line == "\n" => break,
            Ok(_) => {}
            Err(_) => return,
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                registry.render_prometheus(),
            ),
            "/timeline" => (
                "200 OK",
                "application/json; charset=utf-8",
                timeline.lock().to_json(),
            ),
            "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string()),
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found\n".to_string(),
            ),
        }
    };
    let mut out = stream;
    let _ = write!(
        out,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = out.flush();
}

/// Minimal blocking HTTP GET against a node's observability endpoint —
/// returns the response body on a `200`.
///
/// # Errors
/// Socket errors, malformed responses, and non-`200` statuses.
pub fn http_get(addr: SocketAddr, path: &str) -> Result<String> {
    let mut stream = TcpStream::connect(addr).map_err(Error::Io)?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(Error::Io)?;
    write!(
        stream,
        "GET {path} HTTP/1.0\r\nHost: harmony\r\nConnection: close\r\n\r\n"
    )
    .map_err(Error::Io)?;
    stream.flush().map_err(Error::Io)?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw).map_err(Error::Io)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| Error::Corruption("http response without header terminator".into()))?;
    let status_line = head.lines().next().unwrap_or("");
    if !status_line.contains(" 200 ") {
        return Err(Error::InvalidArgument(format!("GET {path}: {status_line}")));
    }
    Ok(body.to_string())
}
