//! Real-network transport for the HarmonyBC cluster.
//!
//! Everything below the consensus/replica logic that the deterministic
//! simulator abstracts away, made real:
//!
//! * [`wire`] — a self-describing, length-prefixed binary codec for
//!   the cluster message enum and the operator control plane, built on
//!   the workspace's existing contract/block/snapshot serialization.
//! * [`tcp`] — [`tcp::NodeRuntime`]: one OS process hosting one
//!   cluster node (client bank, orderer, follower, or replica) behind
//!   the consensus [`harmony_consensus::net::Transport`] seam, with
//!   wall-clock timers, per-peer reconnecting writers, and a
//!   control-plane request/reply loop.
//! * [`http`] — a tiny per-node observability endpoint (`/metrics` in
//!   Prometheus text format, `/timeline` JSON, `/healthz`).
//! * [`ctl`] — the operator clients `harmonyctl` drives:
//!   [`ctl::CtlClient`] (status, block inspection, crash/recover,
//!   metrics, shutdown) and [`ctl::SubmitClient`] (stream workload
//!   transactions to the orderer from the cluster's client slot).
//!
//! The load-bearing property: a process cluster runs the *identical*
//! node code path the simulator runs, so for a deterministic workload
//! (single client session, count-driven sealing) the committed state
//! roots over real sockets must equal the simulator's bit-for-bit.

pub mod ctl;
pub mod http;
pub mod tcp;
pub mod wire;

pub use ctl::{CtlClient, SubmitClient};
pub use http::http_get;
pub use tcp::{NodeRuntime, NodeRuntimeConfig};
pub use wire::{
    decode_ctl, encode_ctl, frame_tag, is_ctl_tag, read_frame, write_frame, CtlMsg, WireCodec,
    MAX_FRAME_BYTES, WIRE_VERSION,
};
