//! End-to-end sharded replica-runtime scenarios: a 4-replica × 4-shard
//! cluster (Kafka and HotStuff ordering) must reach bit-identical
//! `sharded_state_root`s on every replica for all five engines —
//! including runs where one replica crashes mid-run and rejoins with a
//! **mixed** state-sync: staggered per-shard checkpoints mean at least
//! one shard takes the checkpoint-manifest path while another replays a
//! verified sub-block range.

use harmony_chain::ChainConfig;
use harmony_core::HarmonyConfig;
use harmony_crypto::CryptoCost;
use harmony_node::{
    Cluster, ClusterConfig, ClusterReport, ClusterWorkload, CrashPlan, FaultSchedule,
    MempoolConfig, OrderingMode, ReplicaConfig, ShardTopology, SyncPolicy,
};
use harmony_sim::EngineKind;
use harmony_storage::StorageConfig;
use harmony_workloads::{OpenLoopConfig, SmallbankConfig, YcsbConfig};

const PARTITIONS: u32 = 16;

fn all_engines() -> [EngineKind; 5] {
    [
        EngineKind::Harmony(HarmonyConfig::default()),
        EngineKind::Aria,
        EngineKind::Rbc,
        EngineKind::Fabric,
        EngineKind::FastFabric,
    ]
}

fn smallbank() -> ClusterWorkload {
    ClusterWorkload::Smallbank(SmallbankConfig {
        accounts: 400,
        theta: 0.6,
        partitions: u64::from(PARTITIONS),
        multi_partition_ratio: 0.2,
    })
}

fn ycsb() -> ClusterWorkload {
    ClusterWorkload::Ycsb(YcsbConfig {
        keys: 400,
        theta: 0.6,
        partitions: u64::from(PARTITIONS),
        multi_partition_ratio: 0.2,
        ..YcsbConfig::default()
    })
}

fn config(
    engine: EngineKind,
    workload: ClusterWorkload,
    ordering: OrderingMode,
    crash: Option<CrashPlan>,
    shards: usize,
) -> ClusterConfig {
    ClusterConfig {
        replicas: 4,
        replica: ReplicaConfig {
            chain: ChainConfig {
                storage: StorageConfig::memory(),
                crypto: CryptoCost::free(),
                checkpoint_every: 3,
                ..ChainConfig::default()
            },
            engine,
            workers: 2,
            gossip_every: 5,
        },
        topology: Some(ShardTopology {
            shards,
            partitions: PARTITIONS,
            partitioning: None,
            checkpoint_stagger: 0,
        }),
        workload,
        ordering,
        faults: crash.map(FaultSchedule::from).unwrap_or_default(),
        mempool: MempoolConfig {
            capacity: 2_048,
            ..MempoolConfig::default()
        },
        open_loop: OpenLoopConfig {
            clients: 8,
            rate_tps: 40_000.0,
            hot_share: 0.0,
        },
        load_ns: 15_000_000,
        drain_ns: 600_000_000,
        block_txns: 24,
        batch_interval_ns: 500_000,
        window: 4,
        sync: SyncPolicy::default(),
        seed: 0x5E2E,
        ..ClusterConfig::default()
    }
}

fn assert_healthy(report: &ClusterReport, label: &str) {
    assert!(
        report.consistent,
        "{label}: replicas diverged: {:#?}",
        report.replicas
    );
    assert_eq!(
        report.divergence_alarms, 0,
        "{label}: divergence alarms raised"
    );
    assert!(
        report.metrics.stats.committed > 0,
        "{label}: nothing committed"
    );
    assert!(report.sealed_blocks > 0, "{label}: nothing sealed");
    let h0 = report.replicas[0].height;
    assert!(h0.0 > 0, "{label}: replicas never advanced");
    for r in &report.replicas {
        assert_eq!(r.height, h0, "{label}: height mismatch");
        assert_eq!(
            r.root, report.replicas[0].root,
            "{label}: sharded root mismatch"
        );
        assert_eq!(
            r.root, r.oracle_root,
            "{label}: cached commitment root diverged from full-scan oracle"
        );
    }
}

#[test]
fn all_engines_identical_sharded_roots_kafka_smallbank() {
    for engine in all_engines() {
        let report = Cluster::new(config(
            engine,
            smallbank(),
            OrderingMode::Kafka { brokers: 3 },
            None,
            4,
        ))
        .run()
        .unwrap();
        assert_healthy(&report, &format!("{}×4shards kafka", engine.name()));
        assert!(
            report.metrics.system.contains("4shards"),
            "metrics label: {}",
            report.metrics.system
        );
    }
}

#[test]
fn all_engines_identical_sharded_roots_hotstuff_ycsb() {
    for engine in all_engines() {
        let report = Cluster::new(config(engine, ycsb(), OrderingMode::HotStuff, None, 4))
            .run()
            .unwrap();
        assert_healthy(&report, &format!("{}×4shards hotstuff", engine.name()));
    }
}

#[test]
fn crash_rejoin_mixes_manifest_and_range_paths_all_engines() {
    // Checkpoint stagger 1000: shard 0 checkpoints every 3 blocks, shards
    // 1–3 effectively never. Crashing after a few checkpoints therefore
    // strands shard 0 at the full replayed height (block-range catch-up)
    // while the rest lose everything (checkpoint-manifest install) — the
    // acceptance scenario: one rejoin exercising BOTH sync paths.
    for engine in all_engines() {
        let mut cfg = config(
            engine,
            smallbank(),
            OrderingMode::Kafka { brokers: 3 },
            Some(CrashPlan {
                replica: 2,
                at_ns: 7_000_000,
                recover_at_ns: 14_000_000,
            }),
            4,
        );
        cfg.topology = Some(ShardTopology {
            shards: 4,
            partitions: PARTITIONS,
            partitioning: None,
            checkpoint_stagger: 1_000,
        });
        let report = Cluster::new(cfg).run().unwrap();
        let label = format!("{}×4shards crash", engine.name());
        assert_healthy(&report, &label);
        let crashed = &report.replicas[2];
        assert_eq!(crashed.recoveries, 1, "{label}: no recovery ran");
        assert!(
            crashed.sync_blocks > 0,
            "{label}: rejoin must use state-sync catch-up"
        );
        assert!(
            crashed.sync_manifest_shards > 0,
            "{label}: at least one shard must take the manifest path: {crashed:?}"
        );
        assert!(
            crashed.sync_range_shards > 0,
            "{label}: at least one shard must take the range-replay path: {crashed:?}"
        );
    }
}

#[test]
fn crash_rejoin_under_hotstuff_ordering() {
    let mut cfg = config(
        EngineKind::Harmony(HarmonyConfig::default()),
        ycsb(),
        OrderingMode::HotStuff,
        Some(CrashPlan {
            replica: 3,
            at_ns: 7_000_000,
            recover_at_ns: 14_000_000,
        }),
        4,
    );
    cfg.topology = Some(ShardTopology {
        shards: 4,
        partitions: PARTITIONS,
        partitioning: None,
        checkpoint_stagger: 1_000,
    });
    let report = Cluster::new(cfg).run().unwrap();
    assert_healthy(&report, "hotstuff sharded crash");
    let crashed = &report.replicas[3];
    assert_eq!(crashed.recoveries, 1);
    assert!(crashed.sync_manifest_shards > 0 && crashed.sync_range_shards > 0);
}

#[test]
fn sharded_cluster_runs_are_deterministic() {
    let run = || {
        Cluster::new(config(
            EngineKind::Aria,
            smallbank(),
            OrderingMode::Kafka { brokers: 3 },
            Some(CrashPlan {
                replica: 0,
                at_ns: 7_000_000,
                recover_at_ns: 14_000_000,
            }),
            2,
        ))
        .run()
        .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.replicas[1].root, b.replicas[1].root);
    assert_eq!(a.metrics.stats.committed, b.metrics.stats.committed);
    assert_eq!(a.sealed_blocks, b.sealed_blocks);
    assert_eq!(a.submitted_txns, b.submitted_txns);
}

#[test]
fn logical_root_is_shard_count_invariant() {
    // The same ordered workload through 1-, 2-, and 4-shard topologies
    // commits the same logical database (physical folds differ).
    let run = |shards: usize| {
        Cluster::new(config(
            EngineKind::Rbc,
            smallbank(),
            OrderingMode::Kafka { brokers: 3 },
            None,
            shards,
        ))
        .run()
        .unwrap()
    };
    let one = run(1);
    let two = run(2);
    let four = run(4);
    assert_healthy(&one, "1 shard");
    assert_healthy(&two, "2 shards");
    assert_healthy(&four, "4 shards");
    assert_eq!(one.replicas[0].logical_root, two.replicas[0].logical_root);
    assert_eq!(one.replicas[0].logical_root, four.replicas[0].logical_root);
    assert_ne!(
        one.replicas[0].root, four.replicas[0].root,
        "physical fold commits to the shard layout"
    );
}

#[test]
fn tpcc_declared_footprints_route_single_shard() {
    // TPC-C under the recommended topology — entity-prefix partitioning
    // plus a replicated `item` table — must (a) actually classify a
    // healthy share of NewOrder/Payment single-partition (the declared-
    // footprint payoff the ROADMAP calls the headline TPC-C speedup),
    // and (b) keep the logical database shard-count-invariant with the
    // replicated table in play.
    use harmony_workloads::TpccConfig;
    let run = |shards: usize| {
        let mut cfg = config(
            EngineKind::Harmony(HarmonyConfig::default()),
            ClusterWorkload::Tpcc(TpccConfig {
                warehouses: 4,
                scale: 0.01,
                ..TpccConfig::default()
            }),
            OrderingMode::Kafka { brokers: 3 },
            None,
            shards,
        );
        // TPC-C transactions are heavier; a lighter offered load keeps
        // the smoke quick while still sealing plenty of blocks.
        cfg.open_loop = OpenLoopConfig {
            clients: 6,
            rate_tps: 20_000.0,
            hot_share: 0.0,
        };
        cfg.load_ns = 10_000_000;
        Cluster::new(cfg).run().unwrap()
    };
    let four = run(4);
    assert_healthy(&four, "tpcc 4 shards");
    let single = metric_value(
        &four.exposition,
        "harmony_xshard_single_txns_total{replica=\"0\"}",
    );
    let cross = metric_value(
        &four.exposition,
        "harmony_xshard_cross_txns_total{replica=\"0\"}",
    );
    assert!(
        single > 0,
        "declared footprints never routed single-shard (single={single} cross={cross})"
    );
    assert!(
        single > cross,
        "warehouse-local NewOrder/Payment dominate the mix, so single-shard \
         routing must dominate too (single={single} cross={cross})"
    );
    let one = run(1);
    assert_healthy(&one, "tpcc 1 shard");
    assert_eq!(
        one.replicas[0].logical_root, four.replicas[0].logical_root,
        "replicated item table must not break shard-count invariance"
    );
}

/// Value of the first exposition sample whose name+labels match exactly.
fn metric_value(exposition: &str, name_and_labels: &str) -> u64 {
    let line = exposition
        .lines()
        .find(|l| {
            l.strip_prefix(name_and_labels)
                .is_some_and(|rest| rest.starts_with(' '))
        })
        .unwrap_or_else(|| panic!("no sample `{name_and_labels}` in exposition"));
    line.rsplit(' ').next().unwrap().parse().unwrap()
}
