//! End-to-end replica-runtime scenarios: a 4-replica cluster (Kafka and
//! HotStuff ordering) running Smallbank/YCSB must reach bit-identical
//! state roots on every replica for all five engines — including runs
//! where one replica crashes mid-run and rejoins via state-sync (local
//! checkpoint recovery + manifest transfer or block-range replay).

use harmony_chain::ChainConfig;
use harmony_core::HarmonyConfig;
use harmony_crypto::CryptoCost;
use harmony_node::{
    Cluster, ClusterConfig, ClusterReport, ClusterWorkload, CrashPlan, FaultSchedule,
    MempoolConfig, OrderingMode, ReplicaConfig, SyncPolicy,
};
use harmony_sim::EngineKind;
use harmony_storage::StorageConfig;
use harmony_workloads::{OpenLoopConfig, SmallbankConfig, YcsbConfig};

fn all_engines() -> [EngineKind; 5] {
    [
        EngineKind::Harmony(HarmonyConfig::default()),
        EngineKind::Aria,
        EngineKind::Rbc,
        EngineKind::Fabric,
        EngineKind::FastFabric,
    ]
}

fn smallbank() -> ClusterWorkload {
    ClusterWorkload::Smallbank(SmallbankConfig {
        accounts: 500,
        theta: 0.6,
        ..SmallbankConfig::default()
    })
}

fn ycsb() -> ClusterWorkload {
    ClusterWorkload::Ycsb(YcsbConfig {
        keys: 500,
        theta: 0.6,
        ..YcsbConfig::default()
    })
}

fn config(
    engine: EngineKind,
    workload: ClusterWorkload,
    ordering: OrderingMode,
    crash: Option<CrashPlan>,
) -> ClusterConfig {
    ClusterConfig {
        replicas: 4,
        replica: ReplicaConfig {
            chain: ChainConfig {
                storage: StorageConfig::memory(),
                crypto: CryptoCost::free(),
                checkpoint_every: 5,
                ..ChainConfig::default()
            },
            engine,
            workers: 2,
            gossip_every: 5,
        },
        workload,
        ordering,
        faults: crash.map(FaultSchedule::from).unwrap_or_default(),
        mempool: MempoolConfig {
            capacity: 2_048,
            ..MempoolConfig::default()
        },
        open_loop: OpenLoopConfig {
            clients: 8,
            rate_tps: 60_000.0,
            hot_share: 0.0,
        },
        load_ns: 20_000_000,
        drain_ns: 600_000_000,
        block_txns: 32,
        batch_interval_ns: 500_000,
        window: 4,
        sync: SyncPolicy::default(),
        seed: 0xE2E,
        ..ClusterConfig::default()
    }
}

fn assert_healthy(report: &ClusterReport, label: &str) {
    assert!(
        report.consistent,
        "{label}: replicas diverged: {:#?}",
        report.replicas
    );
    assert_eq!(
        report.divergence_alarms, 0,
        "{label}: divergence alarms raised"
    );
    assert!(
        report.metrics.stats.committed > 0,
        "{label}: nothing committed"
    );
    assert!(report.sealed_blocks > 0, "{label}: nothing sealed");
    assert!(
        report.metrics.throughput_tps > 0.0,
        "{label}: zero throughput"
    );
    let h0 = report.replicas[0].height;
    assert!(h0.0 > 0, "{label}: replicas never advanced");
    for r in &report.replicas {
        assert_eq!(r.height, h0, "{label}: height mismatch");
        assert_eq!(r.root, report.replicas[0].root, "{label}: root mismatch");
    }
}

#[test]
fn all_engines_identical_roots_kafka_smallbank() {
    for engine in all_engines() {
        let report = Cluster::new(config(
            engine,
            smallbank(),
            OrderingMode::Kafka { brokers: 3 },
            None,
        ))
        .run()
        .unwrap();
        assert_healthy(&report, engine.name());
        assert_eq!(report.mempool.rejected_duplicate, 0);
        assert_eq!(report.mempool.rejected_gap, 0);
    }
}

#[test]
fn all_engines_identical_roots_hotstuff_ycsb() {
    for engine in all_engines() {
        let report = Cluster::new(config(engine, ycsb(), OrderingMode::HotStuff, None))
            .run()
            .unwrap();
        assert_healthy(&report, engine.name());
    }
}

#[test]
fn crash_and_statesync_rejoin_all_engines() {
    // Crash replica 2 after its first checkpoint; it recovers locally and
    // catches the missed range up from a peer (block-range replay path).
    for engine in all_engines() {
        let report = Cluster::new(config(
            engine,
            smallbank(),
            OrderingMode::Kafka { brokers: 3 },
            Some(CrashPlan {
                replica: 2,
                at_ns: 8_000_000,
                recover_at_ns: 16_000_000,
            }),
        ))
        .run()
        .unwrap();
        assert_healthy(&report, &format!("{} + crash", engine.name()));
        let crashed = &report.replicas[2];
        assert_eq!(crashed.recoveries, 1, "{}: no recovery ran", engine.name());
        assert!(
            crashed.sync_blocks > 0,
            "{}: rejoin must use state-sync catch-up",
            engine.name()
        );
    }
}

#[test]
fn early_crash_rejoins_via_manifest_transfer() {
    // Crash before the first checkpoint but well after blocks were
    // applied: local recovery cannot replay (the genesis load died with
    // the cache), so it must land at height 0 with an empty catalog —
    // NOT "succeed" by replaying onto wiped state — and the peer must
    // ship the full checkpoint manifest (state snapshot), not a range.
    let mut cfg = config(
        EngineKind::Harmony(HarmonyConfig::default()),
        smallbank(),
        OrderingMode::Kafka { brokers: 3 },
        Some(CrashPlan {
            replica: 1,
            at_ns: 6_000_000,
            recover_at_ns: 14_000_000,
        }),
    );
    cfg.replica.chain.checkpoint_every = 1_000; // never checkpoints locally
    let report = Cluster::new(cfg).run().unwrap();
    assert_healthy(&report, "manifest rejoin");
    let crashed = &report.replicas[1];
    assert_eq!(crashed.recoveries, 1);
    assert!(crashed.sync_blocks > 0, "manifest install counts as sync");
}

#[test]
fn rejoin_fails_over_when_the_designated_sync_peer_is_down() {
    // Replica 2 crashes and rejoins while replica 3 — the first
    // candidate on its sync failover ring — is itself still down. The
    // first sync request gets no answer, the timeout fires, and the
    // retry fails over to the next candidate, which serves the catch-up.
    // The run must still converge on the no-fault reference roots.
    let engine = EngineKind::Harmony(HarmonyConfig::default());
    let mut cfg = config(
        engine,
        smallbank(),
        OrderingMode::Kafka { brokers: 3 },
        None,
    );
    cfg.faults = FaultSchedule::new(vec![
        harmony_node::FaultEvent::Crash {
            replica: 2,
            at_ns: 6_000_000,
            recover_at_ns: 14_000_000,
        },
        // Covers replica 2's whole recovery window, so every request it
        // sends to replica 3 dies silently.
        harmony_node::FaultEvent::Crash {
            replica: 3,
            at_ns: 5_000_000,
            recover_at_ns: 60_000_000,
        },
    ]);
    let reference = Cluster::new(config(
        engine,
        smallbank(),
        OrderingMode::Kafka { brokers: 3 },
        None,
    ))
    .run()
    .unwrap();
    let report = Cluster::new(cfg).run().unwrap();
    assert_healthy(&report, "failover rejoin");
    let rejoined = &report.replicas[2];
    assert_eq!(rejoined.recoveries, 1, "replica 2 must have recovered");
    assert!(
        rejoined.sync_retries >= 1,
        "the dead first candidate must cost at least one timeout/failover: {rejoined:?}"
    );
    assert!(
        rejoined.sync_blocks > 0,
        "failover peer must serve catch-up"
    );
    // Safety: a faulted run converges on exactly the no-fault state.
    assert_eq!(
        report.replicas[0].root, reference.replicas[0].root,
        "recovered cluster diverged from the no-fault reference"
    );
}

#[test]
fn crash_rejoin_under_hotstuff_ordering() {
    let report = Cluster::new(config(
        EngineKind::Harmony(HarmonyConfig::default()),
        ycsb(),
        OrderingMode::HotStuff,
        Some(CrashPlan {
            replica: 3,
            at_ns: 8_000_000,
            recover_at_ns: 16_000_000,
        }),
    ))
    .run()
    .unwrap();
    assert_healthy(&report, "hotstuff + crash");
    assert_eq!(report.replicas[3].recoveries, 1);
}

#[test]
fn cluster_runs_are_deterministic() {
    let run = || {
        Cluster::new(config(
            EngineKind::Aria,
            smallbank(),
            OrderingMode::Kafka { brokers: 3 },
            Some(CrashPlan {
                replica: 0,
                at_ns: 8_000_000,
                recover_at_ns: 16_000_000,
            }),
        ))
        .run()
        .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.replicas[1].root, b.replicas[1].root);
    assert_eq!(a.metrics.stats.committed, b.metrics.stats.committed);
    assert_eq!(a.metrics.wall_ns, b.metrics.wall_ns);
    assert_eq!(a.sealed_blocks, b.sealed_blocks);
    assert_eq!(a.submitted_txns, b.submitted_txns);
}

#[test]
fn tpcc_full_mix_on_the_node_runtime() {
    // TPC-C rides the same replicated path as Smallbank/YCSB: generated
    // contracts are serialized into sealed blocks, decoded through
    // TpccCodec on every replica, and all replicas reach identical
    // roots — including a crash/state-sync rejoin mid-run.
    use harmony_workloads::TpccConfig;
    let workload = || {
        ClusterWorkload::Tpcc(TpccConfig {
            warehouses: 2,
            scale: 0.01,
            ..TpccConfig::default()
        })
    };
    let mut cfg = config(
        EngineKind::Harmony(HarmonyConfig::default()),
        workload(),
        OrderingMode::Kafka { brokers: 3 },
        None,
    );
    // TPC-C transactions are heavier: a lighter offered load keeps the
    // smoke test quick while still sealing plenty of blocks.
    cfg.open_loop = OpenLoopConfig {
        clients: 6,
        rate_tps: 20_000.0,
        hot_share: 0.0,
    };
    cfg.load_ns = 10_000_000;
    let report = Cluster::new(cfg).run().unwrap();
    assert_healthy(&report, "tpcc");
    let mut crash_cfg = config(
        EngineKind::Rbc,
        workload(),
        OrderingMode::Kafka { brokers: 3 },
        Some(CrashPlan {
            replica: 1,
            at_ns: 5_000_000,
            recover_at_ns: 10_000_000,
        }),
    );
    crash_cfg.open_loop = OpenLoopConfig {
        clients: 6,
        rate_tps: 20_000.0,
        hot_share: 0.0,
    };
    crash_cfg.load_ns = 10_000_000;
    let report = Cluster::new(crash_cfg).run().unwrap();
    assert_healthy(&report, "tpcc + crash");
    assert_eq!(report.replicas[1].recoveries, 1);
    assert!(report.replicas[1].sync_blocks > 0);
}

#[test]
fn backpressure_engages_under_overload() {
    // A tiny mempool against a fire-hose arrival rate must reject by
    // backpressure while the cluster stays consistent.
    let mut cfg = config(
        EngineKind::Rbc,
        smallbank(),
        OrderingMode::Kafka { brokers: 3 },
        None,
    );
    cfg.mempool = MempoolConfig {
        capacity: 64,
        ..MempoolConfig::default()
    };
    cfg.open_loop = OpenLoopConfig {
        clients: 8,
        rate_tps: 500_000.0,
        hot_share: 0.0,
    };
    let report = Cluster::new(cfg).run().unwrap();
    assert_healthy(&report, "overload");
    assert!(
        report.mempool.rejected_backpressure > 0,
        "overload must hit admission control: {:?}",
        report.mempool
    );
}

#[test]
fn hotstuff_ordering_latency_exceeds_kafka() {
    // Three voting rounds cost more than one replication round trip.
    let kafka = Cluster::new(config(
        EngineKind::Rbc,
        ycsb(),
        OrderingMode::Kafka { brokers: 3 },
        None,
    ))
    .run()
    .unwrap();
    let hs = Cluster::new(config(
        EngineKind::Rbc,
        ycsb(),
        OrderingMode::HotStuff,
        None,
    ))
    .run()
    .unwrap();
    assert!(
        hs.order_latency_ms > kafka.order_latency_ms,
        "kafka={} hs={}",
        kafka.order_latency_ms,
        hs.order_latency_ms
    );
}
