//! End-to-end observability-plane scenarios: a 4-replica × 4-shard
//! cluster must produce a Prometheus exposition covering the whole
//! metric catalog (mempool, per-shard txn outcomes, latency histograms,
//! planner, state-sync paths) and a schema-versioned JSON timeline that
//! is **byte-identical** across two same-seed runs — the determinism
//! contract that makes metrics diffable in CI.

use harmony_chain::ChainConfig;
use harmony_core::HarmonyConfig;
use harmony_crypto::CryptoCost;
use harmony_metrics::TIMELINE_SCHEMA;
use harmony_node::{
    Cluster, ClusterConfig, ClusterReport, ClusterWorkload, CrashPlan, FaultSchedule,
    MempoolConfig, OrderingMode, ReplicaConfig, ShardTopology, SyncPolicy,
};
use harmony_sim::EngineKind;
use harmony_storage::StorageConfig;
use harmony_workloads::{OpenLoopConfig, SmallbankConfig};

const PARTITIONS: u32 = 16;
const LOAD_NS: u64 = 15_000_000;
const DRAIN_NS: u64 = 600_000_000;

fn smallbank() -> ClusterWorkload {
    ClusterWorkload::Smallbank(SmallbankConfig {
        accounts: 400,
        theta: 0.6,
        partitions: u64::from(PARTITIONS),
        multi_partition_ratio: 0.2,
    })
}

fn config(crash: Option<CrashPlan>, stagger: u64) -> ClusterConfig {
    ClusterConfig {
        replicas: 4,
        replica: ReplicaConfig {
            chain: ChainConfig {
                storage: StorageConfig::memory(),
                crypto: CryptoCost::free(),
                checkpoint_every: 3,
                ..ChainConfig::default()
            },
            engine: EngineKind::Harmony(HarmonyConfig::default()),
            workers: 2,
            gossip_every: 5,
        },
        topology: Some(ShardTopology {
            shards: 4,
            partitions: PARTITIONS,
            partitioning: None,
            checkpoint_stagger: stagger,
        }),
        workload: smallbank(),
        ordering: OrderingMode::Kafka { brokers: 3 },
        faults: crash.map(FaultSchedule::from).unwrap_or_default(),
        mempool: MempoolConfig {
            capacity: 2_048,
            ..MempoolConfig::default()
        },
        open_loop: OpenLoopConfig {
            clients: 8,
            rate_tps: 40_000.0,
            hot_share: 0.0,
        },
        load_ns: LOAD_NS,
        drain_ns: DRAIN_NS,
        block_txns: 24,
        batch_interval_ns: 500_000,
        window: 4,
        sync: SyncPolicy::default(),
        seed: 0x0B5E,
        ..ClusterConfig::default()
    }
}

/// Extract the value of the exposition line that starts with
/// `name_and_labels ` (exact sample-name + label-set match).
fn metric_value(exposition: &str, name_and_labels: &str) -> u64 {
    let line = exposition
        .lines()
        .find(|l| {
            l.strip_prefix(name_and_labels)
                .is_some_and(|rest| rest.starts_with(' '))
        })
        .unwrap_or_else(|| panic!("no sample `{name_and_labels}` in exposition"));
    line.rsplit(' ').next().unwrap().parse().unwrap()
}

#[test]
fn same_seed_runs_produce_byte_identical_timelines() {
    let run = || Cluster::new(config(None, 0)).run().unwrap();
    let a = run();
    let b = run();
    assert_eq!(
        a.timeline, b.timeline,
        "same-seed timelines must be byte-identical"
    );
    assert_eq!(
        a.exposition, b.exposition,
        "same-seed expositions must be byte-identical"
    );
    // Schema and virtual-time shape.
    assert!(a
        .timeline
        .contains(&format!("\"schema\": \"{TIMELINE_SCHEMA}\"")));
    assert!(a.timeline.contains("\"interval_ns\": 5000000"));
    let snapshots = a.timeline.matches("\"t_ns\":").count();
    assert!(
        snapshots >= 3,
        "expected periodic snapshots plus the final one, got {snapshots}"
    );
    // The final snapshot lands exactly on the run deadline.
    assert!(
        a.timeline
            .contains(&format!("\"t_ns\": {}", LOAD_NS + DRAIN_NS)),
        "final snapshot must be stamped at the virtual deadline"
    );
    assert!(a.timeline.ends_with('\n'));
}

#[test]
fn exposition_covers_the_metric_catalog_and_agrees_with_the_report() {
    let report: ClusterReport = Cluster::new(config(None, 0)).run().unwrap();
    let exp = &report.exposition;

    // Mempool plane, and its agreement with the MempoolStats view
    // (satellite: MempoolStats is a projection of the same registry
    // cells, so the two can never drift apart).
    assert!(exp.contains("# TYPE harmony_mempool_depth gauge"));
    assert!(exp.contains("# TYPE harmony_mempool_admitted_total counter"));
    assert!(exp.contains("harmony_mempool_rejected_total{cause=\"backpressure\"}"));
    assert!(exp.contains("harmony_mempool_rejected_total{cause=\"duplicate\"}"));
    assert!(exp.contains("harmony_mempool_rejected_total{cause=\"nonce_gap\"}"));
    assert!(exp.contains("harmony_mempool_rejected_total{cause=\"tenant_quota\"}"));
    assert_eq!(
        metric_value(exp, "harmony_mempool_admitted_total"),
        report.mempool.admitted,
        "exposition and MempoolStats must agree"
    );

    // Replica plane: txn outcomes (with abort reasons), latency and
    // root-fold histograms, root-tracker buffer gauges.
    for r in 0..4 {
        assert!(exp.contains(&format!(
            "harmony_replica_committed_txns_total{{replica=\"{r}\"}}"
        )));
        assert!(exp.contains(&format!(
            "harmony_replica_commit_latency_ns_bucket{{replica=\"{r}\",le=\"+Inf\"}}"
        )));
        assert!(exp.contains(&format!(
            "harmony_replica_order_latency_ns_count{{replica=\"{r}\"}}"
        )));
    }
    assert!(exp.contains("harmony_replica_aborted_txns_total{replica=\"0\",reason=\"ww\"}"));
    assert!(exp.contains("# TYPE harmony_replica_block_cost_ns histogram"));
    assert!(exp.contains("harmony_replica_root_fold_ns_count{replica=\"0\"}"));
    assert!(exp.contains("harmony_replica_root_own_buffer_hwm{replica=\"0\"}"));
    assert!(exp.contains("harmony_replica_root_peer_buffer_hwm{replica=\"0\"}"));

    // Per-shard txn counters and the cross-shard planner plane.
    for s in 0..4 {
        assert!(exp.contains(&format!(
            "harmony_shard_committed_txns_total{{replica=\"0\",shard=\"{s}\"}}"
        )));
    }
    assert!(exp.contains("harmony_xshard_cross_txns_total{replica=\"0\"}"));
    assert!(exp.contains("harmony_xshard_single_txns_total{replica=\"0\"}"));
    assert!(exp.contains("harmony_xshard_survivor_set_size_bucket{replica=\"0\",le=\"+Inf\"}"));

    // State-sync counters exist (zero on a crash-free run) for both paths.
    assert!(exp.contains("harmony_statesync_requests_total{replica=\"0\",path=\"manifest\"}"));
    assert!(exp.contains("harmony_statesync_transfer_bytes_total{replica=\"0\",path=\"range\"}"));
    // Chaos-plane families are registered (and zero) even on fault-free
    // runs, so dashboards have a stable schema.
    assert!(exp.contains("harmony_statesync_retries_total{replica=\"0\"}"));
    assert!(exp.contains("harmony_statesync_refusals_total{replica=\"0\"}"));
    assert!(exp.contains("harmony_replica_quarantine_enters_total{replica=\"0\"}"));
    assert!(exp.contains("harmony_replica_quarantine_exits_total{replica=\"0\"}"));

    // Every committed txn the observer saw is in the per-replica counter.
    let committed = metric_value(exp, "harmony_replica_committed_txns_total{replica=\"0\"}");
    assert_eq!(committed, report.metrics.stats.committed as u64);
    // Per-shard counters cover the replica total. A cross-shard txn
    // commits on every participating shard, so the sum can only exceed
    // the block-level count (never undercount).
    let shard_sum: u64 = (0..4)
        .map(|s| {
            let v = metric_value(
                exp,
                &format!("harmony_shard_committed_txns_total{{replica=\"0\",shard=\"{s}\"}}"),
            );
            assert!(v > 0, "shard {s} committed nothing");
            v
        })
        .sum();
    assert!(
        shard_sum >= committed,
        "shard counters must cover the total: {shard_sum} < {committed}"
    );

    // Latency histogram invariants: count equals committed weight.
    let lat_count = metric_value(
        exp,
        "harmony_replica_commit_latency_ns_count{replica=\"0\"}",
    );
    assert_eq!(lat_count, committed);
}

#[test]
fn crash_rejoin_splits_sync_bytes_by_path() {
    // Staggered checkpoints force one rejoin to mix both sync paths
    // (manifest install for the shards without a checkpoint, range replay
    // for the rest), so both byte counters must move — and partition the
    // transfer exactly.
    let report = Cluster::new(config(
        Some(CrashPlan {
            replica: 2,
            at_ns: 7_000_000,
            recover_at_ns: 14_000_000,
        }),
        1_000,
    ))
    .run()
    .unwrap();
    assert!(report.consistent, "replicas diverged");
    let crashed = &report.replicas[2];
    assert!(crashed.sync_manifest_shards > 0 && crashed.sync_range_shards > 0);
    assert!(
        crashed.sync_manifest_bytes > 0,
        "manifest path moved shards but no bytes: {crashed:?}"
    );
    assert!(
        crashed.sync_range_bytes > 0,
        "range path moved shards but no bytes: {crashed:?}"
    );
    // The summary is read straight off the registry counters, and the
    // exposition renders the same cells.
    let exp = &report.exposition;
    assert_eq!(
        metric_value(
            exp,
            "harmony_statesync_transfer_bytes_total{replica=\"2\",path=\"manifest\"}"
        ),
        crashed.sync_manifest_bytes
    );
    assert_eq!(
        metric_value(
            exp,
            "harmony_statesync_transfer_bytes_total{replica=\"2\",path=\"range\"}"
        ),
        crashed.sync_range_bytes
    );
    assert_eq!(
        metric_value(
            exp,
            "harmony_statesync_requests_total{replica=\"2\",path=\"manifest\"}"
        ),
        crashed.sync_manifest_shards
    );
    // Stable replicas never synced: their counters stayed zero.
    assert_eq!(report.replicas[0].sync_manifest_bytes, 0);
    assert_eq!(report.replicas[0].sync_range_bytes, 0);
}

#[test]
fn flat_cluster_exposes_replica_metrics_without_shard_families() {
    let mut cfg = config(None, 0);
    cfg.topology = None;
    let report = Cluster::new(cfg).run().unwrap();
    let exp = &report.exposition;
    assert!(exp.contains("harmony_replica_committed_txns_total{replica=\"0\"}"));
    assert!(exp.contains("harmony_mempool_admitted_total"));
    assert!(
        !exp.contains("harmony_shard_committed_txns_total"),
        "flat runs must not register per-shard families"
    );
    assert!(
        !exp.contains("harmony_xshard_"),
        "flat runs have no cross-shard planner"
    );
    let committed = metric_value(exp, "harmony_replica_committed_txns_total{replica=\"0\"}");
    assert_eq!(committed, report.metrics.stats.committed as u64);
}
