//! Property tests for the sharded node runtime — the replicated extension
//! of `crates/shard/tests/proptest_shard.rs`'s invariant.
//!
//! For random crash schedules × shard counts {1, 2, 4} × all five
//! engines, under Kafka ordering (where replica behavior cannot feed back
//! into the sealed block stream):
//!
//! * a cluster where one replica crashes and rejoins via state-sync ends
//!   with `sharded_state_root`s bit-identical to a no-crash reference
//!   cluster run on the same seed, and
//! * the N-shard cluster's `logical_state_root` equals the 1-shard
//!   cluster's — sharding the replicated runtime redistributes work
//!   without changing a single commit decision.

use harmony_chain::ChainConfig;
use harmony_core::HarmonyConfig;
use harmony_crypto::CryptoCost;
use harmony_node::{
    Cluster, ClusterConfig, ClusterReport, ClusterWorkload, CrashPlan, FaultSchedule,
    MempoolConfig, OrderingMode, ReplicaConfig, ShardTopology, SyncPolicy,
};
use harmony_sim::EngineKind;
use harmony_storage::StorageConfig;
use harmony_workloads::{OpenLoopConfig, SmallbankConfig};
use proptest::prelude::*;

const PARTITIONS: u32 = 16;

fn all_engines() -> [EngineKind; 5] {
    [
        EngineKind::Harmony(HarmonyConfig::default()),
        EngineKind::Aria,
        EngineKind::Rbc,
        EngineKind::Fabric,
        EngineKind::FastFabric,
    ]
}

fn run_cluster(
    engine: EngineKind,
    shards: usize,
    seed: u64,
    stagger: u64,
    crash: Option<CrashPlan>,
) -> ClusterReport {
    Cluster::new(ClusterConfig {
        replicas: 4,
        replica: ReplicaConfig {
            chain: ChainConfig {
                storage: StorageConfig::memory(),
                crypto: CryptoCost::free(),
                checkpoint_every: 3,
                ..ChainConfig::default()
            },
            engine,
            workers: 2,
            gossip_every: 5,
        },
        topology: Some(ShardTopology {
            shards,
            partitions: PARTITIONS,
            partitioning: None,
            checkpoint_stagger: stagger,
        }),
        workload: ClusterWorkload::Smallbank(SmallbankConfig {
            accounts: 300,
            theta: 0.6,
            partitions: u64::from(PARTITIONS),
            multi_partition_ratio: 0.25,
        }),
        ordering: OrderingMode::Kafka { brokers: 3 },
        faults: crash.map(FaultSchedule::from).unwrap_or_default(),
        mempool: MempoolConfig::default(),
        open_loop: OpenLoopConfig {
            clients: 6,
            rate_tps: 30_000.0,
            hot_share: 0.0,
        },
        load_ns: 10_000_000,
        drain_ns: 600_000_000,
        block_txns: 20,
        batch_interval_ns: 500_000,
        window: 4,
        sync: SyncPolicy::default(),
        seed,
        ..ClusterConfig::default()
    })
    .run()
    .unwrap()
}

fn assert_internally_consistent(report: &ClusterReport, label: &str) {
    assert!(report.consistent, "{label}: replicas diverged");
    assert_eq!(report.divergence_alarms, 0, "{label}: alarms");
    assert!(report.metrics.stats.committed > 0, "{label}: no commits");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Crash/rejoin never changes the committed state, and the logical
    /// database is shard-count-invariant, for every engine.
    #[test]
    fn crashed_cluster_matches_reference_and_one_shard_logical_root(
        seed in 0u64..1_000_000,
        shards_pick in 0usize..3,
        crash_replica in 0usize..4,
        crash_at_ms in 3u64..8,
        downtime_ms in 3u64..7,
        stagger_pick in 0usize..3,
    ) {
        let shards = [1, 2, 4][shards_pick];
        // 0: lockstep checkpoints; 2: mildly staggered; 1000: later
        // shards never checkpoint before the crash (manifest path).
        let stagger = [0, 2, 1_000][stagger_pick];
        let crash = CrashPlan {
            replica: crash_replica,
            at_ns: crash_at_ms * 1_000_000,
            recover_at_ns: (crash_at_ms + downtime_ms) * 1_000_000,
        };
        for engine in all_engines() {
            let label = format!(
                "{} shards={shards} stagger={stagger} seed={seed}",
                engine.name()
            );
            let reference = run_cluster(engine, shards, seed, stagger, None);
            assert_internally_consistent(&reference, &label);
            let crashed = run_cluster(engine, shards, seed, stagger, Some(crash));
            assert_internally_consistent(&crashed, &format!("{label} +crash"));
            prop_assert_eq!(
                crashed.replicas[0].root,
                reference.replicas[0].root,
                "recovered sharded_state_root diverged from the no-crash \
                 reference: {} (crash={:?})",
                label,
                crash
            );
            prop_assert_eq!(
                crashed.replicas[crash_replica].height,
                reference.replicas[crash_replica].height,
                "rejoined replica stopped short: {}",
                label
            );
            // N-shard ≡ 1-shard logical state.
            if shards > 1 {
                let one = run_cluster(engine, 1, seed, stagger, None);
                assert_internally_consistent(&one, &format!("{label} 1shard"));
                prop_assert_eq!(
                    reference.replicas[0].logical_root,
                    one.replicas[0].logical_root,
                    "logical root not shard-count-invariant: {}",
                    label
                );
            }
        }
    }
}
