//! Property tests for **elastic resharding**: live shard split/merge via
//! topology-change blocks, sealed into the ordered stream by the orderer
//! and applied by every replica at the same epoch boundary.
//!
//! The headline invariant (the ISSUE's acceptance bar): a cluster that
//! reshards **1 → 2 → 4 → 2 mid-workload** ends with the logical
//! database — folded root *and* per-table heads — bit-identical to a
//! fixed-count cluster fed the same seed, across all five engines,
//! **including a run where a replica crashes during the handover window**
//! and rejoins across the topology boundary via state-sync
//! (`reshape_for_sync`).
//!
//! Ordering is Kafka so replica behavior cannot feed back into the
//! sealed block stream, and sealing is count-driven (an effectively
//! infinite batch interval) so the workload sub-batches are identical
//! whether or not marker blocks interleave — the same eager-seal trick
//! the TCP runtime uses to match simulator roots.

use harmony_chain::ChainConfig;
use harmony_core::HarmonyConfig;
use harmony_crypto::CryptoCost;
use harmony_node::{
    Cluster, ClusterConfig, ClusterReport, ClusterWorkload, CrashPlan, FaultSchedule,
    MempoolConfig, OrderingMode, ReplicaConfig, ReshardAt, ReshardSchedule, ShardTopology,
    SyncPolicy,
};
use harmony_sim::EngineKind;
use harmony_storage::StorageConfig;
use harmony_workloads::{OpenLoopConfig, SmallbankConfig};
use proptest::prelude::*;

const PARTITIONS: u32 = 16;

/// The elastic schedule under test: split 1→2, split 2→4, merge 4→2.
fn split_merge_schedule() -> ReshardSchedule {
    ReshardSchedule::new(vec![
        ReshardAt {
            height: 3,
            new_shards: 2,
        },
        ReshardAt {
            height: 6,
            new_shards: 4,
        },
        ReshardAt {
            height: 9,
            new_shards: 2,
        },
    ])
}

fn all_engines() -> [EngineKind; 5] {
    [
        EngineKind::Harmony(HarmonyConfig::default()),
        EngineKind::Aria,
        EngineKind::Rbc,
        EngineKind::Fabric,
        EngineKind::FastFabric,
    ]
}

fn run_cluster(
    engine: EngineKind,
    shards: usize,
    seed: u64,
    reshards: ReshardSchedule,
    crash: Option<CrashPlan>,
) -> ClusterReport {
    Cluster::new(ClusterConfig {
        replicas: 4,
        replica: ReplicaConfig {
            chain: ChainConfig {
                storage: StorageConfig::memory(),
                crypto: CryptoCost::free(),
                checkpoint_every: 3,
                ..ChainConfig::default()
            },
            engine,
            workers: 2,
            gossip_every: 5,
        },
        topology: Some(ShardTopology {
            shards,
            partitions: PARTITIONS,
            partitioning: None,
            checkpoint_stagger: 0,
        }),
        workload: ClusterWorkload::Smallbank(SmallbankConfig {
            accounts: 300,
            theta: 0.6,
            partitions: u64::from(PARTITIONS),
            multi_partition_ratio: 0.25,
        }),
        ordering: OrderingMode::Kafka { brokers: 3 },
        faults: crash.map(FaultSchedule::from).unwrap_or_default(),
        reshards,
        mempool: MempoolConfig::default(),
        open_loop: OpenLoopConfig {
            clients: 6,
            rate_tps: 30_000.0,
            hot_share: 0.0,
        },
        load_ns: 10_000_000,
        drain_ns: 600_000_000,
        block_txns: 20,
        // Count-driven sealing only: marker blocks reset the ripe clock,
        // so interval seals could shift workload batch boundaries between
        // the elastic and fixed-count runs and change per-block conflict
        // windows. Eager full 20-txn blocks are batched identically
        // either way (the same trick the TCP runtime uses to match
        // simulator roots).
        eager_seal: true,
        batch_interval_ns: 1 << 50,
        window: 4,
        sync: SyncPolicy::default(),
        seed,
        ..ClusterConfig::default()
    })
    .run()
    .unwrap()
}

fn assert_internally_consistent(report: &ClusterReport, label: &str) {
    assert!(report.consistent, "{label}: replicas diverged");
    assert_eq!(report.divergence_alarms, 0, "{label}: alarms");
    assert!(report.metrics.stats.committed > 0, "{label}: no commits");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// 1→2→4→2 mid-workload ≡ fixed 2-shard run (logical root and
    /// per-table heads), for every engine — and a replica that crashes
    /// across the handover window rejoins to the bit-identical physical
    /// root of the no-crash elastic run.
    #[test]
    fn split_merge_matches_fixed_count_even_across_a_crash(
        seed in 0u64..1_000_000,
        crash_replica in 0usize..4,
        crash_at_ms in 2u64..7,
        downtime_ms in 2u64..6,
    ) {
        let crash = CrashPlan {
            replica: crash_replica,
            at_ns: crash_at_ms * 1_000_000,
            recover_at_ns: (crash_at_ms + downtime_ms) * 1_000_000,
        };
        for engine in all_engines() {
            let label = format!("{} seed={seed}", engine.name());

            let fixed = run_cluster(engine, 2, seed, ReshardSchedule::default(), None);
            assert_internally_consistent(&fixed, &format!("{label} fixed"));
            prop_assert_eq!(fixed.replicas[0].reshards, 0, "static run resharded: {}", &label);

            let elastic = run_cluster(engine, 1, seed, split_merge_schedule(), None);
            assert_internally_consistent(&elastic, &format!("{label} elastic"));
            for r in &elastic.replicas {
                prop_assert_eq!(r.reshards, 3, "replica {} missed a marker: {}", r.replica, &label);
                prop_assert_eq!(r.hosted_shards, 2, "replica {} wrong final layout: {}", r.replica, &label);
            }
            prop_assert_eq!(
                elastic.replicas[0].logical_root,
                fixed.replicas[0].logical_root,
                "elastic 1→2→4→2 logical root diverged from the fixed 2-shard run: {}",
                &label
            );
            prop_assert_eq!(
                &elastic.replicas[0].table_heads,
                &fixed.replicas[0].table_heads,
                "per-table heads diverged: {}",
                &label
            );

            let crashed = run_cluster(engine, 1, seed, split_merge_schedule(), Some(crash));
            assert_internally_consistent(&crashed, &format!("{label} elastic+crash"));
            prop_assert_eq!(crashed.replicas[crash_replica].recoveries, 1, "no recovery: {}", &label);
            for (c, e) in crashed.replicas.iter().zip(&elastic.replicas) {
                prop_assert_eq!(
                    c.root, e.root,
                    "crash during the reshard window changed the physical root \
                     of replica {}: {} (crash={:?})",
                    c.replica, &label, crash
                );
                prop_assert_eq!(c.height, e.height, "height short: {}", &label);
                prop_assert_eq!(c.hosted_shards, 2, "rejoined on a stale layout: {}", &label);
                prop_assert_eq!(c.reshards, 3, "rejoined replica missed an epoch: {}", &label);
            }
            prop_assert_eq!(
                &crashed.replicas[crash_replica].table_heads,
                &fixed.replicas[0].table_heads,
                "recovered replica's tables diverged: {}",
                &label
            );
        }
    }
}

/// A same-count reshard (2→2) is a real epoch boundary — fresh shard
/// chains, a bumped epoch, an anchored physical fold — but the logical
/// database it carries across the handover is untouched.
#[test]
fn noop_reshard_same_count_preserves_logical_state() {
    let seed = 0xE1A5;
    let schedule = ReshardSchedule::new(vec![ReshardAt {
        height: 4,
        new_shards: 2,
    }]);
    let engine = EngineKind::Harmony(HarmonyConfig::default());
    let fixed = run_cluster(engine, 2, seed, ReshardSchedule::default(), None);
    let elastic = run_cluster(engine, 2, seed, schedule, None);
    assert_internally_consistent(&fixed, "fixed");
    assert_internally_consistent(&elastic, "2→2");
    assert_eq!(elastic.replicas[0].reshards, 1);
    assert_eq!(elastic.replicas[0].hosted_shards, 2);
    assert_eq!(
        elastic.replicas[0].logical_root,
        fixed.replicas[0].logical_root
    );
    assert_eq!(
        elastic.replicas[0].table_heads,
        fixed.replicas[0].table_heads
    );
    // The physical fold is content-based: same layout, same state, same
    // root — even though the elastic run's shard chains were rebuilt
    // from scratch at the epoch boundary.
    assert_eq!(elastic.replicas[0].root, fixed.replicas[0].root);
    // The marker block occupies one global height of its own.
    assert_eq!(elastic.replicas[0].height.0, fixed.replicas[0].height.0 + 1);
}

/// An empty schedule is the static topology: the config validates, no
/// marker is ever sealed, and the run is bit-identical to one that never
/// mentioned resharding at all.
#[test]
fn empty_schedule_is_the_static_topology() {
    let engine = EngineKind::Aria;
    let a = run_cluster(engine, 2, 7, ReshardSchedule::default(), None);
    let b = run_cluster(engine, 2, 7, ReshardSchedule::new(Vec::new()), None);
    assert_internally_consistent(&a, "default");
    assert_internally_consistent(&b, "empty");
    assert_eq!(a.replicas[0].root, b.replicas[0].root);
    assert_eq!(a.replicas[0].height, b.replicas[0].height);
    assert_eq!(a.sealed_blocks, b.sealed_blocks);
    assert_eq!(a.replicas[0].reshards, 0);
    assert_eq!(b.replicas[0].reshards, 0);
}
