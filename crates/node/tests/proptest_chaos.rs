//! Chaos property tests: random multi-fault schedules against the full
//! cluster, flat and sharded, across engines.
//!
//! Fault scopes are restricted to replica-side behavior (crash cycles,
//! partitions, replica-link drop/duplication/delay windows, sync-serve
//! refusals, root poisoning) under **Kafka** ordering, where replicas
//! never feed back into sealing. The sealed block stream of a faulted
//! run is therefore identical to the no-fault run on the same seed, and
//! two properties must hold however nasty the schedule:
//!
//! * **Safety** — after recovery, every replica's final root is
//!   bit-identical to the no-fault reference run's.
//! * **Liveness** — the never-faulted observer (replica 0) keeps
//!   committing throughout.
//!
//! A third check pins **determinism**: the same chaos config run twice
//! produces byte-identical metric timelines.

use harmony_chain::ChainConfig;
use harmony_core::HarmonyConfig;
use harmony_crypto::CryptoCost;
use harmony_node::{
    Cluster, ClusterConfig, ClusterReport, ClusterWorkload, FaultEvent, FaultSchedule,
    MempoolConfig, OrderingMode, ReplicaConfig, ShardTopology, SyncPolicy,
};
use harmony_sim::EngineKind;
use harmony_storage::StorageConfig;
use harmony_workloads::{OpenLoopConfig, SmallbankConfig};
use proptest::prelude::*;

const PARTITIONS: u32 = 16;
const LOAD_NS: u64 = 10_000_000;
const MS: u64 = 1_000_000;

fn engines() -> [EngineKind; 3] {
    [
        EngineKind::Harmony(HarmonyConfig::default()),
        EngineKind::Aria,
        EngineKind::Fabric,
    ]
}

fn run_cluster(
    engine: EngineKind,
    sharded: bool,
    seed: u64,
    faults: FaultSchedule,
) -> ClusterReport {
    Cluster::new(ClusterConfig {
        replicas: 4,
        replica: ReplicaConfig {
            chain: ChainConfig {
                storage: StorageConfig::memory(),
                crypto: CryptoCost::free(),
                checkpoint_every: 3,
                ..ChainConfig::default()
            },
            engine,
            workers: 2,
            gossip_every: 2,
        },
        topology: sharded.then_some(ShardTopology {
            shards: 2,
            partitions: PARTITIONS,
            partitioning: None,
            checkpoint_stagger: 2,
        }),
        workload: ClusterWorkload::Smallbank(SmallbankConfig {
            accounts: 300,
            theta: 0.6,
            partitions: u64::from(PARTITIONS),
            multi_partition_ratio: 0.25,
        }),
        ordering: OrderingMode::Kafka { brokers: 3 },
        faults,
        mempool: MempoolConfig::default(),
        open_loop: OpenLoopConfig {
            clients: 6,
            rate_tps: 30_000.0,
            hot_share: 0.0,
        },
        load_ns: LOAD_NS,
        drain_ns: 600_000_000,
        block_txns: 20,
        batch_interval_ns: 500_000,
        window: 4,
        sync: SyncPolicy::default(),
        seed,
        ..ClusterConfig::default()
    })
    .run()
    .unwrap()
}

/// One random fault schedule, valid for 4 replicas by construction:
/// replica 0 is kept health-fault-free (the observer every liveness
/// assertion leans on), the two optional crash cycles land on distinct
/// replicas (so they cannot overlap), and links are never self-links.
/// Link faults may touch any replica pair, including the observer's.
fn schedule_strategy() -> impl Strategy<Value = FaultSchedule> {
    let crash_a = prop::option::of((1usize..3, 2u64..8, 2u64..6));
    let crash_b = prop::option::of((2u64..8, 2u64..6));
    let partition = prop::option::of((1usize..4, 2u64..8, 2u64..5));
    let drops = prop::option::of((0usize..4, 1usize..4, 1u64..8, 1u64..5, 200u16..1001));
    let dup = prop::option::of((
        0usize..4,
        1usize..4,
        1u64..8,
        1u64..5,
        200u16..1001,
        50u64..500,
    ));
    let delay = prop::option::of((1usize..4, 1u64..8, 1u64..5, 100u64..2_000));
    let refusal = prop::option::of((0usize..4, 1u64..8, 2u64..20));
    let poison = prop::option::of((1usize..4, 3u64..8));

    (
        (crash_a, crash_b, partition),
        (drops, dup, delay),
        (refusal, poison),
    )
        .prop_map(
            |((crash_a, crash_b, partition), (drops, dup, delay), (refusal, poison))| {
                let mut events = Vec::new();
                if let Some((r, at_ms, down_ms)) = crash_a {
                    events.push(FaultEvent::Crash {
                        replica: r,
                        at_ns: at_ms * MS,
                        recover_at_ns: (at_ms + down_ms) * MS,
                    });
                }
                if let Some((at_ms, down_ms)) = crash_b {
                    events.push(FaultEvent::Crash {
                        replica: 3,
                        at_ns: at_ms * MS,
                        recover_at_ns: (at_ms + down_ms) * MS,
                    });
                }
                if let Some((r, at_ms, dur_ms)) = partition {
                    events.push(FaultEvent::Partition {
                        replica: r,
                        from_ns: at_ms * MS,
                        until_ns: (at_ms + dur_ms) * MS,
                    });
                }
                if let Some((a, d, at_ms, dur_ms, per_mille)) = drops {
                    events.push(FaultEvent::LinkDrop {
                        from: a,
                        to: (a + d) % 4,
                        from_ns: at_ms * MS,
                        until_ns: (at_ms + dur_ms) * MS,
                        per_mille,
                    });
                }
                if let Some((a, d, at_ms, dur_ms, per_mille, echo_us)) = dup {
                    events.push(FaultEvent::LinkDuplicate {
                        from: a,
                        to: (a + d) % 4,
                        from_ns: at_ms * MS,
                        until_ns: (at_ms + dur_ms) * MS,
                        per_mille,
                        echo_delay_ns: echo_us * 1_000,
                    });
                }
                if let Some((r, at_ms, dur_ms, extra_us)) = delay {
                    events.push(FaultEvent::DelaySpike {
                        replica: r,
                        from_ns: at_ms * MS,
                        until_ns: (at_ms + dur_ms) * MS,
                        extra_ns: extra_us * 1_000,
                    });
                }
                if let Some((r, at_ms, dur_ms)) = refusal {
                    events.push(FaultEvent::SyncRefusal {
                        replica: r,
                        from_ns: at_ms * MS,
                        until_ns: (at_ms + dur_ms) * MS,
                    });
                }
                if let Some((r, at_ms)) = poison {
                    events.push(FaultEvent::PoisonRoot {
                        replica: r,
                        at_ns: at_ms * MS,
                    });
                }
                FaultSchedule::new(events)
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Random fault schedules never change the committed state, and the
    /// observer keeps committing, on flat and sharded topologies across
    /// engines.
    #[test]
    fn chaos_runs_converge_on_the_no_fault_reference(
        seed in 0u64..1_000_000,
        schedule in schedule_strategy(),
    ) {
        prop_assert!(schedule.validate(4).is_ok(), "generator made an invalid schedule");
        let poisoned = !schedule.poison_events().is_empty();
        for engine in engines() {
            for sharded in [false, true] {
                let label = format!(
                    "{} sharded={sharded} seed={seed} faults={:?}",
                    engine.name(),
                    schedule.events
                );
                let reference = run_cluster(engine, sharded, seed, FaultSchedule::default());
                prop_assert!(reference.consistent, "reference diverged: {}", label);
                let chaos = run_cluster(engine, sharded, seed, schedule.clone());
                // Liveness: the never-faulted observer kept committing.
                prop_assert!(
                    chaos.metrics.stats.committed > 0,
                    "observer starved: {}",
                    label
                );
                // Safety: full convergence on the no-fault state.
                prop_assert!(chaos.consistent, "chaos run diverged: {}", label);
                for (c, r) in chaos.replicas.iter().zip(&reference.replicas) {
                    prop_assert_eq!(
                        c.root, r.root,
                        "replica {} root diverged from reference: {}",
                        c.replica, &label
                    );
                    prop_assert_eq!(
                        c.height, r.height,
                        "replica {} stopped short: {}",
                        c.replica, &label
                    );
                }
                // Alarms only ever come from injected root poisoning.
                if !poisoned {
                    prop_assert_eq!(chaos.divergence_alarms, 0, "spurious alarms: {}", &label);
                }
            }
        }
    }

    /// The same chaos schedule run twice is byte-identical — fault
    /// injection lives inside the deterministic simulation.
    #[test]
    fn chaos_runs_are_deterministic(
        seed in 0u64..1_000_000,
        schedule in schedule_strategy(),
    ) {
        let engine = EngineKind::Harmony(HarmonyConfig::default());
        let a = run_cluster(engine, false, seed, schedule.clone());
        let b = run_cluster(engine, false, seed, schedule);
        prop_assert_eq!(a.timeline, b.timeline, "timelines diverged across reruns");
        prop_assert_eq!(a.exposition, b.exposition, "expositions diverged across reruns");
    }
}
