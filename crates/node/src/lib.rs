//! End-to-end replica runtime — where the ordering service and the
//! deterministic database finally meet.
//!
//! The paper's thesis is that an Order-Execute private blockchain is
//! "consensus delivers an ordered block; deterministic execution does the
//! rest." This crate closes that loop as a running system:
//!
//! * [`mempool`] — the client-facing frontend: sessions, per-session
//!   nonces, duplicate/gap rejection, bounded-queue backpressure, and
//!   deterministic FIFO batching.
//! * [`replica`] — [`ReplicaNode`]: an [`harmony_chain::OeChain`]
//!   (storage + snapshots + any of the five DCC engines) consuming sealed
//!   blocks with ordered delivery (gap buffering), a verified delivery
//!   log, pipeline-aware virtual-time cost accounting, and state-root
//!   gossip for divergence detection.
//! * [`statesync`] — how a lagging replica catches up: checkpoint
//!   manifest transfer and/or verified block-range replay from a peer.
//! * [`cluster`] — [`Cluster`]: N replicas + orderer (+ brokers) + an
//!   open-loop client bank on the deterministic discrete-event network,
//!   with crash/rejoin scenarios, producing node-runtime
//!   [`harmony_sim::RunMetrics`] instead of the analytic composition.
//!
//! The invariant every scenario must uphold: replicas fed the same
//! ordered blocks reach **bit-identical state roots**, whatever the
//! engine, worker count, crash points, or sync path.

pub mod cluster;
pub mod mempool;
pub mod metrics;
pub mod replica;
pub mod sharded;
pub mod statesync;

pub use cluster::{
    Cluster, ClusterConfig, ClusterReport, ClusterWorkload, CrashPlan, OrderingMode,
    ReplicaSummary, ShardTopology,
};
pub use mempool::{AdmitError, Mempool, MempoolConfig, MempoolMetrics, MempoolStats, PendingTxn};
pub use metrics::{shard_txn_counters, ReplicaMetrics, TxnCounters, ROOT_FOLD_NS};
pub use replica::{Applied, ReplicaConfig, ReplicaNode};
pub use sharded::{ShardedReplicaConfig, ShardedReplicaNode};
pub use statesync::{
    apply_sharded_sync, apply_sync, serve_sharded_sync, serve_sync, ShardedSyncApplied,
    ShardedSyncResponse, SyncPolicy, SyncResponse,
};
