//! End-to-end replica runtime — where the ordering service and the
//! deterministic database finally meet.
//!
//! The paper's thesis is that an Order-Execute private blockchain is
//! "consensus delivers an ordered block; deterministic execution does the
//! rest." This crate closes that loop as a running system:
//!
//! * [`mempool`] — the client-facing frontend: sessions, per-session
//!   nonces, duplicate/gap rejection, bounded-queue backpressure, and
//!   deterministic FIFO batching.
//! * [`replica`] — [`ReplicaNode`]: an [`harmony_chain::OeChain`]
//!   (storage + snapshots + any of the five DCC engines) consuming sealed
//!   blocks with ordered delivery (gap buffering), a verified delivery
//!   log, pipeline-aware virtual-time cost accounting, and state-root
//!   gossip for divergence detection.
//! * [`statesync`] — how a lagging replica catches up: checkpoint
//!   manifest transfer and/or verified block-range replay from a peer,
//!   with a timeout/retry/backoff policy ([`RetryPolicy`]) for peers
//!   that never answer.
//! * [`fault`] — the chaos plane: a typed [`FaultSchedule`] of crash
//!   cycles, partitions, link drop/duplication/delay windows, sync
//!   refusals, and root poisoning, lowered onto the deterministic net.
//! * [`cluster`] — [`Cluster`]: N replicas + orderer (+ brokers) + an
//!   open-loop client bank on the deterministic discrete-event network,
//!   with fault schedules, watchdog-driven recovery, divergence
//!   quarantine, and client resubmission, producing node-runtime
//!   [`harmony_sim::RunMetrics`] instead of the analytic composition.
//!
//! The invariant every scenario must uphold: replicas fed the same
//! ordered blocks reach **bit-identical state roots**, whatever the
//! engine, worker count, crash points, or sync path.

pub mod cluster;
pub mod fault;
pub mod mempool;
pub mod metrics;
pub mod replica;
pub mod sharded;
pub mod statesync;

pub use cluster::{
    build_node, load_ns_for_txns, submission_trace, BlockSummary, Cluster, ClusterConfig,
    ClusterLayout, ClusterNode, ClusterReport, ClusterWorkload, CrashPlan, Msg, NodeStatus,
    OrderingMode, ReplicaSummary, ShardTopology, Submission, SyncFrom, SyncReplyBody, TIMER_CRASH,
    TIMER_RECOVER,
};
pub use fault::{FaultEvent, FaultSchedule, ReshardAt, ReshardSchedule};
pub use mempool::{AdmitError, Mempool, MempoolConfig, MempoolMetrics, MempoolStats, PendingTxn};
pub use metrics::{shard_txn_counters, ReplicaMetrics, TxnCounters, ROOT_FOLD_NS};
pub use replica::{Applied, ReplicaConfig, ReplicaNode};
pub use sharded::{ShardedReplicaConfig, ShardedReplicaNode};
pub use statesync::{
    apply_sharded_sync, apply_sync, serve_sharded_sync, serve_sync, RetryPolicy,
    ShardedSyncApplied, ShardedSyncResponse, SyncPolicy, SyncResponse,
};
