//! The state-sync protocol: how a lagging replica catches up from a peer.
//!
//! Two phases, chosen by the serving peer:
//!
//! 1. **Checkpoint manifest transfer** — when the requester is so far
//!    behind that block-range replay is impossible (it predates the
//!    peer's own local history) or uneconomical (the gap exceeds
//!    [`SyncPolicy::snapshot_threshold`]), the peer ships a
//!    [`StateSnapshot`] of its state at the current height, plus any
//!    blocks it commits afterwards.
//! 2. **Block-range replay** — otherwise the peer serves its verified
//!    block log after the requester's height and the requester replays it
//!    deterministically.
//!
//! A **sharded** replica runs the same two-phase protocol *per shard*
//! ([`serve_sharded_sync`] / [`apply_sharded_sync`]): each shard's
//! position is judged independently, so one crashed shard can take the
//! manifest path (its checkpoint never landed) while a sibling replays a
//! verified sub-block range. The sharded response also carries the peer's
//! global block hash, re-anchoring the requester's global chain position
//! (which is in-memory state lost by a crash).
//!
//! All responses carry real serialized sizes so the discrete-event
//! network charges honest transfer time.

use harmony_chain::sync::StateSnapshot;
use harmony_chain::{ChainBlock, OeChain};
use harmony_common::{BlockId, Error, Result};
use harmony_crypto::Digest;

use crate::replica::ReplicaNode;
use crate::sharded::ShardedReplicaNode;

/// Serving-side policy for sync requests.
#[derive(Clone, Copy, Debug)]
pub struct SyncPolicy {
    /// Gaps larger than this many blocks are served as a snapshot rather
    /// than a replay range.
    pub snapshot_threshold: u64,
}

impl Default for SyncPolicy {
    fn default() -> Self {
        SyncPolicy {
            snapshot_threshold: 64,
        }
    }
}

/// Requester-side failure policy: how long to wait for a sync reply, how
/// the wait grows across attempts, and when to stop trying one cycle.
///
/// A request that times out (serving peer down, request or reply dropped
/// by the network) or is refused (peer alive but not serviceable) is
/// retried against the *next* candidate peer with an exponentially grown,
/// jittered wait — classic timeout/backoff/failover, but every quantity
/// is a pure function of (seed, replica, attempt) so the schedule is
/// bit-reproducible.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Wait for the first attempt's reply before retrying, in virtual ns.
    pub base_timeout_ns: u64,
    /// Upper bound on the exponentially grown wait.
    pub max_backoff_ns: u64,
    /// Attempts per sync cycle before the requester gives up and waits
    /// for the liveness watchdog to start a fresh cycle.
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_timeout_ns: 4_000_000, // 4 ms — a LAN round-trip plus serve time
            max_backoff_ns: 64_000_000, // cap the exponential at 64 ms
            max_retries: 8,
        }
    }
}

impl RetryPolicy {
    /// The wait before declaring attempt `attempt` (0-based) failed:
    /// `base · 2^attempt`, capped at `max_backoff_ns`, plus a
    /// deterministic jitter of up to 25% (decorrelates retry storms
    /// across replicas without a shared RNG). Pure in every argument —
    /// same `(policy, attempt, seed, salt)` always yields the same wait,
    /// which is what keeps faulted runs bit-reproducible.
    #[must_use]
    pub fn backoff_ns(&self, attempt: u32, seed: u64, salt: u64) -> u64 {
        let exp = attempt.min(20); // 2^20 · base already dwarfs any cap
        let grown = self
            .base_timeout_ns
            .saturating_mul(1u64 << exp)
            .min(self.max_backoff_ns.max(self.base_timeout_ns));
        // splitmix64-style mixing, same family as the net layer's jitter.
        let mut x = seed
            ^ 0xA076_1D64_78BD_642F
            ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ salt.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        grown + x % (grown / 4).max(1)
    }
}

/// A peer's answer to a `SyncRequest { from }`.
#[derive(Clone, Debug)]
pub enum SyncResponse {
    /// Replay these verified blocks (all with id > the requested height).
    Range(Vec<ChainBlock>),
    /// Install this manifest, then replay the (possibly empty) tail.
    Snapshot(Box<StateSnapshot>, Vec<ChainBlock>),
}

impl SyncResponse {
    /// Modeled transfer size in bytes.
    #[must_use]
    pub fn transfer_bytes(&self) -> u64 {
        let blocks_bytes =
            |blocks: &[ChainBlock]| blocks.iter().map(|b| b.encode().len() as u64).sum::<u64>();
        match self {
            SyncResponse::Range(blocks) => blocks_bytes(blocks) + 64,
            SyncResponse::Snapshot(snap, blocks) => {
                snap.encode().len() as u64 + blocks_bytes(blocks) + 64
            }
        }
    }

    /// Bytes of this response that are checkpoint-manifest payload (the
    /// serialized [`StateSnapshot`] plus the response header). Zero on
    /// the range path; [`Self::range_bytes`] is the exact complement, so
    /// `manifest_bytes() + range_bytes() == transfer_bytes()` always.
    #[must_use]
    pub fn manifest_bytes(&self) -> u64 {
        match self {
            SyncResponse::Range(_) => 0,
            SyncResponse::Snapshot(snap, _) => snap.encode().len() as u64 + 64,
        }
    }

    /// Bytes of this response that are replayable-block payload (plus
    /// the response header on the range path). Complement of
    /// [`Self::manifest_bytes`]. Saturating: a malformed or
    /// future-version reply whose manifest share exceeds its total must
    /// read as zero range bytes, not underflow (this feeds metrics, and
    /// a hostile peer must never panic a node).
    #[must_use]
    pub fn range_bytes(&self) -> u64 {
        self.transfer_bytes().saturating_sub(self.manifest_bytes())
    }

    /// Number of blocks shipped.
    #[must_use]
    pub fn block_count(&self) -> usize {
        match self {
            SyncResponse::Range(blocks) | SyncResponse::Snapshot(_, blocks) => blocks.len(),
        }
    }
}

/// Serve a sync request against one chain: decide manifest vs range per
/// `policy` and the chain's own local history — shared by the flat path
/// and each shard of the sharded path.
fn serve_chain(chain: &OeChain, from: BlockId, policy: SyncPolicy) -> Result<SyncResponse> {
    let (base, _) = chain.base();
    let gap = chain.height().0.saturating_sub(from.0);
    if from.0 == 0 || from < base || gap > policy.snapshot_threshold {
        // A height-0 requester may have lost its genesis state entirely
        // (crash before the first checkpoint), the requester may predate
        // this peer's local history, or the gap is too wide: ship the
        // full manifest. No tail blocks are needed — the snapshot is at
        // the peer's current height.
        let snapshot = chain.export_snapshot()?;
        Ok(SyncResponse::Snapshot(Box::new(snapshot), Vec::new()))
    } else {
        Ok(SyncResponse::Range(chain.blocks_after(from)?))
    }
}

/// Serve a sync request against `peer`'s chain: decide manifest vs range
/// per `policy` and the peer's own local history.
pub fn serve_sync(peer: &ReplicaNode, from: BlockId, policy: SyncPolicy) -> Result<SyncResponse> {
    serve_chain(peer.chain(), from, policy)
}

/// Apply a sync response at the requesting replica. Returns the number of
/// blocks applied (snapshot installs count as the height jump).
pub fn apply_sync(replica: &mut ReplicaNode, response: &SyncResponse) -> Result<u64> {
    match response {
        SyncResponse::Range(blocks) => Ok(replica.catch_up_from_blocks(blocks)? as u64),
        SyncResponse::Snapshot(snapshot, blocks) => {
            let before = replica.height().0;
            replica.bootstrap_from_snapshot(snapshot, blocks)?;
            Ok(replica.height().0 - before)
        }
    }
}

// ── Sharded state-sync ──────────────────────────────────────────────────

/// A sharded peer's answer to a per-shard sync request: one independently
/// decided manifest-or-range part per shard, all ending at the peer's
/// common height, plus the global-chain anchor the requester lost in the
/// crash.
#[derive(Clone, Debug)]
pub struct ShardedSyncResponse {
    /// The peer's global height every part catches the requester up to.
    pub height: BlockId,
    /// Hash of the global block at `height` (the requester's new anchor).
    pub global_hash: Digest,
    /// The peer's topology epoch at `height`. A requester that crashed
    /// across one or more reshard boundaries misses those markers
    /// entirely (the manifest path never replays them), so the reply
    /// carries the authoritative epoch and the requester adopts it —
    /// monotonically, in case it raced past a stale reply.
    pub epoch: u64,
    /// One part per shard, in shard order.
    pub parts: Vec<SyncResponse>,
}

impl ShardedSyncResponse {
    /// Modeled transfer size in bytes.
    #[must_use]
    pub fn transfer_bytes(&self) -> u64 {
        64 + self
            .parts
            .iter()
            .map(SyncResponse::transfer_bytes)
            .sum::<u64>()
    }

    /// Checkpoint-manifest bytes summed over every part that took the
    /// manifest path. With [`Self::range_bytes`] this exactly partitions
    /// [`Self::transfer_bytes`] (the top-level anchor header rides with
    /// the range share).
    #[must_use]
    pub fn manifest_bytes(&self) -> u64 {
        self.parts.iter().map(SyncResponse::manifest_bytes).sum()
    }

    /// Block-replay bytes summed over every part, plus the top-level
    /// anchor header. Complement of [`Self::manifest_bytes`].
    /// Saturating, like [`SyncResponse::range_bytes`]: corrupted replies
    /// must never underflow the accounting.
    #[must_use]
    pub fn range_bytes(&self) -> u64 {
        self.transfer_bytes().saturating_sub(self.manifest_bytes())
    }

    /// Number of sub-blocks shipped across all parts.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.parts.iter().map(SyncResponse::block_count).sum()
    }

    /// How many shards were served the checkpoint-manifest path.
    #[must_use]
    pub fn manifest_shards(&self) -> u64 {
        self.parts
            .iter()
            .filter(|p| matches!(p, SyncResponse::Snapshot(..)))
            .count() as u64
    }

    /// How many shards were served the block-range-replay path.
    #[must_use]
    pub fn range_shards(&self) -> u64 {
        self.parts
            .iter()
            .filter(|p| matches!(p, SyncResponse::Range(_)))
            .count() as u64
    }
}

/// Serve a sharded sync request: judge every shard independently against
/// the requester's per-shard heights. The peer must be fully caught up
/// itself (anchored, shards level) — the cluster only routes sync
/// requests to stable replicas.
pub fn serve_sharded_sync(
    peer: &ShardedReplicaNode,
    from: &[BlockId],
    policy: SyncPolicy,
) -> Result<ShardedSyncResponse> {
    let global_hash = peer.global_hash().ok_or_else(|| {
        Error::InvalidArgument("sync peer has no global anchor (still recovering?)".into())
    })?;
    // A shard-count mismatch means the requester sits on the far side of
    // a topology-change (reshard) boundary: its per-shard heights are
    // meaningless under this peer's layout, so every current shard is
    // served from scratch (full manifest). The reply's part count tells
    // the requester the layout it must reshape into.
    let crossed_epoch = from.len() != peer.shards();
    let parts = (0..peer.shards())
        .map(|s| {
            let at = if crossed_epoch { BlockId(0) } else { from[s] };
            serve_chain(peer.shard_chain(s), at, policy)
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(ShardedSyncResponse {
        height: peer.height(),
        global_hash,
        epoch: peer.epoch(),
        parts,
    })
}

/// What a sharded sync application did at the requester.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardedSyncApplied {
    /// Sub-blocks applied (snapshot installs count as the height jump).
    pub blocks: u64,
    /// Shards brought up via checkpoint-manifest install.
    pub manifest_shards: u64,
    /// Shards brought up via block-range replay.
    pub range_shards: u64,
}

/// Apply a sharded sync response: every shard takes its served path, then
/// the replica's global position is re-anchored at the peer's height and
/// buffered deliveries drain. Returns what happened per path (the
/// crash-rejoin tests assert both paths were actually exercised).
pub fn apply_sharded_sync(
    replica: &mut ShardedReplicaNode,
    response: &ShardedSyncResponse,
) -> Result<ShardedSyncApplied> {
    if response.parts.len() != replica.shards() {
        // The serving peer is on the other side of a reshard boundary:
        // adopt its layout (fresh chains, recounted router) and take the
        // full-manifest parts it served. A reply that claims a different
        // count but still ships ranges is malformed and fails below with
        // a typed error — never a panic.
        if response.parts.is_empty() {
            return Err(Error::InvalidArgument(
                "sharded sync response with zero parts".into(),
            ));
        }
        replica.reshape_for_sync(response.parts.len())?;
    }
    let mut applied = ShardedSyncApplied::default();
    for (s, part) in response.parts.iter().enumerate() {
        match part {
            SyncResponse::Range(blocks) => {
                applied.blocks += replica.catch_up_shard_from_blocks(s, blocks)? as u64;
                applied.range_shards += 1;
            }
            SyncResponse::Snapshot(snapshot, blocks) => {
                applied.blocks +=
                    replica.bootstrap_shard_from_snapshot(s, snapshot, blocks)? as u64;
                applied.manifest_shards += 1;
            }
        }
    }
    replica.adopt_epoch(response.epoch);
    let drained = replica.finish_sync(response.height, response.global_hash)?;
    applied.blocks += drained.len() as u64;
    Ok(applied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_chain::ChainConfig;
    use harmony_sim::EngineKind;
    use harmony_workloads::{Workload, Ycsb, YcsbCodec, YcsbConfig};
    use std::sync::Arc;

    use crate::replica::ReplicaConfig;

    fn ycsb_replica(checkpoint_every: u64) -> ReplicaNode {
        ReplicaNode::new(
            &ReplicaConfig {
                chain: ChainConfig {
                    checkpoint_every,
                    ..ChainConfig::in_memory()
                },
                engine: EngineKind::Harmony(harmony_core::HarmonyConfig::default()),
                workers: 2,
                gossip_every: 4,
            },
            |eng| {
                let mut w = Ycsb::new(YcsbConfig {
                    keys: 150,
                    theta: 0.6,
                    ..YcsbConfig::default()
                });
                w.setup(eng)?;
                Ok(Arc::new(YcsbCodec { table: w.table() }))
            },
        )
        .unwrap()
    }

    fn advance(r: &mut ReplicaNode, blocks: usize, rng: &mut harmony_common::DetRng) {
        let mut w = Ycsb::new(YcsbConfig {
            keys: 150,
            theta: 0.6,
            ..YcsbConfig::default()
        });
        let scratch =
            harmony_storage::StorageEngine::open(&harmony_storage::StorageConfig::memory())
                .unwrap();
        w.setup(&scratch).unwrap();
        for _ in 0..blocks {
            let txns = w.next_block(rng, 10);
            let codec = Arc::clone(r.codec());
            let sealed = r.chain().seal_block(&txns, codec.as_ref());
            r.deliver(Arc::new(sealed)).unwrap();
        }
    }

    #[test]
    fn backoff_schedule_is_deterministic() {
        let p = RetryPolicy::default();
        for attempt in 0..12 {
            for salt in [0u64, 3, 7] {
                assert_eq!(
                    p.backoff_ns(attempt, 0xDEAD, salt),
                    p.backoff_ns(attempt, 0xDEAD, salt),
                    "same inputs must yield the same wait"
                );
            }
        }
        // Different seeds / salts decorrelate the jitter.
        assert_ne!(
            p.backoff_ns(1, 0xDEAD, 2),
            p.backoff_ns(1, 0xBEEF, 2),
            "seed must perturb the jitter"
        );
    }

    #[test]
    fn backoff_grows_exponentially_then_caps() {
        let p = RetryPolicy {
            base_timeout_ns: 1_000_000,
            max_backoff_ns: 8_000_000,
            max_retries: 8,
        };
        let wait = |a| p.backoff_ns(a, 42, 0);
        // Jitter is < 25%, so consecutive doublings still strictly grow.
        assert!(wait(1) > wait(0), "attempt 1 waits longer than attempt 0");
        assert!(wait(2) > wait(1));
        // Bounds: base·2^a ≤ wait < 1.25 · base·2^a (pre-cap)…
        assert!(wait(0) >= 1_000_000 && wait(0) < 1_250_000);
        assert!(wait(2) >= 4_000_000 && wait(2) < 5_000_000);
        // …and the growth saturates at the cap (+ jitter).
        for a in [3, 10, 31] {
            assert!(wait(a) >= 8_000_000 && wait(a) < 10_000_000, "capped");
        }
        // Overflow safety at absurd attempt counts.
        let _ = p.backoff_ns(u32::MAX, 42, 0);
    }

    #[test]
    fn small_gap_served_as_range_large_gap_as_snapshot() {
        let mut peer = ycsb_replica(5);
        let mut rng = harmony_common::DetRng::new(1);
        advance(&mut peer, 12, &mut rng);
        let policy = SyncPolicy {
            snapshot_threshold: 8,
        };
        assert!(matches!(
            serve_sync(&peer, BlockId(8), policy).unwrap(),
            SyncResponse::Range(ref b) if b.len() == 4
        ));
        let resp = serve_sync(&peer, BlockId(0), policy).unwrap();
        assert!(matches!(resp, SyncResponse::Snapshot(..)));
        assert!(resp.transfer_bytes() > 0);
    }

    #[test]
    fn transfer_bytes_split_exactly_by_path() {
        let mut peer = ycsb_replica(5);
        let mut rng = harmony_common::DetRng::new(3);
        advance(&mut peer, 12, &mut rng);
        let policy = SyncPolicy {
            snapshot_threshold: 8,
        };
        // Range path: all bytes are range bytes.
        let range = serve_sync(&peer, BlockId(8), policy).unwrap();
        assert_eq!(range.manifest_bytes(), 0);
        assert_eq!(range.range_bytes(), range.transfer_bytes());
        assert!(range.range_bytes() > 64, "blocks plus header");
        // Manifest path: the manifest dominates, and the two shares
        // partition the total exactly.
        let snap = serve_sync(&peer, BlockId(0), policy).unwrap();
        assert!(snap.manifest_bytes() > 0);
        assert_eq!(
            snap.manifest_bytes() + snap.range_bytes(),
            snap.transfer_bytes()
        );
    }

    #[test]
    fn range_bytes_saturates_on_corrupted_reply() {
        // A corrupted (or future-version) reply can degenerate to a frame
        // that is all manifest: the range share must read zero, never
        // underflow — and the exact-partition invariant
        // `manifest_bytes + range_bytes == transfer_bytes` must hold on
        // every reply a node can decode, well-formed or not.
        let hollow = StateSnapshot {
            height: BlockId(0),
            last_hash: Digest::ZERO,
            tables: Vec::new(),
            undo: Vec::new(),
            summary: None,
        };
        let corrupted = SyncResponse::Snapshot(Box::new(hollow.clone()), Vec::new());
        assert_eq!(corrupted.range_bytes(), 0, "all-manifest frame");
        assert_eq!(
            corrupted.manifest_bytes() + corrupted.range_bytes(),
            corrupted.transfer_bytes()
        );
        // Same invariant on the sharded envelope, with a part mix a
        // hostile peer could ship (hollow manifests and an empty range).
        let sharded = ShardedSyncResponse {
            height: BlockId(7),
            global_hash: Digest::ZERO,
            epoch: 0,
            parts: vec![
                SyncResponse::Snapshot(Box::new(hollow), Vec::new()),
                SyncResponse::Range(Vec::new()),
            ],
        };
        assert_eq!(
            sharded.manifest_bytes() + sharded.range_bytes(),
            sharded.transfer_bytes()
        );
        assert!(
            sharded.range_bytes() >= 64,
            "anchor header rides the range share"
        );
    }

    #[test]
    fn snapshot_sync_bootstraps_a_fresh_replica() {
        let mut peer = ycsb_replica(5);
        let mut rng = harmony_common::DetRng::new(2);
        advance(&mut peer, 10, &mut rng);
        let resp = serve_sync(
            &peer,
            BlockId(0),
            SyncPolicy {
                snapshot_threshold: 4,
            },
        )
        .unwrap();
        // install_snapshot requires an empty database: build the joiner
        // without genesis data (state comes entirely from the peer).
        let mut joiner_fresh = ReplicaNode::new(
            &ReplicaConfig {
                chain: ChainConfig {
                    checkpoint_every: 5,
                    ..ChainConfig::in_memory()
                },
                engine: EngineKind::Harmony(harmony_core::HarmonyConfig::default()),
                workers: 2,
                gossip_every: 4,
            },
            |_| {
                let w = Ycsb::new(YcsbConfig {
                    keys: 150,
                    theta: 0.6,
                    ..YcsbConfig::default()
                });
                Ok(Arc::new(YcsbCodec { table: w.table() }))
            },
        )
        .unwrap();
        let jumped = apply_sync(&mut joiner_fresh, &resp).unwrap();
        assert_eq!(jumped, 10);
        assert_eq!(joiner_fresh.height(), peer.height());
        assert_eq!(
            joiner_fresh.state_root().unwrap(),
            peer.state_root().unwrap()
        );
        // And it keeps up with subsequent sealed blocks.
        let mut w = Ycsb::new(YcsbConfig {
            keys: 150,
            theta: 0.6,
            ..YcsbConfig::default()
        });
        let scratch =
            harmony_storage::StorageEngine::open(&harmony_storage::StorageConfig::memory())
                .unwrap();
        w.setup(&scratch).unwrap();
        let txns = w.next_block(&mut rng, 10);
        let codec = Arc::clone(peer.codec());
        let sealed = Arc::new(peer.chain().seal_block(&txns, codec.as_ref()));
        peer.deliver(Arc::clone(&sealed)).unwrap();
        joiner_fresh.deliver(sealed).unwrap();
        assert_eq!(
            joiner_fresh.state_root().unwrap(),
            peer.state_root().unwrap()
        );
    }
}
