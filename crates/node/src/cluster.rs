//! The cluster harness: a full Order-Execute deployment on the
//! deterministic discrete-event network.
//!
//! Node layout: one open-loop **client bank** (Poisson arrivals over N
//! sessions, per-session nonces), one **ordering service** (mempool
//! admission → deterministic batching → sealing → replication/voting →
//! delivery), optional Kafka follower brokers, and R **replicas**
//! applying sealed blocks in order. A replica is either flat
//! ([`ReplicaNode`]) or — when a [`ShardTopology`] is configured — a
//! [`ShardedReplicaNode`] hosting M shards behind the same ordered
//! stream, making the harness an N×M deployment.
//!
//! Scenario hooks: a [`CrashPlan`] takes one replica down mid-run and
//! brings it back later — local checkpoint recovery, then state-sync
//! catch-up from a peer ([`crate::statesync`]; per shard on sharded
//! replicas, where one shard may take the manifest path while another
//! replays a block range) while new deliveries are buffered. Every
//! replica gossips its state root (the sharded Merkle fold on N×M runs)
//! every few blocks and raises divergence alarms on mismatch.
//!
//! [`Cluster::run`] returns a [`ClusterReport`] whose `metrics` is a real
//! [`RunMetrics`] measured from the replica runtime — the same shape the
//! analytic `ClusterModel` composition produces, now driven end-to-end.

use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::Arc;

use harmony_chain::ChainBlock;
use harmony_common::{BlockId, Result};
use harmony_consensus::net::{DeliveryLog, EventLoop, LatencyModel, NetCtx, SimNode};
use harmony_core::BlockStats;
use harmony_crypto::{CryptoCost, Digest, KeyPair};
use harmony_metrics::{doubling_buckets, Counter, Histogram, Registry, Timeline};
use harmony_shard::PlannerMetrics;
use harmony_sim::RunMetrics;
use harmony_storage::{IoSnapshot, StorageConfig, StorageEngine};
use harmony_txn::{encode_contract, Contract, ContractCodec};
use harmony_workloads::{
    OpenLoopClients, OpenLoopConfig, Smallbank, SmallbankCodec, SmallbankConfig, Tpcc, TpccCodec,
    TpccConfig, Workload, Ycsb, YcsbCodec, YcsbConfig,
};

use crate::mempool::{Mempool, MempoolConfig, MempoolMetrics, MempoolStats};
use crate::metrics::{shard_txn_counters, ReplicaMetrics, ROOT_FOLD_NS};
use crate::replica::{Applied, ReplicaConfig, ReplicaNode};
use crate::sharded::{ShardedReplicaConfig, ShardedReplicaNode};
use crate::statesync::{
    apply_sharded_sync, apply_sync, serve_sharded_sync, serve_sync, ShardedSyncResponse,
    SyncPolicy, SyncResponse,
};

/// Workload selector for a cluster run (workload + its contract codec).
#[derive(Clone, Debug)]
pub enum ClusterWorkload {
    /// Smallbank with the given configuration.
    Smallbank(SmallbankConfig),
    /// YCSB with the given configuration.
    Ycsb(YcsbConfig),
    /// TPC-C full mix with the given configuration.
    Tpcc(TpccConfig),
}

impl ClusterWorkload {
    /// Display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ClusterWorkload::Smallbank(_) => "Smallbank",
            ClusterWorkload::Ycsb(_) => "YCSB",
            ClusterWorkload::Tpcc(_) => "TPC-C",
        }
    }

    /// Load genesis state into a replica's engine and return the codec
    /// that decodes this workload's contracts.
    pub fn setup_node(&self, engine: &Arc<StorageEngine>) -> Result<Arc<dyn ContractCodec>> {
        match self {
            ClusterWorkload::Smallbank(c) => {
                let mut w = Smallbank::new(c.clone());
                w.setup(engine)?;
                let (checking, savings) = w.tables();
                Ok(Arc::new(SmallbankCodec { checking, savings }))
            }
            ClusterWorkload::Ycsb(c) => {
                let mut w = Ycsb::new(c.clone());
                w.setup(engine)?;
                Ok(Arc::new(YcsbCodec { table: w.table() }))
            }
            ClusterWorkload::Tpcc(c) => {
                let mut w = Tpcc::new(c.clone());
                w.setup(engine)?;
                Ok(Arc::new(TpccCodec { tables: w.tables() }))
            }
        }
    }

    /// A transaction generator for the client bank (set up against a
    /// scratch engine so table ids match the replicas').
    pub fn generator(&self) -> Result<Box<dyn Workload>> {
        let engine = StorageEngine::open(&StorageConfig::memory())?;
        match self {
            ClusterWorkload::Smallbank(c) => {
                let mut w = Smallbank::new(c.clone());
                w.setup(&engine)?;
                Ok(Box::new(w))
            }
            ClusterWorkload::Ycsb(c) => {
                let mut w = Ycsb::new(c.clone());
                w.setup(&engine)?;
                Ok(Box::new(w))
            }
            ClusterWorkload::Tpcc(c) => {
                let mut w = Tpcc::new(c.clone());
                w.setup(&engine)?;
                Ok(Box::new(w))
            }
        }
    }
}

/// How the ordering service reaches agreement before delivering.
#[derive(Clone, Copy, Debug)]
pub enum OrderingMode {
    /// Crash-fault-tolerant leader + follower brokers, majority ack.
    Kafka {
        /// Replication factor (leader + followers).
        brokers: usize,
    },
    /// BFT: the replicas themselves vote in three chained rounds.
    HotStuff,
}

/// Sharded-execution topology of every replica: M shards over a fixed
/// logical partition count. `None` in [`ClusterConfig::topology`] keeps
/// the flat single-engine replica.
#[derive(Clone, Copy, Debug)]
pub struct ShardTopology {
    /// Physical shards hosted by every replica.
    pub shards: usize,
    /// Logical partitions (fixed across shard counts, so every commit
    /// decision is shard-count-invariant). Should match the workload's
    /// `partitions` knob.
    pub partitions: u32,
    /// Per-shard checkpoint-period stagger (see
    /// [`ShardedReplicaConfig::checkpoint_stagger`]).
    pub checkpoint_stagger: u64,
}

impl Default for ShardTopology {
    fn default() -> Self {
        ShardTopology {
            shards: 4,
            partitions: 16,
            checkpoint_stagger: 0,
        }
    }
}

/// Take one replica down at `at_ns` and bring it back at `recover_at_ns`
/// (local checkpoint recovery + state-sync catch-up from a peer).
#[derive(Clone, Copy, Debug)]
pub struct CrashPlan {
    /// Replica index (0-based among replicas) to crash.
    pub replica: usize,
    /// Crash time (virtual ns).
    pub at_ns: u64,
    /// Recovery time (virtual ns).
    pub recover_at_ns: u64,
}

/// Cluster configuration.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of replicas.
    pub replicas: usize,
    /// Per-replica configuration (engine, workers, chain, gossip).
    pub replica: ReplicaConfig,
    /// Sharded execution topology: `Some` makes every replica a
    /// [`ShardedReplicaNode`] with M shards (N×M deployment), `None`
    /// keeps flat replicas.
    pub topology: Option<ShardTopology>,
    /// The workload and its codec.
    pub workload: ClusterWorkload,
    /// Ordering service style.
    pub ordering: OrderingMode,
    /// Network model.
    pub latency: LatencyModel,
    /// Mempool admission bounds.
    pub mempool: MempoolConfig,
    /// Open-loop client arrival process.
    pub open_loop: OpenLoopConfig,
    /// Arrivals stop after this much virtual time.
    pub load_ns: u64,
    /// Extra virtual time to drain the pipeline.
    pub drain_ns: u64,
    /// Transactions per sealed block (batch ceiling).
    pub block_txns: usize,
    /// Batching tick interval.
    pub batch_interval_ns: u64,
    /// Max unacknowledged blocks in the ordering pipeline.
    pub window: usize,
    /// State-sync serving policy.
    pub sync: SyncPolicy,
    /// Optional crash/rejoin scenario.
    pub crash: Option<CrashPlan>,
    /// Metric-timeline snapshot interval (virtual ns). Snapshots are
    /// taken in virtual time, so same-seed runs produce byte-identical
    /// timelines.
    pub metrics_every_ns: u64,
    /// Simulation seed (network jitter + client stream).
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            replicas: 4,
            replica: ReplicaConfig::default(),
            topology: None,
            workload: ClusterWorkload::Smallbank(SmallbankConfig {
                accounts: 1_000,
                theta: 0.6,
                ..SmallbankConfig::default()
            }),
            ordering: OrderingMode::Kafka { brokers: 3 },
            latency: LatencyModel::lan_1g(),
            mempool: MempoolConfig::default(),
            open_loop: OpenLoopConfig::default(),
            load_ns: 40_000_000,
            drain_ns: 400_000_000,
            block_txns: 32,
            batch_interval_ns: 500_000,
            window: 4,
            sync: SyncPolicy::default(),
            crash: None,
            metrics_every_ns: 5_000_000,
            seed: 0xC10C,
        }
    }
}

// ── Messages and timers ─────────────────────────────────────────────────

#[derive(Clone)]
enum Msg {
    Submit {
        client: u64,
        nonce: u64,
        submitted_ns: u64,
        contract: Arc<dyn Contract>,
    },
    /// Leader → follower broker (Kafka replication).
    Replicate { seq: u64 },
    /// Follower → leader.
    Ack { seq: u64 },
    /// Leader → replica voter (HotStuff round `round` of 3).
    Prepare { seq: u64, round: u8 },
    /// Voter → leader.
    Vote { seq: u64, round: u8 },
    /// Orderer → replica: the sealed block.
    Deliver {
        block: Arc<ChainBlock>,
        born_ns: u64,
        mean_submit_ns: u64,
    },
    /// Replica → replica: state root at a gossip height.
    RootGossip { height: u64, root: Digest },
    /// Lagging replica → peer (flat: chain height; sharded: per-shard
    /// heights).
    SyncRequest { from: SyncFrom },
    /// Peer → lagging replica.
    SyncReply { response: Arc<SyncReplyBody> },
}

/// The requester's position in a sync request.
#[derive(Clone, Debug)]
enum SyncFrom {
    Flat(u64),
    Sharded(Vec<BlockId>),
}

/// The serving peer's answer, matching the cluster's replica kind.
enum SyncReplyBody {
    Flat(SyncResponse),
    Sharded(ShardedSyncResponse),
}

impl SyncReplyBody {
    fn transfer_bytes(&self) -> u64 {
        match self {
            SyncReplyBody::Flat(r) => r.transfer_bytes(),
            SyncReplyBody::Sharded(r) => r.transfer_bytes(),
        }
    }

    /// Bytes attributable to checkpoint-manifest installs. Together with
    /// [`SyncReplyBody::range_bytes`] this partitions `transfer_bytes`
    /// exactly, so per-path accounting never double-counts.
    fn manifest_bytes(&self) -> u64 {
        match self {
            SyncReplyBody::Flat(r) => r.manifest_bytes(),
            SyncReplyBody::Sharded(r) => r.manifest_bytes(),
        }
    }

    /// Bytes attributable to block-range replay (the remainder of
    /// `transfer_bytes` after manifests).
    fn range_bytes(&self) -> u64 {
        match self {
            SyncReplyBody::Flat(r) => r.range_bytes(),
            SyncReplyBody::Sharded(r) => r.range_bytes(),
        }
    }

    fn block_count(&self) -> usize {
        match self {
            SyncReplyBody::Flat(r) => r.block_count(),
            SyncReplyBody::Sharded(r) => r.block_count(),
        }
    }
}

const TIMER_CLIENT: u64 = 1;
const TIMER_BATCH: u64 = 2;
const TIMER_CRASH: u64 = 3;
const TIMER_RECOVER: u64 = 4;
/// Periodic metrics-timeline snapshot (fires on the orderer, which owns
/// the shared registry).
const TIMER_METRICS: u64 = 5;

/// Per-admission CPU cost at the orderer (signature + nonce check).
const ADMIT_NS: u64 = 1_000;
/// CPU cost of serving one block in a sync response.
const SYNC_SERVE_NS_PER_BLOCK: u64 = 10_000;
/// CPU cost of replaying one block during catch-up.
const SYNC_REPLAY_NS_PER_BLOCK: u64 = 300_000;
/// CPU cost of local checkpoint recovery.
const RECOVERY_NS: u64 = 1_000_000;

// ── Client bank ─────────────────────────────────────────────────────────

struct ClientBank {
    stream: OpenLoopClients,
    generator: Box<dyn Workload>,
    rng: harmony_common::DetRng,
    pending: Option<harmony_workloads::Arrival>,
    load_ns: u64,
    orderer: usize,
    submitted: u64,
}

impl ClientBank {
    fn fire(&mut self, ctx: &mut NetCtx<'_, Msg>) {
        let Some(arrival) = self.pending.take() else {
            return;
        };
        let contract = self.generator.next_txn(&mut self.rng);
        let bytes = encode_contract(contract.as_ref()).len() as u64 + 24;
        ctx.charge_cpu(500);
        ctx.send(
            self.orderer,
            Msg::Submit {
                client: arrival.client,
                nonce: arrival.nonce,
                submitted_ns: ctx.now(),
                contract,
            },
            bytes,
        );
        self.submitted += 1;
        let next = self.stream.next_arrival();
        if next.at_ns <= self.load_ns {
            ctx.set_timer(next.at_ns.saturating_sub(ctx.now()), TIMER_CLIENT);
            self.pending = Some(next);
        }
    }
}

// ── Ordering service ────────────────────────────────────────────────────

struct InFlight {
    block: Arc<ChainBlock>,
    /// Wire size of the sealed block (computed once at seal time).
    bytes: u64,
    born_ns: u64,
    mean_submit_ns: u64,
    acks: usize,
    round: u8,
}

/// The observability plane of one run: the shared metric registry every
/// node's handles point into, plus the virtual-time snapshot timeline.
/// Owned by the orderer (the one node guaranteed alive for the whole
/// run), ticked by [`TIMER_METRICS`].
struct MetricsHub {
    registry: Arc<Registry>,
    timeline: Timeline,
    every_ns: u64,
    /// Last virtual instant a snapshot may be scheduled at (run end).
    deadline_ns: u64,
}

impl MetricsHub {
    fn tick(&mut self, ctx: &mut NetCtx<'_, Msg>) {
        self.timeline.record(ctx.now(), &self.registry);
        if ctx.now() + self.every_ns <= self.deadline_ns {
            ctx.set_timer(self.every_ns, TIMER_METRICS);
        }
    }
}

struct Orderer {
    mempool: Mempool,
    hub: MetricsHub,
    keypair: KeyPair,
    crypto: CryptoCost,
    next_id: u64,
    prev_hash: Digest,
    in_flight: HashMap<u64, InFlight>,
    mode: OrderingMode,
    followers: Vec<usize>,
    replicas: Vec<usize>,
    block_txns: usize,
    window: usize,
    batch_interval_ns: u64,
    tx_ns_per_byte: u64,
    timer_armed: bool,
    last_seal_ns: u64,
    sealed_blocks: u64,
}

impl Orderer {
    fn quorum(&self) -> usize {
        match self.mode {
            // Leader's own log append counts; majority of brokers.
            OrderingMode::Kafka { brokers } => brokers / 2 + 1,
            // 2/3 of the replica voters (rounded up), leader implicit.
            OrderingMode::HotStuff => (self.replicas.len() * 2).div_ceil(3).max(1),
        }
    }

    fn launch_batches(&mut self, ctx: &mut NetCtx<'_, Msg>) {
        while self.in_flight.len() < self.window && !self.mempool.is_empty() {
            // Batching discipline: seal a full block, or a partial one
            // only after a full batch interval has passed since the last
            // seal — otherwise a fast ack loop would seal slivers.
            let full = self.mempool.len() >= self.block_txns;
            let ripe = ctx.now().saturating_sub(self.last_seal_ns) >= self.batch_interval_ns;
            if !full && !ripe {
                break;
            }
            self.last_seal_ns = ctx.now();
            let batch = self.mempool.next_batch(self.block_txns);
            let mean_submit_ns =
                batch.iter().map(|t| t.submitted_ns).sum::<u64>() / batch.len() as u64;
            let encoded: Vec<Vec<u8>> = batch
                .iter()
                .map(|t| encode_contract(t.contract.as_ref()))
                .collect();
            let sealed = Arc::new(ChainBlock::seal(
                BlockId(self.next_id),
                self.prev_hash,
                encoded,
                &self.keypair,
            ));
            ctx.charge_cpu(self.crypto.hash_ns + self.crypto.sign_ns);
            self.next_id += 1;
            self.prev_hash = sealed.header.hash();
            self.sealed_blocks += 1;
            let seq = sealed.header.id.0;
            let bytes = sealed.encode().len() as u64;
            self.in_flight.insert(
                seq,
                InFlight {
                    block: sealed,
                    bytes,
                    born_ns: ctx.now(),
                    mean_submit_ns,
                    acks: 1,
                    round: 0,
                },
            );
            match self.mode {
                OrderingMode::Kafka { .. } => {
                    if self.followers.is_empty() {
                        self.commit(seq, ctx);
                    } else {
                        for &f in &self.followers.clone() {
                            ctx.charge_cpu(bytes * self.tx_ns_per_byte);
                            ctx.send(f, Msg::Replicate { seq }, bytes);
                        }
                    }
                }
                OrderingMode::HotStuff => {
                    ctx.charge_cpu(self.crypto.sign_ns);
                    for &r in &self.replicas.clone() {
                        ctx.charge_cpu(bytes * self.tx_ns_per_byte);
                        ctx.send(r, Msg::Prepare { seq, round: 0 }, bytes);
                    }
                }
            }
        }
        if !self.mempool.is_empty() && !self.timer_armed {
            ctx.set_timer(self.batch_interval_ns, TIMER_BATCH);
            self.timer_armed = true;
        }
    }

    fn on_quorum(&mut self, seq: u64, ctx: &mut NetCtx<'_, Msg>) {
        match self.mode {
            OrderingMode::Kafka { .. } => self.commit(seq, ctx),
            OrderingMode::HotStuff => {
                let Some(entry) = self.in_flight.get_mut(&seq) else {
                    return;
                };
                if entry.round < 2 {
                    entry.round += 1;
                    entry.acks = 0;
                    let round = entry.round;
                    ctx.charge_cpu(self.crypto.sign_ns);
                    for &r in &self.replicas.clone() {
                        ctx.send(r, Msg::Prepare { seq, round }, 256);
                    }
                } else {
                    self.commit(seq, ctx);
                }
            }
        }
    }

    fn commit(&mut self, seq: u64, ctx: &mut NetCtx<'_, Msg>) {
        let Some(entry) = self.in_flight.remove(&seq) else {
            return;
        };
        let bytes = entry.bytes;
        for &r in &self.replicas {
            ctx.charge_cpu(bytes * self.tx_ns_per_byte);
            ctx.send(
                r,
                Msg::Deliver {
                    block: Arc::clone(&entry.block),
                    born_ns: entry.born_ns,
                    mean_submit_ns: entry.mean_submit_ns,
                },
                bytes,
            );
        }
        // A freed window slot can immediately seal the next batch.
        self.launch_batches(ctx);
    }
}

// ── Replica wrapper ─────────────────────────────────────────────────────

#[derive(Clone, Copy, PartialEq, Eq)]
enum ReplicaState {
    Up,
    Down,
    Syncing,
}

/// A replica is either flat (one engine) or sharded (M per-shard chains).
/// The wrapper drives both through one interface so the harness, crash
/// plans, and measurement code are topology-agnostic.
enum NodeKind {
    Flat(Box<ReplicaNode>),
    Sharded(Box<ShardedReplicaNode>),
}

impl NodeKind {
    fn deliver(&mut self, block: Arc<ChainBlock>) -> Result<Vec<Applied>> {
        match self {
            NodeKind::Flat(n) => n.deliver(block),
            NodeKind::Sharded(n) => n.deliver(block),
        }
    }

    fn height(&self) -> BlockId {
        match self {
            NodeKind::Flat(n) => n.height(),
            NodeKind::Sharded(n) => n.height(),
        }
    }

    /// The root this replica's summary reports (and that consistency
    /// checks compare): the full-state root on flat replicas, the sharded
    /// Merkle fold on sharded ones.
    fn report_root(&self) -> Result<Digest> {
        match self {
            NodeKind::Flat(n) => n.state_root(),
            NodeKind::Sharded(n) => n.sharded_root(),
        }
    }

    /// Shard-count-invariant digest of the logical database (equals the
    /// full-state root on a flat replica).
    fn logical_root(&self) -> Result<Digest> {
        match self {
            NodeKind::Flat(n) => n.state_root(),
            NodeKind::Sharded(n) => n.logical_state_root(),
        }
    }

    /// Full-scan audit recomputation of [`NodeKind::report_root`]: builds
    /// the commitment from the engines rather than reading the cached
    /// fold. Must always equal `report_root` — the e2e suites assert it.
    fn oracle_root(&self) -> Result<Digest> {
        match self {
            NodeKind::Flat(n) => harmony_chain::state_root(n.chain().engine()),
            NodeKind::Sharded(n) => n.sharded_root_oracle(),
        }
    }

    fn pending_gap(&self) -> usize {
        match self {
            NodeKind::Flat(n) => n.pending_gap(),
            NodeKind::Sharded(n) => n.pending_gap(),
        }
    }

    fn on_peer_root(&mut self, height: u64, root: Digest) {
        match self {
            NodeKind::Flat(n) => n.on_peer_root(height, root),
            NodeKind::Sharded(n) => n.on_peer_root(height, root),
        }
    }

    fn divergence_alarms(&self) -> u64 {
        match self {
            NodeKind::Flat(n) => n.divergence_alarms(),
            NodeKind::Sharded(n) => n.divergence_alarms(),
        }
    }

    fn delivery_log(&self) -> &DeliveryLog {
        match self {
            NodeKind::Flat(n) => n.delivery_log(),
            NodeKind::Sharded(n) => n.delivery_log(),
        }
    }

    fn stats(&self) -> &BlockStats {
        match self {
            NodeKind::Flat(n) => n.stats(),
            NodeKind::Sharded(n) => n.stats(),
        }
    }

    fn crash(&mut self) {
        match self {
            NodeKind::Flat(n) => n.crash(),
            NodeKind::Sharded(n) => n.crash(),
        }
    }

    fn recover_local(&mut self) -> Result<()> {
        match self {
            NodeKind::Flat(n) => n.recover_local(),
            NodeKind::Sharded(n) => n.recover_local(),
        }
    }

    fn sync_from(&self) -> SyncFrom {
        match self {
            NodeKind::Flat(n) => SyncFrom::Flat(n.height().0),
            NodeKind::Sharded(n) => SyncFrom::Sharded(n.shard_heights()),
        }
    }

    fn io_snapshot(&self) -> IoSnapshot {
        match self {
            NodeKind::Flat(n) => n.chain().engine().io_snapshot(),
            NodeKind::Sharded(n) => {
                let mut io = IoSnapshot::default();
                for s in 0..n.shards() {
                    io.absorb(&n.shard_chain(s).engine().io_snapshot());
                }
                io
            }
        }
    }
}

/// Cluster-level per-replica metric handles: commit/order latency
/// histograms (virtual ns) and state-sync path counters. Registered per
/// replica in [`Cluster::run`]; the underlying cells live in the shared
/// registry, so the timeline and exposition see them automatically.
struct WrapMetrics {
    /// End-to-end latency (client submit → apply), weighted by committed
    /// txns per block.
    commit_latency_ns: Histogram,
    /// Ordering latency (block seal → apply), same weighting.
    order_latency_ns: Histogram,
    /// Sync parts served via checkpoint manifest vs block-range replay:
    /// `[manifest, range]`.
    sync_requests: [Counter; 2],
    /// Sync bytes received, split the same way: `[manifest, range]`.
    sync_bytes: [Counter; 2],
}

impl WrapMetrics {
    fn register(registry: &Registry, replica: usize) -> WrapMetrics {
        let id = replica.to_string();
        let base = [("replica", id.as_str())];
        let by_path = |name: &str, help: &str, path: &str| {
            registry.counter_with(name, help, &[("replica", id.as_str()), ("path", path)])
        };
        WrapMetrics {
            commit_latency_ns: registry.histogram_with(
                "harmony_replica_commit_latency_ns",
                "End-to-end commit latency (client submit to apply), virtual ns.",
                &doubling_buckets(250_000, 15),
                &base,
            ),
            order_latency_ns: registry.histogram_with(
                "harmony_replica_order_latency_ns",
                "Ordering latency (block seal to apply), virtual ns.",
                &doubling_buckets(250_000, 15),
                &base,
            ),
            sync_requests: ["manifest", "range"].map(|p| {
                by_path(
                    "harmony_statesync_requests_total",
                    "State-sync parts applied, by transfer path.",
                    p,
                )
            }),
            sync_bytes: ["manifest", "range"].map(|p| {
                by_path(
                    "harmony_statesync_transfer_bytes_total",
                    "State-sync bytes received, by transfer path.",
                    p,
                )
            }),
        }
    }
}

struct ReplicaWrap {
    node: NodeKind,
    state: ReplicaState,
    metrics: WrapMetrics,
    meta: HashMap<u64, (u64, u64)>,
    peers: Vec<usize>,
    sync_peer: usize,
    sync_policy: SyncPolicy,
    window: usize,
    // Measurement.
    committed_weighted_e2e_ns: f64,
    committed_weighted_order_ns: f64,
    committed_txns: u64,
    last_apply_ns: u64,
    recoveries: u64,
    sync_blocks: u64,
    sync_manifest_shards: u64,
    sync_range_shards: u64,
}

impl ReplicaWrap {
    fn on_applied(&mut self, applied: &[Applied], ctx: &mut NetCtx<'_, Msg>) {
        for a in applied {
            ctx.charge_cpu(a.cost_ns);
            self.last_apply_ns = self.last_apply_ns.max(ctx.now());
            if let Some((born, submit)) = self.meta.remove(&a.block.0) {
                let c = a.committed as f64;
                let e2e = ctx.now().saturating_sub(submit);
                let order = ctx.now().saturating_sub(born);
                self.committed_weighted_e2e_ns += c * e2e as f64;
                self.committed_weighted_order_ns += c * order as f64;
                self.metrics
                    .commit_latency_ns
                    .observe_n(e2e, a.committed as u64);
                self.metrics
                    .order_latency_ns
                    .observe_n(order, a.committed as u64);
            }
            self.committed_txns += a.committed as u64;
            if let Some(root) = a.gossip_root {
                ctx.charge_cpu(ROOT_FOLD_NS); // root computation
                for &p in &self.peers {
                    ctx.send(
                        p,
                        Msg::RootGossip {
                            height: a.block.0,
                            root,
                        },
                        40,
                    );
                }
            }
        }
    }

    fn request_sync(&mut self, ctx: &mut NetCtx<'_, Msg>) {
        self.state = ReplicaState::Syncing;
        ctx.send(
            self.sync_peer,
            Msg::SyncRequest {
                from: self.node.sync_from(),
            },
            64,
        );
    }
}

// ── The node enum ───────────────────────────────────────────────────────

enum ClusterNode {
    Client(ClientBank),
    Orderer(Box<Orderer>),
    Follower,
    Replica(Box<ReplicaWrap>),
}

impl SimNode<Msg> for ClusterNode {
    fn on_message(&mut self, from: usize, msg: Msg, ctx: &mut NetCtx<'_, Msg>) {
        match self {
            ClusterNode::Client(_) => {}
            ClusterNode::Follower => {
                if let Msg::Replicate { seq } = msg {
                    // Append to the local broker log and ack.
                    ctx.charge_cpu(50_000);
                    ctx.send(from, Msg::Ack { seq }, 64);
                }
            }
            ClusterNode::Orderer(o) => match msg {
                Msg::Submit {
                    client,
                    nonce,
                    submitted_ns,
                    contract,
                } => {
                    ctx.charge_cpu(ADMIT_NS);
                    let _ = o.mempool.submit(client, nonce, submitted_ns, contract);
                    if !o.timer_armed {
                        ctx.set_timer(o.batch_interval_ns, TIMER_BATCH);
                        o.timer_armed = true;
                    }
                }
                Msg::Ack { seq } => {
                    if let Some(entry) = o.in_flight.get_mut(&seq) {
                        entry.acks += 1;
                        if entry.acks == o.quorum() {
                            o.on_quorum(seq, ctx);
                        }
                    }
                }
                Msg::Vote { seq, round } => {
                    ctx.charge_cpu(o.crypto.verify_ns / 16);
                    if let Some(entry) = o.in_flight.get_mut(&seq) {
                        if entry.round == round {
                            entry.acks += 1;
                            if entry.acks == o.quorum() {
                                o.on_quorum(seq, ctx);
                            }
                        }
                    }
                }
                _ => {}
            },
            ClusterNode::Replica(r) => match msg {
                Msg::Prepare { seq, round } if r.state != ReplicaState::Down => {
                    // Verify the proposal, sign a vote share.
                    ctx.charge_cpu(10_000);
                    ctx.send(from, Msg::Vote { seq, round }, 128);
                }
                Msg::Deliver {
                    block,
                    born_ns,
                    mean_submit_ns,
                } => {
                    if r.state == ReplicaState::Down {
                        return;
                    }
                    r.meta.insert(block.header.id.0, (born_ns, mean_submit_ns));
                    let applied = r.node.deliver(block).expect("delivery");
                    r.on_applied(&applied, ctx);
                    // A persistent gap (beyond ordinary jitter reordering)
                    // means deliveries were missed: self-heal via sync.
                    if r.state == ReplicaState::Up && r.node.pending_gap() > 2 * r.window {
                        r.request_sync(ctx);
                    }
                }
                Msg::RootGossip { height, root } if r.state != ReplicaState::Down => {
                    r.node.on_peer_root(height, root);
                }
                Msg::SyncRequest { from: origin } if r.state == ReplicaState::Up => {
                    let response = match (&r.node, origin) {
                        (NodeKind::Flat(peer), SyncFrom::Flat(height)) => SyncReplyBody::Flat(
                            serve_sync(peer, BlockId(height), r.sync_policy).expect("serve"),
                        ),
                        (NodeKind::Sharded(peer), SyncFrom::Sharded(heights)) => {
                            SyncReplyBody::Sharded(
                                serve_sharded_sync(peer, &heights, r.sync_policy).expect("serve"),
                            )
                        }
                        _ => unreachable!("homogeneous cluster topology"),
                    };
                    ctx.charge_cpu(SYNC_SERVE_NS_PER_BLOCK * response.block_count() as u64);
                    let bytes = response.transfer_bytes();
                    ctx.send(
                        from,
                        Msg::SyncReply {
                            response: Arc::new(response),
                        },
                        bytes,
                    );
                }
                Msg::SyncReply { response } => {
                    if r.state != ReplicaState::Syncing {
                        return;
                    }
                    let applied = match (&mut r.node, response.as_ref()) {
                        (NodeKind::Flat(node), SyncReplyBody::Flat(resp)) => {
                            // One flat response is one part; which path it
                            // took is visible from its byte split.
                            let path = usize::from(resp.manifest_bytes() == 0);
                            r.metrics.sync_requests[path].inc();
                            apply_sync(node, resp).expect("catch-up")
                        }
                        (NodeKind::Sharded(node), SyncReplyBody::Sharded(resp)) => {
                            let applied = apply_sharded_sync(node, resp).expect("catch-up");
                            r.sync_manifest_shards += applied.manifest_shards;
                            r.sync_range_shards += applied.range_shards;
                            r.metrics.sync_requests[0].add(applied.manifest_shards);
                            r.metrics.sync_requests[1].add(applied.range_shards);
                            applied.blocks
                        }
                        _ => unreachable!("homogeneous cluster topology"),
                    };
                    // Satellite fix: transfer bytes split exactly by path
                    // instead of one aggregate counter for both.
                    r.metrics.sync_bytes[0].add(response.manifest_bytes());
                    r.metrics.sync_bytes[1].add(response.range_bytes());
                    ctx.charge_cpu(SYNC_REPLAY_NS_PER_BLOCK * applied);
                    r.sync_blocks += applied;
                    r.last_apply_ns = r.last_apply_ns.max(ctx.now());
                    if r.node.pending_gap() == 0 {
                        r.state = ReplicaState::Up;
                    } else {
                        // Still gapped (peer advanced meanwhile): go again.
                        r.request_sync(ctx);
                    }
                }
                _ => {}
            },
        }
    }

    fn on_timer(&mut self, id: u64, ctx: &mut NetCtx<'_, Msg>) {
        match (self, id) {
            (ClusterNode::Client(c), TIMER_CLIENT) => c.fire(ctx),
            (ClusterNode::Orderer(o), TIMER_BATCH) => {
                o.timer_armed = false;
                o.launch_batches(ctx);
            }
            (ClusterNode::Orderer(o), TIMER_METRICS) => o.hub.tick(ctx),
            (ClusterNode::Replica(r), TIMER_CRASH) => {
                r.node.crash();
                r.state = ReplicaState::Down;
            }
            (ClusterNode::Replica(r), TIMER_RECOVER) => {
                ctx.charge_cpu(RECOVERY_NS);
                r.node.recover_local().expect("local recovery");
                r.recoveries += 1;
                r.request_sync(ctx);
            }
            _ => {}
        }
    }
}

// ── The harness ─────────────────────────────────────────────────────────

/// Summary of one replica at the end of a run.
#[derive(Clone, Debug)]
pub struct ReplicaSummary {
    /// Replica index (0-based).
    pub replica: usize,
    /// Final chain height.
    pub height: BlockId,
    /// Final root: full-state on flat replicas, the sharded Merkle fold
    /// (`sharded_state_root`) on sharded ones.
    pub root: Digest,
    /// Shard-count-invariant logical database digest (equals `root` on
    /// flat replicas) — what cross-topology equivalence tests compare.
    pub logical_root: Digest,
    /// Full-scan audit recomputation of `root` (oracle path). Always equal
    /// to `root` — gossiping a cached root never drifts from the state.
    pub oracle_root: Digest,
    /// Blocks in its verified delivery log.
    pub delivered: usize,
    /// Divergence alarms it raised.
    pub alarms: u64,
    /// Crash recoveries it performed.
    pub recoveries: u64,
    /// Blocks it obtained via state-sync.
    pub sync_blocks: u64,
    /// Shards it re-bootstrapped via checkpoint-manifest install during
    /// state-sync (sharded runs only).
    pub sync_manifest_shards: u64,
    /// Shards it caught up via block-range replay during state-sync
    /// (sharded runs only).
    pub sync_range_shards: u64,
    /// State-sync bytes received via the checkpoint-manifest path.
    pub sync_manifest_bytes: u64,
    /// State-sync bytes received via the block-range-replay path.
    /// `sync_manifest_bytes + sync_range_bytes` is the exact total
    /// transfer — the two paths partition it.
    pub sync_range_bytes: u64,
}

/// End-of-run report.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// Node-runtime metrics measured at a never-crashed observer replica.
    pub metrics: RunMetrics,
    /// Mean ordering+execution latency (seal → apply), ms.
    pub order_latency_ms: f64,
    /// Per-replica summaries.
    pub replicas: Vec<ReplicaSummary>,
    /// All replicas ended at the same height with identical roots and
    /// pairwise-consistent delivery logs.
    pub consistent: bool,
    /// Total divergence alarms across replicas (0 on honest runs).
    pub divergence_alarms: u64,
    /// Mempool admission counters.
    pub mempool: MempoolStats,
    /// Blocks the orderer sealed.
    pub sealed_blocks: u64,
    /// Transactions the client bank submitted.
    pub submitted_txns: u64,
    /// Prometheus text exposition of the final registry state.
    pub exposition: String,
    /// Per-run JSON metrics timeline (`harmonybc-timeline/v1`), snapshots
    /// taken in virtual time — byte-identical across same-seed runs.
    pub timeline: String,
}

/// The runnable cluster.
pub struct Cluster {
    config: ClusterConfig,
}

impl Cluster {
    /// Build a cluster from its configuration.
    #[must_use]
    pub fn new(config: ClusterConfig) -> Cluster {
        Cluster { config }
    }

    /// Run the scenario to quiescence and report.
    pub fn run(&self) -> Result<ClusterReport> {
        let cfg = &self.config;
        let followers = match cfg.ordering {
            OrderingMode::Kafka { brokers } => brokers.saturating_sub(1),
            OrderingMode::HotStuff => 0,
        };
        let orderer_idx = 1usize;
        let replica_base = 2 + followers;
        let replica_idx: Vec<usize> = (0..cfg.replicas).map(|r| replica_base + r).collect();
        let crash_replica = cfg.crash.map(|c| c.replica);
        // The observer (metrics + sync serving) never crashes.
        let observer = (0..cfg.replicas)
            .find(|r| Some(*r) != crash_replica)
            .expect("at least one stable replica");
        let system = format!(
            "{}·node×{}{}{}",
            cfg.replica.engine.name(),
            cfg.replicas,
            match cfg.topology {
                Some(t) => format!("×{}shards", t.shards),
                None => String::new(),
            },
            match cfg.ordering {
                OrderingMode::Kafka { .. } => "·kafka",
                OrderingMode::HotStuff => "·hotstuff",
            }
        );
        // One registry for the whole cluster; every node holds interned
        // handles into it, the orderer snapshots it on the metrics timer.
        let registry = Arc::new(Registry::new());
        let deadline_ns = cfg.load_ns + cfg.drain_ns;
        let metrics_every_ns = cfg.metrics_every_ns.max(1);

        let mut nodes: Vec<ClusterNode> = Vec::with_capacity(replica_base + cfg.replicas);
        let mut stream = OpenLoopClients::new(cfg.open_loop, cfg.seed ^ 0xA11);
        let first = stream.next_arrival();
        nodes.push(ClusterNode::Client(ClientBank {
            stream,
            generator: cfg.workload.generator()?,
            rng: harmony_common::DetRng::new(cfg.seed ^ 0x7C5),
            pending: Some(first),
            load_ns: cfg.load_ns,
            orderer: orderer_idx,
            submitted: 0,
        }));
        let chain_cfg = &cfg.replica.chain;
        nodes.push(ClusterNode::Orderer(Box::new(Orderer {
            mempool: Mempool::with_metrics(cfg.mempool, MempoolMetrics::register(&registry)),
            hub: MetricsHub {
                registry: Arc::clone(&registry),
                timeline: Timeline::new(&system, cfg.seed, metrics_every_ns),
                every_ns: metrics_every_ns,
                deadline_ns,
            },
            keypair: KeyPair::derive(&chain_cfg.provision, chain_cfg.orderer_id, chain_cfg.crypto),
            crypto: chain_cfg.crypto,
            next_id: 1,
            prev_hash: Digest::ZERO,
            in_flight: HashMap::new(),
            mode: cfg.ordering,
            followers: (0..followers).map(|f| 2 + f).collect(),
            replicas: replica_idx.clone(),
            block_txns: cfg.block_txns.max(1),
            window: cfg.window.max(1),
            batch_interval_ns: cfg.batch_interval_ns.max(1),
            tx_ns_per_byte: 1,
            timer_armed: false,
            last_seal_ns: 0,
            sealed_blocks: 0,
        })));
        for _ in 0..followers {
            nodes.push(ClusterNode::Follower);
        }
        for r in 0..cfg.replicas {
            let node = match cfg.topology {
                None => {
                    let mut n =
                        ReplicaNode::new(&cfg.replica, |engine| cfg.workload.setup_node(engine))?;
                    n.set_metrics(ReplicaMetrics::register(&registry, r));
                    NodeKind::Flat(Box::new(n))
                }
                Some(topology) => {
                    let sharded_cfg = ShardedReplicaConfig {
                        chain: cfg.replica.chain.clone(),
                        engine: cfg.replica.engine,
                        workers: cfg.replica.workers,
                        shards: topology.shards.max(1),
                        partitions: topology.partitions,
                        checkpoint_stagger: topology.checkpoint_stagger,
                        latency: cfg.latency.clone(),
                        gossip_every: cfg.replica.gossip_every,
                    };
                    let mut n = ShardedReplicaNode::new(&sharded_cfg, |engine| {
                        cfg.workload.setup_node(engine)
                    })?;
                    let shards = topology.shards.max(1);
                    let id = r.to_string();
                    n.set_metrics(
                        ReplicaMetrics::register(&registry, r),
                        (0..shards)
                            .map(|s| shard_txn_counters(&registry, r, s))
                            .collect(),
                        PlannerMetrics::register(&registry, &[("replica", id.as_str())]),
                    );
                    NodeKind::Sharded(Box::new(n))
                }
            };
            let peers = replica_idx
                .iter()
                .copied()
                .filter(|&p| p != replica_idx[r])
                .collect();
            // Everyone syncs from the stable observer; the observer itself
            // falls back to the next stable replica (it should never need
            // to, but a self-request would deadlock).
            let sync_peer = if r == observer {
                (0..cfg.replicas)
                    .find(|x| *x != r && Some(*x) != crash_replica)
                    .map_or(replica_idx[r], |x| replica_idx[x])
            } else {
                replica_idx[observer]
            };
            nodes.push(ClusterNode::Replica(Box::new(ReplicaWrap {
                node,
                state: ReplicaState::Up,
                metrics: WrapMetrics::register(&registry, r),
                meta: HashMap::new(),
                peers,
                sync_peer,
                sync_policy: cfg.sync,
                window: cfg.window.max(1),
                committed_weighted_e2e_ns: 0.0,
                committed_weighted_order_ns: 0.0,
                committed_txns: 0,
                last_apply_ns: 0,
                recoveries: 0,
                sync_blocks: 0,
                sync_manifest_shards: 0,
                sync_range_shards: 0,
            })));
        }

        let mut el = EventLoop::new(nodes, cfg.latency.clone(), cfg.seed);
        let ClusterNode::Client(c) = el.node(0) else {
            unreachable!("node 0 is the client bank");
        };
        let first_at = c.pending.as_ref().map_or(0, |a| a.at_ns);
        el.seed_timer(0, first_at, TIMER_CLIENT);
        el.seed_timer(orderer_idx, metrics_every_ns, TIMER_METRICS);
        if let Some(plan) = cfg.crash {
            assert!(plan.replica < cfg.replicas, "crash target out of range");
            assert!(plan.at_ns < plan.recover_at_ns, "recover after crash");
            el.seed_timer(replica_idx[plan.replica], plan.at_ns, TIMER_CRASH);
            el.seed_timer(replica_idx[plan.replica], plan.recover_at_ns, TIMER_RECOVER);
        }
        el.run_until(deadline_ns);

        // Final timeline snapshot at the deadline (record dedupes if the
        // last timer already fired exactly there).
        {
            let ClusterNode::Orderer(o) = el.node_mut(orderer_idx) else {
                unreachable!("orderer index");
            };
            let registry = Arc::clone(&o.hub.registry);
            o.hub.timeline.record(deadline_ns, &registry);
        }

        // ── Collect ──
        let mut replicas = Vec::with_capacity(cfg.replicas);
        let mut divergence_alarms = 0;
        for (r, &idx) in replica_idx.iter().enumerate() {
            let ClusterNode::Replica(w) = el.node(idx) else {
                unreachable!("replica index");
            };
            divergence_alarms += w.node.divergence_alarms();
            replicas.push(ReplicaSummary {
                replica: r,
                height: w.node.height(),
                root: w.node.report_root()?,
                logical_root: w.node.logical_root()?,
                oracle_root: w.node.oracle_root()?,
                delivered: w.node.delivery_log().len(),
                alarms: w.node.divergence_alarms(),
                recoveries: w.recoveries,
                sync_blocks: w.sync_blocks,
                sync_manifest_shards: w.sync_manifest_shards,
                sync_range_shards: w.sync_range_shards,
                sync_manifest_bytes: w.metrics.sync_bytes[0].get(),
                sync_range_bytes: w.metrics.sync_bytes[1].get(),
            });
        }
        let consistent = replicas
            .windows(2)
            .all(|p| p[0].height == p[1].height && p[0].root == p[1].root)
            && replica_idx.iter().enumerate().all(|(i, &a)| {
                replica_idx.iter().skip(i + 1).all(|&b| {
                    let (ClusterNode::Replica(wa), ClusterNode::Replica(wb)) =
                        (el.node(a), el.node(b))
                    else {
                        unreachable!("replica index");
                    };
                    wa.node.delivery_log().agrees_with(wb.node.delivery_log())
                })
            });

        let ClusterNode::Replica(obs) = el.node(replica_idx[observer]) else {
            unreachable!("observer index");
        };
        let stats = *obs.node.stats();
        let wall_ns = obs.last_apply_ns.max(1);
        let committed = obs.committed_txns;
        let latency_ms = if committed == 0 {
            0.0
        } else {
            obs.committed_weighted_e2e_ns / committed as f64 / 1e6
        };
        let order_latency_ms = if committed == 0 {
            0.0
        } else {
            obs.committed_weighted_order_ns / committed as f64 / 1e6
        };
        let io = obs.node.io_snapshot();
        let metrics = RunMetrics {
            system: Cow::Owned(system),
            throughput_tps: committed as f64 / (wall_ns as f64 / 1e9),
            latency_ms,
            abort_rate: stats.abort_rate(),
            cpu_utilization: (stats.sim_ns_total + stats.commit_ns_total) as f64
                / (cfg.replica.workers as f64 * wall_ns as f64),
            stats,
            disk_reads: io.disk_reads,
            disk_writes: io.disk_writes,
            buffer_hit_rate: {
                let total = io.pool.hits + io.pool.misses;
                if total == 0 {
                    0.0
                } else {
                    io.pool.hits as f64 / total as f64
                }
            },
            wall_ns,
        };

        let ClusterNode::Orderer(o) = el.node(orderer_idx) else {
            unreachable!("orderer index");
        };
        let ClusterNode::Client(c) = el.node(0) else {
            unreachable!("client index");
        };
        Ok(ClusterReport {
            metrics,
            order_latency_ms,
            replicas,
            consistent,
            divergence_alarms,
            mempool: o.mempool.stats(),
            sealed_blocks: o.sealed_blocks,
            submitted_txns: c.submitted,
            exposition: registry.render_prometheus(),
            timeline: o.hub.timeline.to_json(),
        })
    }
}
