//! The cluster harness: a full Order-Execute deployment on the
//! deterministic discrete-event network.
//!
//! Node layout: one open-loop **client bank** (Poisson arrivals over N
//! sessions, per-session nonces), one **ordering service** (mempool
//! admission → deterministic batching → sealing → replication/voting →
//! delivery), optional Kafka follower brokers, and R **replicas**
//! applying sealed blocks in order. A replica is either flat
//! ([`ReplicaNode`]) or — when a [`ShardTopology`] is configured — a
//! [`ShardedReplicaNode`] hosting M shards behind the same ordered
//! stream, making the harness an N×M deployment.
//!
//! Scenario hooks: a [`FaultSchedule`] (see [`crate::fault`]) injects
//! typed faults mid-run — multiple crash/rejoin cycles ([`CrashPlan`] is
//! the one-crash compat constructor), partition windows, per-link
//! drop/duplication/delay faults lowered onto the deterministic net
//! model, sync-serve refusals, and root poisoning. Recovery is
//! policy-driven: state-sync requests carry an epoch and time out
//! ([`RetryPolicy`] — bounded retries, exponential backoff with
//! deterministic jitter, failover around a candidate ring), a liveness
//! watchdog re-arms catch-up on replicas that went quiet, and a replica
//! whose gossiped root a quorum of peers dispute self-quarantines,
//! wipes, and re-syncs from scratch. On the client side, retryable
//! admission rejects (backpressure, tenant quota, nonce gaps) can be
//! resubmitted with the same backoff discipline, closing the overload
//! loop end-to-end. All of it is armed only when faults (or client
//! retry) are configured — no-fault runs schedule the exact same events
//! as before the chaos plane existed.
//!
//! [`Cluster::run`] returns a [`ClusterReport`] whose `metrics` is a real
//! [`RunMetrics`] measured from the replica runtime — the same shape the
//! analytic `ClusterModel` composition produces, now driven end-to-end.

use std::borrow::Cow;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

use harmony_chain::ChainBlock;
use harmony_common::{BlockId, Error, Result};
use harmony_consensus::net::{DeliveryLog, EventLoop, LatencyModel, SimNode, Transport};
use harmony_core::BlockStats;
use harmony_crypto::{CryptoCost, Digest, KeyPair};
use harmony_metrics::{doubling_buckets, Counter, Histogram, Registry, Timeline};
use harmony_shard::{Partitioning, PlannerMetrics, ReshardMarker};
use harmony_sim::RunMetrics;
use harmony_storage::{IoSnapshot, StorageConfig, StorageEngine};
use harmony_txn::{encode_contract, Contract, ContractCodec};
use harmony_workloads::{
    OpenLoopClients, OpenLoopConfig, Smallbank, SmallbankCodec, SmallbankConfig, Tpcc, TpccCodec,
    TpccConfig, Workload, Ycsb, YcsbCodec, YcsbConfig,
};

use crate::fault::{FaultEvent, FaultSchedule, ReshardSchedule};
use crate::mempool::{Mempool, MempoolConfig, MempoolMetrics, MempoolStats};
use crate::metrics::{shard_txn_counters, ReplicaMetrics, ROOT_FOLD_NS};
use crate::replica::{Applied, ReplicaConfig, ReplicaNode};
use crate::sharded::{ShardedReplicaConfig, ShardedReplicaNode};
use crate::statesync::{
    apply_sharded_sync, apply_sync, serve_sharded_sync, serve_sync, RetryPolicy,
    ShardedSyncResponse, SyncPolicy, SyncResponse,
};

/// Workload selector for a cluster run (workload + its contract codec).
#[derive(Clone, Debug)]
pub enum ClusterWorkload {
    /// Smallbank with the given configuration.
    Smallbank(SmallbankConfig),
    /// YCSB with the given configuration.
    Ycsb(YcsbConfig),
    /// TPC-C full mix with the given configuration.
    Tpcc(TpccConfig),
}

impl ClusterWorkload {
    /// Display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ClusterWorkload::Smallbank(_) => "Smallbank",
            ClusterWorkload::Ycsb(_) => "YCSB",
            ClusterWorkload::Tpcc(_) => "TPC-C",
        }
    }

    /// Load genesis state into a replica's engine and return the codec
    /// that decodes this workload's contracts.
    pub fn setup_node(&self, engine: &Arc<StorageEngine>) -> Result<Arc<dyn ContractCodec>> {
        match self {
            ClusterWorkload::Smallbank(c) => {
                let mut w = Smallbank::new(c.clone());
                w.setup(engine)?;
                let (checking, savings) = w.tables();
                Ok(Arc::new(SmallbankCodec { checking, savings }))
            }
            ClusterWorkload::Ycsb(c) => {
                let mut w = Ycsb::new(c.clone());
                w.setup(engine)?;
                Ok(Arc::new(YcsbCodec { table: w.table() }))
            }
            ClusterWorkload::Tpcc(c) => {
                let mut w = Tpcc::new(c.clone());
                w.setup(engine)?;
                Ok(Arc::new(TpccCodec { tables: w.tables() }))
            }
        }
    }

    /// The workload's contract codec, built against a scratch engine (the
    /// deterministic setup gives every node identical table ids). The
    /// orderer process of a real-transport cluster uses this to decode
    /// submitted contracts without hosting a replica.
    pub fn codec(&self) -> Result<Arc<dyn ContractCodec>> {
        let engine = Arc::new(StorageEngine::open(&StorageConfig::memory())?);
        self.setup_node(&engine)
    }

    /// Tables a sharded deployment should replicate in full on every
    /// shard: read-only dimension tables, never written after genesis.
    /// TPC-C's `item` price list is the canonical case — replicating it
    /// keeps NewOrder's price lookups shard-local, so a warehouse-local
    /// order needs no cross-shard round at all.
    #[must_use]
    pub fn replicated_tables(&self) -> Vec<String> {
        match self {
            ClusterWorkload::Tpcc(_) => vec!["item".to_string()],
            ClusterWorkload::Smallbank(_) | ClusterWorkload::Ycsb(_) => Vec::new(),
        }
    }

    /// The partitioning function a sharded deployment of this workload
    /// should run: entity-prefix for TPC-C (composite keys share their
    /// warehouse's leading 8 bytes, making declared NewOrder/Payment
    /// footprints single-shard), whole-row hash for the 8-byte-key
    /// workloads — where the two are bit-identical anyway.
    #[must_use]
    pub fn recommended_partitioning(&self) -> Partitioning {
        match self {
            ClusterWorkload::Tpcc(_) => Partitioning::Prefix,
            ClusterWorkload::Smallbank(_) | ClusterWorkload::Ycsb(_) => Partitioning::Hash,
        }
    }

    /// A transaction generator for the client bank (set up against a
    /// scratch engine so table ids match the replicas').
    pub fn generator(&self) -> Result<Box<dyn Workload>> {
        let engine = StorageEngine::open(&StorageConfig::memory())?;
        match self {
            ClusterWorkload::Smallbank(c) => {
                let mut w = Smallbank::new(c.clone());
                w.setup(&engine)?;
                Ok(Box::new(w))
            }
            ClusterWorkload::Ycsb(c) => {
                let mut w = Ycsb::new(c.clone());
                w.setup(&engine)?;
                Ok(Box::new(w))
            }
            ClusterWorkload::Tpcc(c) => {
                let mut w = Tpcc::new(c.clone());
                w.setup(&engine)?;
                Ok(Box::new(w))
            }
        }
    }
}

/// How the ordering service reaches agreement before delivering.
#[derive(Clone, Copy, Debug)]
pub enum OrderingMode {
    /// Crash-fault-tolerant leader + follower brokers, majority ack.
    Kafka {
        /// Replication factor (leader + followers).
        brokers: usize,
    },
    /// BFT: the replicas themselves vote in three chained rounds.
    HotStuff,
}

/// Sharded-execution topology of every replica: M shards over a fixed
/// logical partition count. `None` in [`ClusterConfig::topology`] keeps
/// the flat single-engine replica.
#[derive(Clone, Copy, Debug)]
pub struct ShardTopology {
    /// Physical shards hosted by every replica.
    pub shards: usize,
    /// Logical partitions (fixed across shard counts, so every commit
    /// decision is shard-count-invariant). Should match the workload's
    /// `partitions` knob.
    pub partitions: u32,
    /// Partitioning-function override. `None` (the default) uses
    /// [`ClusterWorkload::recommended_partitioning`] — entity-prefix
    /// for TPC-C, whole-row hash otherwise. Must be identical on every
    /// replica of a chain.
    pub partitioning: Option<Partitioning>,
    /// Per-shard checkpoint-period stagger (see
    /// [`ShardedReplicaConfig::checkpoint_stagger`]).
    pub checkpoint_stagger: u64,
}

impl Default for ShardTopology {
    fn default() -> Self {
        ShardTopology {
            shards: 4,
            partitions: 16,
            partitioning: None,
            checkpoint_stagger: 0,
        }
    }
}

/// Take one replica down at `at_ns` and bring it back at `recover_at_ns`
/// (local checkpoint recovery + state-sync catch-up from a peer).
///
/// Compat constructor over the general [`FaultSchedule`]: the original
/// one-crash scenario is now just a schedule with a single
/// [`FaultEvent::Crash`] — convert with `.into()`.
#[derive(Clone, Copy, Debug)]
pub struct CrashPlan {
    /// Replica index (0-based among replicas) to crash.
    pub replica: usize,
    /// Crash time (virtual ns).
    pub at_ns: u64,
    /// Recovery time (virtual ns).
    pub recover_at_ns: u64,
}

impl From<CrashPlan> for FaultSchedule {
    fn from(plan: CrashPlan) -> FaultSchedule {
        FaultSchedule::new(vec![FaultEvent::Crash {
            replica: plan.replica,
            at_ns: plan.at_ns,
            recover_at_ns: plan.recover_at_ns,
        }])
    }
}

/// Cluster configuration.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of replicas.
    pub replicas: usize,
    /// Per-replica configuration (engine, workers, chain, gossip).
    pub replica: ReplicaConfig,
    /// Sharded execution topology: `Some` makes every replica a
    /// [`ShardedReplicaNode`] with M shards (N×M deployment), `None`
    /// keeps flat replicas.
    pub topology: Option<ShardTopology>,
    /// The workload and its codec.
    pub workload: ClusterWorkload,
    /// Ordering service style.
    pub ordering: OrderingMode,
    /// Network model.
    pub latency: LatencyModel,
    /// Mempool admission bounds.
    pub mempool: MempoolConfig,
    /// Open-loop client arrival process.
    pub open_loop: OpenLoopConfig,
    /// Arrivals stop after this much virtual time.
    pub load_ns: u64,
    /// Extra virtual time to drain the pipeline.
    pub drain_ns: u64,
    /// Transactions per sealed block (batch ceiling).
    pub block_txns: usize,
    /// Batching tick interval.
    pub batch_interval_ns: u64,
    /// Seal a full block the moment the mempool reaches `block_txns`
    /// instead of waiting for the next batch tick. Off by default — the
    /// default discipline's event schedule stays bit-identical to every
    /// pinned run. Combined with a batch interval longer than the run,
    /// sealing becomes purely count-driven: the block stream is a pure
    /// function of the admitted submission sequence, independent of
    /// arrival pacing — which is how a wall-clock TCP cluster and the
    /// virtual-time simulator are proven to commit identical state roots.
    pub eager_seal: bool,
    /// Max unacknowledged blocks in the ordering pipeline.
    pub window: usize,
    /// State-sync serving policy.
    pub sync: SyncPolicy,
    /// Fault-injection schedule. Empty = healthy run: none of the chaos
    /// machinery (watchdog timers, sync timeouts, net-fault table) is
    /// armed, so the event schedule is bit-identical to a build without
    /// the chaos plane.
    pub faults: FaultSchedule,
    /// Scheduled topology changes (live shard split/merge). Empty =
    /// static topology: the orderer never consults the queue and the
    /// sealed stream is bit-identical to a build without elastic
    /// resharding. Requires a sharded `topology`.
    pub reshards: ReshardSchedule,
    /// State-sync timeout/retry/backoff/failover policy (active on
    /// fault runs only).
    pub sync_retry: RetryPolicy,
    /// Client resubmission policy for retryable admission rejects
    /// (backpressure, tenant quota, nonce gap). `None` disables
    /// resubmission — rejected transactions are simply lost, the
    /// pre-chaos behavior.
    pub client_retry: Option<RetryPolicy>,
    /// Peers that must dispute this replica's root at one gossip height
    /// before it self-quarantines and re-syncs from scratch.
    pub quarantine_quorum: u32,
    /// Liveness-watchdog period (virtual ns); armed on fault runs only.
    pub watchdog_ns: u64,
    /// Metric-timeline snapshot interval (virtual ns). Snapshots are
    /// taken in virtual time, so same-seed runs produce byte-identical
    /// timelines.
    pub metrics_every_ns: u64,
    /// Simulation seed (network jitter + client stream).
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            replicas: 4,
            replica: ReplicaConfig::default(),
            topology: None,
            workload: ClusterWorkload::Smallbank(SmallbankConfig {
                accounts: 1_000,
                theta: 0.6,
                ..SmallbankConfig::default()
            }),
            ordering: OrderingMode::Kafka { brokers: 3 },
            latency: LatencyModel::lan_1g(),
            mempool: MempoolConfig::default(),
            open_loop: OpenLoopConfig::default(),
            load_ns: 40_000_000,
            drain_ns: 400_000_000,
            block_txns: 32,
            batch_interval_ns: 500_000,
            eager_seal: false,
            window: 4,
            sync: SyncPolicy::default(),
            faults: FaultSchedule::default(),
            reshards: ReshardSchedule::default(),
            sync_retry: RetryPolicy::default(),
            client_retry: None,
            quarantine_quorum: 2,
            watchdog_ns: 5_000_000,
            metrics_every_ns: 5_000_000,
            seed: 0xC10C,
        }
    }
}

impl ClusterConfig {
    /// Check the configuration before running: sane shape parameters and
    /// a well-formed fault schedule (indices in range, windows ordered,
    /// non-overlapping crash cycles, an observer left standing).
    /// [`Cluster::run`] calls this; harnesses building schedules
    /// programmatically can call it early for a better error site.
    pub fn validate(&self) -> Result<()> {
        if self.replicas == 0 {
            return Err(Error::InvalidArgument("cluster needs ≥ 1 replica".into()));
        }
        if self.quarantine_quorum == 0 {
            return Err(Error::InvalidArgument(
                "quarantine quorum must be ≥ 1".into(),
            ));
        }
        if self.watchdog_ns == 0 {
            return Err(Error::InvalidArgument(
                "watchdog period must be non-zero".into(),
            ));
        }
        if !self.reshards.is_empty() {
            let Some(topology) = self.topology else {
                return Err(Error::InvalidArgument(
                    "reshard schedule requires a sharded topology".into(),
                ));
            };
            self.reshards.validate(topology.partitions as usize)?;
        }
        self.faults.validate(self.replicas)
    }
}

// ── Messages and timers ─────────────────────────────────────────────────

/// The cluster's message enum — everything that crosses a link between
/// cluster nodes, on the simulator *or* on a real transport.
///
/// `harmony-transport` gives every variant a length-prefixed binary wire
/// form (version byte + per-variant tag), which is why the enum and its
/// payload types are public: the wire codec lives outside this crate but
/// must name them.
#[derive(Clone)]
pub enum Msg {
    /// Client → orderer: one transaction submission.
    Submit {
        /// Submitting client session.
        client: u64,
        /// The client's session nonce.
        nonce: u64,
        /// Submission timestamp (latency accounting).
        submitted_ns: u64,
        /// The contract itself (travels encoded on a real wire).
        contract: Arc<dyn Contract>,
    },
    /// Leader → follower broker (Kafka replication).
    Replicate {
        /// Block sequence being replicated.
        seq: u64,
    },
    /// Follower → leader.
    Ack {
        /// Acknowledged block sequence.
        seq: u64,
    },
    /// Leader → replica voter (HotStuff round `round` of 3).
    Prepare {
        /// Block sequence under vote.
        seq: u64,
        /// Voting round (0..3).
        round: u8,
    },
    /// Voter → leader.
    Vote {
        /// Block sequence voted on.
        seq: u64,
        /// Voting round the vote belongs to.
        round: u8,
    },
    /// Orderer → replica: the sealed block.
    Deliver {
        /// The sealed, signed block.
        block: Arc<ChainBlock>,
        /// Seal time (ordering-latency accounting).
        born_ns: u64,
        /// Mean submission timestamp of the batch (e2e latency).
        mean_submit_ns: u64,
    },
    /// Replica → replica: state root at a gossip height.
    RootGossip {
        /// Gossip height (block id).
        height: u64,
        /// The gossiped state root.
        root: Digest,
    },
    /// Lagging replica → peer (flat: chain height; sharded: per-shard
    /// heights). `epoch` tags the requester's sync attempt so stale
    /// replies (late after a timeout-driven failover) are discarded.
    SyncRequest {
        /// The requester's position.
        from: SyncFrom,
        /// The requester's sync-attempt epoch.
        epoch: u64,
    },
    /// Peer → lagging replica.
    SyncReply {
        /// The served manifest/range payload.
        response: Arc<SyncReplyBody>,
        /// Echo of the request's epoch.
        epoch: u64,
    },
    /// Peer → lagging replica: explicit serve refusal (the peer is
    /// itself syncing, or shedding serve work under a refusal-fault
    /// window). The requester fails over immediately instead of waiting
    /// out its timeout.
    SyncRefused {
        /// Echo of the request's epoch.
        epoch: u64,
    },
    /// Operator/control plane → orderer: change the cluster's shard
    /// count. The orderer seals a topology-change marker block at the
    /// next sealable height; replicas apply it as an epoch boundary
    /// (drain, state handover, router swap). Ignored on flat clusters
    /// and when `new_shards` is out of range — flat replicas cannot
    /// apply a marker.
    Reshard {
        /// Requested shard count.
        new_shards: u32,
    },
    /// Orderer → client bank: a retryable admission reject (cause in
    /// [`crate::mempool::AdmitError::cause_label`] terms). Carries the
    /// contract so the client can resubmit after backoff with its
    /// original submission timestamp.
    Reject {
        /// Rejected client session.
        client: u64,
        /// Rejected nonce.
        nonce: u64,
        /// Original submission timestamp.
        submitted_ns: u64,
        /// The contract, returned for resubmission.
        contract: Arc<dyn Contract>,
    },
}

/// The requester's position in a sync request.
#[derive(Clone, Debug)]
pub enum SyncFrom {
    /// Flat replica: its chain height.
    Flat(u64),
    /// Sharded replica: per-shard chain heights, in shard order.
    Sharded(Vec<BlockId>),
}

/// The serving peer's answer, matching the cluster's replica kind.
pub enum SyncReplyBody {
    /// Answer to a flat requester.
    Flat(SyncResponse),
    /// Answer to a sharded requester.
    Sharded(ShardedSyncResponse),
}

impl SyncReplyBody {
    /// Modeled transfer size in bytes.
    #[must_use]
    pub fn transfer_bytes(&self) -> u64 {
        match self {
            SyncReplyBody::Flat(r) => r.transfer_bytes(),
            SyncReplyBody::Sharded(r) => r.transfer_bytes(),
        }
    }

    /// Bytes attributable to checkpoint-manifest installs. Together with
    /// [`SyncReplyBody::range_bytes`] this partitions `transfer_bytes`
    /// exactly, so per-path accounting never double-counts.
    #[must_use]
    pub fn manifest_bytes(&self) -> u64 {
        match self {
            SyncReplyBody::Flat(r) => r.manifest_bytes(),
            SyncReplyBody::Sharded(r) => r.manifest_bytes(),
        }
    }

    /// Bytes attributable to block-range replay (the remainder of
    /// `transfer_bytes` after manifests).
    #[must_use]
    pub fn range_bytes(&self) -> u64 {
        match self {
            SyncReplyBody::Flat(r) => r.range_bytes(),
            SyncReplyBody::Sharded(r) => r.range_bytes(),
        }
    }

    /// Number of blocks shipped.
    #[must_use]
    pub fn block_count(&self) -> usize {
        match self {
            SyncReplyBody::Flat(r) => r.block_count(),
            SyncReplyBody::Sharded(r) => r.block_count(),
        }
    }
}

const TIMER_CLIENT: u64 = 1;
const TIMER_BATCH: u64 = 2;
/// Timer id that crashes a replica when fired (fault schedules seed it;
/// a real-transport control plane injects it for operator-driven crash).
pub const TIMER_CRASH: u64 = 3;
/// Timer id that recovers a crashed replica: local checkpoint recovery,
/// then state-sync catch-up from a peer.
pub const TIMER_RECOVER: u64 = 4;
/// Periodic metrics-timeline snapshot (fires on the orderer, which owns
/// the shared registry).
const TIMER_METRICS: u64 = 5;
/// Per-replica liveness watchdog (armed on fault runs only).
const TIMER_WATCHDOG: u64 = 6;
/// Root-poison injection point ([`FaultEvent::PoisonRoot`]).
const TIMER_POISON: u64 = 7;
/// Client-bank resubmission wakeup.
const TIMER_RETRY: u64 = 8;
/// State-sync request timeout; the sync epoch is added so a late timer
/// from a superseded attempt can be told apart from the live one.
const TIMER_SYNC_BASE: u64 = 1 << 32;

/// Per-admission CPU cost at the orderer (signature + nonce check).
const ADMIT_NS: u64 = 1_000;
/// CPU cost of serving one block in a sync response.
const SYNC_SERVE_NS_PER_BLOCK: u64 = 10_000;
/// CPU cost of replaying one block during catch-up.
const SYNC_REPLAY_NS_PER_BLOCK: u64 = 300_000;
/// CPU cost of local checkpoint recovery.
const RECOVERY_NS: u64 = 1_000_000;

// ── Client bank ─────────────────────────────────────────────────────────

/// The open-loop client bank: Poisson arrivals over N sessions with
/// per-session nonces, plus reject-resubmission with backoff. Public so
/// [`ClusterNode`] can be public; internals stay private (a real-network
/// cluster replaces this node with an external driver submitting
/// [`Msg::Submit`] frames).
pub struct ClientBank {
    stream: OpenLoopClients,
    generator: Box<dyn Workload>,
    rng: harmony_common::DetRng,
    pending: Option<harmony_workloads::Arrival>,
    load_ns: u64,
    orderer: usize,
    submitted: u64,
    /// Resubmission policy (`None` = rejects are final).
    retry: Option<RetryPolicy>,
    retry_seed: u64,
    /// Attempts already burned per (client, nonce) session slot.
    attempts: HashMap<(u64, u64), u32>,
    /// Resubmissions waiting out their backoff, keyed by due time.
    retry_heap: BinaryHeap<Reverse<(u64, u64, u64)>>,
    retry_pending: HashMap<(u64, u64), (u64, Arc<dyn Contract>)>,
    retries: Counter,
    retry_drops: Counter,
}

impl ClientBank {
    fn fire(&mut self, ctx: &mut dyn Transport<Msg>) {
        let Some(arrival) = self.pending.take() else {
            return;
        };
        let contract = self.generator.next_txn(&mut self.rng);
        let bytes = encode_contract(contract.as_ref()).len() as u64 + 24;
        ctx.charge_cpu(500);
        ctx.send(
            self.orderer,
            Msg::Submit {
                client: arrival.client,
                nonce: arrival.nonce,
                submitted_ns: ctx.now(),
                contract,
            },
            bytes,
        );
        self.submitted += 1;
        let next = self.stream.next_arrival();
        if next.at_ns <= self.load_ns {
            ctx.set_timer(next.at_ns.saturating_sub(ctx.now()), TIMER_CLIENT);
            self.pending = Some(next);
        }
    }

    /// A retryable admission reject bounced back: schedule a
    /// resubmission after exponential backoff (deterministic jitter, the
    /// original submission timestamp preserved so latency accounting
    /// keeps charging the queueing delay), or drop the transaction once
    /// its retry budget is spent.
    fn on_reject(
        &mut self,
        client: u64,
        nonce: u64,
        submitted_ns: u64,
        contract: Arc<dyn Contract>,
        ctx: &mut dyn Transport<Msg>,
    ) {
        let Some(policy) = self.retry else {
            return;
        };
        let attempt = self.attempts.entry((client, nonce)).or_insert(0);
        *attempt += 1;
        if *attempt > policy.max_retries {
            self.attempts.remove(&(client, nonce));
            self.retry_drops.inc();
            return;
        }
        let salt = client.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ nonce;
        let wait = policy.backoff_ns(*attempt - 1, self.retry_seed, salt);
        self.retry_heap
            .push(Reverse((ctx.now() + wait, client, nonce)));
        self.retry_pending
            .insert((client, nonce), (submitted_ns, contract));
        ctx.set_timer(wait, TIMER_RETRY);
    }

    /// Resubmit every transaction whose backoff has elapsed.
    fn fire_retries(&mut self, ctx: &mut dyn Transport<Msg>) {
        while let Some(&Reverse((due, client, nonce))) = self.retry_heap.peek() {
            if due > ctx.now() {
                break;
            }
            self.retry_heap.pop();
            let Some((submitted_ns, contract)) = self.retry_pending.remove(&(client, nonce)) else {
                continue;
            };
            let bytes = encode_contract(contract.as_ref()).len() as u64 + 24;
            ctx.charge_cpu(500);
            ctx.send(
                self.orderer,
                Msg::Submit {
                    client,
                    nonce,
                    submitted_ns,
                    contract,
                },
                bytes,
            );
            self.retries.inc();
        }
    }
}

// ── Ordering service ────────────────────────────────────────────────────

struct InFlight {
    block: Arc<ChainBlock>,
    /// Wire size of the sealed block (computed once at seal time).
    bytes: u64,
    born_ns: u64,
    mean_submit_ns: u64,
    acks: usize,
    round: u8,
}

/// The observability plane of one run: the shared metric registry every
/// node's handles point into, plus the virtual-time snapshot timeline.
/// Owned by the orderer (the one node guaranteed alive for the whole
/// run), ticked by [`TIMER_METRICS`].
struct MetricsHub {
    registry: Arc<Registry>,
    timeline: Timeline,
    every_ns: u64,
    /// Last virtual instant a snapshot may be scheduled at (run end).
    deadline_ns: u64,
}

impl MetricsHub {
    fn tick(&mut self, ctx: &mut dyn Transport<Msg>) {
        self.timeline.record(ctx.now(), &self.registry);
        if ctx.now() + self.every_ns <= self.deadline_ns {
            ctx.set_timer(self.every_ns, TIMER_METRICS);
        }
    }
}

/// The ordering service node: mempool admission, deterministic batching,
/// sealing, replication/voting, delivery. Public so a real-transport
/// runtime can host one as an OS process; its internals stay private.
pub struct Orderer {
    mempool: Mempool,
    hub: MetricsHub,
    keypair: KeyPair,
    crypto: CryptoCost,
    next_id: u64,
    prev_hash: Digest,
    in_flight: HashMap<u64, InFlight>,
    mode: OrderingMode,
    followers: Vec<usize>,
    replicas: Vec<usize>,
    block_txns: usize,
    window: usize,
    batch_interval_ns: u64,
    /// Seal full blocks immediately on admission (see
    /// [`ClusterConfig::eager_seal`]).
    eager_seal: bool,
    tx_ns_per_byte: u64,
    timer_armed: bool,
    last_seal_ns: u64,
    sealed_blocks: u64,
    /// Bounce retryable admission rejects back to the client bank.
    client_retry: bool,
    /// Pending topology changes as `(height, new_shards)`, ascending by
    /// height; the front entry seals as a marker block the moment the
    /// stream reaches (or has passed) its height.
    reshard_queue: Vec<(u64, u32)>,
    /// Topology-change epochs sealed so far (stamped into each marker).
    reshard_epoch: u64,
    /// Shard-count ceiling for operator-driven reshards: the logical
    /// partition count on sharded clusters, 0 on flat ones (where any
    /// reshard request is refused).
    reshard_max: u32,
}

impl Orderer {
    fn quorum(&self) -> usize {
        match self.mode {
            // Leader's own log append counts; majority of brokers.
            OrderingMode::Kafka { brokers } => brokers / 2 + 1,
            // 2/3 of the replica voters (rounded up), leader implicit.
            OrderingMode::HotStuff => (self.replicas.len() * 2).div_ceil(3).max(1),
        }
    }

    fn launch_batches(&mut self, ctx: &mut dyn Transport<Msg>) {
        loop {
            if self.in_flight.len() >= self.window {
                break;
            }
            // A scheduled topology change owns its block id: seal the
            // marker the moment the stream reaches it, ahead of any
            // workload batch.
            if self.seal_due_reshard(ctx) {
                continue;
            }
            if self.mempool.is_empty() {
                break;
            }
            // Batching discipline: seal a full block, or a partial one
            // only after a full batch interval has passed since the last
            // seal — otherwise a fast ack loop would seal slivers.
            let full = self.mempool.len() >= self.block_txns;
            let ripe = ctx.now().saturating_sub(self.last_seal_ns) >= self.batch_interval_ns;
            if !full && !ripe {
                break;
            }
            let batch = self.mempool.next_batch(self.block_txns);
            let mean_submit_ns =
                batch.iter().map(|t| t.submitted_ns).sum::<u64>() / batch.len() as u64;
            let encoded: Vec<Vec<u8>> = batch
                .iter()
                .map(|t| encode_contract(t.contract.as_ref()))
                .collect();
            self.seal_block(encoded, mean_submit_ns, ctx);
        }
        if !self.mempool.is_empty() && !self.timer_armed {
            ctx.set_timer(self.batch_interval_ns, TIMER_BATCH);
            self.timer_armed = true;
        }
    }

    /// Seal one block over the given payloads and push it into the
    /// replication/voting pipeline — the single seal path shared by
    /// workload batches and topology-change markers, so markers flow
    /// through the identical in-flight/commit machinery on the
    /// simulator and a real transport.
    fn seal_block(
        &mut self,
        encoded: Vec<Vec<u8>>,
        mean_submit_ns: u64,
        ctx: &mut dyn Transport<Msg>,
    ) {
        self.last_seal_ns = ctx.now();
        let sealed = Arc::new(ChainBlock::seal(
            BlockId(self.next_id),
            self.prev_hash,
            encoded,
            &self.keypair,
        ));
        ctx.charge_cpu(self.crypto.hash_ns + self.crypto.sign_ns);
        self.next_id += 1;
        self.prev_hash = sealed.header.hash();
        self.sealed_blocks += 1;
        let seq = sealed.header.id.0;
        let bytes = sealed.encode().len() as u64;
        self.in_flight.insert(
            seq,
            InFlight {
                block: sealed,
                bytes,
                born_ns: ctx.now(),
                mean_submit_ns,
                acks: 1,
                round: 0,
            },
        );
        match self.mode {
            OrderingMode::Kafka { .. } => {
                if self.followers.is_empty() {
                    self.commit(seq, ctx);
                } else {
                    for &f in &self.followers.clone() {
                        ctx.charge_cpu(bytes * self.tx_ns_per_byte);
                        ctx.send(f, Msg::Replicate { seq }, bytes);
                    }
                }
            }
            OrderingMode::HotStuff => {
                ctx.charge_cpu(self.crypto.sign_ns);
                for &r in &self.replicas.clone() {
                    ctx.charge_cpu(bytes * self.tx_ns_per_byte);
                    ctx.send(r, Msg::Prepare { seq, round: 0 }, bytes);
                }
            }
        }
    }

    /// Seal the front of the reshard queue as a marker block if the
    /// stream has reached its height. Returns whether a marker sealed.
    fn seal_due_reshard(&mut self, ctx: &mut dyn Transport<Msg>) -> bool {
        match self.reshard_queue.first() {
            Some(&(height, _)) if height <= self.next_id => {}
            _ => return false,
        }
        let (_, new_shards) = self.reshard_queue.remove(0);
        self.reshard_epoch += 1;
        let marker = ReshardMarker {
            new_shards,
            epoch: self.reshard_epoch,
        };
        // A marker carries no client transactions: its "mean submit
        // time" is its seal time, and it commits zero txns, so latency
        // accounting never sees it.
        self.seal_block(vec![marker.encode()], ctx.now(), ctx);
        true
    }

    /// Operator-driven topology change ([`Msg::Reshard`]): queue a
    /// marker at the next sealable height after anything already
    /// scheduled, then try to seal immediately. Refused (silently
    /// dropped) on flat clusters and for out-of-range shard counts.
    fn schedule_reshard(&mut self, new_shards: u32, ctx: &mut dyn Transport<Msg>) {
        if new_shards == 0 || new_shards > self.reshard_max {
            return;
        }
        let after = self.reshard_queue.last().map_or(0, |&(h, _)| h);
        let height = self.next_id.max(after + 1);
        self.reshard_queue.push((height, new_shards));
        self.launch_batches(ctx);
    }

    fn on_quorum(&mut self, seq: u64, ctx: &mut dyn Transport<Msg>) {
        match self.mode {
            OrderingMode::Kafka { .. } => self.commit(seq, ctx),
            OrderingMode::HotStuff => {
                let Some(entry) = self.in_flight.get_mut(&seq) else {
                    return;
                };
                if entry.round < 2 {
                    entry.round += 1;
                    entry.acks = 0;
                    let round = entry.round;
                    ctx.charge_cpu(self.crypto.sign_ns);
                    for &r in &self.replicas.clone() {
                        ctx.send(r, Msg::Prepare { seq, round }, 256);
                    }
                } else {
                    self.commit(seq, ctx);
                }
            }
        }
    }

    fn commit(&mut self, seq: u64, ctx: &mut dyn Transport<Msg>) {
        let Some(entry) = self.in_flight.remove(&seq) else {
            return;
        };
        let bytes = entry.bytes;
        for &r in &self.replicas {
            ctx.charge_cpu(bytes * self.tx_ns_per_byte);
            ctx.send(
                r,
                Msg::Deliver {
                    block: Arc::clone(&entry.block),
                    born_ns: entry.born_ns,
                    mean_submit_ns: entry.mean_submit_ns,
                },
                bytes,
            );
        }
        // A freed window slot can immediately seal the next batch.
        self.launch_batches(ctx);
    }
}

// ── Replica wrapper ─────────────────────────────────────────────────────

#[derive(Clone, Copy, PartialEq, Eq)]
enum ReplicaState {
    Up,
    Down,
    Syncing,
}

/// A replica is either flat (one engine) or sharded (M per-shard chains).
/// The wrapper drives both through one interface so the harness, crash
/// plans, and measurement code are topology-agnostic.
enum NodeKind {
    Flat(Box<ReplicaNode>),
    Sharded(Box<ShardedReplicaNode>),
}

impl NodeKind {
    fn deliver(&mut self, block: Arc<ChainBlock>) -> Result<Vec<Applied>> {
        match self {
            NodeKind::Flat(n) => n.deliver(block),
            NodeKind::Sharded(n) => n.deliver(block),
        }
    }

    fn height(&self) -> BlockId {
        match self {
            NodeKind::Flat(n) => n.height(),
            NodeKind::Sharded(n) => n.height(),
        }
    }

    /// The root this replica's summary reports (and that consistency
    /// checks compare): the full-state root on flat replicas, the sharded
    /// Merkle fold on sharded ones.
    fn report_root(&self) -> Result<Digest> {
        match self {
            NodeKind::Flat(n) => n.state_root(),
            NodeKind::Sharded(n) => n.sharded_root(),
        }
    }

    /// Shard-count-invariant digest of the logical database (equals the
    /// full-state root on a flat replica).
    fn logical_root(&self) -> Result<Digest> {
        match self {
            NodeKind::Flat(n) => n.state_root(),
            NodeKind::Sharded(n) => n.logical_state_root(),
        }
    }

    /// Per-table digests of the logical database — the table-granular
    /// decomposition of [`NodeKind::logical_root`], shard-count-invariant
    /// on sharded replicas.
    fn logical_table_heads(&self) -> Result<Vec<(String, Digest)>> {
        match self {
            NodeKind::Flat(n) => {
                harmony_shard::logical_table_heads(std::iter::once(n.chain().engine()))
            }
            NodeKind::Sharded(n) => n.logical_table_heads(),
        }
    }

    /// Shard chains this replica currently hosts (1 on flat replicas).
    fn hosted_shards(&self) -> usize {
        match self {
            NodeKind::Flat(_) => 1,
            NodeKind::Sharded(n) => n.shards(),
        }
    }

    /// Topology epoch: reshard markers applied so far (0 on flat replicas
    /// and on sharded runs with a static topology).
    fn reshard_epoch(&self) -> u64 {
        match self {
            NodeKind::Flat(_) => 0,
            NodeKind::Sharded(n) => n.epoch(),
        }
    }

    /// Full-scan audit recomputation of [`NodeKind::report_root`]: builds
    /// the commitment from the engines rather than reading the cached
    /// fold. Must always equal `report_root` — the e2e suites assert it.
    fn oracle_root(&self) -> Result<Digest> {
        match self {
            NodeKind::Flat(n) => harmony_chain::state_root(n.chain().engine()),
            NodeKind::Sharded(n) => n.sharded_root_oracle(),
        }
    }

    fn pending_gap(&self) -> usize {
        match self {
            NodeKind::Flat(n) => n.pending_gap(),
            NodeKind::Sharded(n) => n.pending_gap(),
        }
    }

    /// Highest root-gossip height heard from any peer.
    fn peer_frontier(&self) -> u64 {
        match self {
            NodeKind::Flat(n) => n.peer_frontier(),
            NodeKind::Sharded(n) => n.peer_frontier(),
        }
    }

    /// Lowest gossip height at which ≥ `quorum` peers dispute this
    /// replica's own root, if any.
    fn quarantine_signal(&self, quorum: u32) -> Option<u64> {
        match self {
            NodeKind::Flat(n) => n.quarantine_signal(quorum),
            NodeKind::Sharded(n) => n.quarantine_signal(quorum),
        }
    }

    /// Corrupt the next gossiped (and self-tracked) root — fault
    /// injection for the quarantine path; chain state stays intact.
    fn poison_next_gossip(&mut self) {
        match self {
            NodeKind::Flat(n) => n.poison_next_gossip(),
            NodeKind::Sharded(n) => n.poison_next_gossip(),
        }
    }

    /// Drop all local state back to genesis (pending deliveries kept)
    /// so the next state-sync re-bootstraps from a peer's manifest.
    fn wipe_for_resync(&mut self) -> Result<()> {
        match self {
            NodeKind::Flat(n) => n.wipe_for_resync(),
            NodeKind::Sharded(n) => n.wipe_for_resync(),
        }
    }

    fn on_peer_root(&mut self, height: u64, root: Digest) {
        match self {
            NodeKind::Flat(n) => n.on_peer_root(height, root),
            NodeKind::Sharded(n) => n.on_peer_root(height, root),
        }
    }

    fn divergence_alarms(&self) -> u64 {
        match self {
            NodeKind::Flat(n) => n.divergence_alarms(),
            NodeKind::Sharded(n) => n.divergence_alarms(),
        }
    }

    fn delivery_log(&self) -> &DeliveryLog {
        match self {
            NodeKind::Flat(n) => n.delivery_log(),
            NodeKind::Sharded(n) => n.delivery_log(),
        }
    }

    fn stats(&self) -> &BlockStats {
        match self {
            NodeKind::Flat(n) => n.stats(),
            NodeKind::Sharded(n) => n.stats(),
        }
    }

    fn crash(&mut self) {
        match self {
            NodeKind::Flat(n) => n.crash(),
            NodeKind::Sharded(n) => n.crash(),
        }
    }

    fn recover_local(&mut self) -> Result<()> {
        match self {
            NodeKind::Flat(n) => n.recover_local(),
            NodeKind::Sharded(n) => n.recover_local(),
        }
    }

    fn sync_from(&self) -> SyncFrom {
        match self {
            NodeKind::Flat(n) => SyncFrom::Flat(n.height().0),
            NodeKind::Sharded(n) => SyncFrom::Sharded(n.shard_heights()),
        }
    }

    fn io_snapshot(&self) -> IoSnapshot {
        match self {
            NodeKind::Flat(n) => n.chain().engine().io_snapshot(),
            NodeKind::Sharded(n) => {
                let mut io = IoSnapshot::default();
                for s in 0..n.shards() {
                    io.absorb(&n.shard_chain(s).engine().io_snapshot());
                }
                io
            }
        }
    }
}

/// Cluster-level per-replica metric handles: commit/order latency
/// histograms (virtual ns) and state-sync path counters. Registered per
/// replica in [`Cluster::run`]; the underlying cells live in the shared
/// registry, so the timeline and exposition see them automatically.
struct WrapMetrics {
    /// End-to-end latency (client submit → apply), weighted by committed
    /// txns per block.
    commit_latency_ns: Histogram,
    /// Ordering latency (block seal → apply), same weighting.
    order_latency_ns: Histogram,
    /// Sync parts served via checkpoint manifest vs block-range replay:
    /// `[manifest, range]`.
    sync_requests: [Counter; 2],
    /// Sync bytes received, split the same way: `[manifest, range]`.
    sync_bytes: [Counter; 2],
    /// Sync attempts that timed out or were refused and were retried
    /// (or failed over to another peer).
    sync_retries: Counter,
    /// Explicit serve refusals received while syncing.
    sync_refusals: Counter,
    /// Times this replica self-quarantined after a quorum of peers
    /// disputed its root.
    quarantine_enters: Counter,
    /// Quarantines resolved by a completed from-scratch re-sync.
    quarantine_exits: Counter,
    /// Node-local operations (delivery, sync serve/apply, recovery,
    /// wipe) that failed and were handled gracefully — dropped, refused,
    /// or healed via the sync path — where the pre-sweep harness would
    /// have panicked the whole process.
    node_errors: Counter,
}

impl WrapMetrics {
    fn register(registry: &Registry, replica: usize) -> WrapMetrics {
        let id = replica.to_string();
        let base = [("replica", id.as_str())];
        let by_path = |name: &str, help: &str, path: &str| {
            registry.counter_with(name, help, &[("replica", id.as_str()), ("path", path)])
        };
        WrapMetrics {
            commit_latency_ns: registry.histogram_with(
                "harmony_replica_commit_latency_ns",
                "End-to-end commit latency (client submit to apply), virtual ns.",
                &doubling_buckets(250_000, 15),
                &base,
            ),
            order_latency_ns: registry.histogram_with(
                "harmony_replica_order_latency_ns",
                "Ordering latency (block seal to apply), virtual ns.",
                &doubling_buckets(250_000, 15),
                &base,
            ),
            sync_requests: ["manifest", "range"].map(|p| {
                by_path(
                    "harmony_statesync_requests_total",
                    "State-sync parts applied, by transfer path.",
                    p,
                )
            }),
            sync_bytes: ["manifest", "range"].map(|p| {
                by_path(
                    "harmony_statesync_transfer_bytes_total",
                    "State-sync bytes received, by transfer path.",
                    p,
                )
            }),
            sync_retries: registry.counter_with(
                "harmony_statesync_retries_total",
                "Sync attempts retried after a timeout or refusal.",
                &base,
            ),
            sync_refusals: registry.counter_with(
                "harmony_statesync_refusals_total",
                "Explicit serve refusals received while syncing.",
                &base,
            ),
            quarantine_enters: registry.counter_with(
                "harmony_replica_quarantine_enters_total",
                "Self-quarantines after a root-divergence quorum.",
                &base,
            ),
            quarantine_exits: registry.counter_with(
                "harmony_replica_quarantine_exits_total",
                "Quarantines resolved by a completed re-sync.",
                &base,
            ),
            node_errors: registry.counter_with(
                "harmony_replica_node_errors_total",
                "Node-local operations that failed and were handled gracefully.",
                &base,
            ),
        }
    }
}

/// One replica node (flat or sharded) plus its cluster-side state
/// machine: up/down/syncing, sync retry/failover/quarantine bookkeeping,
/// and latency measurement. Public so a real-transport runtime can host
/// one as an OS process; internals stay private.
pub struct ReplicaWrap {
    node: NodeKind,
    state: ReplicaState,
    metrics: WrapMetrics,
    meta: HashMap<u64, (u64, u64)>,
    peers: Vec<usize>,
    sync_policy: SyncPolicy,
    window: usize,
    /// Whether a fault schedule is active: arms sync timeouts, the
    /// watchdog re-arm, and quarantine checks. Off on healthy runs so
    /// their event schedule is untouched.
    chaos: bool,
    /// Sync timeout/retry/backoff policy.
    retry: RetryPolicy,
    retry_seed: u64,
    /// Candidate peers to sync from (node ids), tried round-robin on
    /// timeout/refusal.
    sync_candidates: Vec<usize>,
    sync_pos: usize,
    /// Current sync attempt epoch: stale replies and timers carry an
    /// older epoch and are discarded.
    sync_epoch: u64,
    sync_attempt: u32,
    /// Windows during which this replica refuses to serve sync
    /// ([`FaultEvent::SyncRefusal`]).
    refusals: Vec<(u64, u64)>,
    quarantine_quorum: u32,
    watchdog_ns: u64,
    /// Ignore gossip lag below this margin (one gossip period) so the
    /// watchdog doesn't chase roots that are merely in flight.
    frontier_slack: u64,
    in_quarantine: bool,
    quarantines: u64,
    // Measurement.
    committed_weighted_e2e_ns: f64,
    committed_weighted_order_ns: f64,
    committed_txns: u64,
    last_apply_ns: u64,
    recoveries: u64,
    sync_blocks: u64,
    sync_manifest_shards: u64,
    sync_range_shards: u64,
}

impl ReplicaWrap {
    fn on_applied(&mut self, applied: &[Applied], ctx: &mut dyn Transport<Msg>) {
        for a in applied {
            ctx.charge_cpu(a.cost_ns);
            self.last_apply_ns = self.last_apply_ns.max(ctx.now());
            if let Some((born, submit)) = self.meta.remove(&a.block.0) {
                let c = a.committed as f64;
                let e2e = ctx.now().saturating_sub(submit);
                let order = ctx.now().saturating_sub(born);
                self.committed_weighted_e2e_ns += c * e2e as f64;
                self.committed_weighted_order_ns += c * order as f64;
                self.metrics
                    .commit_latency_ns
                    .observe_n(e2e, a.committed as u64);
                self.metrics
                    .order_latency_ns
                    .observe_n(order, a.committed as u64);
            }
            self.committed_txns += a.committed as u64;
            if let Some(root) = a.gossip_root {
                ctx.charge_cpu(ROOT_FOLD_NS); // root computation
                for &p in &self.peers {
                    ctx.send(
                        p,
                        Msg::RootGossip {
                            height: a.block.0,
                            root,
                        },
                        40,
                    );
                }
            }
        }
    }

    /// Begin (or restart) a catch-up round: fresh attempt budget, next
    /// request to the current candidate.
    fn request_sync(&mut self, ctx: &mut dyn Transport<Msg>) {
        self.state = ReplicaState::Syncing;
        self.sync_attempt = 0;
        self.send_sync_request(ctx);
    }

    fn send_sync_request(&mut self, ctx: &mut dyn Transport<Msg>) {
        if self.sync_candidates.is_empty() {
            // Single-replica cluster: nobody to sync from.
            self.state = ReplicaState::Up;
            return;
        }
        self.sync_epoch += 1;
        let peer = self.sync_candidates[self.sync_pos % self.sync_candidates.len()];
        ctx.send(
            peer,
            Msg::SyncRequest {
                from: self.node.sync_from(),
                epoch: self.sync_epoch,
            },
            64,
        );
        if self.chaos {
            // The timeout doubles as the backoff: attempt k waits the
            // k-th backoff step before declaring the peer unresponsive.
            let wait = self
                .retry
                .backoff_ns(self.sync_attempt, self.retry_seed, self.sync_epoch);
            ctx.set_timer(wait, TIMER_SYNC_BASE + self.sync_epoch);
        }
    }

    /// The current sync attempt failed (timeout or explicit refusal):
    /// fail over to the next candidate, or park back Up once the retry
    /// budget is spent (the watchdog re-arms catch-up later).
    fn sync_setback(&mut self, ctx: &mut dyn Transport<Msg>) {
        self.metrics.sync_retries.inc();
        self.sync_attempt += 1;
        if self.sync_attempt > self.retry.max_retries {
            self.state = ReplicaState::Up;
        } else {
            self.sync_pos += 1;
            self.send_sync_request(ctx);
        }
    }

    /// A quorum of peers disputes our root: wipe back to genesis and
    /// re-bootstrap from a peer's checkpoint manifest.
    fn enter_quarantine(&mut self, ctx: &mut dyn Transport<Msg>) {
        self.quarantines += 1;
        self.in_quarantine = true;
        self.metrics.quarantine_enters.inc();
        if self.node.wipe_for_resync().is_err() {
            // Wipe failure leaves the old state in place; the
            // from-scratch re-sync below still heals it forward.
            self.metrics.node_errors.inc();
        }
        self.request_sync(ctx);
    }

    /// Catch-up finished with no remaining gap.
    fn sync_complete(&mut self) {
        self.state = ReplicaState::Up;
        if self.in_quarantine {
            self.in_quarantine = false;
            self.metrics.quarantine_exits.inc();
        }
    }
}

// ── The node enum ───────────────────────────────────────────────────────

/// One node of the cluster, in any role. [`Cluster::run`] hosts the whole
/// vector on the deterministic simulator; a real-transport runtime hosts
/// exactly one per OS process — built by [`build_node`] with the same
/// configuration, running the identical [`SimNode`] handlers.
pub enum ClusterNode {
    /// The open-loop client bank (index 0; replaced by an external
    /// driver on a real-network cluster).
    Client(Box<ClientBank>),
    /// The ordering service (index 1).
    Orderer(Box<Orderer>),
    /// A Kafka follower broker (pure ack logic, no state).
    Follower,
    /// A replica, flat or sharded.
    Replica(Box<ReplicaWrap>),
}

impl SimNode<Msg> for ClusterNode {
    fn on_message(&mut self, from: usize, msg: Msg, ctx: &mut dyn Transport<Msg>) {
        match self {
            ClusterNode::Client(c) => {
                if let Msg::Reject {
                    client,
                    nonce,
                    submitted_ns,
                    contract,
                } = msg
                {
                    c.on_reject(client, nonce, submitted_ns, contract, ctx);
                }
            }
            ClusterNode::Follower => {
                if let Msg::Replicate { seq } = msg {
                    // Append to the local broker log and ack.
                    ctx.charge_cpu(50_000);
                    ctx.send(from, Msg::Ack { seq }, 64);
                }
            }
            ClusterNode::Orderer(o) => match msg {
                Msg::Submit {
                    client,
                    nonce,
                    submitted_ns,
                    contract,
                } => {
                    ctx.charge_cpu(ADMIT_NS);
                    let bounce = o.client_retry.then(|| Arc::clone(&contract));
                    match o.mempool.submit(client, nonce, submitted_ns, contract) {
                        Err(e) if e.is_retryable() => {
                            if let Some(contract) = bounce {
                                ctx.send(
                                    from,
                                    Msg::Reject {
                                        client,
                                        nonce,
                                        submitted_ns,
                                        contract,
                                    },
                                    64,
                                );
                            }
                        }
                        _ => {}
                    }
                    if o.eager_seal && o.mempool.len() >= o.block_txns {
                        o.launch_batches(ctx);
                    }
                    if !o.timer_armed {
                        ctx.set_timer(o.batch_interval_ns, TIMER_BATCH);
                        o.timer_armed = true;
                    }
                }
                Msg::Ack { seq } => {
                    if let Some(entry) = o.in_flight.get_mut(&seq) {
                        entry.acks += 1;
                        if entry.acks == o.quorum() {
                            o.on_quorum(seq, ctx);
                        }
                    }
                }
                Msg::Vote { seq, round } => {
                    ctx.charge_cpu(o.crypto.verify_ns / 16);
                    if let Some(entry) = o.in_flight.get_mut(&seq) {
                        if entry.round == round {
                            entry.acks += 1;
                            if entry.acks == o.quorum() {
                                o.on_quorum(seq, ctx);
                            }
                        }
                    }
                }
                Msg::Reshard { new_shards } => {
                    o.schedule_reshard(new_shards, ctx);
                }
                _ => {}
            },
            ClusterNode::Replica(r) => match msg {
                Msg::Prepare { seq, round } if r.state != ReplicaState::Down => {
                    // Verify the proposal, sign a vote share.
                    ctx.charge_cpu(10_000);
                    ctx.send(from, Msg::Vote { seq, round }, 128);
                }
                Msg::Deliver {
                    block,
                    born_ns,
                    mean_submit_ns,
                } => {
                    if r.state == ReplicaState::Down {
                        return;
                    }
                    r.meta.insert(block.header.id.0, (born_ns, mean_submit_ns));
                    let applied = match r.node.deliver(block) {
                        Ok(applied) => applied,
                        Err(_) => {
                            // A block that fails to apply (malformed,
                            // hostile, or landing on diverged local
                            // state) must not take the replica process
                            // down: drop it and heal any gap via sync.
                            r.metrics.node_errors.inc();
                            if r.state == ReplicaState::Up {
                                r.request_sync(ctx);
                            }
                            return;
                        }
                    };
                    r.on_applied(&applied, ctx);
                    // A persistent gap (beyond ordinary jitter reordering)
                    // means deliveries were missed: self-heal via sync.
                    if r.state == ReplicaState::Up && r.node.pending_gap() > 2 * r.window {
                        r.request_sync(ctx);
                    }
                }
                Msg::RootGossip { height, root } if r.state != ReplicaState::Down => {
                    r.node.on_peer_root(height, root);
                    // Divergence is actionable, not just an alarm: once a
                    // quorum of peers disputes our root, wipe and re-sync.
                    if r.chaos
                        && r.state == ReplicaState::Up
                        && r.node.quarantine_signal(r.quarantine_quorum).is_some()
                    {
                        r.enter_quarantine(ctx);
                    }
                }
                Msg::SyncRequest {
                    from: origin,
                    epoch,
                } if r.state != ReplicaState::Down => {
                    // A syncing peer, or one inside a refusal-fault
                    // window, sheds serve work explicitly so the
                    // requester fails over without waiting out a timeout.
                    let refusing = r.state != ReplicaState::Up
                        || r.refusals
                            .iter()
                            .any(|&(a, b)| ctx.now() >= a && ctx.now() < b);
                    if refusing {
                        ctx.send(from, Msg::SyncRefused { epoch }, 32);
                        return;
                    }
                    let served = match (&r.node, origin) {
                        (NodeKind::Flat(peer), SyncFrom::Flat(height)) => {
                            serve_sync(peer, BlockId(height), r.sync_policy)
                                .map(SyncReplyBody::Flat)
                        }
                        (NodeKind::Sharded(peer), SyncFrom::Sharded(heights)) => {
                            serve_sharded_sync(peer, &heights, r.sync_policy)
                                .map(SyncReplyBody::Sharded)
                        }
                        // A request of the wrong kind (misconfigured or
                        // hostile peer): refuse it rather than assert
                        // topology homogeneity on network input.
                        _ => Err(Error::InvalidArgument(
                            "sync request kind does not match this replica".into(),
                        )),
                    };
                    let response = match served {
                        Ok(response) => response,
                        Err(_) => {
                            r.metrics.node_errors.inc();
                            ctx.send(from, Msg::SyncRefused { epoch }, 32);
                            return;
                        }
                    };
                    ctx.charge_cpu(SYNC_SERVE_NS_PER_BLOCK * response.block_count() as u64);
                    let bytes = response.transfer_bytes();
                    ctx.send(
                        from,
                        Msg::SyncReply {
                            response: Arc::new(response),
                            epoch,
                        },
                        bytes,
                    );
                }
                Msg::SyncRefused { epoch } if r.state == ReplicaState::Syncing => {
                    if epoch != r.sync_epoch {
                        return;
                    }
                    r.metrics.sync_refusals.inc();
                    r.sync_setback(ctx);
                }
                Msg::SyncReply { response, epoch } => {
                    // Stale replies (a slow peer answering an attempt we
                    // already failed over from) are discarded by epoch.
                    if r.state != ReplicaState::Syncing || epoch != r.sync_epoch {
                        return;
                    }
                    let applied = match (&mut r.node, response.as_ref()) {
                        (NodeKind::Flat(node), SyncReplyBody::Flat(resp)) => {
                            // One flat response is one part; which path it
                            // took is visible from its byte split.
                            let path = usize::from(resp.manifest_bytes() == 0);
                            match apply_sync(node, resp) {
                                Ok(applied) => {
                                    r.metrics.sync_requests[path].inc();
                                    applied
                                }
                                Err(_) => {
                                    // A corrupt or inapplicable reply is a
                                    // failed attempt: fail over to the
                                    // next candidate peer.
                                    r.metrics.node_errors.inc();
                                    r.sync_setback(ctx);
                                    return;
                                }
                            }
                        }
                        (NodeKind::Sharded(node), SyncReplyBody::Sharded(resp)) => {
                            match apply_sharded_sync(node, resp) {
                                Ok(applied) => {
                                    r.sync_manifest_shards += applied.manifest_shards;
                                    r.sync_range_shards += applied.range_shards;
                                    r.metrics.sync_requests[0].add(applied.manifest_shards);
                                    r.metrics.sync_requests[1].add(applied.range_shards);
                                    applied.blocks
                                }
                                Err(_) => {
                                    r.metrics.node_errors.inc();
                                    r.sync_setback(ctx);
                                    return;
                                }
                            }
                        }
                        // A reply of the wrong kind cannot be applied:
                        // treat it like a failed attempt and fail over
                        // instead of asserting on network input.
                        _ => {
                            r.metrics.node_errors.inc();
                            r.sync_setback(ctx);
                            return;
                        }
                    };
                    // Satellite fix: transfer bytes split exactly by path
                    // instead of one aggregate counter for both.
                    r.metrics.sync_bytes[0].add(response.manifest_bytes());
                    r.metrics.sync_bytes[1].add(response.range_bytes());
                    ctx.charge_cpu(SYNC_REPLAY_NS_PER_BLOCK * applied);
                    r.sync_blocks += applied;
                    r.last_apply_ns = r.last_apply_ns.max(ctx.now());
                    if r.node.pending_gap() == 0 {
                        r.sync_complete();
                    } else {
                        // Still gapped (peer advanced meanwhile): go again.
                        r.request_sync(ctx);
                    }
                }
                _ => {}
            },
        }
    }

    fn on_timer(&mut self, id: u64, ctx: &mut dyn Transport<Msg>) {
        match (self, id) {
            (ClusterNode::Client(c), TIMER_CLIENT) => c.fire(ctx),
            (ClusterNode::Client(c), TIMER_RETRY) => c.fire_retries(ctx),
            (ClusterNode::Orderer(o), TIMER_BATCH) => {
                o.timer_armed = false;
                o.launch_batches(ctx);
            }
            (ClusterNode::Orderer(o), TIMER_METRICS) => o.hub.tick(ctx),
            (ClusterNode::Replica(r), TIMER_CRASH) => {
                r.node.crash();
                r.state = ReplicaState::Down;
            }
            (ClusterNode::Replica(r), TIMER_RECOVER) => {
                ctx.charge_cpu(RECOVERY_NS);
                if r.node.recover_local().is_err() {
                    // A corrupt checkpoint/log cannot block rejoin: wipe
                    // and let the from-scratch sync rebuild everything.
                    r.metrics.node_errors.inc();
                    if r.node.wipe_for_resync().is_err() {
                        r.metrics.node_errors.inc();
                    }
                }
                r.recoveries += 1;
                r.request_sync(ctx);
            }
            (ClusterNode::Replica(r), TIMER_POISON) if r.state == ReplicaState::Up => {
                r.node.poison_next_gossip();
            }
            (ClusterNode::Replica(r), TIMER_WATCHDOG) => {
                // Liveness backstop on fault runs: a replica that is
                // nominally Up but lost deliveries (partition, drops, a
                // sync round that exhausted its retries) re-arms
                // catch-up; a quorum-disputed root triggers quarantine.
                if r.state == ReplicaState::Up {
                    if r.node.quarantine_signal(r.quarantine_quorum).is_some() {
                        r.enter_quarantine(ctx);
                    } else if r.node.pending_gap() > 0
                        || r.node.peer_frontier() > r.node.height().0 + r.frontier_slack
                    {
                        r.request_sync(ctx);
                    }
                }
                ctx.set_timer(r.watchdog_ns, TIMER_WATCHDOG);
            }
            // Sync request timeout — only meaningful if we are still
            // waiting on exactly this epoch.
            (ClusterNode::Replica(r), id)
                if id >= TIMER_SYNC_BASE
                    && r.state == ReplicaState::Syncing
                    && id == TIMER_SYNC_BASE + r.sync_epoch =>
            {
                r.sync_setback(ctx);
            }
            _ => {}
        }
    }
}

// ── The harness ─────────────────────────────────────────────────────────

/// Summary of one replica at the end of a run.
#[derive(Clone, Debug)]
pub struct ReplicaSummary {
    /// Replica index (0-based).
    pub replica: usize,
    /// Final chain height.
    pub height: BlockId,
    /// Final root: full-state on flat replicas, the sharded Merkle fold
    /// (`sharded_state_root`) on sharded ones.
    pub root: Digest,
    /// Shard-count-invariant logical database digest (equals `root` on
    /// flat replicas) — what cross-topology equivalence tests compare.
    pub logical_root: Digest,
    /// Full-scan audit recomputation of `root` (oracle path). Always equal
    /// to `root` — gossiping a cached root never drifts from the state.
    pub oracle_root: Digest,
    /// Blocks in its verified delivery log.
    pub delivered: usize,
    /// Divergence alarms it raised.
    pub alarms: u64,
    /// Crash recoveries it performed.
    pub recoveries: u64,
    /// Times it self-quarantined after a quorum of peers disputed its
    /// root, wiping and re-syncing from scratch.
    pub quarantines: u64,
    /// Sync attempts it retried after a timeout or serve refusal.
    pub sync_retries: u64,
    /// Blocks it obtained via state-sync.
    pub sync_blocks: u64,
    /// Shards it re-bootstrapped via checkpoint-manifest install during
    /// state-sync (sharded runs only).
    pub sync_manifest_shards: u64,
    /// Shards it caught up via block-range replay during state-sync
    /// (sharded runs only).
    pub sync_range_shards: u64,
    /// State-sync bytes received via the checkpoint-manifest path.
    pub sync_manifest_bytes: u64,
    /// State-sync bytes received via the block-range-replay path.
    /// `sync_manifest_bytes + sync_range_bytes` is the exact total
    /// transfer — the two paths partition it.
    pub sync_range_bytes: u64,
    /// Per-table digests of the logical database — the table-granular
    /// decomposition of `logical_root`. Shard-count-invariant, so
    /// resharding equivalence tests compare these lists and a divergence
    /// names the table that drifted.
    pub table_heads: Vec<(String, Digest)>,
    /// Topology-change (reshard) markers this replica applied.
    pub reshards: u64,
    /// Shard chains the replica hosts at the end of the run (1 on flat
    /// replicas; the last reshard marker's count on elastic runs).
    pub hosted_shards: usize,
}

/// End-of-run report.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// Node-runtime metrics measured at a never-crashed observer replica.
    pub metrics: RunMetrics,
    /// Mean ordering+execution latency (seal → apply), ms.
    pub order_latency_ms: f64,
    /// Per-replica summaries.
    pub replicas: Vec<ReplicaSummary>,
    /// All replicas ended at the same height with identical roots and
    /// pairwise-consistent delivery logs.
    pub consistent: bool,
    /// Total divergence alarms across replicas (0 on honest runs).
    pub divergence_alarms: u64,
    /// Mempool admission counters.
    pub mempool: MempoolStats,
    /// Transactions sealed per tenant (one slot per configured tenant;
    /// a single slot when tenancy is off).
    pub tenant_sealed: Vec<u64>,
    /// Blocks the orderer sealed.
    pub sealed_blocks: u64,
    /// Transactions the client bank submitted (first attempts only).
    pub submitted_txns: u64,
    /// Client-side resubmissions after retryable rejects.
    pub client_retries: u64,
    /// Transactions abandoned after exhausting their retry budget.
    pub client_retry_drops: u64,
    /// Total self-quarantines across replicas.
    pub quarantines: u64,
    /// Prometheus text exposition of the final registry state.
    pub exposition: String,
    /// Per-run JSON metrics timeline (`harmonybc-timeline/v1`), snapshots
    /// taken in virtual time — byte-identical across same-seed runs.
    pub timeline: String,
}

// ── Layout and node factory ─────────────────────────────────────────────

/// The deterministic node-index layout of a cluster deployment, shared
/// by the simulator harness and the real-transport runtime: index 0 is
/// the client bank, 1 the ordering service, then the Kafka follower
/// brokers (none under HotStuff), then the replicas.
#[derive(Clone, Copy, Debug)]
pub struct ClusterLayout {
    /// Kafka follower broker count (0 under HotStuff).
    pub followers: usize,
    /// Replica count.
    pub replicas: usize,
}

impl ClusterLayout {
    /// The layout implied by a configuration.
    #[must_use]
    pub fn of(cfg: &ClusterConfig) -> ClusterLayout {
        ClusterLayout {
            followers: match cfg.ordering {
                OrderingMode::Kafka { brokers } => brokers.saturating_sub(1),
                OrderingMode::HotStuff => 0,
            },
            replicas: cfg.replicas,
        }
    }

    /// Node index of the client bank.
    #[must_use]
    pub const fn client(self) -> usize {
        0
    }

    /// Node index of the ordering service.
    #[must_use]
    pub const fn orderer(self) -> usize {
        1
    }

    /// Node index of the first replica.
    #[must_use]
    pub const fn replica_base(self) -> usize {
        2 + self.followers
    }

    /// Node index of replica `r` (0-based among replicas).
    #[must_use]
    pub const fn replica(self, r: usize) -> usize {
        self.replica_base() + r
    }

    /// Total node count (client + orderer + followers + replicas).
    #[must_use]
    pub const fn total(self) -> usize {
        self.replica_base() + self.replicas
    }

    /// Role name of the node at `index`.
    #[must_use]
    pub fn role(self, index: usize) -> &'static str {
        if index == self.client() {
            "client"
        } else if index == self.orderer() {
            "orderer"
        } else if index < self.replica_base() {
            "follower"
        } else {
            "replica"
        }
    }
}

/// Human-readable system label (engine × replicas × shards × ordering)
/// used by reports and metric timelines.
fn system_label(cfg: &ClusterConfig) -> String {
    format!(
        "{}·node×{}{}{}",
        cfg.replica.engine.name(),
        cfg.replicas,
        match cfg.topology {
            Some(t) => format!("×{}shards", t.shards),
            None => String::new(),
        },
        match cfg.ordering {
            OrderingMode::Kafka { .. } => "·kafka",
            OrderingMode::HotStuff => "·hotstuff",
        }
    )
}

/// Build the cluster node living at `index` in the layout of `cfg`,
/// registering its metric handles in `registry`.
///
/// [`Cluster::run`] builds the whole vector through this (one shared
/// registry, simulator transport); each process of a real-transport
/// cluster calls it once with a per-process registry and drives the node
/// over sockets — the identical state machine either way. Construction
/// is deterministic: the same configuration and index produce the same
/// node on any host, which is what makes TCP-vs-simulator state-root
/// equivalence checkable at all.
pub fn build_node(
    cfg: &ClusterConfig,
    registry: &Arc<Registry>,
    index: usize,
) -> Result<ClusterNode> {
    let layout = ClusterLayout::of(cfg);
    let chaos = !cfg.faults.is_empty();
    if index == layout.client() {
        let mut stream = OpenLoopClients::new(cfg.open_loop, cfg.seed ^ 0xA11);
        let first = stream.next_arrival();
        let (retries_ctr, retry_drops_ctr) = if cfg.client_retry.is_some() {
            (
                registry.counter(
                    "harmony_client_retries_total",
                    "Client resubmissions after retryable admission rejects.",
                ),
                registry.counter(
                    "harmony_client_retry_drops_total",
                    "Transactions abandoned after exhausting the retry budget.",
                ),
            )
        } else {
            (Counter::detached(), Counter::detached())
        };
        return Ok(ClusterNode::Client(Box::new(ClientBank {
            stream,
            generator: cfg.workload.generator()?,
            rng: harmony_common::DetRng::new(cfg.seed ^ 0x7C5),
            pending: Some(first),
            load_ns: cfg.load_ns,
            orderer: layout.orderer(),
            submitted: 0,
            retry: cfg.client_retry,
            retry_seed: cfg.seed ^ 0xBACC_0FF5,
            attempts: HashMap::new(),
            retry_heap: BinaryHeap::new(),
            retry_pending: HashMap::new(),
            retries: retries_ctr,
            retry_drops: retry_drops_ctr,
        })));
    }
    if index == layout.orderer() {
        let chain_cfg = &cfg.replica.chain;
        let metrics_every_ns = cfg.metrics_every_ns.max(1);
        return Ok(ClusterNode::Orderer(Box::new(Orderer {
            mempool: Mempool::with_metrics(
                cfg.mempool,
                MempoolMetrics::register(registry, cfg.mempool.tenants),
            ),
            hub: MetricsHub {
                registry: Arc::clone(registry),
                timeline: Timeline::new(&system_label(cfg), cfg.seed, metrics_every_ns),
                every_ns: metrics_every_ns,
                deadline_ns: cfg.load_ns + cfg.drain_ns,
            },
            keypair: KeyPair::derive(&chain_cfg.provision, chain_cfg.orderer_id, chain_cfg.crypto),
            crypto: chain_cfg.crypto,
            next_id: 1,
            prev_hash: Digest::ZERO,
            in_flight: HashMap::new(),
            mode: cfg.ordering,
            followers: (0..layout.followers).map(|f| 2 + f).collect(),
            replicas: (0..cfg.replicas).map(|r| layout.replica(r)).collect(),
            block_txns: cfg.block_txns.max(1),
            window: cfg.window.max(1),
            batch_interval_ns: cfg.batch_interval_ns.max(1),
            eager_seal: cfg.eager_seal,
            tx_ns_per_byte: 1,
            timer_armed: false,
            last_seal_ns: 0,
            sealed_blocks: 0,
            client_retry: cfg.client_retry.is_some(),
            reshard_queue: cfg
                .reshards
                .events
                .iter()
                .map(|e| (e.height, e.new_shards))
                .collect(),
            reshard_epoch: 0,
            reshard_max: cfg.topology.map_or(0, |t| t.partitions),
        })));
    }
    if index < layout.replica_base() {
        return Ok(ClusterNode::Follower);
    }
    let r = index - layout.replica_base();
    if r >= cfg.replicas {
        return Err(Error::InvalidArgument(format!(
            "node index {index} out of range for a {}-node cluster",
            layout.total()
        )));
    }
    let node = match cfg.topology {
        None => {
            let mut n = ReplicaNode::new(&cfg.replica, |engine| cfg.workload.setup_node(engine))?;
            n.set_metrics(ReplicaMetrics::register(registry, r));
            NodeKind::Flat(Box::new(n))
        }
        Some(topology) => {
            let sharded_cfg = ShardedReplicaConfig {
                chain: cfg.replica.chain.clone(),
                engine: cfg.replica.engine,
                workers: cfg.replica.workers,
                shards: topology.shards.max(1),
                partitions: topology.partitions,
                partitioning: topology
                    .partitioning
                    .unwrap_or_else(|| cfg.workload.recommended_partitioning()),
                replicated_tables: cfg.workload.replicated_tables(),
                checkpoint_stagger: topology.checkpoint_stagger,
                latency: cfg.latency.clone(),
                gossip_every: cfg.replica.gossip_every,
            };
            let mut n =
                ShardedReplicaNode::new(&sharded_cfg, |engine| cfg.workload.setup_node(engine))?;
            let shards = topology.shards.max(1);
            let id = r.to_string();
            n.set_metrics(
                ReplicaMetrics::register(registry, r),
                (0..shards)
                    .map(|s| shard_txn_counters(registry, r, s))
                    .collect(),
                PlannerMetrics::register(registry, &[("replica", id.as_str())]),
            );
            NodeKind::Sharded(Box::new(n))
        }
    };
    let peers: Vec<usize> = (0..cfg.replicas)
        .filter(|&p| p != r)
        .map(|p| layout.replica(p))
        .collect();
    // Sync candidates: the other replicas, as a ring starting at the
    // next index. Timeouts and refusals rotate through it, so a down or
    // overloaded peer just costs one failover hop.
    let sync_candidates: Vec<usize> = (1..cfg.replicas)
        .map(|d| layout.replica((r + d) % cfg.replicas))
        .collect();
    Ok(ClusterNode::Replica(Box::new(ReplicaWrap {
        node,
        state: ReplicaState::Up,
        metrics: WrapMetrics::register(registry, r),
        meta: HashMap::new(),
        peers,
        sync_policy: cfg.sync,
        window: cfg.window.max(1),
        chaos,
        retry: cfg.sync_retry,
        retry_seed: cfg.seed ^ 0x5E7B_ACC0 ^ (r as u64) << 40,
        sync_candidates,
        sync_pos: 0,
        sync_epoch: 0,
        sync_attempt: 0,
        refusals: cfg.faults.refusal_windows(r),
        quarantine_quorum: cfg.quarantine_quorum,
        watchdog_ns: cfg.watchdog_ns.max(1),
        frontier_slack: cfg.replica.gossip_every.max(1),
        in_quarantine: false,
        quarantines: 0,
        committed_weighted_e2e_ns: 0.0,
        committed_weighted_order_ns: 0.0,
        committed_txns: 0,
        last_apply_ns: 0,
        recoveries: 0,
        sync_blocks: 0,
        sync_manifest_shards: 0,
        sync_range_shards: 0,
    })))
}

// ── Operator-facing inspection ──────────────────────────────────────────

/// A point-in-time health/progress snapshot of one node, served over the
/// real-transport control plane (`harmonyctl status`). Counters that a
/// role doesn't have are zero (e.g. `mempool_len` on a replica).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeStatus {
    /// Role name: `client` / `orderer` / `follower` / `replica`.
    pub role: String,
    /// Replica availability: `up` / `down` / `syncing` (non-replica
    /// roles are always `up`).
    pub state: String,
    /// Chain height: highest sealed block on the orderer, highest
    /// applied block on a replica.
    pub height: u64,
    /// Replica report root (hex; sharded fold on sharded replicas).
    /// Empty on non-replica roles and on crashed replicas.
    pub root: String,
    /// Shard-count-invariant logical database digest (hex; empty where
    /// `root` is).
    pub logical_root: String,
    /// Transactions committed by this replica.
    pub committed_txns: u64,
    /// Blocks in the replica's verified delivery log.
    pub delivered: u64,
    /// Transactions queued in the orderer's mempool.
    pub mempool_len: u64,
    /// Blocks the orderer sealed.
    pub sealed_blocks: u64,
    /// Transactions the client bank submitted.
    pub submitted: u64,
    /// Crash recoveries this replica performed.
    pub recoveries: u64,
    /// Blocks this replica obtained via state-sync.
    pub sync_blocks: u64,
}

/// A sealed block described for the operator (`harmonyctl block`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockSummary {
    /// Block id (height).
    pub id: u64,
    /// Transactions in the block.
    pub txns: u64,
    /// Header hash (hex).
    pub hash: String,
    /// Previous block's header hash (hex).
    pub prev_hash: String,
}

impl ClusterNode {
    /// Role name of this node.
    #[must_use]
    pub fn role(&self) -> &'static str {
        match self {
            ClusterNode::Client(_) => "client",
            ClusterNode::Orderer(_) => "orderer",
            ClusterNode::Follower => "follower",
            ClusterNode::Replica(_) => "replica",
        }
    }

    /// A point-in-time status snapshot (the control plane serves this).
    #[must_use]
    pub fn status(&self) -> NodeStatus {
        let mut s = NodeStatus {
            role: self.role().to_string(),
            state: "up".to_string(),
            ..NodeStatus::default()
        };
        match self {
            ClusterNode::Client(c) => s.submitted = c.submitted,
            ClusterNode::Orderer(o) => {
                s.height = o.next_id.saturating_sub(1);
                s.mempool_len = o.mempool.len() as u64;
                s.sealed_blocks = o.sealed_blocks;
            }
            ClusterNode::Follower => {}
            ClusterNode::Replica(w) => {
                s.state = match w.state {
                    ReplicaState::Up => "up",
                    ReplicaState::Down => "down",
                    ReplicaState::Syncing => "syncing",
                }
                .to_string();
                s.height = w.node.height().0;
                s.committed_txns = w.committed_txns;
                s.delivered = w.node.delivery_log().len() as u64;
                s.recoveries = w.recoveries;
                s.sync_blocks = w.sync_blocks;
                if w.state != ReplicaState::Down {
                    if let Ok(root) = w.node.report_root() {
                        s.root = root.to_hex();
                    }
                    if let Ok(root) = w.node.logical_root() {
                        s.logical_root = root.to_hex();
                    }
                }
            }
        }
        s
    }

    /// Describe one sealed block held by this replica: chain of shard
    /// `shard` (ignored on flat replicas), block id `seq`. `None` when
    /// this node hosts no such block — non-replica roles, a crashed
    /// replica, an out-of-range shard, or a height not (or no longer)
    /// in the chain.
    #[must_use]
    pub fn block_summary(&self, shard: usize, seq: u64) -> Option<BlockSummary> {
        let ClusterNode::Replica(w) = self else {
            return None;
        };
        if w.state == ReplicaState::Down {
            return None;
        }
        let chain = match &w.node {
            NodeKind::Flat(n) => n.chain(),
            NodeKind::Sharded(n) => {
                if shard >= n.shards() {
                    return None;
                }
                n.shard_chain(shard)
            }
        };
        let block = chain
            .blocks_after(BlockId(seq.saturating_sub(1)))
            .ok()?
            .into_iter()
            .find(|b| b.header.id.0 == seq)?;
        Some(BlockSummary {
            id: seq,
            txns: block.txns.len() as u64,
            hash: block.header.hash().to_hex(),
            prev_hash: block.header.prev_hash.to_hex(),
        })
    }
}

// ── Deterministic submission replay ─────────────────────────────────────

/// One entry of the client bank's deterministic submission stream.
pub struct Submission {
    /// Submitting client session.
    pub client: u64,
    /// The session's nonce for this submission.
    pub nonce: u64,
    /// Arrival instant on the simulator's virtual clock.
    pub at_ns: u64,
    /// The generated contract.
    pub contract: Arc<dyn Contract>,
}

/// Replay the client bank's deterministic generation outside the
/// simulator: the first `n` submissions (arrival order, contracts drawn
/// exactly as [`ClientBank`] draws them). A real-transport driver
/// (`harmonyctl submit`) sends precisely this stream, which is what lets
/// a TCP run be compared root-for-root against a simulator run of the
/// same configuration.
pub fn submission_trace(cfg: &ClusterConfig, n: usize) -> Result<Vec<Submission>> {
    let mut stream = OpenLoopClients::new(cfg.open_loop, cfg.seed ^ 0xA11);
    let generator = cfg.workload.generator()?;
    let mut rng = harmony_common::DetRng::new(cfg.seed ^ 0x7C5);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let arrival = stream.next_arrival();
        let contract = generator.next_txn(&mut rng);
        out.push(Submission {
            client: arrival.client,
            nonce: arrival.nonce,
            at_ns: arrival.at_ns,
            contract,
        });
    }
    Ok(out)
}

/// The virtual instant of the `n`-th arrival of the configured open-loop
/// stream (1-based) — the `load_ns` that makes a simulator run submit
/// exactly `n` transactions. Arrival times are strictly increasing, so a
/// run with this `load_ns` fires arrivals 1..=n and no more.
#[must_use]
pub fn load_ns_for_txns(open_loop: OpenLoopConfig, seed: u64, n: usize) -> u64 {
    let mut stream = OpenLoopClients::new(open_loop, seed ^ 0xA11);
    let mut at = 0;
    for _ in 0..n {
        at = stream.next_arrival().at_ns;
    }
    at
}

// ── The harness ─────────────────────────────────────────────────────────

/// The runnable cluster.
pub struct Cluster {
    config: ClusterConfig,
}

impl Cluster {
    /// Build a cluster from its configuration.
    #[must_use]
    pub fn new(config: ClusterConfig) -> Cluster {
        Cluster { config }
    }

    /// Run the scenario to quiescence and report.
    pub fn run(&self) -> Result<ClusterReport> {
        let cfg = &self.config;
        cfg.validate()?;
        // Chaos machinery (watchdog, sync timeouts, net faults) is armed
        // only when faults are scheduled.
        let chaos = !cfg.faults.is_empty();
        let layout = ClusterLayout::of(cfg);
        let orderer_idx = layout.orderer();
        let replica_idx: Vec<usize> = (0..cfg.replicas).map(|r| layout.replica(r)).collect();
        // The observer (run metrics, liveness reference) is never
        // health-faulted; validate() guarantees one exists.
        let observer = cfg
            .faults
            .healthy_replica(cfg.replicas)
            .expect("validated schedule leaves an observer");
        let system = system_label(cfg);
        // One registry for the whole cluster; every node holds interned
        // handles into it, the orderer snapshots it on the metrics timer.
        let registry = Arc::new(Registry::new());
        let deadline_ns = cfg.load_ns + cfg.drain_ns;
        let metrics_every_ns = cfg.metrics_every_ns.max(1);

        // Every node comes from the same factory a real-transport
        // process uses — index order keeps registry interning (and so
        // the pinned timelines) identical to the pre-factory harness.
        let mut nodes: Vec<ClusterNode> = Vec::with_capacity(layout.total());
        for index in 0..layout.total() {
            nodes.push(build_node(cfg, &registry, index)?);
        }

        let mut el = EventLoop::new(nodes, cfg.latency.clone(), cfg.seed);
        let ClusterNode::Client(c) = el.node(0) else {
            unreachable!("node 0 is the client bank");
        };
        let first_at = c.pending.as_ref().map_or(0, |a| a.at_ns);
        el.seed_timer(0, first_at, TIMER_CLIENT);
        el.seed_timer(orderer_idx, metrics_every_ns, TIMER_METRICS);
        if chaos {
            // Lower the link-visible faults onto the net model, with
            // injection counters in the shared registry.
            let mut table = cfg.faults.net_faults(|r| replica_idx[r]);
            let kind = |k: &str| {
                registry.counter_with(
                    "harmony_net_faults_injected_total",
                    "Messages perturbed by the injected link faults.",
                    &[("kind", k)],
                )
            };
            table.set_counters(kind("dropped"), kind("duplicated"), kind("delayed"));
            el.set_faults(table);
            for (r, at_ns, recover_at_ns) in cfg.faults.crash_cycles() {
                el.seed_timer(replica_idx[r], at_ns, TIMER_CRASH);
                el.seed_timer(replica_idx[r], recover_at_ns, TIMER_RECOVER);
            }
            for (r, at_ns) in cfg.faults.poison_events() {
                el.seed_timer(replica_idx[r], at_ns, TIMER_POISON);
            }
            // Liveness watchdog on every replica, staggered so the herd
            // doesn't fire on one instant.
            for (r, &idx) in replica_idx.iter().enumerate() {
                let at = cfg.watchdog_ns.max(1) + (r as u64 + 1) * 1_000;
                el.seed_timer(idx, at, TIMER_WATCHDOG);
            }
        }
        el.run_until(deadline_ns);

        // Final timeline snapshot at the deadline (record dedupes if the
        // last timer already fired exactly there).
        {
            let ClusterNode::Orderer(o) = el.node_mut(orderer_idx) else {
                unreachable!("orderer index");
            };
            let registry = Arc::clone(&o.hub.registry);
            o.hub.timeline.record(deadline_ns, &registry);
        }

        // ── Collect ──
        let mut replicas = Vec::with_capacity(cfg.replicas);
        let mut divergence_alarms = 0;
        let mut quarantines = 0;
        for (r, &idx) in replica_idx.iter().enumerate() {
            let ClusterNode::Replica(w) = el.node(idx) else {
                unreachable!("replica index");
            };
            divergence_alarms += w.node.divergence_alarms();
            quarantines += w.quarantines;
            replicas.push(ReplicaSummary {
                replica: r,
                height: w.node.height(),
                root: w.node.report_root()?,
                logical_root: w.node.logical_root()?,
                oracle_root: w.node.oracle_root()?,
                delivered: w.node.delivery_log().len(),
                alarms: w.node.divergence_alarms(),
                recoveries: w.recoveries,
                quarantines: w.quarantines,
                sync_retries: w.metrics.sync_retries.get(),
                sync_blocks: w.sync_blocks,
                sync_manifest_shards: w.sync_manifest_shards,
                sync_range_shards: w.sync_range_shards,
                sync_manifest_bytes: w.metrics.sync_bytes[0].get(),
                sync_range_bytes: w.metrics.sync_bytes[1].get(),
                table_heads: w.node.logical_table_heads()?,
                reshards: w.node.reshard_epoch(),
                hosted_shards: w.node.hosted_shards(),
            });
        }
        let consistent = replicas
            .windows(2)
            .all(|p| p[0].height == p[1].height && p[0].root == p[1].root)
            && replica_idx.iter().enumerate().all(|(i, &a)| {
                replica_idx.iter().skip(i + 1).all(|&b| {
                    let (ClusterNode::Replica(wa), ClusterNode::Replica(wb)) =
                        (el.node(a), el.node(b))
                    else {
                        unreachable!("replica index");
                    };
                    wa.node.delivery_log().agrees_with(wb.node.delivery_log())
                })
            });

        let ClusterNode::Replica(obs) = el.node(replica_idx[observer]) else {
            unreachable!("observer index");
        };
        let stats = *obs.node.stats();
        let wall_ns = obs.last_apply_ns.max(1);
        let committed = obs.committed_txns;
        let latency_ms = if committed == 0 {
            0.0
        } else {
            obs.committed_weighted_e2e_ns / committed as f64 / 1e6
        };
        let order_latency_ms = if committed == 0 {
            0.0
        } else {
            obs.committed_weighted_order_ns / committed as f64 / 1e6
        };
        let io = obs.node.io_snapshot();
        let metrics = RunMetrics {
            system: Cow::Owned(system),
            throughput_tps: committed as f64 / (wall_ns as f64 / 1e9),
            latency_ms,
            abort_rate: stats.abort_rate(),
            cpu_utilization: (stats.sim_ns_total + stats.commit_ns_total) as f64
                / (cfg.replica.workers as f64 * wall_ns as f64),
            stats,
            disk_reads: io.disk_reads,
            disk_writes: io.disk_writes,
            buffer_hit_rate: {
                let total = io.pool.hits + io.pool.misses;
                if total == 0 {
                    0.0
                } else {
                    io.pool.hits as f64 / total as f64
                }
            },
            wall_ns,
        };

        let ClusterNode::Orderer(o) = el.node(orderer_idx) else {
            unreachable!("orderer index");
        };
        let ClusterNode::Client(c) = el.node(0) else {
            unreachable!("client index");
        };
        Ok(ClusterReport {
            metrics,
            order_latency_ms,
            replicas,
            consistent,
            divergence_alarms,
            mempool: o.mempool.stats(),
            tenant_sealed: o.mempool.tenant_sealed(),
            sealed_blocks: o.sealed_blocks,
            submitted_txns: c.submitted,
            client_retries: c.retries.get(),
            client_retry_drops: c.retry_drops.get(),
            quarantines,
            exposition: registry.render_prometheus(),
            timeline: o.hub.timeline.to_json(),
        })
    }
}
