//! Replica-side metric handle bundles.
//!
//! One [`ReplicaMetrics`] per replica (committed/aborted transaction
//! counters with abort-reason labels, block-cost histogram, and the
//! [`RootTracker`](crate::replica::RootTracker) buffer high-water
//! marks), plus one [`TxnCounters`] per hosted shard on a sharded
//! replica. All handles default to detached cells, so a node built
//! without an observability plane pays the same single relaxed atomic
//! per event and nothing else.

use harmony_core::BlockStats;
use harmony_metrics::{doubling_buckets, Counter, Gauge, Histogram, Registry};

/// Virtual nanoseconds modeled for one state-root fold (computing and
/// gossiping the authenticated root at a gossip height). The cluster
/// charges this on the event loop and the observability plane records it
/// in `harmony_replica_root_fold_ns`; sharing the constant keeps the two
/// in agreement.
pub const ROOT_FOLD_NS: u64 = 100_000;

/// Committed/aborted transaction counters over one label scope (a
/// replica, or one shard of a replica), with abort-reason labels derived
/// from [`BlockStats::ABORT_REASONS`].
#[derive(Clone)]
pub struct TxnCounters {
    /// `..._committed_txns_total`.
    pub committed: Counter,
    /// `..._aborted_txns_total{reason=...}`, indexed like
    /// [`BlockStats::ABORT_REASONS`].
    pub aborted: [Counter; 9],
}

impl TxnCounters {
    /// Register a committed/aborted counter pair under `base_labels`,
    /// with one aborted child per abort reason.
    #[must_use]
    pub fn register(
        registry: &Registry,
        committed_name: &str,
        committed_help: &str,
        aborted_name: &str,
        aborted_help: &str,
        base_labels: &[(&str, &str)],
    ) -> TxnCounters {
        let committed = registry.counter_with(committed_name, committed_help, base_labels);
        let aborted = BlockStats::ABORT_REASONS.map(|reason| {
            let mut labels = base_labels.to_vec();
            labels.push(("reason", reason));
            registry.counter_with(aborted_name, aborted_help, &labels)
        });
        TxnCounters { committed, aborted }
    }

    /// Counters not attached to any registry.
    #[must_use]
    pub fn detached() -> TxnCounters {
        TxnCounters {
            committed: Counter::detached(),
            aborted: BlockStats::ABORT_REASONS.map(|_| Counter::detached()),
        }
    }

    /// Accumulate one block's statistics.
    pub fn observe(&self, stats: &BlockStats) {
        self.committed.add(stats.committed as u64);
        for ((_, n), counter) in stats.abort_counts().iter().zip(&self.aborted) {
            counter.add(*n as u64);
        }
    }
}

/// Metric handles carried by a (flat or sharded) replica node.
#[derive(Clone)]
pub struct ReplicaMetrics {
    /// `harmony_replica_committed_txns_total{replica}` /
    /// `harmony_replica_aborted_txns_total{replica,reason}`.
    pub txns: TxnCounters,
    /// `harmony_replica_block_cost_ns{replica}` — virtual execution cost
    /// charged per applied block.
    pub block_cost_ns: Histogram,
    /// `harmony_replica_root_fold_ns{replica}` — state-root fold cost at
    /// gossip heights.
    pub root_fold_ns: Histogram,
    /// `harmony_replica_root_own_buffer_hwm{replica}` — high-water mark
    /// of the root tracker's own-root window.
    pub root_own_hwm: Gauge,
    /// `harmony_replica_root_peer_buffer_hwm{replica}` — high-water mark
    /// of the root tracker's ahead-of-us peer buffer.
    pub root_peer_hwm: Gauge,
    /// `harmony_replica_reshards_total{replica}` — topology-change
    /// (reshard) blocks applied by this replica.
    pub reshards: Counter,
    /// `harmony_replica_hosted_shards{replica}` — shard count currently
    /// hosted (changes at reshard epoch boundaries; 0 on flat replicas).
    pub hosted_shards: Gauge,
}

impl ReplicaMetrics {
    /// Register the per-replica families for replica `replica`.
    #[must_use]
    pub fn register(registry: &Registry, replica: usize) -> ReplicaMetrics {
        let id = replica.to_string();
        let labels: [(&str, &str); 1] = [("replica", id.as_str())];
        ReplicaMetrics {
            txns: TxnCounters::register(
                registry,
                "harmony_replica_committed_txns_total",
                "Transactions committed by this replica.",
                "harmony_replica_aborted_txns_total",
                "Transactions aborted by this replica, by reason.",
                &labels,
            ),
            block_cost_ns: registry.histogram_with(
                "harmony_replica_block_cost_ns",
                "Virtual execution cost charged per applied block (ns).",
                &doubling_buckets(10_000, 16),
                &labels,
            ),
            root_fold_ns: registry.histogram_with(
                "harmony_replica_root_fold_ns",
                "State-root fold cost at gossip heights (virtual ns).",
                &doubling_buckets(10_000, 8),
                &labels,
            ),
            root_own_hwm: registry.gauge_with(
                "harmony_replica_root_own_buffer_hwm",
                "High-water mark of the root tracker's own-root window.",
                &labels,
            ),
            root_peer_hwm: registry.gauge_with(
                "harmony_replica_root_peer_buffer_hwm",
                "High-water mark of the root tracker's buffered peer-root heights.",
                &labels,
            ),
            reshards: registry.counter_with(
                "harmony_replica_reshards_total",
                "Topology-change (reshard) blocks applied by this replica.",
                &labels,
            ),
            hosted_shards: registry.gauge_with(
                "harmony_replica_hosted_shards",
                "Shard count currently hosted by this replica.",
                &labels,
            ),
        }
    }

    /// Handles not attached to any registry.
    #[must_use]
    pub fn detached() -> ReplicaMetrics {
        ReplicaMetrics {
            txns: TxnCounters::detached(),
            block_cost_ns: Histogram::detached(&doubling_buckets(10_000, 16)),
            root_fold_ns: Histogram::detached(&doubling_buckets(10_000, 8)),
            root_own_hwm: Gauge::detached(),
            root_peer_hwm: Gauge::detached(),
            reshards: Counter::detached(),
            hosted_shards: Gauge::detached(),
        }
    }
}

/// Register the per-shard committed/aborted counter pair for shard
/// `shard` of replica `replica`.
#[must_use]
pub fn shard_txn_counters(registry: &Registry, replica: usize, shard: usize) -> TxnCounters {
    let r = replica.to_string();
    let s = shard.to_string();
    TxnCounters::register(
        registry,
        "harmony_shard_committed_txns_total",
        "Transactions committed per hosted shard.",
        "harmony_shard_aborted_txns_total",
        "Transactions aborted per hosted shard, by reason.",
        &[("replica", r.as_str()), ("shard", s.as_str())],
    )
}
