//! The sharded replica: N-replica replication × M-shard execution in one
//! node — the composition of `harmony-shard`'s deterministic cross-shard
//! commit with `harmony-node`'s ordered delivery and crash recovery.
//!
//! A [`ShardedReplicaNode`] hosts M **per-shard [`OeChain`]s** (any of the
//! five engines in their sharded profile, rebuilt through a sharded
//! `DccFactory` on recovery). A globally ordered block is consumed in four
//! steps:
//!
//! 1. verify its linkage/signature against the replica's **global** hash
//!    chain,
//! 2. plan it through the shared cross-shard planner
//!    ([`harmony_shard::plan_block`]): classify, simulate multi-partition
//!    transactions against the shards' previous-block snapshots, reserve
//!    the survivor set, split survivors into serializable fragments,
//! 3. seal each shard's sub-block on that shard's chain and apply it —
//!    so every shard owns a verifiable hash-chained block log (height ==
//!    global height) with its own checkpoints and recovery sidecar,
//! 4. fold per-shard state roots into the
//!    [`harmony_chain::sharded_state_root`] gossiped for divergence
//!    detection.
//!
//! Because fragments serialize their captured update commands, a shard's
//! sub-block log replays **independently** of the other shards: crash
//! recovery and state-sync never re-run the cross-shard simulation.
//! That is what lets a rejoining replica bring one shard back via a
//! checkpoint-manifest install while another replays a verified block
//! range ([`crate::statesync::apply_sharded_sync`]).
//!
//! The replica's own position on the *global* chain (height + last block
//! hash) lives in memory; after a crash it is re-anchored by the first
//! state-sync response, and ordered delivery stays buffered until the
//! anchor is known.

use std::collections::BTreeMap;
use std::sync::Arc;

use harmony_chain::sync::{StateSnapshot, TableDump};
use harmony_chain::{sharded_state_root, state_root, ChainBlock, ChainConfig, OeChain};
use harmony_common::{BlockId, Error, Result};
use harmony_consensus::net::{DeliveryLog, LatencyModel};
use harmony_core::par::run_indexed;
use harmony_core::BlockStats;
use harmony_crypto::{sha256, Digest, Verifier};
use harmony_shard::{
    logical_state_root, plan_block, prune_to_owned, FragmentCodec, Partitioning, PlannerMetrics,
    ReshardMarker, ShardRouter,
};
use harmony_sim::{makespan, schedule_block, EngineKind};
use harmony_storage::StorageEngine;
use harmony_txn::{ContractCodec, Key, MultiCodec};

use crate::metrics::{ReplicaMetrics, TxnCounters, ROOT_FOLD_NS};
use crate::replica::{Applied, RootTracker};

/// Sharded replica configuration.
#[derive(Clone, Debug)]
pub struct ShardedReplicaConfig {
    /// Per-shard chain template (storage profile, checkpoint period,
    /// crypto, provisioning). Each shard clones it; see
    /// `checkpoint_stagger` for the one knob varied per shard.
    pub chain: ChainConfig,
    /// Which DCC engine executes sub-blocks (sharded profile).
    pub engine: EngineKind,
    /// Worker cores per shard.
    pub workers: usize,
    /// Number of physical shards hosted by this replica.
    pub shards: usize,
    /// Logical partition count (fixed across shard counts, so transaction
    /// classification — and hence every commit decision — is
    /// shard-count-invariant).
    pub partitions: u32,
    /// Partitioning function mapping key bytes to logical partitions.
    /// Must be identical on every replica of a chain. `Prefix` is the
    /// right choice for composite-key workloads (TPC-C): it co-locates
    /// every key of a warehouse, which is what makes declared
    /// NewOrder/Payment footprints single-shard.
    pub partitioning: Partitioning,
    /// Names of tables hosted in full on every shard (read-only
    /// dimension tables, e.g. TPC-C `item`): genesis pruning skips
    /// them, and their keys never force a transaction cross-shard.
    /// Names are resolved against the catalog the workload `setup`
    /// creates; an unknown name is a configuration error.
    pub replicated_tables: Vec<String>,
    /// Shard `s` checkpoints every `chain.checkpoint_every + s * stagger`
    /// blocks. A non-zero stagger spreads checkpoint I/O bursts across
    /// co-hosted shards — and means a crash can strand shards at
    /// *different* recovery points, which the per-shard state-sync
    /// protocol is built to handle (manifest for one shard, block-range
    /// replay for another).
    pub checkpoint_stagger: u64,
    /// Network model for the cross-shard read-fragment exchange.
    pub latency: LatencyModel,
    /// Compute + gossip the sharded state root every this many blocks.
    pub gossip_every: u64,
}

impl Default for ShardedReplicaConfig {
    fn default() -> Self {
        ShardedReplicaConfig {
            chain: ChainConfig::in_memory(),
            engine: EngineKind::Harmony(harmony_core::HarmonyConfig::default()),
            workers: 4,
            shards: 2,
            partitions: 16,
            partitioning: Partitioning::Hash,
            replicated_tables: Vec::new(),
            checkpoint_stagger: 0,
            latency: LatencyModel::lan_1g(),
            gossip_every: 5,
        }
    }
}

impl ShardedReplicaConfig {
    fn shard_chain_config(&self, shard: usize) -> ChainConfig {
        let mut cfg = self.chain.clone();
        // checkpoint_every = 0 means "never checkpoint" on a flat chain;
        // preserve that rather than staggering it into "every block".
        if cfg.checkpoint_every > 0 {
            cfg.checkpoint_every = cfg
                .checkpoint_every
                .saturating_add(shard as u64 * self.checkpoint_stagger);
        }
        cfg
    }
}

/// Open one shard's chain, wired to rebuild the sharded-profile engine on
/// recovery and snapshot install.
fn open_shard_chain(config: &ShardedReplicaConfig, shard: usize) -> Result<OeChain> {
    let kind = config.engine;
    let workers = config.workers;
    OeChain::open_with_factory(
        config.shard_chain_config(shard),
        Arc::new(move |store, next, _summary| kind.build_sharded_at(store, workers, next)),
    )
}

/// Build the shard router from the deployment's partitioning knob and
/// replicated-table names, resolved against the catalog `setup` created
/// on `engine`.
fn build_router(config: &ShardedReplicaConfig, engine: &Arc<StorageEngine>) -> Result<ShardRouter> {
    let catalog = engine.list_tables();
    let mut replicated = Vec::with_capacity(config.replicated_tables.len());
    for name in &config.replicated_tables {
        let id = catalog
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, id)| *id)
            .ok_or_else(|| {
                Error::InvalidArgument(format!(
                    "replicated table {name:?} is not in the workload's catalog"
                ))
            })?;
        replicated.push(id);
    }
    Ok(
        ShardRouter::new(config.partitioning.build(config.partitions), config.shards)
            .with_replicated(replicated),
    )
}

/// Whether the replica knows the hash of its latest global block — the
/// value the next delivery's `prev_hash` must match. Lost on crash (it is
/// in-memory state), restored by the first state-sync response.
enum GlobalAnchor {
    Known(Digest),
    Unknown,
}

/// A replica hosting M shards behind one ordered global block stream.
pub struct ShardedReplicaNode {
    config: ShardedReplicaConfig,
    router: ShardRouter,
    shards: Vec<OeChain>,
    codec: Arc<dyn ContractCodec>,
    verifier: Verifier,
    height: BlockId,
    /// Topology epoch: 0 for the genesis layout, bumped by every applied
    /// reshard marker.
    epoch: u64,
    anchor: GlobalAnchor,
    delivery_log: DeliveryLog,
    pending: BTreeMap<u64, Arc<ChainBlock>>,
    stats: BlockStats,
    roots: RootTracker,
    /// Fault-injection hook: corrupt the next gossiped (and self-tracked)
    /// root without touching shard state. See
    /// [`ShardedReplicaNode::poison_next_gossip`].
    poison_next_gossip: bool,
    metrics: ReplicaMetrics,
    shard_metrics: Vec<TxnCounters>,
    planner_metrics: PlannerMetrics,
}

impl ShardedReplicaNode {
    /// Build a sharded replica: open one chain per shard, run `setup` on
    /// every shard's engine to load genesis state (table ids come out
    /// identical because creation order is identical), prune each shard
    /// down to the rows it owns, and compose the returned workload codec
    /// with the fragment codec into the replica's decoding registry.
    pub fn new(
        config: &ShardedReplicaConfig,
        mut setup: impl FnMut(&Arc<StorageEngine>) -> Result<Arc<dyn ContractCodec>>,
    ) -> Result<ShardedReplicaNode> {
        assert!(config.shards > 0, "need at least one shard");
        let mut shards = Vec::with_capacity(config.shards);
        let mut workload_codec = None;
        let mut router: Option<ShardRouter> = None;
        for s in 0..config.shards {
            let chain = open_shard_chain(config, s)?;
            workload_codec = Some(setup(chain.engine())?);
            // The router needs the catalog `setup` creates (to resolve
            // replicated table names), so it is built after the first
            // shard's genesis load; table ids are identical on every
            // shard because creation order is identical.
            let r = match &router {
                Some(r) => r,
                None => router.insert(build_router(config, chain.engine())?),
            };
            prune_to_owned(chain.engine(), r, s)?;
            shards.push(chain);
        }
        let router = router.expect("at least one shard");
        let codec: Arc<dyn ContractCodec> = Arc::new(MultiCodec::new(vec![
            Arc::new(FragmentCodec),
            workload_codec.expect("at least one shard"),
        ]));
        Ok(ShardedReplicaNode {
            config: config.clone(),
            router,
            shards,
            codec,
            verifier: Verifier::new(&config.chain.provision, config.chain.crypto),
            height: BlockId(0),
            epoch: 0,
            anchor: GlobalAnchor::Known(Digest::ZERO),
            delivery_log: DeliveryLog::default(),
            pending: BTreeMap::new(),
            stats: BlockStats::default(),
            roots: RootTracker::default(),
            poison_next_gossip: false,
            metrics: ReplicaMetrics::detached(),
            shard_metrics: (0..config.shards)
                .map(|_| TxnCounters::detached())
                .collect(),
            planner_metrics: PlannerMetrics::detached(),
        })
    }

    /// Report into the given metric handles: replica-level counters and
    /// histograms, one committed/aborted counter pair per hosted shard
    /// (`per_shard`, in shard order), and the planner's classification
    /// metrics. The defaults are detached handles.
    pub fn set_metrics(
        &mut self,
        metrics: ReplicaMetrics,
        per_shard: Vec<TxnCounters>,
        planner: PlannerMetrics,
    ) {
        assert_eq!(
            per_shard.len(),
            self.shards.len(),
            "one counter pair per shard"
        );
        self.roots
            .set_metrics(metrics.root_own_hwm.clone(), metrics.root_peer_hwm.clone());
        metrics.hosted_shards.set(self.shards.len() as i64);
        self.metrics = metrics;
        self.shard_metrics = per_shard;
        self.planner_metrics = planner;
    }

    /// Number of shards hosted.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The router placing transactions onto shards.
    #[must_use]
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// One shard's chain (inspection / sync serving).
    #[must_use]
    pub fn shard_chain(&self, shard: usize) -> &OeChain {
        &self.shards[shard]
    }

    /// The decoding registry (fragments + workload contracts).
    #[must_use]
    pub fn codec(&self) -> &Arc<dyn ContractCodec> {
        &self.codec
    }

    /// Global height (every shard chain sits at this height, except
    /// mid-recovery).
    #[must_use]
    pub fn height(&self) -> BlockId {
        self.height
    }

    /// Per-shard heights — unequal only after a crash recovery that lost
    /// some shards' checkpoints (state-sync then evens them out).
    #[must_use]
    pub fn shard_heights(&self) -> Vec<BlockId> {
        self.shards.iter().map(OeChain::height).collect()
    }

    /// The verified global delivery log.
    #[must_use]
    pub fn delivery_log(&self) -> &DeliveryLog {
        &self.delivery_log
    }

    /// Aggregated execution counters.
    #[must_use]
    pub fn stats(&self) -> &BlockStats {
        &self.stats
    }

    /// Blocks buffered ahead of the next applicable height.
    #[must_use]
    pub fn pending_gap(&self) -> usize {
        self.pending.len()
    }

    /// Root-gossip comparisons that disagreed.
    #[must_use]
    pub fn divergence_alarms(&self) -> u64 {
        self.roots.alarms()
    }

    /// Per-shard state roots and their Merkle fold — what this replica
    /// gossips and what a sharded block header would carry. O(M) over the
    /// shards' cached commitment roots once warm; when any shard still
    /// needs its one-time commitment build (first gossip, post-recovery),
    /// the builds run in parallel across shards.
    pub fn sharded_root(&self) -> Result<Digest> {
        let shard_roots: Vec<Digest> = if self.shards.iter().all(OeChain::root_is_cached) {
            self.shards
                .iter()
                .map(OeChain::state_root)
                .collect::<Result<_>>()?
        } else {
            run_indexed(self.shards.len(), self.config.workers.max(1), |s| {
                self.shards[s].state_root()
            })
            .into_iter()
            .collect::<Result<_>>()?
        };
        Ok(sharded_state_root(&shard_roots))
    }

    /// Audit-oracle counterpart of [`Self::sharded_root`]: rebuilds every
    /// shard's root from a full scan. Must always equal the cached fold.
    pub fn sharded_root_oracle(&self) -> Result<Digest> {
        let shard_roots: Vec<Digest> = self
            .shards
            .iter()
            .map(|c| state_root(c.engine()))
            .collect::<Result<_>>()?;
        Ok(sharded_state_root(&shard_roots))
    }

    /// Shard-count-invariant digest of the logical database (the union of
    /// the disjoint shard partitions) — comparable across deployments with
    /// different M.
    pub fn logical_state_root(&self) -> Result<Digest> {
        logical_state_root(self.shards.iter().map(OeChain::engine))
    }

    /// Per-table digests of the logical database — the table-granular
    /// decomposition of [`Self::logical_state_root`], equally
    /// shard-count-invariant. The resharding equivalence tests compare
    /// these so a divergence names the table that drifted.
    pub fn logical_table_heads(&self) -> Result<Vec<(String, Digest)>> {
        harmony_shard::logical_table_heads(self.shards.iter().map(OeChain::engine))
    }

    /// Receive one globally ordered sealed block. Buffers it if it is
    /// ahead of the next height, then applies every consecutively
    /// available block. Returns the blocks applied by this call.
    pub fn deliver(&mut self, block: Arc<ChainBlock>) -> Result<Vec<Applied>> {
        let seq = block.header.id.0;
        if seq > self.height.0 {
            self.pending.entry(seq).or_insert(block);
        }
        self.drain_pending()
    }

    /// Apply every buffered block that now connects to the global tip.
    /// No-op while the global anchor is unknown (post-crash, pre-sync):
    /// linkage of a delivered block cannot be verified without it.
    pub fn drain_pending(&mut self) -> Result<Vec<Applied>> {
        let mut applied = Vec::new();
        let tip = self.height.0;
        self.pending.retain(|s, _| *s > tip);
        if matches!(self.anchor, GlobalAnchor::Unknown) {
            return Ok(applied);
        }
        loop {
            let next = self.height.0 + 1;
            let Some(block) = self.pending.remove(&next) else {
                break;
            };
            applied.push(self.apply(&block)?);
        }
        Ok(applied)
    }

    fn apply(&mut self, block: &ChainBlock) -> Result<Applied> {
        let id = block.header.id;
        let GlobalAnchor::Known(prev) = &self.anchor else {
            return Err(Error::InvalidArgument(
                "cannot apply without a global anchor".into(),
            ));
        };
        block.verify(prev, &self.verifier)?;

        // A topology-change block carries a single reshard marker instead
        // of transactions; it must be recognized before contract decoding
        // (the marker is not a contract payload).
        if block.txns.len() == 1 {
            if let Some(marker) = ReshardMarker::decode(&block.txns[0]) {
                return self.apply_reshard(block, marker);
            }
        }

        // Decode the global payloads, plan the block across shards, then
        // seal + apply one sub-block per shard through its own chain (the
        // sub-block hits the shard's logical block log before execution,
        // exactly like a flat replica's blocks).
        let txns: Result<Vec<_>> = block.txns.iter().map(|b| self.codec.decode(b)).collect();
        let txns = txns?;
        let stores: Vec<_> = self
            .shards
            .iter()
            .map(|c| Arc::clone(c.snapshots()))
            .collect();
        let mut plan = plan_block(
            &self.router,
            &stores,
            self.height,
            &txns,
            self.config.workers,
            &self.config.latency,
        );
        self.planner_metrics.observe(&plan);
        let log_sync_ns = self.config.chain.storage.log_sync_ns;
        let mut shard_results = Vec::with_capacity(self.shards.len());
        let mut shard_stage_ns = 0u64;
        for (s, chain) in self.shards.iter_mut().enumerate() {
            let sub = std::mem::take(&mut plan.shard_txns[s]);
            // submit_block seals (one codec encode, into the shard's
            // logical log) and executes the already-decoded contracts —
            // no per-shard re-decode on the hot path. Decode fidelity is
            // separately pinned by the recovery/state-sync tests, which
            // replay the logged bytes through the codec.
            let (_sealed, result) = chain.submit_block(sub, self.codec.as_ref())?;
            let commit_serial = chain.dcc().commit_is_serial();
            shard_stage_ns = shard_stage_ns.max(
                schedule_block(&result, self.config.workers, commit_serial).total_ns()
                    + log_sync_ns,
            );
            self.shard_metrics[s].observe(&result.stats);
            shard_results.push(result);
        }
        let outcomes = plan.fold_outcomes(&shard_results)?;
        let block_stats = plan.accumulate_stats(&outcomes, &shard_results);
        self.stats.absorb(&block_stats);
        self.metrics.txns.observe(&block_stats);

        // Virtual-time charge: the cross stage (fragment exchange + the
        // multi-partition re-simulation) runs in lockstep, then every
        // shard executes its sub-block concurrently — the block costs the
        // slowest shard. The sharded profile has no inter-block pipeline,
        // so blocks are charged back-to-back.
        let cost_ns =
            plan.exchange_ns + makespan(&plan.cross_sim_ns, self.config.workers) + shard_stage_ns;
        self.metrics.block_cost_ns.observe(cost_ns);

        self.height = id;
        self.anchor = GlobalAnchor::Known(block.header.hash());
        self.delivery_log.observe(id.0, block.header.hash());

        let committed = outcomes.iter().filter(|o| o.is_committed()).count();
        let gossip_root = if id.0.is_multiple_of(self.config.gossip_every.max(1)) {
            let mut root = self.sharded_root()?;
            if self.poison_next_gossip {
                root.0[0] ^= 0xFF;
                self.poison_next_gossip = false;
            }
            self.roots.note_own(id.0, root);
            self.metrics.root_fold_ns.observe(ROOT_FOLD_NS);
            Some(root)
        } else {
            None
        };
        Ok(Applied {
            block: id,
            committed,
            cost_ns,
            gossip_root,
        })
    }

    /// Apply a topology-change block: re-host the logical database on
    /// `marker.new_shards` shards, atomically, at this block's height.
    ///
    /// Because `apply` is strictly sequential in block order, every
    /// in-flight sub-block is already drained when the marker lands. The
    /// handover reuses the state-sync primitives end to end: each old
    /// shard exports its checkpoint manifest ([`OeChain::export_snapshot`]
    /// — the same manifest `serve_sharded_sync` ships), a split serves
    /// each new shard its partition slice of those manifests, a merge
    /// first re-verifies the folded sub-block logs (verified range
    /// replay, [`OeChain::verify_chain`]) and then folds their slices,
    /// and each new shard chain comes up via
    /// [`OeChain::install_snapshot`]. The router swap
    /// ([`ShardRouter::resharded`]) is the epoch boundary: partition→key
    /// classification is untouched, so every commit/abort decision stays
    /// shard-count-invariant and the logical state root is bit-identical
    /// to a fixed-count run.
    fn apply_reshard(&mut self, block: &ChainBlock, marker: ReshardMarker) -> Result<Applied> {
        let id = block.header.id;
        let hash = block.header.hash();
        let new_count = marker.new_shards as usize;
        if new_count == 0 {
            return Err(Error::InvalidArgument(
                "reshard marker with zero shards".into(),
            ));
        }
        if new_count > self.config.partitions as usize {
            return Err(Error::InvalidArgument(format!(
                "reshard to {new_count} shards exceeds the {} logical partitions",
                self.config.partitions
            )));
        }
        let old_count = self.shards.len();
        if new_count < old_count {
            // Merge direction: the surviving shards absorb foreign rows,
            // so the logs being folded are re-verified first (hash
            // linkage + deterministic replay of each sub-block log).
            for chain in &self.shards {
                chain.verify_chain()?;
            }
        }
        let exports = self
            .shards
            .iter()
            .map(OeChain::export_snapshot)
            .collect::<Result<Vec<_>>>()?;
        let new_router = self.router.resharded(new_count);
        // Catalog order is identical on every shard (creation order is
        // identical), so table ids resolve against shard 0.
        let catalog = self.shards[0].engine().list_tables();

        let mut new_shards = Vec::with_capacity(new_count);
        for s in 0..new_count {
            let snapshot = slice_manifest(
                &exports,
                &catalog,
                &new_router,
                s,
                id,
                reshard_shard_anchor(&hash, marker.epoch, marker.new_shards, s),
            );
            let mut chain = open_shard_chain(&self.config, s)?;
            chain.install_snapshot(&snapshot)?;
            new_shards.push(chain);
        }

        self.shards = new_shards;
        self.router = new_router;
        self.config.shards = new_count;
        self.epoch = marker.epoch;
        self.shard_metrics
            .resize_with(new_count, TxnCounters::detached);
        self.height = id;
        self.anchor = GlobalAnchor::Known(hash);
        self.delivery_log.observe(id.0, hash);
        self.metrics.reshards.inc();
        self.metrics.hosted_shards.set(new_count as i64);

        // The handover is charged like a sync serve/install round over
        // every shard manifest that moved.
        let cost_ns = RESHARD_HANDOVER_NS.saturating_mul((old_count + new_count) as u64);
        self.metrics.block_cost_ns.observe(cost_ns);
        let gossip_root = if id.0.is_multiple_of(self.config.gossip_every.max(1)) {
            let mut root = self.sharded_root()?;
            if self.poison_next_gossip {
                root.0[0] ^= 0xFF;
                self.poison_next_gossip = false;
            }
            self.roots.note_own(id.0, root);
            self.metrics.root_fold_ns.observe(ROOT_FOLD_NS);
            Some(root)
        } else {
            None
        };
        Ok(Applied {
            block: id,
            committed: 0,
            cost_ns,
            gossip_root,
        })
    }

    /// Current topology epoch (0 until the first reshard marker applies).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Adopt a sync peer's topology epoch. A replica that crashed across
    /// one or more reshard boundaries never replays those markers (the
    /// manifest path skips them), so the sync reply carries the
    /// authoritative epoch. Monotonic: a stale reply from a peer we
    /// raced past can never rewind the local epoch.
    pub fn adopt_epoch(&mut self, epoch: u64) {
        self.epoch = self.epoch.max(epoch);
    }

    /// Adopt a serving peer's shard count ahead of applying its sync
    /// response — the requester sits on the far side of a reshard
    /// boundary (it crashed or partitioned across the epoch swap), so its
    /// local layout is obsolete. Like [`Self::wipe_for_resync`], but onto
    /// `new_count` fresh shard chains with a recounted router; the
    /// response's full manifests then rebuild every shard.
    pub fn reshape_for_sync(&mut self, new_count: usize) -> Result<()> {
        if new_count == 0 {
            return Err(Error::InvalidArgument(
                "cannot reshape to zero shards".into(),
            ));
        }
        let passed = self.height.0;
        self.router = self.router.resharded(new_count);
        self.config.shards = new_count;
        self.shards = (0..new_count)
            .map(|s| open_shard_chain(&self.config, s))
            .collect::<Result<Vec<_>>>()?;
        self.shard_metrics
            .resize_with(new_count, TxnCounters::detached);
        self.metrics.hosted_shards.set(new_count as i64);
        self.height = BlockId(0);
        self.anchor = GlobalAnchor::Unknown;
        self.roots.reset_for_resync(passed);
        Ok(())
    }

    /// Receive a peer's gossiped sharded state root.
    pub fn on_peer_root(&mut self, height: u64, root: Digest) {
        self.roots.note_peer(height, root);
    }

    /// Highest gossip height seen from any peer — evidence the cluster
    /// is ahead of this node.
    #[must_use]
    pub fn peer_frontier(&self) -> u64 {
        self.roots.peer_frontier()
    }

    /// The lowest gossip height where at least `quorum` root comparisons
    /// disagreed with this replica's own root, if any — the signal that
    /// *this* replica has diverged and should quarantine + re-sync.
    #[must_use]
    pub fn quarantine_signal(&self, quorum: u32) -> Option<u64> {
        self.roots.quarantine_signal(quorum)
    }

    /// Fault-injection hook: flip a byte in the next gossiped (and
    /// self-tracked) sharded root. Shard state stays intact.
    pub fn poison_next_gossip(&mut self) {
        self.poison_next_gossip = true;
    }

    /// Drop all local shard state ahead of a quarantine re-sync: reopen
    /// every shard chain fresh (height 0, empty tables), drop the global
    /// anchor, and clear comparison evidence. Buffered deliveries are
    /// kept — they drain once `finish_sync` re-anchors the replica. After
    /// this, a state-sync request advertises height 0 for every shard,
    /// so the serving peer answers with full manifests.
    pub fn wipe_for_resync(&mut self) -> Result<()> {
        let passed = self.height.0;
        for s in 0..self.shards.len() {
            self.shards[s] = open_shard_chain(&self.config, s)?;
        }
        self.height = BlockId(0);
        self.anchor = GlobalAnchor::Unknown;
        self.roots.reset_for_resync(passed);
        Ok(())
    }

    /// Crash: lose the delivery buffer and the in-memory global position
    /// (shards' durable state is recovered separately).
    pub fn crash(&mut self) {
        self.pending.clear();
        self.anchor = GlobalAnchor::Unknown;
    }

    /// Local recovery: every shard chain reloads its last checkpoint and
    /// deterministically replays its own sub-block log. A shard that never
    /// checkpointed honestly lands at height 0 with an empty catalog
    /// (ready for a manifest install); the others replay back to the
    /// height they had applied. The replica's global height drops to the
    /// laggiest shard; the global anchor stays unknown until state-sync
    /// re-establishes it.
    pub fn recover_local(&mut self) -> Result<()> {
        let codec = Arc::clone(&self.codec);
        for chain in &mut self.shards {
            chain.crash_and_recover(codec.as_ref())?;
        }
        self.height = self
            .shards
            .iter()
            .map(OeChain::height)
            .min()
            .expect("at least one shard");
        self.anchor = GlobalAnchor::Unknown;
        Ok(())
    }

    /// Catch one shard up from a peer's verified sub-block range
    /// (state-sync, per-shard phase 2). Returns the blocks applied.
    pub fn catch_up_shard_from_blocks(
        &mut self,
        shard: usize,
        blocks: &[ChainBlock],
    ) -> Result<usize> {
        let codec = Arc::clone(&self.codec);
        self.shards[shard].replay_range(blocks, codec.as_ref())
    }

    /// Bootstrap one shard from a peer's checkpoint manifest, then replay
    /// the accompanying sub-block tail (per-shard phases 1 + 2). A shard
    /// holding any local state is wiped first — when a peer answers with a
    /// manifest, the manifest is the complete truth for that shard's
    /// partition.
    pub fn bootstrap_shard_from_snapshot(
        &mut self,
        shard: usize,
        snapshot: &harmony_chain::sync::StateSnapshot,
        blocks: &[ChainBlock],
    ) -> Result<usize> {
        if snapshot.height > BlockId(0) && self.shards[shard].height() >= snapshot.height {
            // Deliveries that drained while the response was in flight
            // already carried this shard past the manifest point: its
            // verified chain state is at least as new, so installing the
            // older manifest would move backwards.
            return Ok(0);
        }
        let fresh = self.shards[shard].height() == BlockId(0)
            && self.shards[shard].engine().list_tables().is_empty();
        if !fresh {
            self.shards[shard] = open_shard_chain(&self.config, shard)?;
        }
        let before = self.shards[shard].height().0;
        self.shards[shard].install_snapshot(snapshot)?;
        let replayed = self.catch_up_shard_from_blocks(shard, blocks)?;
        Ok((self.shards[shard].height().0 - before) as usize + replayed)
    }

    /// Finish a state-sync round: every shard must have landed on one
    /// common height, at least the peer's served height. At exactly the
    /// served height, the replica re-anchors on the peer's global block
    /// hash; past it, the replica kept applying anchored deliveries while
    /// the response was in flight and its own (newer) anchor stands.
    /// Buffered deliveries beyond the tip drain immediately.
    pub fn finish_sync(&mut self, height: BlockId, global_hash: Digest) -> Result<Vec<Applied>> {
        let landed = self.shards[0].height();
        for (s, chain) in self.shards.iter().enumerate() {
            if chain.height() != landed {
                return Err(Error::Corruption(format!(
                    "shard {s} ended sync at {} (shard 0 at {landed})",
                    chain.height()
                )));
            }
        }
        if landed < height {
            return Err(Error::Corruption(format!(
                "sync landed at {landed}, short of the served height {height}"
            )));
        }
        if landed == height {
            self.anchor = GlobalAnchor::Known(global_hash);
        } else if matches!(self.anchor, GlobalAnchor::Unknown) {
            return Err(Error::Corruption(format!(
                "shards at {landed} past the served height {height} with no anchor"
            )));
        }
        self.height = landed;
        self.drain_pending()
    }

    /// The global block hash this replica is anchored at, if known —
    /// served to syncing peers so they can re-anchor.
    #[must_use]
    pub fn global_hash(&self) -> Option<Digest> {
        match &self.anchor {
            GlobalAnchor::Known(h) => Some(*h),
            GlobalAnchor::Unknown => None,
        }
    }
}

/// Virtual nanoseconds charged per shard manifest moved by a reshard
/// handover (export + slice + install, same order of magnitude as a sync
/// serve/replay round).
const RESHARD_HANDOVER_NS: u64 = 250_000;

/// Deterministic sub-chain continuation hash for new shard `shard` after
/// a reshard at the global block with hash `global`. Every replica
/// derives the same value, so the resharded sub-chains stay hash-chain
/// compatible across replicas (range sync keeps working past the epoch
/// boundary).
fn reshard_shard_anchor(global: &Digest, epoch: u64, new_shards: u32, shard: usize) -> Digest {
    let mut buf = Vec::with_capacity(4 + 32 + 8 + 4 + 8);
    buf.extend_from_slice(b"HRS@");
    buf.extend_from_slice(&global.0);
    buf.extend_from_slice(&epoch.to_le_bytes());
    buf.extend_from_slice(&new_shards.to_le_bytes());
    buf.extend_from_slice(&(shard as u64).to_le_bytes());
    sha256(&buf)
}

/// Slice the old shards' exported checkpoint manifests down to the
/// partition set new shard `shard` owns under `router` — the reshard
/// handover's per-shard manifest. Tables the router replicates are
/// carried in full (every old shard holds an identical copy; shard 0's
/// is taken). Partitioned tables take the union of every old shard's
/// owned rows, re-merged in key order; the recovery sidecar (undo
/// images) is sliced by the same ownership rule so the installed shard
/// recovers and re-simulates exactly like a shard that always existed.
fn slice_manifest(
    exports: &[StateSnapshot],
    catalog: &[(String, harmony_common::ids::TableId)],
    router: &ShardRouter,
    shard: usize,
    height: BlockId,
    last_hash: Digest,
) -> StateSnapshot {
    let mut tables = Vec::with_capacity(catalog.len());
    for (ti, (name, table)) in catalog.iter().enumerate() {
        let rows = if router.is_replicated(*table) {
            exports[0].tables[ti].rows.clone()
        } else {
            let mut rows: Vec<(Vec<u8>, Vec<u8>)> = exports
                .iter()
                .flat_map(|e| e.tables[ti].rows.iter())
                .filter(|(k, _)| router.shard_of_key(&Key::new(*table, k.clone())) == shard)
                .cloned()
                .collect();
            // Old shards hold disjoint partitions; a simple re-sort
            // restores global key order.
            rows.sort_unstable_by(|a, b| a.0.cmp(&b.0));
            rows
        };
        tables.push(TableDump {
            name: name.clone(),
            rows,
        });
    }
    // Merge the undo sidecars block-by-block under the same ownership
    // rule (replicated-table images ride to every shard).
    let mut undo: BTreeMap<u64, Vec<_>> = BTreeMap::new();
    for (ei, export) in exports.iter().enumerate() {
        for (block, entries) in &export.undo {
            let own = undo.entry(block.0).or_default();
            for entry in entries {
                // Replicated-table images are identical on every old
                // shard — take shard 0's copy once.
                let keep = if router.is_replicated(entry.0.table()) {
                    ei == 0
                } else {
                    router.shard_of_key(&entry.0) == shard
                };
                if keep {
                    own.push(entry.clone());
                }
            }
        }
    }
    StateSnapshot {
        height,
        last_hash,
        tables,
        undo: undo.into_iter().map(|(b, e)| (BlockId(b), e)).collect(),
        summary: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_crypto::KeyPair;
    use harmony_txn::encode_contract;
    use harmony_workloads::{Smallbank, SmallbankCodec, SmallbankConfig, Workload};

    fn config(engine: EngineKind, shards: usize) -> ShardedReplicaConfig {
        ShardedReplicaConfig {
            chain: ChainConfig {
                checkpoint_every: 3,
                ..ChainConfig::in_memory()
            },
            engine,
            workers: 2,
            shards,
            partitions: 8,
            partitioning: Partitioning::default(),
            replicated_tables: Vec::new(),
            checkpoint_stagger: 0,
            latency: LatencyModel::lan_1g(),
            gossip_every: 2,
        }
    }

    fn smallbank_cfg() -> SmallbankConfig {
        SmallbankConfig {
            accounts: 120,
            theta: 0.5,
            partitions: 8,
            multi_partition_ratio: 0.4,
        }
    }

    fn replica(engine: EngineKind, shards: usize) -> ShardedReplicaNode {
        ShardedReplicaNode::new(&config(engine, shards), |eng| {
            let mut w = Smallbank::new(smallbank_cfg());
            w.setup(eng)?;
            let (checking, savings) = w.tables();
            Ok(Arc::new(SmallbankCodec { checking, savings }))
        })
        .unwrap()
    }

    /// Seal a deterministic global block stream the way the orderer does.
    fn sealed_stream(n: usize, block_txns: usize) -> Vec<Arc<ChainBlock>> {
        let chain_cfg = ChainConfig::in_memory();
        let keypair = KeyPair::derive(&chain_cfg.provision, chain_cfg.orderer_id, chain_cfg.crypto);
        let mut w = Smallbank::new(smallbank_cfg());
        let scratch = StorageEngine::open(&harmony_storage::StorageConfig::memory()).unwrap();
        w.setup(&scratch).unwrap();
        let mut rng = harmony_common::DetRng::new(0x5A);
        let mut prev = Digest::ZERO;
        let mut blocks = Vec::with_capacity(n);
        for b in 0..n {
            let txns = w.next_block(&mut rng, block_txns);
            let encoded: Vec<Vec<u8>> = txns.iter().map(|t| encode_contract(t.as_ref())).collect();
            let sealed = ChainBlock::seal(BlockId(b as u64 + 1), prev, encoded, &keypair);
            prev = sealed.header.hash();
            blocks.push(Arc::new(sealed));
        }
        blocks
    }

    #[test]
    fn shards_advance_in_lockstep_and_roots_agree_across_replicas() {
        let blocks = sealed_stream(6, 10);
        let run = |shards: usize| {
            let mut r = replica(EngineKind::Rbc, shards);
            for b in &blocks {
                r.deliver(Arc::clone(b)).unwrap();
            }
            assert_eq!(r.height(), BlockId(6));
            assert!(r.shard_heights().iter().all(|h| *h == BlockId(6)));
            assert!(r.delivery_log().is_gap_free());
            (r.sharded_root().unwrap(), r.logical_state_root().unwrap())
        };
        let (top_a, logical_a) = run(4);
        let (top_b, logical_b) = run(4);
        assert_eq!(top_a, top_b, "replicas diverged");
        assert_eq!(logical_a, logical_b);
        // Different shard counts change the physical fold but not the
        // logical database.
        let (top_one, logical_one) = run(1);
        assert_ne!(top_a, top_one, "physical fold commits to the layout");
        assert_eq!(logical_a, logical_one, "logical state is M-invariant");
    }

    #[test]
    fn out_of_order_delivery_buffers_and_drains() {
        let blocks = sealed_stream(4, 8);
        let mut r = replica(EngineKind::Rbc, 2);
        assert!(r.deliver(Arc::clone(&blocks[2])).unwrap().is_empty());
        assert!(r.deliver(Arc::clone(&blocks[1])).unwrap().is_empty());
        assert_eq!(r.pending_gap(), 2);
        let applied = r.deliver(Arc::clone(&blocks[0])).unwrap();
        assert_eq!(
            applied.iter().map(|a| a.block.0).collect::<Vec<_>>(),
            [1, 2, 3]
        );
        r.deliver(Arc::clone(&blocks[3])).unwrap();
        assert_eq!(r.height(), BlockId(4));
    }

    #[test]
    fn crash_recovery_replays_to_identical_root() {
        let blocks = sealed_stream(7, 10);
        for engine in [
            EngineKind::Harmony(harmony_core::HarmonyConfig::default()),
            EngineKind::Aria,
            EngineKind::Fabric,
        ] {
            let mut reference = replica(engine, 3);
            let mut crasher = replica(engine, 3);
            for b in &blocks {
                reference.deliver(Arc::clone(b)).unwrap();
                crasher.deliver(Arc::clone(b)).unwrap();
            }
            let root = reference.sharded_root().unwrap();
            crasher.crash();
            crasher.recover_local().unwrap();
            // Every shard checkpointed (period 3, height 7): full local
            // replay, no sync needed.
            assert_eq!(crasher.height(), BlockId(7));
            assert_eq!(crasher.sharded_root().unwrap(), root, "{}", engine.name());
            // Re-anchor and keep going.
            let anchor = blocks[6].header.hash();
            assert!(crasher.finish_sync(BlockId(7), anchor).unwrap().is_empty());
        }
    }

    #[test]
    fn staggered_checkpoints_strand_shards_at_different_heights() {
        let blocks = sealed_stream(5, 10);
        let mut cfg = config(EngineKind::Rbc, 2);
        cfg.chain.checkpoint_every = 2;
        cfg.checkpoint_stagger = 100; // shard 1 never checkpoints in 5 blocks
        let mut r = ShardedReplicaNode::new(&cfg, |eng| {
            let mut w = Smallbank::new(smallbank_cfg());
            w.setup(eng)?;
            let (checking, savings) = w.tables();
            Ok(Arc::new(SmallbankCodec { checking, savings }))
        })
        .unwrap();
        for b in &blocks {
            r.deliver(Arc::clone(b)).unwrap();
        }
        r.crash();
        r.recover_local().unwrap();
        let heights = r.shard_heights();
        assert_eq!(heights[0], BlockId(5), "checkpointed shard replays fully");
        assert_eq!(heights[1], BlockId(0), "uncheckpointed shard lost all");
        assert_eq!(r.height(), BlockId(0), "global position is the laggard");
        // Deliveries stay buffered without an anchor.
        assert!(r.deliver(Arc::clone(&blocks[0])).unwrap().is_empty());
    }
}
