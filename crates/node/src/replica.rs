//! A replica: the execution half of the Order-Execute loop.
//!
//! A [`ReplicaNode`] owns an [`OeChain`] (storage engine, snapshot store,
//! and any [`harmony_sim::EngineKind`] DCC engine) and consumes **sealed
//! blocks** from an ordering service. Delivery is *ordered*: blocks
//! arriving ahead of the next height are buffered and applied once the
//! gap closes, every applied block is appended to a verified
//! [`DeliveryLog`] (sequence + header hash), and the replica records its
//! state root every `gossip_every` blocks for divergence detection
//! against peers' gossiped roots.
//!
//! Execution cost is charged in virtual time exactly like the experiment
//! driver: each block's [`BlockSchedule`] extends a pipeline-aware
//! makespan, so a saturated replica's throughput matches the analytic
//! DB-layer model it replaces.

use std::collections::BTreeMap;
use std::sync::Arc;

use harmony_chain::sync::StateSnapshot;
use harmony_chain::{ChainBlock, ChainConfig, OeChain};
use harmony_common::{BlockId, Result};
use harmony_consensus::net::DeliveryLog;
use harmony_core::BlockStats;
use harmony_crypto::Digest;
use harmony_metrics::Gauge;
use harmony_sim::{pipeline_total_ns, schedule_block, BlockSchedule, EngineKind};
use harmony_storage::StorageEngine;
use harmony_txn::ContractCodec;

use crate::metrics::{ReplicaMetrics, ROOT_FOLD_NS};

/// Replica configuration.
#[derive(Clone, Debug)]
pub struct ReplicaConfig {
    /// Chain parameters (storage profile, checkpoint period, crypto).
    pub chain: ChainConfig,
    /// Which DCC engine executes blocks.
    pub engine: EngineKind,
    /// Worker cores for block execution.
    pub workers: usize,
    /// Compute + gossip the state root every this many blocks.
    pub gossip_every: u64,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            chain: ChainConfig::in_memory(),
            engine: EngineKind::Harmony(harmony_core::HarmonyConfig::default()),
            workers: 4,
            gossip_every: 5,
        }
    }
}

/// Open an [`OeChain`] wired to rebuild `config.engine` on recovery.
fn open_chain(config: &ReplicaConfig) -> Result<OeChain> {
    let kind = config.engine;
    let workers = config.workers;
    OeChain::open_with_factory(
        config.chain.clone(),
        Arc::new(move |store, next, summary| kind.build_at(store, workers, next, summary)),
    )
}

/// One block applied by [`ReplicaNode::deliver`].
#[derive(Clone, Debug)]
pub struct Applied {
    /// The applied block.
    pub block: BlockId,
    /// Transactions committed in it.
    pub committed: usize,
    /// Virtual nanoseconds of execution this block added to the replica's
    /// pipeline (what the event loop charges as CPU time).
    pub cost_ns: u64,
    /// State root computed at this height (gossip heights only).
    pub gossip_root: Option<Digest>,
}

/// Gossiped-root bookkeeping shared by the flat and sharded replicas:
/// remembers this node's own roots per gossip height, holds peer roots
/// that arrive early, and counts disagreements.
///
/// Memory is bounded: advancing past a gossip height drops every peer
/// root buffered at or below it, the ahead-buffer holds at most
/// [`RootTracker::AHEAD_CAP`] future heights (farthest dropped first),
/// and own roots are kept for the trailing [`RootTracker::OWN_KEEP`]
/// gossip heights only. A long-running replica therefore holds O(1)
/// tracker state regardless of chain length or how far ahead peers rush.
#[derive(Default)]
pub(crate) struct RootTracker {
    own: BTreeMap<u64, Digest>,
    peers: BTreeMap<u64, Vec<Digest>>,
    /// Disagreeing comparisons per gossip height (pruned with `own`) —
    /// the evidence base for the self-quarantine quorum check.
    mismatched: BTreeMap<u64, u32>,
    /// Highest gossip height seen from any peer — evidence that the
    /// cluster is ahead of this node (drives the liveness watchdog).
    peer_frontier: u64,
    /// Highest height this node has gossiped at — anything at or below it
    /// has been compared (or missed for good) and is stale.
    passed: u64,
    alarms: u64,
    /// High-water mark of the own-root window (gauge, detached unless
    /// wired to a registry).
    own_hwm: Gauge,
    /// High-water mark of the buffered ahead-of-us peer heights.
    peer_hwm: Gauge,
}

impl RootTracker {
    /// Own roots retained, in trailing gossip heights.
    const OWN_KEEP: usize = 32;
    /// Future gossip heights buffered from peers.
    const AHEAD_CAP: usize = 64;

    /// Record this node's root at `height`, comparing against any peer
    /// roots that arrived before the node got there. Prunes everything
    /// the comparison point leaves behind.
    pub(crate) fn note_own(&mut self, height: u64, root: Digest) {
        if let Some(peers) = self.peers.remove(&height) {
            let disagreed = peers.iter().filter(|p| **p != root).count() as u64;
            if disagreed > 0 {
                self.alarms += disagreed;
                *self.mismatched.entry(height).or_insert(0) += disagreed as u32;
            }
        }
        // Buffered peer roots below the compared height can never be
        // compared anymore — drop them.
        self.peers = self.peers.split_off(&(height + 1));
        self.passed = self.passed.max(height);
        self.own.insert(height, root);
        while self.own.len() > Self::OWN_KEEP {
            let (h, _) = self.own.pop_first().expect("len checked");
            self.mismatched.remove(&h);
        }
        self.own_hwm.set_max(self.own.len() as i64);
    }

    /// Report buffer high-water marks through the given gauges.
    pub(crate) fn set_metrics(&mut self, own_hwm: Gauge, peer_hwm: Gauge) {
        self.own_hwm = own_hwm;
        self.peer_hwm = peer_hwm;
    }

    /// Record a peer's gossiped root at `height` — compared now if this
    /// node already has its own root there, parked until it does if it is
    /// ahead, dropped if the node has already gossiped past it.
    pub(crate) fn note_peer(&mut self, height: u64, root: Digest) {
        self.peer_frontier = self.peer_frontier.max(height);
        if let Some(own) = self.own.get(&height) {
            if *own != root {
                self.alarms += 1;
                *self.mismatched.entry(height).or_insert(0) += 1;
            }
            return;
        }
        if height <= self.passed {
            return; // stale: this node already gossiped past it
        }
        self.peers.entry(height).or_default().push(root);
        while self.peers.len() > Self::AHEAD_CAP {
            self.peers.pop_last(); // farthest-future height loses first
        }
        self.peer_hwm.set_max(self.peers.len() as i64);
    }

    /// Comparisons that disagreed so far.
    pub(crate) fn alarms(&self) -> u64 {
        self.alarms
    }

    /// Highest gossip height seen from any peer.
    pub(crate) fn peer_frontier(&self) -> u64 {
        self.peer_frontier
    }

    /// The lowest gossip height where at least `quorum` comparisons
    /// disagreed with this node's own root — the self-quarantine
    /// trigger: when a quorum of the cluster disputes our root, *we* are
    /// the diverged one.
    pub(crate) fn quarantine_signal(&self, quorum: u32) -> Option<u64> {
        self.mismatched
            .iter()
            .find(|(_, n)| **n >= quorum)
            .map(|(h, _)| *h)
    }

    /// Forget all comparison state ahead of a full re-sync: own roots,
    /// buffered peers, and mismatch evidence. Gossip at or below
    /// `passed` is stale afterwards. Cumulative `alarms` survive — they
    /// are the report's forensic record.
    pub(crate) fn reset_for_resync(&mut self, passed: u64) {
        self.own.clear();
        self.peers.clear();
        self.mismatched.clear();
        self.passed = self.passed.max(passed);
    }

    /// Buffered future gossip heights (bound checked by tests).
    #[cfg(test)]
    pub(crate) fn buffered_heights(&self) -> usize {
        self.peers.len()
    }

    /// Retained own gossip heights (bound checked by tests).
    #[cfg(test)]
    pub(crate) fn own_heights(&self) -> usize {
        self.own.len()
    }
}

/// A replica node: ordered delivery over an [`OeChain`].
pub struct ReplicaNode {
    chain: OeChain,
    config: ReplicaConfig,
    codec: Arc<dyn ContractCodec>,
    workers: usize,
    gossip_every: u64,
    log_sync_ns: u64,
    delivery_log: DeliveryLog,
    pending: BTreeMap<u64, Arc<ChainBlock>>,
    schedules: Vec<BlockSchedule>,
    charged_ns: u64,
    stats: BlockStats,
    roots: RootTracker,
    /// Fault-injection hook: corrupt the next gossiped (and self-tracked)
    /// root so the divergence/quarantine machinery fires without actually
    /// corrupting chain state.
    poison_next_gossip: bool,
    metrics: ReplicaMetrics,
}

impl ReplicaNode {
    /// Build a replica: open the chain with a factory for `config.engine`,
    /// run `setup` to load genesis state, and obtain the contract codec
    /// used to decode delivered payloads.
    pub fn new(
        config: &ReplicaConfig,
        setup: impl FnOnce(&Arc<StorageEngine>) -> Result<Arc<dyn ContractCodec>>,
    ) -> Result<ReplicaNode> {
        let chain = open_chain(config)?;
        let codec = setup(chain.engine())?;
        let log_sync_ns = config.chain.storage.log_sync_ns;
        Ok(ReplicaNode {
            chain,
            config: config.clone(),
            codec,
            workers: config.workers,
            gossip_every: config.gossip_every.max(1),
            log_sync_ns,
            delivery_log: DeliveryLog::default(),
            pending: BTreeMap::new(),
            schedules: Vec::new(),
            charged_ns: 0,
            stats: BlockStats::default(),
            roots: RootTracker::default(),
            poison_next_gossip: false,
            metrics: ReplicaMetrics::detached(),
        })
    }

    /// Report into the given metric handles (the default handles are
    /// detached). Also wires the root tracker's buffer gauges.
    pub fn set_metrics(&mut self, metrics: ReplicaMetrics) {
        self.roots
            .set_metrics(metrics.root_own_hwm.clone(), metrics.root_peer_hwm.clone());
        self.metrics = metrics;
    }

    /// The underlying chain.
    #[must_use]
    pub fn chain(&self) -> &OeChain {
        &self.chain
    }

    /// The contract codec (decoding registry).
    #[must_use]
    pub fn codec(&self) -> &Arc<dyn ContractCodec> {
        &self.codec
    }

    /// Current chain height.
    #[must_use]
    pub fn height(&self) -> BlockId {
        self.chain.height()
    }

    /// Full-state root at the current height.
    pub fn state_root(&self) -> Result<Digest> {
        self.chain.state_root()
    }

    /// The verified delivery log.
    #[must_use]
    pub fn delivery_log(&self) -> &DeliveryLog {
        &self.delivery_log
    }

    /// Aggregated execution counters.
    #[must_use]
    pub fn stats(&self) -> &BlockStats {
        &self.stats
    }

    /// Blocks buffered ahead of the next applicable height.
    #[must_use]
    pub fn pending_gap(&self) -> usize {
        self.pending.len()
    }

    /// Root-gossip comparisons that disagreed.
    #[must_use]
    pub fn divergence_alarms(&self) -> u64 {
        self.roots.alarms()
    }

    /// Receive one sealed block from the ordering service. Buffers it if
    /// it is ahead of the next height, then applies every consecutively
    /// available block. Returns the blocks applied by this call.
    pub fn deliver(&mut self, block: Arc<ChainBlock>) -> Result<Vec<Applied>> {
        let seq = block.header.id.0;
        if seq > self.height().0 {
            self.pending.entry(seq).or_insert(block);
        }
        self.drain_pending()
    }

    /// Apply every buffered block that now connects to the chain tip.
    pub fn drain_pending(&mut self) -> Result<Vec<Applied>> {
        let mut applied = Vec::new();
        let tip = self.chain.height().0;
        self.pending.retain(|s, _| *s > tip);
        loop {
            let next = self.chain.height().0 + 1;
            let Some(block) = self.pending.remove(&next) else {
                break;
            };
            applied.push(self.apply(&block)?);
        }
        Ok(applied)
    }

    fn apply(&mut self, block: &ChainBlock) -> Result<Applied> {
        let result = self.chain.apply_sealed_block(block, self.codec.as_ref())?;
        self.delivery_log
            .observe(block.header.id.0, block.header.hash());
        self.stats.absorb(&result.stats);
        self.metrics.txns.observe(&result.stats);

        // Virtual-time charge: extend the pipeline-aware makespan exactly
        // as the experiment driver schedules blocks (group-commit log sync
        // included), and charge only the increment.
        let mut sched = schedule_block(&result, self.workers, self.chain.dcc().commit_is_serial());
        sched.commit_ns += self.log_sync_ns;
        sched.commit_work_ns += self.log_sync_ns;
        sched.work_ns += self.log_sync_ns;
        self.schedules.push(sched);
        let total = pipeline_total_ns(
            &self.schedules,
            self.chain.dcc().pipeline_depth(),
            self.workers,
        );
        let cost_ns = total.saturating_sub(self.charged_ns);
        self.charged_ns = total;
        self.metrics.block_cost_ns.observe(cost_ns);

        let gossip_root = if block.header.id.0.is_multiple_of(self.gossip_every) {
            let mut root = self.chain.state_root()?;
            if self.poison_next_gossip {
                // Corrupt the *observed* root (gossip + own tracking), not
                // the chain: peers will dispute it, and so will this node's
                // own tracker once their true roots arrive.
                root.0[0] ^= 0xFF;
                self.poison_next_gossip = false;
            }
            self.roots.note_own(block.header.id.0, root);
            self.metrics.root_fold_ns.observe(ROOT_FOLD_NS);
            Some(root)
        } else {
            None
        };
        Ok(Applied {
            block: block.header.id,
            committed: result.stats.committed,
            cost_ns,
            gossip_root,
        })
    }

    /// Receive a peer's gossiped state root. Compares against this
    /// replica's own root at that height (now, or when it gets there).
    pub fn on_peer_root(&mut self, height: u64, root: Digest) {
        self.roots.note_peer(height, root);
    }

    /// Highest gossip height seen from any peer — evidence the cluster
    /// is ahead of this node.
    #[must_use]
    pub fn peer_frontier(&self) -> u64 {
        self.roots.peer_frontier()
    }

    /// The lowest gossip height where at least `quorum` root comparisons
    /// disagreed with this replica's own root, if any — the signal that
    /// *this* replica has diverged and should quarantine + re-sync.
    #[must_use]
    pub fn quarantine_signal(&self, quorum: u32) -> Option<u64> {
        self.roots.quarantine_signal(quorum)
    }

    /// Fault-injection hook: flip a byte in the next gossiped (and
    /// self-tracked) root. Chain state stays intact, so this exercises
    /// divergence detection and quarantine recovery end to end.
    pub fn poison_next_gossip(&mut self) {
        self.poison_next_gossip = true;
    }

    /// Drop all local chain state ahead of a quarantine re-sync: reopen a
    /// fresh chain (height 0, empty tables) and clear comparison
    /// evidence, but keep buffered deliveries — they re-apply once the
    /// peer's snapshot lands. After this, a state-sync request advertises
    /// height 0, so the serving peer answers with a full manifest.
    pub fn wipe_for_resync(&mut self) -> Result<()> {
        let passed = self.roots.passed;
        self.chain = open_chain(&self.config)?;
        self.schedules.clear();
        self.charged_ns = 0;
        self.roots.reset_for_resync(passed);
        Ok(())
    }

    /// Crash: lose the delivery buffer and in-memory execution state (the
    /// chain's durable state is recovered separately).
    pub fn crash(&mut self) {
        self.pending.clear();
        self.schedules.clear();
        self.charged_ns = 0;
    }

    /// Local recovery: reload the last checkpoint and deterministically
    /// replay this replica's own block log.
    pub fn recover_local(&mut self) -> Result<()> {
        let codec = Arc::clone(&self.codec);
        self.chain.crash_and_recover(codec.as_ref())
    }

    /// Catch up from a peer's verified block range (state-sync phase 2).
    /// Returns the number of blocks applied, counting any buffered
    /// deliveries that became applicable.
    pub fn catch_up_from_blocks(&mut self, blocks: &[ChainBlock]) -> Result<usize> {
        let codec = Arc::clone(&self.codec);
        let mut applied = self.chain.replay_range(blocks, codec.as_ref())?;
        for b in blocks {
            if b.header.id <= self.height() {
                self.delivery_log.observe(b.header.id.0, b.header.hash());
                self.pending.remove(&b.header.id.0);
            }
        }
        applied += self.drain_pending()?.len();
        Ok(applied)
    }

    /// Bootstrap this replica from a peer's checkpoint manifest, then
    /// replay the accompanying block range (state-sync phases 1 + 2).
    /// A replica that already holds any local state — chain history or
    /// pre-loaded genesis tables — is wiped first: when a peer answers
    /// with a manifest, the manifest is the complete truth, and merging
    /// it over local rows would keep rows the peer has since deleted.
    pub fn bootstrap_from_snapshot(
        &mut self,
        snapshot: &StateSnapshot,
        blocks: &[ChainBlock],
    ) -> Result<usize> {
        if self.chain.height() != BlockId(0) || !self.chain.engine().list_tables().is_empty() {
            self.chain = open_chain(&self.config)?;
            self.schedules.clear();
            self.charged_ns = 0;
        }
        self.chain.install_snapshot(snapshot)?;
        self.catch_up_from_blocks(blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_workloads::{Smallbank, SmallbankCodec, SmallbankConfig, Workload};

    fn smallbank_replica(engine: EngineKind) -> ReplicaNode {
        let config = ReplicaConfig {
            chain: ChainConfig {
                checkpoint_every: 4,
                ..ChainConfig::in_memory()
            },
            engine,
            workers: 2,
            gossip_every: 2,
        };
        ReplicaNode::new(&config, |eng| {
            let mut w = Smallbank::new(SmallbankConfig {
                accounts: 100,
                theta: 0.5,
                ..SmallbankConfig::default()
            });
            w.setup(eng)?;
            let (checking, savings) = w.tables();
            Ok(Arc::new(SmallbankCodec { checking, savings }))
        })
        .unwrap()
    }

    fn sealed_stream(n: usize) -> (Vec<Arc<ChainBlock>>, Digest) {
        // A reference chain produces the sealed blocks an orderer would.
        let mut sealer = smallbank_replica(EngineKind::Rbc);
        let mut w = Smallbank::new(SmallbankConfig {
            accounts: 100,
            theta: 0.5,
            ..SmallbankConfig::default()
        });
        let scratch = StorageEngine::open(&harmony_storage::StorageConfig::memory()).unwrap();
        w.setup(&scratch).unwrap();
        let mut rng = harmony_common::DetRng::new(11);
        let mut blocks = Vec::new();
        for _ in 0..n {
            let txns = w.next_block(&mut rng, 8);
            let sealed = sealer.chain.seal_block(&txns, sealer.codec.as_ref());
            sealer
                .chain
                .apply_sealed_block(&sealed, sealer.codec.as_ref())
                .unwrap();
            blocks.push(Arc::new(sealed));
        }
        (blocks, sealer.state_root().unwrap())
    }

    #[test]
    fn out_of_order_delivery_is_buffered_and_applied_in_order() {
        let (blocks, reference_root) = sealed_stream(5);
        let mut r = smallbank_replica(EngineKind::Rbc);
        // Deliver 2, 3 first: buffered, nothing applies.
        assert!(r.deliver(Arc::clone(&blocks[1])).unwrap().is_empty());
        assert!(r.deliver(Arc::clone(&blocks[2])).unwrap().is_empty());
        assert_eq!(r.pending_gap(), 2);
        // Block 1 closes the gap: all three apply, in order.
        let applied = r.deliver(Arc::clone(&blocks[0])).unwrap();
        assert_eq!(
            applied.iter().map(|a| a.block.0).collect::<Vec<_>>(),
            [1, 2, 3]
        );
        for b in &blocks[3..] {
            r.deliver(Arc::clone(b)).unwrap();
        }
        assert_eq!(r.height(), BlockId(5));
        assert_eq!(r.state_root().unwrap(), reference_root);
        assert!(r.delivery_log().is_gap_free());
        assert_eq!(r.delivery_log().len(), 5);
    }

    #[test]
    fn duplicate_delivery_is_idempotent() {
        let (blocks, _) = sealed_stream(3);
        let mut r = smallbank_replica(EngineKind::Rbc);
        r.deliver(Arc::clone(&blocks[0])).unwrap();
        assert!(r.deliver(Arc::clone(&blocks[0])).unwrap().is_empty());
        assert_eq!(r.height(), BlockId(1));
        assert_eq!(r.delivery_log().mismatches(), 0);
    }

    #[test]
    fn gossip_roots_and_divergence_detection() {
        let (blocks, _) = sealed_stream(4);
        let mut r = smallbank_replica(EngineKind::Rbc);
        let mut gossiped = Vec::new();
        for b in &blocks {
            for a in r.deliver(Arc::clone(b)).unwrap() {
                if let Some(root) = a.gossip_root {
                    gossiped.push((a.block.0, root));
                }
            }
        }
        assert_eq!(
            gossiped.iter().map(|g| g.0).collect::<Vec<_>>(),
            [2, 4],
            "gossip_every=2"
        );
        // Agreeing peer roots raise no alarm; a diverging one does — in
        // both arrival orders (before and after the local root exists).
        r.on_peer_root(2, gossiped[0].1);
        assert_eq!(r.divergence_alarms(), 0);
        r.on_peer_root(4, Digest([0xAB; 32]));
        assert_eq!(r.divergence_alarms(), 1);
        let mut early = smallbank_replica(EngineKind::Rbc);
        early.on_peer_root(2, Digest([0xCD; 32]));
        for b in &blocks[..2] {
            early.deliver(Arc::clone(b)).unwrap();
        }
        assert_eq!(early.divergence_alarms(), 1);
    }

    #[test]
    fn root_tracker_memory_is_bounded() {
        let mut t = RootTracker::default();
        let root = Digest([1; 32]);
        // Peers rushing arbitrarily far ahead cannot grow the buffer past
        // the cap; the farthest heights are the ones shed.
        for h in 1..=10_000u64 {
            t.note_peer(h, root);
        }
        assert_eq!(t.buffered_heights(), RootTracker::AHEAD_CAP);
        // Advancing compares the matching height and drops everything at
        // or below it.
        t.note_own(5, root);
        assert_eq!(t.alarms(), 0);
        assert!(t.buffered_heights() < RootTracker::AHEAD_CAP);
        t.note_own(RootTracker::AHEAD_CAP as u64 + 10, root);
        assert_eq!(t.buffered_heights(), 0);
        // Own roots are a sliding window however long the chain runs.
        for h in 100..10_000u64 {
            t.note_own(h, root);
        }
        assert_eq!(t.own_heights(), RootTracker::OWN_KEEP);
        // Stale peer gossip (at/below the compared frontier) is dropped,
        // not buffered forever.
        t.note_peer(50, Digest([9; 32]));
        assert_eq!(t.buffered_heights(), 0);
        assert_eq!(t.alarms(), 0);
        // Comparisons still work at retained heights — in both orders.
        t.note_peer(9_999, Digest([9; 32]));
        assert_eq!(t.alarms(), 1);
        t.note_peer(10_005, Digest([9; 32]));
        t.note_own(10_005, root);
        assert_eq!(t.alarms(), 2);
    }

    #[test]
    fn root_tracker_reports_buffer_high_water_marks() {
        let mut t = RootTracker::default();
        let own_hwm = Gauge::detached();
        let peer_hwm = Gauge::detached();
        t.set_metrics(own_hwm.clone(), peer_hwm.clone());
        let root = Digest([1; 32]);
        // Peers rushing far ahead: the gauge records the peak, and the
        // peak never exceeds the cap the buffer enforces.
        for h in 1..=1_000u64 {
            t.note_peer(h, root);
        }
        assert_eq!(peer_hwm.get(), RootTracker::AHEAD_CAP as i64);
        // Draining the buffer does not lower a high-water mark.
        t.note_own(2_000, root);
        assert_eq!(t.buffered_heights(), 0);
        assert_eq!(peer_hwm.get(), RootTracker::AHEAD_CAP as i64);
        // Own-root window: the mark tracks the retained window size.
        for h in 2_001..2_200u64 {
            t.note_own(h, root);
        }
        assert_eq!(own_hwm.get(), RootTracker::OWN_KEEP as i64);
    }

    #[test]
    fn catch_up_closes_the_gap_under_buffered_tail() {
        let (blocks, reference_root) = sealed_stream(6);
        let mut r = smallbank_replica(EngineKind::Rbc);
        // Replica saw only block 1, then went down; blocks 5–6 arrive
        // while it syncs.
        r.deliver(Arc::clone(&blocks[0])).unwrap();
        r.deliver(Arc::clone(&blocks[4])).unwrap();
        r.deliver(Arc::clone(&blocks[5])).unwrap();
        assert_eq!(r.height(), BlockId(1));
        // Peer serves blocks 2–4; the buffered tail drains automatically.
        let applied = r
            .catch_up_from_blocks(
                &blocks[1..4]
                    .iter()
                    .map(|b| (**b).clone())
                    .collect::<Vec<_>>(),
            )
            .unwrap();
        assert_eq!(applied, 5);
        assert_eq!(r.height(), BlockId(6));
        assert_eq!(r.state_root().unwrap(), reference_root);
        assert!(r.delivery_log().is_gap_free());
    }

    #[test]
    fn every_engine_reaches_the_same_root_as_its_sealer() {
        // The sealed stream came from an RBC node; all-commit workloads
        // aside, each engine must at least be self-consistent: two
        // replicas of the same kind fed the same blocks agree.
        for kind in [
            EngineKind::Harmony(harmony_core::HarmonyConfig::default()),
            EngineKind::Aria,
            EngineKind::Rbc,
            EngineKind::Fabric,
            EngineKind::FastFabric,
        ] {
            let (blocks, _) = sealed_stream(4);
            let run = |blocks: &[Arc<ChainBlock>]| {
                let mut r = smallbank_replica(kind);
                for b in blocks {
                    r.deliver(Arc::clone(b)).unwrap();
                }
                r.state_root().unwrap()
            };
            assert_eq!(
                run(&blocks),
                run(&blocks),
                "{} replicas diverged",
                kind.name()
            );
        }
    }
}
