//! The chaos plane: typed, schedulable fault injection for the cluster
//! harness.
//!
//! A [`FaultSchedule`] generalizes the original single crash/rejoin plan
//! into a list of typed [`FaultEvent`]s: multiple crash cycles on
//! multiple replicas, partition windows, per-link drop / duplication /
//! delay faults lowered onto the deterministic network model
//! ([`harmony_consensus::net::NetFaults`]), sync-serve refusals, and
//! root poisoning (which exercises the divergence-quarantine path
//! without corrupting state).
//!
//! **Scoping invariant:** every event targets *replica* indices, and the
//! lowered network faults only ever touch replica-side links (ordering
//! service → replica delivery, replica ↔ replica gossip and state-sync).
//! Client→orderer and intra-ordering traffic is never faulted, so under
//! Kafka ordering the sealed block stream of a faulted run is
//! bit-identical to the no-fault run — which is exactly what lets the
//! chaos tests assert recovered state roots against a no-fault
//! reference.

use std::collections::BTreeSet;

use harmony_common::{Error, Result};
use harmony_consensus::net::{FaultEffect, FaultScope, LinkFault, NetFaults};

/// One scheduled fault. All node references are **replica indices**
/// (`0..replicas`), translated to event-loop node ids by the cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// The replica crashes at `at_ns` (loses in-memory state), recovers
    /// locally at `recover_at_ns`, and state-syncs the rest of the way.
    Crash {
        /// Target replica.
        replica: usize,
        /// Crash time, virtual ns.
        at_ns: u64,
        /// Recovery time, virtual ns (must be after `at_ns`).
        recover_at_ns: u64,
    },
    /// The replica is cut off from *all* traffic (deliveries, gossip,
    /// sync — in and out) during the window. The replica itself keeps
    /// running; it heals via state-sync after the window closes.
    Partition {
        /// Target replica.
        replica: usize,
        /// Window start (inclusive), virtual ns.
        from_ns: u64,
        /// Window end (exclusive), virtual ns.
        until_ns: u64,
    },
    /// Messages on the replica→replica link `from → to` are dropped with
    /// probability `per_mille`/1000 during the window.
    LinkDrop {
        /// Sending replica.
        from: usize,
        /// Receiving replica.
        to: usize,
        /// Window start (inclusive), virtual ns.
        from_ns: u64,
        /// Window end (exclusive), virtual ns.
        until_ns: u64,
        /// Drop probability in per-mille (0..=1000).
        per_mille: u16,
    },
    /// Messages on the replica→replica link `from → to` are additionally
    /// delivered a second time `echo_delay_ns` later with probability
    /// `per_mille`/1000 during the window.
    LinkDuplicate {
        /// Sending replica.
        from: usize,
        /// Receiving replica.
        to: usize,
        /// Window start (inclusive), virtual ns.
        from_ns: u64,
        /// Window end (exclusive), virtual ns.
        until_ns: u64,
        /// Duplication probability in per-mille (0..=1000).
        per_mille: u16,
        /// Extra delay of the duplicate copy.
        echo_delay_ns: u64,
    },
    /// All traffic to/from the replica gains `extra_ns` of one-way
    /// latency during the window (a congestion spike).
    DelaySpike {
        /// Target replica.
        replica: usize,
        /// Window start (inclusive), virtual ns.
        from_ns: u64,
        /// Window end (exclusive), virtual ns.
        until_ns: u64,
        /// Extra one-way delay in ns.
        extra_ns: u64,
    },
    /// The replica answers state-sync requests with an explicit refusal
    /// during the window (an overloaded or snapshotting peer shedding
    /// serve work) — requesters fail over to their next candidate.
    SyncRefusal {
        /// Refusing replica.
        replica: usize,
        /// Window start (inclusive), virtual ns.
        from_ns: u64,
        /// Window end (exclusive), virtual ns.
        until_ns: u64,
    },
    /// At `at_ns`, the replica corrupts its next gossiped (and
    /// self-tracked) state root. Peers raise divergence alarms; the
    /// poisoned replica sees a quorum dispute its root, self-quarantines
    /// and re-syncs. Chain state is never actually corrupted.
    PoisonRoot {
        /// Target replica.
        replica: usize,
        /// Poison injection time, virtual ns.
        at_ns: u64,
    },
}

impl FaultEvent {
    /// The replica whose *health* this event perturbs (link faults
    /// perturb a link, not a replica's health — they return `None`).
    fn health_target(&self) -> Option<usize> {
        match *self {
            FaultEvent::Crash { replica, .. }
            | FaultEvent::Partition { replica, .. }
            | FaultEvent::PoisonRoot { replica, .. } => Some(replica),
            FaultEvent::LinkDrop { .. }
            | FaultEvent::LinkDuplicate { .. }
            | FaultEvent::DelaySpike { .. }
            | FaultEvent::SyncRefusal { .. } => None,
        }
    }
}

/// A validated, ordered set of fault events for one cluster run.
#[derive(Clone, Debug, Default)]
pub struct FaultSchedule {
    /// The scheduled events (order is irrelevant; times are absolute).
    pub events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// A schedule over the given events.
    #[must_use]
    pub fn new(events: Vec<FaultEvent>) -> FaultSchedule {
        FaultSchedule { events }
    }

    /// Whether no faults are scheduled. An empty schedule arms none of
    /// the chaos machinery (no watchdog timers, no net-fault table), so
    /// no-fault runs stay bit-identical to the pre-chaos harness.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Check the schedule against a cluster of `replicas` replicas:
    /// indices in range, windows well-formed, per-replica crash cycles
    /// non-overlapping, probabilities ≤ 1000‰, and at least one replica
    /// whose health is never perturbed (the observer every liveness
    /// assertion and sync failover chain needs).
    pub fn validate(&self, replicas: usize) -> Result<()> {
        let bad = |msg: String| Err(Error::InvalidArgument(msg));
        let check_replica = |r: usize, what: &str| -> Result<()> {
            if r >= replicas {
                return bad(format!("{what} targets replica {r} of {replicas}"));
            }
            Ok(())
        };
        let check_window = |from: u64, until: u64, what: &str| -> Result<()> {
            if from >= until {
                return bad(format!("{what} window [{from}, {until}) is empty"));
            }
            Ok(())
        };
        let check_per_mille = |p: u16, what: &str| -> Result<()> {
            if p > 1000 {
                return bad(format!("{what} probability {p}‰ exceeds 1000‰"));
            }
            Ok(())
        };
        let mut crashes: Vec<(usize, u64, u64)> = Vec::new();
        for ev in &self.events {
            match *ev {
                FaultEvent::Crash {
                    replica,
                    at_ns,
                    recover_at_ns,
                } => {
                    check_replica(replica, "crash")?;
                    check_window(at_ns, recover_at_ns, "crash")?;
                    crashes.push((replica, at_ns, recover_at_ns));
                }
                FaultEvent::Partition {
                    replica,
                    from_ns,
                    until_ns,
                } => {
                    check_replica(replica, "partition")?;
                    check_window(from_ns, until_ns, "partition")?;
                }
                FaultEvent::LinkDrop {
                    from,
                    to,
                    from_ns,
                    until_ns,
                    per_mille,
                } => {
                    check_replica(from, "link-drop")?;
                    check_replica(to, "link-drop")?;
                    if from == to {
                        return bad(format!("link-drop from replica {from} to itself"));
                    }
                    check_window(from_ns, until_ns, "link-drop")?;
                    check_per_mille(per_mille, "link-drop")?;
                }
                FaultEvent::LinkDuplicate {
                    from,
                    to,
                    from_ns,
                    until_ns,
                    per_mille,
                    ..
                } => {
                    check_replica(from, "link-duplicate")?;
                    check_replica(to, "link-duplicate")?;
                    if from == to {
                        return bad(format!("link-duplicate from replica {from} to itself"));
                    }
                    check_window(from_ns, until_ns, "link-duplicate")?;
                    check_per_mille(per_mille, "link-duplicate")?;
                }
                FaultEvent::DelaySpike {
                    replica,
                    from_ns,
                    until_ns,
                    ..
                } => {
                    check_replica(replica, "delay-spike")?;
                    check_window(from_ns, until_ns, "delay-spike")?;
                }
                FaultEvent::SyncRefusal {
                    replica,
                    from_ns,
                    until_ns,
                } => {
                    check_replica(replica, "sync-refusal")?;
                    check_window(from_ns, until_ns, "sync-refusal")?;
                }
                FaultEvent::PoisonRoot { replica, .. } => {
                    check_replica(replica, "poison-root")?;
                }
            }
        }
        crashes.sort_unstable();
        for pair in crashes.windows(2) {
            let (r0, _, until0) = pair[0];
            let (r1, at1, _) = pair[1];
            if r0 == r1 && at1 < until0 {
                return bad(format!(
                    "replica {r0} has overlapping crash cycles (next crash at {at1} before recovery at {until0})"
                ));
            }
        }
        if !self.is_empty() && self.healthy_replica(replicas).is_none() {
            return bad(format!(
                "no observer: every one of the {replicas} replicas is crash/partition/poison-targeted"
            ));
        }
        Ok(())
    }

    /// The first replica whose health no event perturbs — the observer
    /// used for run metrics and the liveness assertion.
    #[must_use]
    pub fn healthy_replica(&self, replicas: usize) -> Option<usize> {
        let unhealthy: BTreeSet<usize> = self
            .events
            .iter()
            .filter_map(FaultEvent::health_target)
            .collect();
        (0..replicas).find(|r| !unhealthy.contains(r))
    }

    /// Crash cycles in the schedule, as `(replica, at_ns, recover_at_ns)`.
    #[must_use]
    pub fn crash_cycles(&self) -> Vec<(usize, u64, u64)> {
        self.events
            .iter()
            .filter_map(|ev| match *ev {
                FaultEvent::Crash {
                    replica,
                    at_ns,
                    recover_at_ns,
                } => Some((replica, at_ns, recover_at_ns)),
                _ => None,
            })
            .collect()
    }

    /// Sync-refusal windows for one replica, as `(from_ns, until_ns)`.
    #[must_use]
    pub fn refusal_windows(&self, replica: usize) -> Vec<(u64, u64)> {
        self.events
            .iter()
            .filter_map(|ev| match *ev {
                FaultEvent::SyncRefusal {
                    replica: r,
                    from_ns,
                    until_ns,
                } if r == replica => Some((from_ns, until_ns)),
                _ => None,
            })
            .collect()
    }

    /// Root-poison injections, as `(replica, at_ns)`.
    #[must_use]
    pub fn poison_events(&self) -> Vec<(usize, u64)> {
        self.events
            .iter()
            .filter_map(|ev| match *ev {
                FaultEvent::PoisonRoot { replica, at_ns } => Some((replica, at_ns)),
                _ => None,
            })
            .collect()
    }

    /// Lower the network-visible events (partitions, link drops/dups,
    /// delay spikes) onto the event-loop fault table. `node_of` maps a
    /// replica index to its event-loop node id.
    #[must_use]
    pub fn net_faults(&self, node_of: impl Fn(usize) -> usize) -> NetFaults {
        let mut table = NetFaults::default();
        for ev in &self.events {
            match *ev {
                FaultEvent::Partition {
                    replica,
                    from_ns,
                    until_ns,
                } => table.push(LinkFault {
                    from_ns,
                    until_ns,
                    scope: FaultScope::Node(node_of(replica)),
                    effect: FaultEffect::Drop { per_mille: 1000 },
                }),
                FaultEvent::LinkDrop {
                    from,
                    to,
                    from_ns,
                    until_ns,
                    per_mille,
                } => table.push(LinkFault {
                    from_ns,
                    until_ns,
                    scope: FaultScope::Directed {
                        from: node_of(from),
                        to: node_of(to),
                    },
                    effect: FaultEffect::Drop { per_mille },
                }),
                FaultEvent::LinkDuplicate {
                    from,
                    to,
                    from_ns,
                    until_ns,
                    per_mille,
                    echo_delay_ns,
                } => table.push(LinkFault {
                    from_ns,
                    until_ns,
                    scope: FaultScope::Directed {
                        from: node_of(from),
                        to: node_of(to),
                    },
                    effect: FaultEffect::Duplicate {
                        per_mille,
                        echo_delay_ns,
                    },
                }),
                FaultEvent::DelaySpike {
                    replica,
                    from_ns,
                    until_ns,
                    extra_ns,
                } => table.push(LinkFault {
                    from_ns,
                    until_ns,
                    scope: FaultScope::Node(node_of(replica)),
                    effect: FaultEffect::Delay { extra_ns },
                }),
                FaultEvent::Crash { .. }
                | FaultEvent::SyncRefusal { .. }
                | FaultEvent::PoisonRoot { .. } => {}
            }
        }
        table
    }
}

/// One scheduled topology change: when the ordering service is about to
/// seal block `height`, it instead seals a reshard marker block carrying
/// `new_shards`, and the workload block that would have landed there is
/// pushed one height later. Heights are **block ids**, not times, so a
/// schedule means the same thing under the simulator and the TCP
/// runtime.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReshardAt {
    /// Block height at which the marker is sealed (must be ≥ 1; height
    /// 0 is the genesis anchor).
    pub height: u64,
    /// Shard count in force from this marker on.
    pub new_shards: u32,
}

/// A validated, height-ordered list of topology changes for one cluster
/// run. Like [`FaultSchedule`], an empty schedule arms nothing: runs
/// without reshard events are bit-identical to a build without the
/// feature.
#[derive(Clone, Debug, Default)]
pub struct ReshardSchedule {
    /// The scheduled topology changes.
    pub events: Vec<ReshardAt>,
}

impl ReshardSchedule {
    /// A schedule over the given events.
    #[must_use]
    pub fn new(events: Vec<ReshardAt>) -> ReshardSchedule {
        ReshardSchedule { events }
    }

    /// Whether no topology changes are scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Check the schedule: heights positive and strictly increasing (two
    /// markers cannot share a block id), shard counts positive and at
    /// most `max_shards` (the logical partition count — a shard cannot
    /// host less than one partition).
    pub fn validate(&self, max_shards: usize) -> Result<()> {
        let bad = |msg: String| Err(Error::InvalidArgument(msg));
        let mut prev = 0u64;
        for ev in &self.events {
            if ev.height == 0 {
                return bad("reshard at height 0 (genesis)".to_string());
            }
            if ev.height <= prev {
                return bad(format!(
                    "reshard heights must be strictly increasing ({} after {prev})",
                    ev.height
                ));
            }
            prev = ev.height;
            if ev.new_shards == 0 {
                return bad(format!("reshard at height {} to zero shards", ev.height));
            }
            if ev.new_shards as usize > max_shards {
                return bad(format!(
                    "reshard at height {} to {} shards exceeds the {max_shards} logical partitions",
                    ev.height, ev.new_shards
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reshard_schedule_validation() {
        ReshardSchedule::default().validate(16).unwrap();
        let ok = ReshardSchedule::new(vec![
            ReshardAt {
                height: 3,
                new_shards: 2,
            },
            ReshardAt {
                height: 7,
                new_shards: 4,
            },
        ]);
        ok.validate(16).unwrap();
        let v = |events: Vec<ReshardAt>| ReshardSchedule::new(events).validate(16);
        assert!(v(vec![ReshardAt {
            height: 0,
            new_shards: 2
        }])
        .is_err());
        assert!(v(vec![ReshardAt {
            height: 3,
            new_shards: 0
        }])
        .is_err());
        assert!(v(vec![ReshardAt {
            height: 3,
            new_shards: 17
        }])
        .is_err());
        assert!(v(vec![
            ReshardAt {
                height: 5,
                new_shards: 2
            },
            ReshardAt {
                height: 5,
                new_shards: 4
            },
        ])
        .is_err());
    }

    #[test]
    fn empty_schedule_is_valid_and_lowers_to_nothing() {
        let s = FaultSchedule::default();
        assert!(s.is_empty());
        s.validate(4).unwrap();
        assert!(s.net_faults(|r| r + 2).is_empty());
    }

    #[test]
    fn validation_catches_bad_scenarios() {
        let v = |ev: FaultEvent| FaultSchedule::new(vec![ev]).validate(4);
        assert!(v(FaultEvent::Crash {
            replica: 4,
            at_ns: 1,
            recover_at_ns: 2
        })
        .is_err());
        assert!(v(FaultEvent::Crash {
            replica: 0,
            at_ns: 5,
            recover_at_ns: 5
        })
        .is_err());
        assert!(v(FaultEvent::LinkDrop {
            from: 1,
            to: 1,
            from_ns: 0,
            until_ns: 1,
            per_mille: 100
        })
        .is_err());
        assert!(v(FaultEvent::LinkDrop {
            from: 0,
            to: 1,
            from_ns: 0,
            until_ns: 1,
            per_mille: 1001
        })
        .is_err());
        // Overlapping crash cycles on one replica.
        assert!(FaultSchedule::new(vec![
            FaultEvent::Crash {
                replica: 2,
                at_ns: 0,
                recover_at_ns: 10
            },
            FaultEvent::Crash {
                replica: 2,
                at_ns: 5,
                recover_at_ns: 20
            },
        ])
        .validate(4)
        .is_err());
        // Back-to-back cycles on one replica are fine.
        FaultSchedule::new(vec![
            FaultEvent::Crash {
                replica: 2,
                at_ns: 0,
                recover_at_ns: 10,
            },
            FaultEvent::Crash {
                replica: 2,
                at_ns: 10,
                recover_at_ns: 20,
            },
        ])
        .validate(4)
        .unwrap();
        // Every replica unhealthy: no observer left.
        assert!(FaultSchedule::new(vec![
            FaultEvent::Crash {
                replica: 0,
                at_ns: 0,
                recover_at_ns: 1
            },
            FaultEvent::Partition {
                replica: 1,
                from_ns: 0,
                until_ns: 1
            },
        ])
        .validate(2)
        .is_err());
    }

    #[test]
    fn healthy_replica_skips_faulted_ones() {
        let s = FaultSchedule::new(vec![
            FaultEvent::Crash {
                replica: 0,
                at_ns: 0,
                recover_at_ns: 1,
            },
            FaultEvent::PoisonRoot {
                replica: 1,
                at_ns: 5,
            },
            // Link faults and refusals do not disqualify an observer.
            FaultEvent::SyncRefusal {
                replica: 2,
                from_ns: 0,
                until_ns: 1,
            },
        ]);
        assert_eq!(s.healthy_replica(4), Some(2));
        s.validate(4).unwrap();
    }

    #[test]
    fn lowering_maps_replica_indices_to_node_ids() {
        let s = FaultSchedule::new(vec![
            FaultEvent::Partition {
                replica: 1,
                from_ns: 10,
                until_ns: 20,
            },
            FaultEvent::LinkDrop {
                from: 0,
                to: 2,
                from_ns: 0,
                until_ns: 5,
                per_mille: 250,
            },
            FaultEvent::Crash {
                replica: 3,
                at_ns: 1,
                recover_at_ns: 2,
            },
        ]);
        let table = s.net_faults(|r| 100 + r);
        // Crash is not a net fault; the two link-visible events are.
        assert!(!table.is_empty());
        assert_eq!(s.crash_cycles(), vec![(3, 1, 2)]);
    }
}
