//! The mempool frontend of a replica cluster's ordering service.
//!
//! Client sessions submit transactions tagged with a per-session nonce;
//! the mempool performs **admission control** before anything reaches
//! consensus:
//!
//! * **backpressure** — a bounded queue; submissions beyond capacity are
//!   rejected so an open-loop overload cannot grow state without bound,
//! * **duplicate rejection** — a nonce at or below the session's
//!   watermark (or already held) is a replay and is dropped,
//! * **reorder hold-back** — the network may reorder two submissions
//!   from the same session, so a nonce slightly ahead of the watermark
//!   is *held* and admitted once the gap closes; only nonces beyond the
//!   per-session reorder window are refused outright.
//!
//! Admission to the batch queue is strictly in nonce order per session,
//! and batching is FIFO in admission order — so every honest orderer
//! draining the same submission stream seals identical blocks.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

use harmony_metrics::{Counter, Gauge, Registry};
use harmony_txn::Contract;

/// Mempool configuration.
#[derive(Clone, Copy, Debug)]
pub struct MempoolConfig {
    /// Maximum queued transactions before backpressure rejects.
    pub capacity: usize,
    /// Per-session hold-back window for out-of-order nonces.
    pub reorder_window: usize,
    /// Number of admission tenants. Client sessions map to tenants by
    /// `client % tenants`; 1 (the default) disables multi-tenancy.
    pub tenants: usize,
    /// Per-tenant cap on *queued* transactions. `None` (the default)
    /// means tenants share the queue freely; `Some(q)` rejects a
    /// tenant's submissions once it has `q` transactions queued, so one
    /// hot tenant cannot starve the rest of the capacity. Held-back
    /// out-of-order transactions do not count against the quota until
    /// they drain into the queue (the drain, like the capacity drain,
    /// never strands a held transaction).
    pub tenant_quota: Option<usize>,
}

impl Default for MempoolConfig {
    fn default() -> Self {
        MempoolConfig {
            capacity: 4_096,
            reorder_window: 64,
            tenants: 1,
            tenant_quota: None,
        }
    }
}

/// Why a submission was refused admission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmitError {
    /// The queue is full; the client must back off and resubmit.
    Backpressure,
    /// The (client, nonce) pair was already admitted or held — a replay.
    Duplicate {
        /// Submitting session.
        client: u64,
        /// The replayed nonce.
        nonce: u64,
    },
    /// The nonce is beyond the session's reorder window.
    NonceGap {
        /// Submitting session.
        client: u64,
        /// Next admissible nonce.
        expected: u64,
        /// The too-far-ahead nonce received.
        got: u64,
    },
    /// The client's tenant is at its admission quota; the client must
    /// back off and resubmit (the nonce is not consumed).
    TenantQuota {
        /// Submitting session.
        client: u64,
        /// The tenant (`client % tenants`) that is over quota.
        tenant: u64,
    },
}

impl AdmitError {
    /// Every rejection cause label, in declaration order — the full
    /// label set of `harmony_mempool_rejected_total{cause=...}`.
    pub const CAUSES: [&'static str; 4] =
        ["backpressure", "duplicate", "nonce_gap", "tenant_quota"];

    /// The static metric label for this rejection cause. Rejection
    /// accounting is derived from this single mapping, so the
    /// [`MempoolStats`] view and the registry counters can never
    /// disagree.
    #[must_use]
    pub fn cause_label(&self) -> &'static str {
        match self {
            AdmitError::Backpressure => Self::CAUSES[0],
            AdmitError::Duplicate { .. } => Self::CAUSES[1],
            AdmitError::NonceGap { .. } => Self::CAUSES[2],
            AdmitError::TenantQuota { .. } => Self::CAUSES[3],
        }
    }

    /// Whether the submission may be retried later with the same nonce:
    /// true for load-induced rejections (the nonce was not consumed),
    /// false for replays. This is the client-side resubmission filter.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        !matches!(self, AdmitError::Duplicate { .. })
    }
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::Backpressure => write!(f, "mempool full (backpressure)"),
            AdmitError::Duplicate { client, nonce } => {
                write!(f, "duplicate nonce {nonce} from client {client}")
            }
            AdmitError::NonceGap {
                client,
                expected,
                got,
            } => write!(
                f,
                "nonce {got} from client {client} exceeds the reorder window (expected {expected})"
            ),
            AdmitError::TenantQuota { client, tenant } => {
                write!(f, "tenant {tenant} at admission quota (client {client})")
            }
        }
    }
}

/// One admitted transaction awaiting ordering.
#[derive(Clone)]
pub struct PendingTxn {
    /// Submitting client session.
    pub client: u64,
    /// The session nonce.
    pub nonce: u64,
    /// Submission time (virtual ns) — end-to-end latency anchor.
    pub submitted_ns: u64,
    /// The executable contract.
    pub contract: Arc<dyn Contract>,
}

/// Admission counters (exposed in the cluster report).
///
/// This is a point-in-time *view* read out of [`MempoolMetrics`] — the
/// registry counters are the single source of truth, so the stats and
/// any Prometheus scrape always agree.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MempoolStats {
    /// Transactions admitted to the queue.
    pub admitted: u64,
    /// Submissions held out-of-order, then admitted when the gap closed.
    pub reordered: u64,
    /// Rejections due to a full queue.
    pub rejected_backpressure: u64,
    /// Rejections due to replayed nonces.
    pub rejected_duplicate: u64,
    /// Rejections due to nonces beyond the reorder window.
    pub rejected_gap: u64,
    /// Rejections due to a tenant exceeding its admission quota.
    pub rejected_tenant_quota: u64,
}

/// The mempool's metric handles: queue depth gauge, admit/reorder
/// counters, and one rejection counter per [`AdmitError`] cause.
#[derive(Clone)]
pub struct MempoolMetrics {
    /// `harmony_mempool_depth` — currently queued transactions.
    pub depth: Gauge,
    /// `harmony_mempool_admitted_total`.
    pub admitted: Counter,
    /// `harmony_mempool_reordered_total` — held out-of-order, admitted
    /// later when the gap closed.
    pub reordered: Counter,
    /// `harmony_mempool_rejected_total{cause=...}`, indexed like
    /// [`AdmitError::CAUSES`].
    pub rejected: [Counter; 4],
    /// `harmony_mempool_tenant_sealed_total{tenant=...}` — transactions
    /// drained into blocks, per tenant (the admission-plane goodput the
    /// overload figure plots). Empty when multi-tenancy is off.
    pub tenant_sealed: Vec<Counter>,
}

impl MempoolMetrics {
    /// Register the mempool metric family in `registry`. `tenants` > 1
    /// additionally registers one per-tenant sealed counter.
    #[must_use]
    pub fn register(registry: &Registry, tenants: usize) -> MempoolMetrics {
        MempoolMetrics {
            depth: registry.gauge(
                "harmony_mempool_depth",
                "Transactions currently queued for batching (held-back out-of-order ones excluded).",
            ),
            admitted: registry.counter(
                "harmony_mempool_admitted_total",
                "Transactions admitted to the batch queue.",
            ),
            reordered: registry.counter(
                "harmony_mempool_reordered_total",
                "Out-of-order submissions held back, then admitted once the nonce gap closed.",
            ),
            rejected: AdmitError::CAUSES.map(|cause| {
                registry.counter_with(
                    "harmony_mempool_rejected_total",
                    "Submissions refused admission, by cause.",
                    &[("cause", cause)],
                )
            }),
            tenant_sealed: if tenants > 1 {
                (0..tenants)
                    .map(|t| {
                        registry.counter_with(
                            "harmony_mempool_tenant_sealed_total",
                            "Transactions sealed into blocks, per admission tenant.",
                            &[("tenant", &t.to_string())],
                        )
                    })
                    .collect()
            } else {
                Vec::new()
            },
        }
    }

    /// Metric handles not attached to any registry (counting still
    /// works — used when no observability plane is wired up).
    #[must_use]
    pub fn detached() -> MempoolMetrics {
        MempoolMetrics {
            depth: Gauge::detached(),
            admitted: Counter::detached(),
            reordered: Counter::detached(),
            rejected: [
                Counter::detached(),
                Counter::detached(),
                Counter::detached(),
                Counter::detached(),
            ],
            tenant_sealed: Vec::new(),
        }
    }

    fn rejected_for(&self, err: &AdmitError) -> &Counter {
        let idx = AdmitError::CAUSES
            .iter()
            .position(|c| *c == err.cause_label())
            .expect("every cause is in CAUSES");
        &self.rejected[idx]
    }
}

#[derive(Default)]
struct Session {
    next_nonce: u64,
    held: BTreeMap<u64, PendingTxn>,
}

/// Bounded, nonce-checked, FIFO transaction queue.
pub struct Mempool {
    config: MempoolConfig,
    queue: VecDeque<PendingTxn>,
    sessions: HashMap<u64, Session>,
    /// Queued (not held) transactions per tenant — the quota ledger.
    tenant_queued: Vec<usize>,
    metrics: MempoolMetrics,
}

impl Mempool {
    /// Build an empty mempool with detached (registry-less) metrics.
    #[must_use]
    pub fn new(config: MempoolConfig) -> Mempool {
        Mempool::with_metrics(config, MempoolMetrics::detached())
    }

    /// Build an empty mempool reporting into the given metric handles.
    #[must_use]
    pub fn with_metrics(config: MempoolConfig, mut metrics: MempoolMetrics) -> Mempool {
        let tenants = config.tenants.max(1);
        // Pad the per-tenant counters so sealed accounting works even
        // with detached metrics.
        while metrics.tenant_sealed.len() < tenants {
            metrics.tenant_sealed.push(Counter::detached());
        }
        Mempool {
            config,
            queue: VecDeque::new(),
            sessions: HashMap::new(),
            tenant_queued: vec![0; tenants],
            metrics,
        }
    }

    /// The tenant a client session maps to.
    #[must_use]
    pub fn tenant_of(&self, client: u64) -> u64 {
        client % self.config.tenants.max(1) as u64
    }

    /// Admit (or reject) one submission.
    pub fn submit(
        &mut self,
        client: u64,
        nonce: u64,
        submitted_ns: u64,
        contract: Arc<dyn Contract>,
    ) -> Result<(), AdmitError> {
        let tenant = self.tenant_of(client);
        let session = self.sessions.entry(client).or_default();
        if nonce < session.next_nonce || session.held.contains_key(&nonce) {
            return Err(self.reject(AdmitError::Duplicate { client, nonce }));
        }
        // Tenant quota outranks global backpressure: a tenant over its
        // share gets the tenant-specific (actionable) cause even when the
        // queue is also full. Like backpressure, the rejection never
        // consumes the nonce.
        if let Some(quota) = self.config.tenant_quota {
            if self.tenant_queued[tenant as usize] >= quota {
                return Err(self.reject(AdmitError::TenantQuota { client, tenant }));
            }
        }
        if self.queue.len() >= self.config.capacity {
            return Err(self.reject(AdmitError::Backpressure));
        }
        let session = self.sessions.entry(client).or_default();
        let txn = PendingTxn {
            client,
            nonce,
            submitted_ns,
            contract,
        };
        if nonce > session.next_nonce {
            // Out of order (network reordering): hold within the window.
            if session.held.len() >= self.config.reorder_window
                || nonce - session.next_nonce > self.config.reorder_window as u64
            {
                let expected = session.next_nonce;
                return Err(self.reject(AdmitError::NonceGap {
                    client,
                    expected,
                    got: nonce,
                }));
            }
            session.held.insert(nonce, txn);
            self.metrics.reordered.inc();
            return Ok(());
        }
        // In order: enqueue, then drain ALL held successors. The drain
        // ignores the capacity bound on purpose: stopping mid-drain would
        // strand the remaining held transactions forever (nothing
        // re-triggers the drain, and a resubmission of a held nonce is a
        // duplicate). Held transactions were admitted under capacity, so
        // the queue can overshoot by at most `reorder_window`.
        session.next_nonce = nonce + 1;
        self.queue.push_back(txn);
        self.tenant_queued[tenant as usize] += 1;
        self.metrics.admitted.inc();
        while let Some(held) = session.held.remove(&session.next_nonce) {
            session.next_nonce += 1;
            self.queue.push_back(held);
            // The drain, like the capacity drain above, ignores the
            // tenant quota: stopping would strand the held transactions.
            // All drained txns belong to this session, hence this tenant.
            self.tenant_queued[tenant as usize] += 1;
            self.metrics.admitted.inc();
        }
        self.metrics.depth.set(self.queue.len() as i64);
        Ok(())
    }

    /// Count a rejection against its cause counter and hand the error
    /// back — the single choke point all reject paths flow through.
    fn reject(&self, err: AdmitError) -> AdmitError {
        self.metrics.rejected_for(&err).inc();
        err
    }

    /// Drain up to `max` transactions in admission (FIFO) order — the
    /// deterministic batch the orderer seals into the next block.
    pub fn next_batch(&mut self, max: usize) -> Vec<PendingTxn> {
        let n = max.min(self.queue.len());
        let batch: Vec<PendingTxn> = self.queue.drain(..n).collect();
        for t in &batch {
            let tenant = self.tenant_of(t.client) as usize;
            self.tenant_queued[tenant] = self.tenant_queued[tenant].saturating_sub(1);
            self.metrics.tenant_sealed[tenant].inc();
        }
        self.metrics.depth.set(self.queue.len() as i64);
        batch
    }

    /// Transactions sealed into blocks so far, per tenant.
    #[must_use]
    pub fn tenant_sealed(&self) -> Vec<u64> {
        self.metrics
            .tenant_sealed
            .iter()
            .map(harmony_metrics::Counter::get)
            .collect()
    }

    /// Queued transactions (excluding held-back out-of-order ones).
    #[must_use]
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Submission time of the oldest queued transaction — drives the
    /// orderer's partial-batch timeout.
    #[must_use]
    pub fn oldest_submitted_ns(&self) -> Option<u64> {
        self.queue.front().map(|t| t.submitted_ns)
    }

    /// Whether nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Whether the queue is at capacity (submissions will be rejected).
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.queue.len() >= self.config.capacity
    }

    /// Admission counters so far, read out of the metric cells.
    #[must_use]
    pub fn stats(&self) -> MempoolStats {
        let m = &self.metrics;
        MempoolStats {
            admitted: m.admitted.get(),
            reordered: m.reordered.get(),
            rejected_backpressure: m.rejected[0].get(),
            rejected_duplicate: m.rejected[1].get(),
            rejected_gap: m.rejected[2].get(),
            rejected_tenant_quota: m.rejected[3].get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_txn::{FnContract, TxnCtx};

    fn nop() -> Arc<dyn Contract> {
        Arc::new(FnContract::new("nop", |_: &mut TxnCtx<'_>| Ok(())))
    }

    fn pool(capacity: usize) -> Mempool {
        Mempool::new(MempoolConfig {
            capacity,
            reorder_window: 4,
            ..MempoolConfig::default()
        })
    }

    #[test]
    fn fifo_admission_and_batching() {
        let mut m = pool(10);
        for n in 0..5 {
            m.submit(1, n, n * 10, nop()).unwrap();
        }
        assert_eq!(m.len(), 5);
        let batch = m.next_batch(3);
        assert_eq!(batch.iter().map(|t| t.nonce).collect::<Vec<_>>(), [0, 1, 2]);
        assert_eq!(m.next_batch(10).len(), 2);
        assert!(m.is_empty());
    }

    #[test]
    fn reordered_submissions_are_held_then_admitted_in_order() {
        // Nonces 2 and 1 arrive before 0 (network reordering): they are
        // held, then the whole run drains in nonce order once 0 lands.
        let mut m = pool(10);
        m.submit(5, 2, 0, nop()).unwrap();
        m.submit(5, 1, 0, nop()).unwrap();
        assert!(m.is_empty(), "held txns are not yet batchable");
        m.submit(5, 0, 0, nop()).unwrap();
        let batch = m.next_batch(10);
        assert_eq!(batch.iter().map(|t| t.nonce).collect::<Vec<_>>(), [0, 1, 2]);
        assert_eq!(m.stats().reordered, 2);
        assert_eq!(m.stats().admitted, 3);
    }

    #[test]
    fn duplicate_and_window_rejection() {
        let mut m = pool(10);
        m.submit(7, 0, 0, nop()).unwrap();
        m.submit(7, 1, 0, nop()).unwrap();
        assert_eq!(
            m.submit(7, 1, 0, nop()),
            Err(AdmitError::Duplicate {
                client: 7,
                nonce: 1
            })
        );
        // A held nonce is also a duplicate when replayed.
        m.submit(7, 3, 0, nop()).unwrap();
        assert_eq!(
            m.submit(7, 3, 0, nop()),
            Err(AdmitError::Duplicate {
                client: 7,
                nonce: 3
            })
        );
        // Beyond the reorder window (4): rejected.
        assert_eq!(
            m.submit(7, 9, 0, nop()),
            Err(AdmitError::NonceGap {
                client: 7,
                expected: 2,
                got: 9
            })
        );
        // Independent sessions do not interfere.
        m.submit(8, 0, 0, nop()).unwrap();
        assert_eq!(m.stats().rejected_duplicate, 2);
        assert_eq!(m.stats().rejected_gap, 1);
    }

    #[test]
    fn backpressure_bounds_the_queue() {
        let mut m = pool(2);
        m.submit(1, 0, 0, nop()).unwrap();
        m.submit(1, 1, 0, nop()).unwrap();
        assert!(m.is_full());
        assert_eq!(m.submit(1, 2, 0, nop()), Err(AdmitError::Backpressure));
        // The rejected nonce was not consumed: after draining, the client
        // can resubmit the same nonce successfully.
        m.next_batch(2);
        m.submit(1, 2, 0, nop()).unwrap();
        assert_eq!(m.stats().rejected_backpressure, 1);
    }

    #[test]
    fn held_drain_completes_past_capacity() {
        // Regression: nonces 0, 2 (held), 1 against capacity 2. The drain
        // triggered by nonce 1 must admit held nonce 2 even though the
        // queue is at capacity — otherwise it is stranded forever (a
        // resubmit would be a duplicate and nothing re-runs the drain).
        let mut m = pool(2);
        m.submit(1, 0, 0, nop()).unwrap();
        m.submit(1, 2, 0, nop()).unwrap(); // held
        m.submit(1, 1, 0, nop()).unwrap(); // fills queue, drains the hold
        let batch = m.next_batch(10);
        assert_eq!(batch.iter().map(|t| t.nonce).collect::<Vec<_>>(), [0, 1, 2]);
        // The session keeps working afterwards.
        m.submit(1, 3, 0, nop()).unwrap();
        assert_eq!(m.next_batch(10).len(), 1);
    }

    #[test]
    fn nonce_exactly_at_window_edge_is_held_one_past_is_dropped() {
        // Window 4, watermark 0: nonce 4 sits exactly at the edge
        // (gap == window) and must be HELD; nonce 5 is one past and must
        // take the window-overflow drop path.
        let mut m = pool(10);
        m.submit(1, 4, 0, nop()).unwrap();
        assert_eq!(m.stats().reordered, 1);
        assert_eq!(m.stats().rejected_gap, 0);
        assert_eq!(
            m.submit(1, 5, 0, nop()),
            Err(AdmitError::NonceGap {
                client: 1,
                expected: 0,
                got: 5
            })
        );
        assert_eq!(m.stats().rejected_gap, 1);
        // The edge nonce is not lost: filling the run drains through it.
        for n in [0, 1, 2, 3] {
            m.submit(1, n, 0, nop()).unwrap();
        }
        let batch = m.next_batch(10);
        assert_eq!(
            batch.iter().map(|t| t.nonce).collect::<Vec<_>>(),
            [0, 1, 2, 3, 4]
        );
        // After the watermark advanced past the drop, the session
        // continues: 5 is now in-order.
        m.submit(1, 5, 0, nop()).unwrap();
        assert_eq!(m.next_batch(10).len(), 1);
    }

    #[test]
    fn full_hold_back_window_admits_only_the_in_order_nonce() {
        // All four hold slots occupied (nonces 1–4 held, window 4): every
        // in-window nonce is now either a duplicate or the in-order nonce
        // 0 — the hold-back buffer can never exceed the window.
        let mut m = pool(10);
        for n in [1, 2, 3, 4] {
            m.submit(9, n, 0, nop()).unwrap();
        }
        assert!(m.is_empty(), "all held, none batchable");
        assert!(matches!(
            m.submit(9, 3, 0, nop()),
            Err(AdmitError::Duplicate { .. })
        ));
        assert!(matches!(
            m.submit(9, 5, 0, nop()),
            Err(AdmitError::NonceGap { .. })
        ));
        m.submit(9, 0, 0, nop()).unwrap();
        assert_eq!(m.len(), 5, "nonce 0 drains the whole window");
    }

    #[test]
    fn duplicate_straddling_a_batch_seal() {
        // A nonce replayed *after* its original was sealed into a block
        // must still be rejected (the watermark outlives the queue), and
        // a held nonce replayed across a seal is likewise a duplicate.
        let mut m = pool(10);
        m.submit(2, 0, 0, nop()).unwrap();
        m.submit(2, 1, 0, nop()).unwrap();
        m.submit(2, 3, 0, nop()).unwrap(); // held (2 missing)
        let sealed = m.next_batch(10);
        assert_eq!(sealed.iter().map(|t| t.nonce).collect::<Vec<_>>(), [0, 1]);
        // Replays straddling the seal: one drained, one still held.
        assert_eq!(
            m.submit(2, 1, 0, nop()),
            Err(AdmitError::Duplicate {
                client: 2,
                nonce: 1
            })
        );
        assert_eq!(
            m.submit(2, 3, 0, nop()),
            Err(AdmitError::Duplicate {
                client: 2,
                nonce: 3
            })
        );
        // The straddled hold still drains once the gap closes.
        m.submit(2, 2, 0, nop()).unwrap();
        let batch = m.next_batch(10);
        assert_eq!(batch.iter().map(|t| t.nonce).collect::<Vec<_>>(), [2, 3]);
    }

    #[test]
    fn backpressure_rejects_held_submissions_without_consuming_them() {
        // A full queue rejects out-of-order submissions too (holding them
        // would let an attacker grow per-session state unboundedly), and
        // the rejection must not consume the nonce: once the queue
        // drains, the same nonce is admissible again.
        let mut m = pool(2);
        m.submit(1, 0, 0, nop()).unwrap();
        m.submit(2, 0, 0, nop()).unwrap();
        assert!(m.is_full());
        assert_eq!(m.submit(3, 1, 0, nop()), Err(AdmitError::Backpressure));
        m.next_batch(10);
        m.submit(3, 1, 0, nop()).unwrap(); // held now
        m.submit(3, 0, 0, nop()).unwrap();
        assert_eq!(
            m.next_batch(10).iter().map(|t| t.nonce).collect::<Vec<_>>(),
            [0, 1]
        );
        // Duplicate detection outranks backpressure: a replay against a
        // full queue reports Duplicate (and burns no capacity either way).
        let mut m = pool(1);
        m.submit(7, 0, 0, nop()).unwrap();
        assert!(m.is_full());
        assert_eq!(
            m.submit(7, 0, 0, nop()),
            Err(AdmitError::Duplicate {
                client: 7,
                nonce: 0
            })
        );
        assert_eq!(m.stats().rejected_duplicate, 1);
        assert_eq!(m.stats().rejected_backpressure, 0);
    }

    fn tenant_pool(capacity: usize, tenants: usize, quota: usize) -> Mempool {
        Mempool::new(MempoolConfig {
            capacity,
            reorder_window: 4,
            tenants,
            tenant_quota: Some(quota),
        })
    }

    #[test]
    fn tenant_quota_rejects_without_consuming_the_nonce() {
        // Mirror of `backpressure_bounds_the_queue`: a quota-rejected
        // nonce must remain admissible after the tenant drains.
        let mut m = tenant_pool(10, 2, 1);
        m.submit(2, 0, 0, nop()).unwrap(); // tenant 0 at quota
        assert_eq!(
            m.submit(4, 0, 0, nop()),
            Err(AdmitError::TenantQuota {
                client: 4,
                tenant: 0
            })
        );
        // The other tenant is unaffected by tenant 0's saturation.
        m.submit(3, 0, 0, nop()).unwrap();
        // Draining frees the quota; the same (client, nonce) is admitted.
        m.next_batch(10);
        m.submit(4, 0, 0, nop()).unwrap();
        assert_eq!(m.stats().rejected_tenant_quota, 1);
        assert_eq!(m.stats().rejected_backpressure, 0);
    }

    #[test]
    fn tenant_quota_isolates_a_hot_tenant() {
        // Tenant 1 (odd clients) floods; tenant 0 must still get its
        // share even though the hot tenant alone could fill capacity.
        let mut m = tenant_pool(8, 2, 4);
        for n in 0..20 {
            let _ = m.submit(1, n, 0, nop());
        }
        assert_eq!(m.len(), 4, "hot tenant capped at its quota");
        for n in 0..4 {
            m.submit(0, n, 0, nop()).unwrap();
        }
        let sealed = m.tenant_sealed();
        assert_eq!(sealed, vec![0, 0], "nothing sealed yet");
        m.next_batch(100);
        assert_eq!(m.tenant_sealed(), vec![4, 4], "fair share per tenant");
        assert!(m.stats().rejected_tenant_quota > 0);
    }

    #[test]
    fn duplicate_outranks_tenant_quota() {
        let mut m = tenant_pool(10, 2, 1);
        m.submit(2, 0, 0, nop()).unwrap();
        assert!(matches!(
            m.submit(2, 0, 0, nop()),
            Err(AdmitError::Duplicate { .. })
        ));
        assert_eq!(m.stats().rejected_tenant_quota, 0);
    }

    #[test]
    fn held_drain_ignores_tenant_quota() {
        // Quota 1: nonce 1 held, nonce 0 lands → the drain pushes the
        // tenant to 2 queued (quota overshoot, like the capacity drain)
        // rather than stranding the held transaction.
        let mut m = tenant_pool(10, 2, 1);
        m.submit(2, 1, 0, nop()).unwrap(); // held (out of order)
        m.submit(2, 0, 0, nop()).unwrap();
        assert_eq!(m.len(), 2);
        let batch = m.next_batch(10);
        assert_eq!(batch.iter().map(|t| t.nonce).collect::<Vec<_>>(), [0, 1]);
    }

    #[test]
    fn retryable_causes_exclude_replays() {
        assert!(AdmitError::Backpressure.is_retryable());
        assert!(AdmitError::TenantQuota {
            client: 0,
            tenant: 0
        }
        .is_retryable());
        assert!(AdmitError::NonceGap {
            client: 0,
            expected: 0,
            got: 9
        }
        .is_retryable());
        assert!(!AdmitError::Duplicate {
            client: 0,
            nonce: 0
        }
        .is_retryable());
    }

    #[test]
    fn nonces_survive_batching() {
        // The watermark lives with the session, not the queue: a drained
        // nonce can never be replayed.
        let mut m = pool(10);
        m.submit(3, 0, 0, nop()).unwrap();
        m.next_batch(1);
        assert!(matches!(
            m.submit(3, 0, 0, nop()),
            Err(AdmitError::Duplicate { .. })
        ));
    }
}
