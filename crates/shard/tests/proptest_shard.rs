//! Property tests for the sharded execution subsystem.
//!
//! The load-bearing property: for any seed / workload mix / engine, a
//! shard group with N shards commits exactly the same transactions and
//! reaches exactly the same logical state root as the 1-shard reference —
//! i.e. sharding redistributes work without changing a single decision.

use std::sync::Arc;

use harmony_core::executor::TxnOutcome;
use harmony_shard::{HashPartitioner, ShardEngine, ShardGroup, ShardGroupConfig, ShardRouter};
use harmony_workloads::{Smallbank, SmallbankConfig, Workload, Ycsb, YcsbConfig};
use proptest::prelude::*;

const PARTITIONS: u32 = 8;

#[derive(Clone, Copy, Debug)]
enum Mix {
    Smallbank,
    Ycsb,
}

fn workload(mix: Mix, seed_keys: u64, ratio: f64) -> Box<dyn Workload> {
    match mix {
        Mix::Smallbank => Box::new(Smallbank::new(SmallbankConfig {
            accounts: seed_keys,
            theta: 0.6,
            partitions: u64::from(PARTITIONS),
            multi_partition_ratio: ratio,
        })),
        Mix::Ycsb => Box::new(Ycsb::new(YcsbConfig {
            keys: seed_keys,
            ops_per_txn: 4,
            theta: 0.6,
            partitions: u64::from(PARTITIONS),
            multi_partition_ratio: ratio,
            ..YcsbConfig::default()
        })),
    }
}

struct StreamResult {
    outcomes: Vec<Vec<TxnOutcome>>,
    root: harmony_crypto::Digest,
    cross_txns: usize,
}

/// Run `blocks` blocks of `block_size` transactions from a deterministic
/// stream through a shard group, with abort-retry requeueing (so decision
/// differences would compound into stream differences and be caught).
fn run_stream(
    engine: ShardEngine,
    shards: usize,
    mix: Mix,
    ratio: f64,
    seed: u64,
    blocks: usize,
    block_size: usize,
) -> StreamResult {
    let router = ShardRouter::new(Arc::new(HashPartitioner::new(PARTITIONS)), shards);
    let config = ShardGroupConfig::in_memory();
    let mut group = ShardGroup::new(router, &config, |store| engine.build(store, 2)).unwrap();
    let mut w = workload(mix, 200, ratio);
    group.setup_with(|e| w.setup(e)).unwrap();

    let mut rng = harmony_common::DetRng::new(seed);
    let mut retry: std::collections::VecDeque<Arc<dyn harmony_txn::Contract>> =
        std::collections::VecDeque::new();
    let mut outcomes = Vec::new();
    let mut cross_txns = 0;
    for _ in 0..blocks {
        let mut txns = Vec::with_capacity(block_size);
        while txns.len() < block_size {
            match retry.pop_front() {
                Some(t) => txns.push(t),
                None => txns.push(w.next_txn(&mut rng)),
            }
        }
        let result = group.execute_block(txns.clone()).unwrap();
        for (i, o) in result.outcomes.iter().enumerate() {
            if let TxnOutcome::Aborted(reason) = o {
                if *reason != harmony_common::error::AbortReason::UserAbort {
                    retry.push_back(Arc::clone(&txns[i]));
                }
            }
        }
        cross_txns += result.cross_txns;
        // Every participating shard must agree on every cross decision
        // (fragments of survivors all commit; the group enforces it, and
        // fragment_outcomes lets us observe it).
        for g in 0..result.outcomes.len() {
            for (_, o) in result.fragment_outcomes(g) {
                assert!(o.is_committed(), "shard-divergent cross decision");
            }
        }
        outcomes.push(result.outcomes);
    }
    StreamResult {
        outcomes,
        root: group.logical_state_root().unwrap(),
        cross_txns,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// N shards ≡ 1 shard, for every engine, across workload mixes and
    /// cross-partition ratios.
    #[test]
    fn sharded_root_matches_single_shard_reference(
        seed in 0u64..1_000_000,
        shards in 2usize..9,
        mix_pick in 0usize..2,
        ratio_pick in 0usize..3,
    ) {
        let mix = if mix_pick == 0 { Mix::Smallbank } else { Mix::Ycsb };
        let ratio = [0.0, 0.2, 0.5][ratio_pick];
        for engine in ShardEngine::ALL {
            let reference = run_stream(engine, 1, mix, ratio, seed, 4, 10);
            let sharded = run_stream(engine, shards, mix, ratio, seed, 4, 10);
            prop_assert_eq!(
                &reference.outcomes,
                &sharded.outcomes,
                "decision divergence: engine={} shards={} mix={:?} ratio={} seed={}",
                engine.name(), shards, mix, ratio, seed
            );
            prop_assert_eq!(
                reference.root,
                sharded.root,
                "state divergence: engine={} shards={} mix={:?} ratio={} seed={}",
                engine.name(), shards, mix, ratio, seed
            );
            prop_assert_eq!(reference.cross_txns, sharded.cross_txns);
        }
    }

    /// Positive ratios actually exercise the cross-shard path, and the
    /// group stays deterministic run-to-run.
    #[test]
    fn cross_path_is_exercised_and_deterministic(seed in 0u64..1_000_000) {
        let run = || run_stream(ShardEngine::Harmony, 4, Mix::Smallbank, 0.5, seed, 4, 10);
        let a = run();
        let b = run();
        prop_assert!(a.cross_txns > 0, "ratio 0.5 must produce cross txns");
        prop_assert_eq!(a.outcomes, b.outcomes);
        prop_assert_eq!(a.root, b.root);
    }
}
