//! The shard group: one [`DccEngine`] per shard plus the deterministic
//! cross-shard commit protocol.
//!
//! # Block anatomy
//!
//! An ordered block enters the group and is split three ways:
//!
//! 1. **Multi-partition transactions** are executed once against a global
//!    snapshot view assembled from the owner shards' states after the
//!    previous block, capturing their read-write sets.
//! 2. A **pure reservation function** over the global order decides which
//!    multi-partition transactions commit ([`decide_cross`]): a transaction
//!    survives iff it conflicts with no earlier surviving one. Survivors
//!    are therefore mutually conflict-free.
//! 3. Each shard executes a sub-block through its own engine: first the
//!    **fragments** of surviving multi-partition transactions (one
//!    synthetic contract per logical partition, in global sub-order), then
//!    its single-partition transactions in global order.
//!
//! # Why no voting round
//!
//! Because execution is deterministic (ordered input block → unique output
//! state), every shard that holds the read fragments can re-derive every
//! other shard's reservation outcome locally: the commit/abort decision is
//! a pure function of the global order and the captured read-write sets,
//! both of which are identical on every shard after the (modeled) fragment
//! exchange. No prepare/commit votes are exchanged — the only network cost
//! is shipping read fragments, modeled through
//! [`harmony_consensus::net::LatencyModel`].
//!
//! # Why fragments cannot abort
//!
//! Surviving fragments are pairwise conflict-free and sub-ordered before
//! every local transaction, so in each engine they have no conflict with
//! any smaller-TID transaction. Every engine in the workspace aborts a
//! transaction only on a conflict involving an earlier transaction
//! (first-updater-wins, dangerous-structure pivots, Rule 1), so fragments
//! commit unconditionally — which is exactly what makes the cross-shard
//! decision atomic across shards. The group enforces this invariant and
//! fails loudly if an engine ever violates it.

use std::collections::HashSet;
use std::sync::{Arc, Mutex};

use harmony_chain::{fold_table_roots, sharded_state_root, StateCommitment};
use harmony_common::error::AbortReason;
use harmony_common::{BlockId, Result};
use harmony_consensus::net::LatencyModel;
use harmony_core::executor::{ExecBlock, TxnOutcome};
use harmony_core::par::run_indexed;
use harmony_core::{BlockStats, SnapshotStore};
use harmony_crypto::{AuthMap, Digest};
use harmony_dcc_baselines::{DccEngine, ProtocolBlockResult};
use harmony_storage::{StorageConfig, StorageEngine};
use harmony_txn::{Contract, Key, RangePredicate, RwSet};

use crate::metrics::PlannerMetrics;
use crate::plan::{plan_block, Slot};
use crate::router::ShardRouter;

/// Shard-group configuration.
#[derive(Clone, Debug)]
pub struct ShardGroupConfig {
    /// Storage configuration cloned per shard (each shard opens its own
    /// engine; the in-memory engines never contend on a path).
    pub storage: StorageConfig,
    /// Network model for the read-fragment exchange between shards.
    pub latency: LatencyModel,
    /// Worker cores for the multi-partition simulation step.
    pub cross_workers: usize,
}

impl Default for ShardGroupConfig {
    fn default() -> Self {
        ShardGroupConfig {
            storage: StorageConfig::default(),
            latency: LatencyModel::lan_1g(),
            cross_workers: 8,
        }
    }
}

impl ShardGroupConfig {
    /// All-in-memory, zero-cost configuration for tests.
    #[must_use]
    pub fn in_memory() -> ShardGroupConfig {
        ShardGroupConfig {
            storage: StorageConfig::memory(),
            ..ShardGroupConfig::default()
        }
    }
}

struct ShardNode {
    engine: Arc<StorageEngine>,
    store: Arc<SnapshotStore>,
    dcc: Arc<dyn DccEngine>,
    /// Incrementally maintained state commitment of this shard's
    /// partition. Lazily built on the first [`ShardGroup::state_roots`];
    /// thereafter each executed sub-block folds its write-set in.
    commit: Mutex<Option<StateCommitment>>,
}

/// This shard's cached state root, building the commitment if needed.
fn shard_state_root(node: &ShardNode) -> Result<Digest> {
    let mut guard = node.commit.lock().expect("commit lock");
    if guard.is_none() {
        *guard = Some(StateCommitment::build(&node.engine)?);
    }
    Ok(guard.as_mut().expect("just built").root())
}

/// Result of pushing one block through the group.
#[derive(Debug)]
pub struct ShardBlockResult {
    /// The block.
    pub block: BlockId,
    /// Outcome per transaction, in the submitted global order.
    pub outcomes: Vec<TxnOutcome>,
    /// Raw per-shard engine results (sub-block order).
    pub shard_results: Vec<ProtocolBlockResult>,
    /// Per-shard mapping from sub-block position to global transaction.
    pub slots: Vec<Vec<Slot>>,
    /// Number of multi-partition transactions in the block.
    pub cross_txns: usize,
    /// Multi-partition transactions that committed.
    pub cross_committed: usize,
    /// Per-multi-partition-transaction simulation cost (global order of the
    /// multi-partition subset).
    pub cross_sim_ns: Vec<u64>,
    /// Modeled one-round read-fragment exchange latency.
    pub exchange_ns: u64,
    /// Global counters (fragments excluded; one entry per submitted txn).
    pub stats: BlockStats,
}

impl ShardBlockResult {
    /// Every shard's outcome for the fragments of the multi-partition
    /// transaction at `global` — by construction all `Committed`.
    #[must_use]
    pub fn fragment_outcomes(&self, global: usize) -> Vec<(usize, TxnOutcome)> {
        let mut out = Vec::new();
        for (shard, slots) in self.slots.iter().enumerate() {
            for (pos, slot) in slots.iter().enumerate() {
                if let Slot::Fragment { global: g, .. } = slot {
                    if *g == global {
                        out.push((shard, self.shard_results[shard].outcomes[pos]));
                    }
                }
            }
        }
        out
    }
}

/// Two-level state commitment of a shard group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardedRoot {
    /// One state root per shard, in shard order.
    pub shard_roots: Vec<Digest>,
    /// Merkle fold of the shard roots (what a block header would carry).
    pub root: Digest,
}

/// A group of shards executing one ordered chain of blocks.
pub struct ShardGroup {
    router: ShardRouter,
    nodes: Vec<ShardNode>,
    latency: LatencyModel,
    cross_workers: usize,
    height: BlockId,
    metrics: PlannerMetrics,
}

impl ShardGroup {
    /// Build a group: one storage engine + snapshot store + DCC engine per
    /// shard. `build` constructs the engine over a shard's store — use the
    /// same engine kind and configuration for every shard.
    pub fn new(
        router: ShardRouter,
        config: &ShardGroupConfig,
        build: impl Fn(Arc<SnapshotStore>) -> Arc<dyn DccEngine>,
    ) -> Result<ShardGroup> {
        let mut nodes = Vec::with_capacity(router.shards());
        for _ in 0..router.shards() {
            let engine = Arc::new(StorageEngine::open(&config.storage)?);
            let store = Arc::new(SnapshotStore::new(Arc::clone(&engine)));
            let dcc = build(Arc::clone(&store));
            nodes.push(ShardNode {
                engine,
                store,
                dcc,
                commit: Mutex::new(None),
            });
        }
        Ok(ShardGroup {
            router,
            nodes,
            latency: config.latency.clone(),
            cross_workers: config.cross_workers.max(1),
            height: BlockId(0),
            metrics: PlannerMetrics::detached(),
        })
    }

    /// Report planner decisions into the given metric handles (the
    /// default handles are detached — counting but unregistered).
    pub fn set_metrics(&mut self, metrics: PlannerMetrics) {
        self.metrics = metrics;
    }

    /// The router.
    #[must_use]
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.nodes.len()
    }

    /// Current height (blocks executed).
    #[must_use]
    pub fn height(&self) -> BlockId {
        self.height
    }

    /// A shard's storage engine (inspection / workload setup).
    #[must_use]
    pub fn engine(&self, shard: usize) -> &Arc<StorageEngine> {
        &self.nodes[shard].engine
    }

    /// A shard's snapshot store.
    #[must_use]
    pub fn store(&self, shard: usize) -> &Arc<SnapshotStore> {
        &self.nodes[shard].store
    }

    /// A shard's DCC engine.
    #[must_use]
    pub fn dcc(&self, shard: usize) -> &Arc<dyn DccEngine> {
        &self.nodes[shard].dcc
    }

    /// Load the initial database: run `load` on every shard's engine (table
    /// ids come out identical because creation order is identical), then
    /// prune each shard down to the rows it owns. After this, every shard
    /// holds exactly its partition of the database.
    ///
    /// Typical call: `group.setup_with(|engine| workload.setup(engine))`.
    pub fn setup_with(&mut self, mut load: impl FnMut(&StorageEngine) -> Result<()>) -> Result<()> {
        assert_eq!(self.height, BlockId(0), "setup must precede execution");
        for (s, node) in self.nodes.iter().enumerate() {
            load(&node.engine)?;
            prune_to_owned(&node.engine, &self.router, s)?;
        }
        Ok(())
    }

    /// Execute the next block of the global order: plan it through the
    /// shared cross-shard planner ([`crate::plan::plan_block`]), run each
    /// shard's sub-block through its engine, and fold the outcomes back
    /// into global order.
    pub fn execute_block(&mut self, txns: Vec<Arc<dyn Contract>>) -> Result<ShardBlockResult> {
        let id = self.height.next();
        let snapshot = self.height;
        let stores: Vec<Arc<SnapshotStore>> =
            self.nodes.iter().map(|n| Arc::clone(&n.store)).collect();
        let mut plan = plan_block(
            &self.router,
            &stores,
            snapshot,
            &txns,
            self.cross_workers,
            &self.latency,
        );
        self.metrics.observe(&plan);
        let mut shard_results = Vec::with_capacity(self.shards());
        for (s, node) in self.nodes.iter().enumerate() {
            let sub = std::mem::take(&mut plan.shard_txns[s]);
            shard_results.push(node.dcc.execute_block(&ExecBlock::new(id, sub))?);
            // Fold this sub-block's write-set into the shard commitment
            // (now — the per-shard block log is GC'd by the next block).
            let mut guard = node.commit.lock().expect("commit lock");
            if let Some(c) = guard.as_mut() {
                c.apply_writes(&node.engine, &node.store.keys_written_in(id))?;
            }
        }
        let outcomes = plan.fold_outcomes(&shard_results)?;
        let stats = plan.accumulate_stats(&outcomes, &shard_results);
        let cross_committed = plan.cross_committed();

        self.height = id;
        Ok(ShardBlockResult {
            block: id,
            outcomes,
            shard_results,
            slots: plan.slots,
            cross_txns: plan.cross_idx.len(),
            cross_committed,
            cross_sim_ns: plan.cross_sim_ns,
            exchange_ns: plan.exchange_ns,
            stats,
        })
    }

    /// Per-shard state roots and their Merkle fold. The fold commits to
    /// the physical layout (leaf = shard), so it is what a sharded block
    /// header carries but is *not* comparable across shard counts — use
    /// [`Self::logical_state_root`] for that.
    /// O(M) over cached per-shard commitment roots on a warm group; when
    /// any shard still needs its one-time commitment build (first call, or
    /// after recovery), the builds run in parallel across shards.
    pub fn state_roots(&self) -> Result<ShardedRoot> {
        let all_cached = self
            .nodes
            .iter()
            .all(|n| n.commit.lock().expect("commit lock").is_some());
        let shard_roots: Vec<Digest> = if all_cached {
            self.nodes
                .iter()
                .map(shard_state_root)
                .collect::<Result<_>>()?
        } else {
            run_indexed(self.nodes.len(), self.cross_workers, |s| {
                shard_state_root(&self.nodes[s])
            })
            .into_iter()
            .collect::<Result<_>>()?
        };
        let root = sharded_state_root(&shard_roots);
        Ok(ShardedRoot { shard_roots, root })
    }

    /// Hash of the *logical* database — see [`logical_state_root`].
    pub fn logical_state_root(&self) -> Result<Digest> {
        logical_state_root(self.nodes.iter().map(|n| &n.engine))
    }
}

/// Delete every row `shard` does not own under `router` — the second
/// phase of shard setup (after loading the full database on every
/// shard's engine). One definition serves both shard hosts: the
/// single-process [`ShardGroup`] and `harmony-node`'s sharded replica,
/// so their genesis partitions can never drift apart.
///
/// Tables the router marks replicated keep their full contents on every
/// shard (read-only dimension tables — see
/// [`ShardRouter::with_replicated`]).
pub fn prune_to_owned(engine: &StorageEngine, router: &ShardRouter, shard: usize) -> Result<()> {
    for (_, table) in engine.list_tables() {
        if router.is_replicated(table) {
            continue;
        }
        let mut foreign: Vec<Vec<u8>> = Vec::new();
        engine.scan(table, b"", None, |k, _| {
            if router.shard_of_key(&Key::new(table, k.to_vec())) != shard {
                foreign.push(k.to_vec());
            }
            true
        })?;
        for row in foreign {
            engine.delete(table, &row)?;
        }
    }
    Ok(())
}

/// Hash of the *logical* database hosted by a set of shard engines — the
/// union of the disjoint shard partitions, merged per table in key order,
/// digested exactly like `harmony_chain::state_root`. Independent of how
/// many shards host the data: a 1-shard deployment and an N-shard one fed
/// the same blocks produce the same logical root (the equivalence property
/// tests pin this, for both the single-process group and the replicated
/// sharded node runtime).
pub fn logical_state_root<'a>(
    engines: impl IntoIterator<Item = &'a Arc<StorageEngine>>,
) -> Result<Digest> {
    Ok(fold_table_roots(&logical_table_heads(engines)?))
}

/// Per-table digests of the logical database hosted by a set of shard
/// engines — the table-granular decomposition of [`logical_state_root`].
/// Shard-count-invariant for the same reason the folded root is; the
/// elastic-resharding equivalence tests compare these head lists so a
/// divergence names the table that drifted instead of one opaque root.
pub fn logical_table_heads<'a>(
    engines: impl IntoIterator<Item = &'a Arc<StorageEngine>>,
) -> Result<Vec<(String, Digest)>> {
    let engines: Vec<&Arc<StorageEngine>> = engines.into_iter().collect();
    assert!(!engines.is_empty(), "need at least one shard engine");
    let mut heads: Vec<(String, Digest)> = Vec::new();
    for (name, id) in engines[0].list_tables() {
        // The authenticated map is history independent, so upserting the
        // disjoint shard partitions in any order commits to exactly the
        // merged table — the same digest `harmony_chain::state_root` gives
        // a 1-shard deployment of the same logical database.
        let mut merged = AuthMap::new();
        for engine in &engines {
            engine.scan(id, b"", None, |k, v| {
                merged.upsert(k, v);
                true
            })?;
        }
        heads.push((name, merged.root()));
    }
    Ok(heads)
}

/// The deterministic cross-shard commit decision (a pure function).
///
/// Processes multi-partition transactions in global order; a transaction
/// survives iff it has **no conflict of any kind** (ww, wr, rw, including
/// range predicates) with an earlier survivor. Survivors are therefore
/// pairwise conflict-free — the property that lets every shard's engine
/// commit their fragments unconditionally, and every shard derive the same
/// decision vector with no voting round.
#[must_use]
pub fn decide_cross(rwsets: &[Option<RwSet>]) -> Vec<TxnOutcome> {
    let mut reserved_writes: HashSet<Key> = HashSet::new();
    let mut reserved_reads: HashSet<Key> = HashSet::new();
    let mut reserved_preds: Vec<RangePredicate> = Vec::new();
    let mut outcomes = Vec::with_capacity(rwsets.len());
    for rwset in rwsets {
        let Some(rwset) = rwset else {
            outcomes.push(TxnOutcome::Aborted(AbortReason::UserAbort));
            continue;
        };
        let write_conflict = rwset.write_keys().any(|k| {
            reserved_writes.contains(k)
                || reserved_reads.contains(k)
                || reserved_preds.iter().any(|p| p.covers(k))
        });
        let read_conflict = rwset.read_keys().any(|k| reserved_writes.contains(k))
            || rwset
                .scans
                .iter()
                .any(|p| reserved_writes.iter().any(|k| p.covers(k)));
        if write_conflict || read_conflict {
            outcomes.push(TxnOutcome::Aborted(AbortReason::CrossShardConflict));
            continue;
        }
        for k in rwset.write_keys() {
            reserved_writes.insert(k.clone());
        }
        for k in rwset.read_keys() {
            reserved_reads.insert(k.clone());
        }
        reserved_preds.extend(rwset.scans.iter().cloned());
        outcomes.push(TxnOutcome::Committed);
    }
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::HashPartitioner;
    use harmony_chain::state_root;
    use harmony_common::ids::TableId;
    use harmony_core::HarmonyConfig;
    use harmony_dcc_baselines::HarmonyEngine;
    use harmony_txn::{FnContract, TxnCtx, UpdateCommand, UserAbort};

    const TABLE: TableId = TableId(0);

    fn key(id: u64) -> Key {
        Key::from_u64(TABLE, id)
    }

    /// Group of `shards` shards over 8 logical partitions, Harmony engines
    /// (inter-block parallelism off — the sharded profile), `keys` records
    /// valued 100.
    fn group(shards: usize, keys: u64) -> ShardGroup {
        let router = ShardRouter::new(Arc::new(HashPartitioner::new(8)), shards);
        let config = ShardGroupConfig::in_memory();
        let mut g = ShardGroup::new(router, &config, |store| {
            Arc::new(HarmonyEngine::new(
                store,
                HarmonyConfig {
                    inter_block_parallelism: false,
                    workers: 2,
                    ..HarmonyConfig::default()
                },
            ))
        })
        .unwrap();
        g.setup_with(|engine| {
            let t = engine.create_table("t")?;
            assert_eq!(t, TABLE);
            for i in 0..keys {
                engine.put(t, &i.to_be_bytes(), &100i64.to_le_bytes())?;
            }
            Ok(())
        })
        .unwrap();
        g
    }

    /// `add(w, delta)` for each write key after reading each read key, with
    /// a declared footprint.
    fn add_txn(reads: Vec<u64>, writes: Vec<u64>, delta: i64) -> Arc<dyn Contract> {
        let footprint: Vec<Key> = reads.iter().chain(&writes).map(|&i| key(i)).collect();
        Arc::new(
            FnContract::new("add", move |ctx: &mut TxnCtx<'_>| {
                for &r in &reads {
                    ctx.read(&key(r)).map_err(|e| UserAbort(e.to_string()))?;
                }
                for &w in &writes {
                    ctx.add_i64(key(w), 0, delta);
                }
                Ok(())
            })
            .with_footprint(footprint),
        )
    }

    fn read_i64(g: &ShardGroup, id: u64) -> i64 {
        let k = key(id);
        let shard = g.router().shard_of_key(&k);
        let v = g.engine(shard).get(TABLE, k.row()).unwrap().unwrap();
        i64::from_le_bytes(v.as_slice().try_into().unwrap())
    }

    /// Two ids guaranteed to live in different partitions.
    fn cross_pair(g: &ShardGroup) -> (u64, u64) {
        let a = 0u64;
        let b = (1..200u64)
            .find(|&i| g.router().partition_of(&key(i)) != g.router().partition_of(&key(a)))
            .expect("hash spreads");
        (a, b)
    }

    const DIM: TableId = TableId(1);

    /// Group whose router replicates dimension table [`DIM`] ("prices"):
    /// the fact table `t` is partitioned as usual, the dimension is
    /// hosted in full everywhere.
    fn group_with_dim(shards: usize, keys: u64, dim_rows: u64) -> ShardGroup {
        let router =
            ShardRouter::new(Arc::new(HashPartitioner::new(8)), shards).with_replicated(vec![DIM]);
        let config = ShardGroupConfig::in_memory();
        let mut g = ShardGroup::new(router, &config, |store| {
            Arc::new(HarmonyEngine::new(
                store,
                HarmonyConfig {
                    inter_block_parallelism: false,
                    workers: 2,
                    ..HarmonyConfig::default()
                },
            ))
        })
        .unwrap();
        g.setup_with(|engine| {
            let t = engine.create_table("t")?;
            assert_eq!(t, TABLE);
            let dim = engine.create_table("prices")?;
            assert_eq!(dim, DIM);
            for i in 0..keys {
                engine.put(t, &i.to_be_bytes(), &100i64.to_le_bytes())?;
            }
            for i in 0..dim_rows {
                engine.put(dim, &i.to_be_bytes(), &(7i64 * i as i64).to_le_bytes())?;
            }
            Ok(())
        })
        .unwrap();
        g
    }

    /// Read a dimension row, then add its value to a fact row — declares
    /// both keys, so routing sees one real partition plus a replicated
    /// read.
    fn dim_lookup_txn(dim_id: u64, write: u64) -> Arc<dyn Contract> {
        Arc::new(
            FnContract::new("dim-add", move |ctx: &mut TxnCtx<'_>| {
                let v = ctx
                    .read(&Key::from_u64(DIM, dim_id))
                    .map_err(|e| UserAbort(e.to_string()))?
                    .ok_or_else(|| UserAbort("missing dim row".into()))?;
                let delta = i64::from_le_bytes(v.as_ref().try_into().expect("8 bytes"));
                ctx.add_i64(key(write), 0, delta);
                Ok(())
            })
            .with_footprint(vec![Key::from_u64(DIM, dim_id), key(write)]),
        )
    }

    #[test]
    fn replicated_dimension_table_stays_whole_on_every_shard() {
        let g = group_with_dim(4, 64, 16);
        let mut fact_total = 0;
        for s in 0..4 {
            assert_eq!(
                g.engine(s).table_len(DIM).unwrap(),
                16,
                "shard {s} must host the full dimension table"
            );
            fact_total += g.engine(s).table_len(TABLE).unwrap();
        }
        assert_eq!(fact_total, 64, "fact table still partitioned exactly once");
    }

    #[test]
    fn replicated_reads_keep_txns_single_shard_and_logical_root_invariant() {
        let block =
            || -> Vec<Arc<dyn Contract>> { (0..16).map(|i| dim_lookup_txn(i % 16, i)).collect() };
        let mut one = group_with_dim(1, 64, 16);
        let mut four = group_with_dim(4, 64, 16);
        let r1 = one.execute_block(block()).unwrap();
        let r4 = four.execute_block(block()).unwrap();
        // Dimension reads are placement-invisible: no txn goes cross.
        assert_eq!(
            r4.cross_txns, 0,
            "replicated reads must not force cross-shard"
        );
        assert_eq!(r1.stats.committed, r4.stats.committed);
        assert_eq!(
            one.logical_state_root().unwrap(),
            four.logical_state_root().unwrap(),
            "replicated tables must not break shard-count invariance"
        );
    }

    #[test]
    fn setup_prunes_to_owned_rows() {
        let g = group(4, 64);
        let mut total = 0;
        for s in 0..4 {
            let len = g.engine(s).table_len(TABLE).unwrap();
            assert!(len > 0, "shard {s} owns nothing");
            g.engine(s)
                .scan(TABLE, b"", None, |k, _| {
                    assert_eq!(g.router().shard_of_key(&Key::new(TABLE, k.to_vec())), s);
                    true
                })
                .unwrap();
            total += len;
        }
        assert_eq!(total, 64, "partitions cover the keyspace exactly once");
    }

    #[test]
    fn local_txns_run_on_their_shards() {
        let mut g = group(4, 64);
        let txns: Vec<Arc<dyn Contract>> = (0..8).map(|i| add_txn(vec![], vec![i], 1)).collect();
        let res = g.execute_block(txns).unwrap();
        assert_eq!(res.cross_txns, 0);
        assert_eq!(res.stats.committed, 8);
        assert_eq!(res.exchange_ns, 0, "no cross txns, no exchange");
        for i in 0..8 {
            assert_eq!(read_i64(&g, i), 101);
        }
    }

    #[test]
    fn cross_shard_transfer_is_atomic() {
        let mut g = group(4, 64);
        let (a, b) = cross_pair(&g);
        // Transfer 30 from a to b: debits one shard, credits another.
        let transfer: Arc<dyn Contract> = Arc::new(
            FnContract::new("transfer", move |ctx: &mut TxnCtx<'_>| {
                ctx.add_i64(key(a), 0, -30);
                ctx.add_i64(key(b), 0, 30);
                Ok(())
            })
            .with_footprint(vec![key(a), key(b)]),
        );
        let res = g.execute_block(vec![transfer]).unwrap();
        assert_eq!(res.cross_txns, 1);
        assert_eq!(res.cross_committed, 1);
        assert_eq!(res.outcomes[0], TxnOutcome::Committed);
        assert!(res.exchange_ns > 0, "fragment exchange must be costed");
        assert_eq!(read_i64(&g, a), 70);
        assert_eq!(read_i64(&g, b), 130);
        let frags = res.fragment_outcomes(0);
        assert_eq!(frags.len(), 2, "two shards participate");
        assert!(frags.iter().all(|(_, o)| o.is_committed()));
    }

    #[test]
    fn conflicting_cross_txns_lose_reservation_deterministically() {
        let mut g = group(4, 64);
        let (a, b) = cross_pair(&g);
        let t = |delta: i64| add_txn(vec![], vec![a, b], delta);
        let res = g.execute_block(vec![t(1), t(2), t(4)]).unwrap();
        assert_eq!(res.outcomes[0], TxnOutcome::Committed);
        assert_eq!(
            res.outcomes[1],
            TxnOutcome::Aborted(AbortReason::CrossShardConflict)
        );
        assert_eq!(
            res.outcomes[2],
            TxnOutcome::Aborted(AbortReason::CrossShardConflict)
        );
        assert_eq!(read_i64(&g, a), 101, "only the first writer applied");
        assert_eq!(res.stats.aborted_cross_shard, 2);
    }

    #[test]
    fn cross_reads_see_previous_block_snapshot() {
        let mut g = group(2, 64);
        let (a, b) = cross_pair(&g);
        // Block 1: bump a.
        g.execute_block(vec![add_txn(vec![], vec![a], 5)]).unwrap();
        // Block 2: a cross txn that copies a's value delta onto b must read
        // the state *after* block 1.
        let copier: Arc<dyn Contract> = Arc::new(
            FnContract::new("copier", move |ctx: &mut TxnCtx<'_>| {
                let v = ctx
                    .read(&key(a))
                    .map_err(|e| UserAbort(e.to_string()))?
                    .expect("present");
                let cur = i64::from_le_bytes(v.as_ref().try_into().expect("i64 row"));
                ctx.update(
                    key(b),
                    UpdateCommand::Put(bytes::Bytes::from(cur.to_le_bytes().to_vec())),
                );
                Ok(())
            })
            .with_footprint(vec![key(a), key(b)]),
        );
        let res = g.execute_block(vec![copier]).unwrap();
        assert_eq!(res.outcomes[0], TxnOutcome::Committed);
        assert_eq!(read_i64(&g, b), 105);
    }

    #[test]
    fn undeclared_contract_routes_through_cross_path() {
        let mut g = group(4, 64);
        let opaque: Arc<dyn Contract> =
            Arc::new(FnContract::new("opaque", move |ctx: &mut TxnCtx<'_>| {
                ctx.add_i64(key(3), 0, 7);
                Ok(())
            }));
        let res = g.execute_block(vec![opaque]).unwrap();
        assert_eq!(res.cross_txns, 1);
        assert_eq!(res.outcomes[0], TxnOutcome::Committed);
        assert_eq!(read_i64(&g, 3), 107);
    }

    #[test]
    fn logical_root_matches_chain_state_root_on_one_shard() {
        let mut g = group(1, 64);
        g.execute_block(vec![add_txn(vec![], vec![0], 1)]).unwrap();
        assert_eq!(
            g.logical_state_root().unwrap(),
            state_root(g.engine(0)).unwrap()
        );
    }

    #[test]
    fn state_roots_fold_and_diverge() {
        let mut g = group(4, 64);
        let before = g.state_roots().unwrap();
        assert_eq!(before.shard_roots.len(), 4);
        g.execute_block(vec![add_txn(vec![], vec![0], 1)]).unwrap();
        let after = g.state_roots().unwrap();
        assert_ne!(before.root, after.root);
        // Only key 0's owner shard changed.
        let owner = g.router().shard_of_key(&key(0));
        for s in 0..4 {
            if s == owner {
                assert_ne!(before.shard_roots[s], after.shard_roots[s]);
            } else {
                assert_eq!(before.shard_roots[s], after.shard_roots[s]);
            }
        }
    }

    #[test]
    fn decide_cross_rules() {
        let rw = |reads: &[u64], writes: &[u64]| {
            let mut rw = RwSet::default();
            for &r in reads {
                rw.record_read(key(r), None);
            }
            for &w in writes {
                rw.record_update(key(w), UpdateCommand::Delete);
            }
            Some(rw)
        };
        // ww, rw (earlier reads / later writes), wr all lose; read-read ok.
        let outcomes = decide_cross(&[
            rw(&[0], &[1]), // survivor
            rw(&[], &[1]),  // ww vs #0's write -> abort
            rw(&[1], &[2]), // reads #0's write -> abort
            rw(&[], &[0]),  // writes #0's read -> abort
            rw(&[0], &[3]), // shares only the read of 0 -> survivor
            None,           // user abort
            rw(&[], &[2]),  // #2 aborted, its reservation never happened -> survivor
        ]);
        use TxnOutcome::{Aborted, Committed};
        assert_eq!(
            outcomes,
            vec![
                Committed,
                Aborted(AbortReason::CrossShardConflict),
                Aborted(AbortReason::CrossShardConflict),
                Aborted(AbortReason::CrossShardConflict),
                Committed,
                Aborted(AbortReason::UserAbort),
                Committed,
            ]
        );
    }

    #[test]
    fn decide_cross_respects_scan_predicates() {
        let mut scanner = RwSet::default();
        scanner.record_scan(RangePredicate {
            table: TABLE,
            start: bytes::Bytes::from(0u64.to_be_bytes().to_vec()),
            end: None,
        });
        scanner.record_update(key(1000), UpdateCommand::Delete);
        let mut writer = RwSet::default();
        writer.record_update(key(5), UpdateCommand::Delete);
        let outcomes = decide_cross(&[Some(scanner), Some(writer)]);
        assert_eq!(outcomes[0], TxnOutcome::Committed);
        assert_eq!(
            outcomes[1],
            TxnOutcome::Aborted(AbortReason::CrossShardConflict),
            "write into a reserved predicate range must lose"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut g = group(4, 64);
            let (a, b) = cross_pair(&g);
            let mut outcomes = Vec::new();
            for blk in 0..5 {
                let txns: Vec<Arc<dyn Contract>> = (0..6)
                    .map(|i| {
                        if i % 3 == 0 {
                            add_txn(vec![a], vec![b], blk + 1)
                        } else {
                            add_txn(vec![], vec![i * 7 % 64], 1)
                        }
                    })
                    .collect();
                outcomes.push(g.execute_block(txns).unwrap().outcomes);
            }
            (outcomes, g.state_roots().unwrap())
        };
        assert_eq!(run(), run());
    }
}
