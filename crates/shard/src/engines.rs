//! The five DCC engines in their **sharded profile**.
//!
//! A shard group can run any of the paper's five systems, but two
//! engine-level behaviors must be normalized so that commit/abort
//! decisions depend only on conflict structure and *relative* transaction
//! order (the invariant behind N-shard ≡ 1-shard state equivalence and
//! cross-shard atomicity):
//!
//! * **Harmony: inter-block parallelism off.** Under Rule 3 a transaction
//!   whose snapshot missed the previous block's writes can abort; applied
//!   to a cross-shard fragment that staleness is shard-local (each shard's
//!   fragment reads different keys), so shards could disagree about one
//!   transaction — exactly the atomicity violation the reservation pass
//!   exists to prevent. Intra-block parallelism and the full
//!   reordering/coalescence machinery stay on; blocks across *shards*
//!   still run concurrently.
//! * **Fabric / FastFabric#: endorser lag and validation delay off.** The
//!   lag sampler is deliberately seeded by (block, txn-position), which is
//!   not invariant under re-splitting blocks into sub-blocks; and a
//!   non-zero validation delay lets a fragment's reads go stale against
//!   the previous block on one shard but not another. The order-execute
//!   shard router also genuinely removes the client-side endorsement round
//!   that those knobs model.
//!
//! Aria and RBC need no adjustment: their rules are already pure functions
//! of pairwise conflicts and relative TID order.

use std::str::FromStr;
use std::sync::Arc;

use harmony_core::{HarmonyConfig, SnapshotStore};
use harmony_dcc_baselines::{
    Aria, AriaConfig, DccEngine, Fabric, FabricConfig, FastFabric, FastFabricConfig, HarmonyEngine,
    Rbc,
};

/// Engine selector for a shard group (the paper's five systems).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardEngine {
    /// Harmony (sharded profile: inter-block parallelism off).
    Harmony,
    /// AriaBC.
    Aria,
    /// RBC.
    Rbc,
    /// Fabric (sharded profile: no endorser lag / validation delay).
    Fabric,
    /// FastFabric# (sharded profile, like Fabric).
    FastFabric,
}

impl ShardEngine {
    /// All five engines, in the paper's plotting order.
    pub const ALL: [ShardEngine; 5] = [
        ShardEngine::Fabric,
        ShardEngine::FastFabric,
        ShardEngine::Rbc,
        ShardEngine::Aria,
        ShardEngine::Harmony,
    ];

    /// Display name matching the paper.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ShardEngine::Harmony => "HarmonyBC",
            ShardEngine::Aria => "AriaBC",
            ShardEngine::Rbc => "RBC",
            ShardEngine::Fabric => "Fabric",
            ShardEngine::FastFabric => "FastFabric#",
        }
    }

    /// Instantiate the engine over one shard's store, in the sharded
    /// profile described in the module docs.
    #[must_use]
    pub fn build(&self, store: Arc<SnapshotStore>, workers: usize) -> Arc<dyn DccEngine> {
        self.build_at(store, workers, harmony_common::BlockId(1))
    }

    /// Instantiate the engine positioned at an arbitrary next block — the
    /// crash-recovery / state-sync entry point of a sharded replica. No
    /// previous-block summary is threaded: the sharded profile runs
    /// Harmony without inter-block parallelism, so Rule 3 never consults
    /// one.
    #[must_use]
    pub fn build_at(
        &self,
        store: Arc<SnapshotStore>,
        workers: usize,
        next_block: harmony_common::BlockId,
    ) -> Arc<dyn DccEngine> {
        let sov = FabricConfig {
            workers,
            endorser_lag_prob: 0.0,
            validation_delay: 0,
            ..FabricConfig::default()
        };
        match self {
            ShardEngine::Harmony => Arc::new(HarmonyEngine::starting_at(
                store,
                HarmonyConfig {
                    workers,
                    inter_block_parallelism: false,
                    ..HarmonyConfig::default()
                },
                next_block,
                None,
            )),
            ShardEngine::Aria => Arc::new(Aria::starting_at(
                store,
                AriaConfig {
                    workers,
                    reordering: true,
                },
                next_block,
            )),
            ShardEngine::Rbc => Arc::new(Rbc::starting_at(store, workers, next_block)),
            ShardEngine::Fabric => Arc::new(Fabric::starting_at(store, sov, next_block)),
            ShardEngine::FastFabric => Arc::new(FastFabric::starting_at(
                store,
                FastFabricConfig {
                    fabric: sov,
                    ..FastFabricConfig::default()
                },
                next_block,
            )),
        }
    }
}

impl FromStr for ShardEngine {
    type Err = harmony_common::Error;

    /// Case-insensitive parse accepting the paper names and their short
    /// forms. On failure the error enumerates every valid spelling, so a
    /// typo in `HARMONY_ENGINES` tells the user exactly what is accepted.
    fn from_str(s: &str) -> Result<ShardEngine, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "harmony" | "harmonybc" => Ok(ShardEngine::Harmony),
            "aria" | "ariabc" => Ok(ShardEngine::Aria),
            "rbc" => Ok(ShardEngine::Rbc),
            "fabric" => Ok(ShardEngine::Fabric),
            "fastfabric" | "fastfabric#" => Ok(ShardEngine::FastFabric),
            other => Err(harmony_common::Error::InvalidArgument(format!(
                "unknown engine {other:?}; valid engines (case-insensitive): \
                 HarmonyBC (harmony), AriaBC (aria), RBC (rbc), \
                 Fabric (fabric), FastFabric# (fastfabric)"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_storage::{StorageConfig, StorageEngine};

    #[test]
    fn names_and_parse_round_trip() {
        for e in ShardEngine::ALL {
            assert_eq!(e.name().parse::<ShardEngine>().unwrap(), e);
        }
        assert!("postgres".parse::<ShardEngine>().is_err());
    }

    #[test]
    fn parse_is_case_insensitive() {
        for s in [
            "HARMONY",
            "HarMoNyBc",
            " ariabc ",
            "Rbc",
            "FABRIC",
            "FastFabric#",
        ] {
            assert!(s.parse::<ShardEngine>().is_ok(), "{s:?} must parse");
        }
    }

    #[test]
    fn parse_error_enumerates_valid_engines() {
        let err = "mysql".parse::<ShardEngine>().unwrap_err().to_string();
        for name in ["HarmonyBC", "AriaBC", "RBC", "Fabric", "FastFabric#"] {
            assert!(err.contains(name), "error must list {name}: {err}");
        }
        assert!(
            err.contains("mysql"),
            "error must echo the bad input: {err}"
        );
    }

    #[test]
    fn builds_every_engine() {
        for e in ShardEngine::ALL {
            let engine = Arc::new(StorageEngine::open(&StorageConfig::memory()).unwrap());
            let store = Arc::new(SnapshotStore::new(engine));
            let dcc = e.build(store, 2);
            assert_eq!(dcc.name(), e.name());
        }
    }
}
