//! **harmony-shard** — sharded multi-partition execution with
//! deterministic, coordination-free cross-shard commit.
//!
//! The Harmony protocol makes a single replica group execute an ordered
//! block deterministically: the committed post-state is a pure function of
//! (previous state, ordered block). This crate scales that property out by
//! hash- or range-partitioning the keyspace ([`Partitioner`]) across
//! independent execution shards ([`ShardGroup`]), each running its own
//! `DccEngine` (any of the five systems) over its own `SnapshotStore`.
//!
//! # Why determinism makes cross-shard commit coordination-free
//!
//! Classic sharded databases need two-phase commit because each shard's
//! commit decision depends on private, nondeterministic state (lock
//! queues, aborts-in-progress), so the decision must be *communicated*.
//! Under the order-execute architecture the inputs to every decision are
//! globally replicated by consensus: all shards see the same ordered block
//! and, after exchanging read fragments, the same captured read-write
//! sets. The commit/abort decision for multi-partition transactions
//! ([`decide_cross`]) is a pure function of exactly those inputs, so every
//! shard evaluates it locally and arrives at the same answer — a voting
//! round would transmit information the peers can already derive. The only
//! cross-shard traffic is the read-fragment exchange itself, which the
//! group models for latency/bandwidth through
//! [`harmony_consensus::net::LatencyModel`] (the same model the cluster
//! composition uses).
//!
//! Two structural choices keep the decision shard-count-invariant (the
//! N-shard state root equals the 1-shard root for the same input stream):
//!
//! * **Logical partitions ≠ physical shards.** Transactions are classified
//!   against a fixed partition count; shards merely host partitions
//!   ([`ShardRouter`]). Moving from 1 to N shards redistributes work but
//!   never reclassifies a transaction.
//! * **Fragments first, conflict-free.** Surviving multi-partition
//!   transactions are split into per-partition fragments sub-ordered ahead
//!   of each shard's local transactions. Survivors are pairwise
//!   conflict-free by construction, so no engine can abort a fragment, and
//!   local conflict components (and hence engine decisions) are identical
//!   for every shard count.
//!
//! Tamper evidence survives sharding: each shard's state root is folded
//! into a top-level root via `harmony_chain::sharded_state_root`.

pub mod engines;
pub mod group;
pub mod metrics;
pub mod partition;
pub mod plan;
pub mod router;

pub use engines::ShardEngine;
pub use group::{
    decide_cross, logical_state_root, logical_table_heads, prune_to_owned, ShardBlockResult,
    ShardGroup, ShardGroupConfig, ShardedRoot,
};
pub use metrics::PlannerMetrics;
pub use partition::{
    HashPartitioner, Partitioner, Partitioning, PrefixPartitioner, RangePartitioner,
    ENTITY_PREFIX_BYTES,
};
pub use plan::{plan_block, BlockPlan, FragmentCodec, FragmentContract, Slot, FRAGMENT_NAME};
pub use router::{Placement, ReshardMarker, ShardRouter};
