//! The cross-shard planning stage, factored out of [`crate::ShardGroup`]
//! so that any host of per-shard engines — the single-process shard group
//! or the replicated sharded node runtime in `harmony-node` — runs the
//! *same* deterministic protocol:
//!
//! 1. classify each transaction (single- vs multi-partition),
//! 2. simulate multi-partition transactions once against a snapshot view
//!    assembled from the owner shards' stores,
//! 3. decide the mutually conflict-free survivor set
//!    ([`crate::decide_cross`], a pure function of the global order),
//! 4. split each survivor into per-partition [`FragmentContract`]s,
//!    sub-ordered ahead of every shard's local transactions.
//!
//! The output [`BlockPlan`] carries one sub-block per shard plus the slot
//! map needed to fold per-shard engine outcomes back into global order.
//!
//! Fragments are **fully serializable** (owned reads *and* the captured
//! update commands), so a sealed sub-block's logical log replays
//! bit-identically through [`FragmentCodec`] — the property that lets a
//! sharded replica crash-recover or state-sync each shard independently,
//! without re-running the cross-shard simulation against peer shards that
//! may themselves be recovering.

use std::collections::BTreeMap;
use std::sync::Arc;

use harmony_common::codec::{Reader, Writer};
use harmony_common::error::AbortReason;
use harmony_common::ids::TableId;
use harmony_common::{vtime, BlockId, Error, Result};
use harmony_consensus::net::LatencyModel;
use harmony_core::executor::TxnOutcome;
use harmony_core::par::run_indexed;
use harmony_core::{BlockStats, SnapshotStore};
use harmony_dcc_baselines::ProtocolBlockResult;
use harmony_txn::{
    split_encoded, CommandSeq, Contract, ContractCodec, Key, RwSet, SnapshotView, TxnCtx,
    UserAbort, Value,
};

use crate::group::decide_cross;
use crate::router::{Placement, ShardRouter};

/// What a sub-block slot maps back to in the global block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Slot {
    /// Fragment of the multi-partition transaction at this global index,
    /// for the given logical partition.
    Fragment {
        /// Global index in the submitted block.
        global: usize,
        /// Logical partition the fragment covers.
        partition: u32,
    },
    /// The single-partition transaction at this global index.
    Local {
        /// Global index in the submitted block.
        global: usize,
    },
}

/// The planned execution of one ordered block across M shards.
pub struct BlockPlan {
    /// Per-shard sub-blocks: surviving fragments first (global, partition
    /// sub-order), then the shard's single-partition transactions in
    /// global order. Hosts take these out to execute.
    pub shard_txns: Vec<Vec<Arc<dyn Contract>>>,
    /// Per-shard mapping from sub-block position to global transaction.
    pub slots: Vec<Vec<Slot>>,
    /// Global indices of the multi-partition transactions.
    pub cross_idx: Vec<usize>,
    /// Reservation decision per multi-partition transaction (parallel to
    /// `cross_idx`).
    pub decisions: Vec<TxnOutcome>,
    /// Per-multi-partition-transaction simulation cost.
    pub cross_sim_ns: Vec<u64>,
    /// Modeled one-round read-fragment exchange latency.
    pub exchange_ns: u64,
    /// Number of transactions in the planned block.
    pub txns: usize,
}

/// Plan one ordered block: classify, simulate the multi-partition subset
/// against the shards' state after block `snapshot`, reserve survivors,
/// and build per-shard sub-blocks. Pure with respect to the stores (reads
/// only), so every replica planning the same block over the same state
/// derives the identical plan.
pub fn plan_block(
    router: &ShardRouter,
    stores: &[Arc<SnapshotStore>],
    snapshot: BlockId,
    txns: &[Arc<dyn Contract>],
    workers: usize,
    latency: &LatencyModel,
) -> BlockPlan {
    let shards = stores.len();
    let n = txns.len();
    // A live reshard swaps the router and rebuilds the per-shard stores
    // together at the epoch boundary; a host mixing the new router with a
    // stale store set would route sub-blocks into the wrong layout (or
    // straight out of bounds). Fail loudly at the seam instead.
    assert_eq!(
        router.shards(),
        shards,
        "router layout must match the store set — topology handover swaps them atomically"
    );

    // ── 1. Route ───────────────────────────────────────────────────────
    let placements: Vec<Placement> = txns.iter().map(|t| router.classify(t.as_ref())).collect();
    let cross_idx: Vec<usize> = (0..n)
        .filter(|&i| placements[i] == Placement::MultiPartition)
        .collect();

    // ── 2. Simulate multi-partition transactions globally ──────────────
    // Models each shard re-executing the full transaction after the
    // read-fragment exchange: the assembled view reads every key from its
    // owner shard's snapshot after the previous block.
    let view = MultiStoreView {
        router,
        stores,
        snapshot,
    };
    let sims: Vec<(Option<RwSet>, u64)> = run_indexed(cross_idx.len(), workers.max(1), |j| {
        let txn = &txns[cross_idx[j]];
        vtime::scope(|| {
            vtime::charge(txn.think_time_ns());
            let mut ctx = TxnCtx::new(&view);
            match txn.execute(&mut ctx) {
                Ok(()) => Some(ctx.into_rwset()),
                Err(_) => None,
            }
        })
    });
    let (cross_rwsets, cross_sim_ns): (Vec<Option<RwSet>>, Vec<u64>) = sims.into_iter().unzip();

    // ── 3. Decide: pure function of (global order, rwsets) ─────────────
    let decisions = decide_cross(&cross_rwsets);

    // ── 4. Exchange model (read fragments, one synchronous round) ──────
    let exchange_ns = exchange_ns(router, latency, shards, &cross_rwsets);

    // ── 5. Build per-shard sub-blocks ──────────────────────────────────
    let mut shard_txns: Vec<Vec<Arc<dyn Contract>>> = (0..shards).map(|_| Vec::new()).collect();
    let mut slots: Vec<Vec<Slot>> = (0..shards).map(|_| Vec::new()).collect();
    // Fragments first, in (global order, partition) sub-order.
    for (j, &g) in cross_idx.iter().enumerate() {
        if decisions[j] != TxnOutcome::Committed {
            continue;
        }
        let rwset = cross_rwsets[j].as_ref().expect("committed implies rwset");
        for (partition, fragment) in split_fragments(router, rwset, g) {
            let shard = router.shard_of_partition(partition);
            shard_txns[shard].push(Arc::new(fragment));
            slots[shard].push(Slot::Fragment {
                global: g,
                partition,
            });
        }
    }
    // Then single-partition transactions, in global order.
    for (i, placement) in placements.iter().enumerate() {
        if let Placement::Single { shard, .. } = placement {
            shard_txns[*shard].push(Arc::clone(&txns[i]));
            slots[*shard].push(Slot::Local { global: i });
        }
    }
    BlockPlan {
        shard_txns,
        slots,
        cross_idx,
        decisions,
        cross_sim_ns,
        exchange_ns,
        txns: n,
    }
}

impl BlockPlan {
    /// Fold the per-shard engine results back into global order, checking
    /// the protocol's core invariant: no engine may abort a reservation
    /// survivor's fragment.
    pub fn fold_outcomes(&self, shard_results: &[ProtocolBlockResult]) -> Result<Vec<TxnOutcome>> {
        let mut outcomes: Vec<TxnOutcome> = vec![TxnOutcome::Committed; self.txns];
        for (j, &g) in self.cross_idx.iter().enumerate() {
            outcomes[g] = self.decisions[j];
        }
        for (shard, shard_slots) in self.slots.iter().enumerate() {
            for (pos, slot) in shard_slots.iter().enumerate() {
                match slot {
                    Slot::Local { global } => {
                        outcomes[*global] = shard_results[shard].outcomes[pos];
                    }
                    Slot::Fragment { global, partition } => {
                        let o = shard_results[shard].outcomes[pos];
                        if o != TxnOutcome::Committed {
                            return Err(Error::Corruption(format!(
                                "shard {shard} aborted fragment of txn {global} \
                                 (partition {partition}): {o:?} — engines must \
                                 never abort reservation survivors"
                            )));
                        }
                    }
                }
            }
        }
        Ok(outcomes)
    }

    /// Global counters for the planned block (fragments excluded; one
    /// entry per submitted transaction).
    #[must_use]
    pub fn accumulate_stats(
        &self,
        outcomes: &[TxnOutcome],
        shard_results: &[ProtocolBlockResult],
    ) -> BlockStats {
        let mut stats = BlockStats {
            txns: self.txns,
            sim_ns_total: self.cross_sim_ns.iter().sum(),
            ..BlockStats::default()
        };
        for r in shard_results {
            stats.sim_ns_total += r.stats.sim_ns_total;
            stats.commit_ns_total += r.stats.commit_ns_total;
            stats.apply_noop_commands += r.stats.apply_noop_commands;
        }
        for o in outcomes {
            match o {
                TxnOutcome::Committed => stats.committed += 1,
                TxnOutcome::Aborted(AbortReason::UserAbort) => stats.user_aborted += 1,
                TxnOutcome::Aborted(AbortReason::CrossShardConflict) => {
                    stats.aborted_cross_shard += 1;
                }
                TxnOutcome::Aborted(AbortReason::BackwardDangerousStructure) => {
                    stats.aborted_rule1 += 1;
                }
                TxnOutcome::Aborted(AbortReason::InterBlockDangerousStructure) => {
                    stats.aborted_interblock += 1;
                }
                TxnOutcome::Aborted(AbortReason::WwConflict) => stats.aborted_ww += 1,
                TxnOutcome::Aborted(AbortReason::StaleRead) => stats.aborted_stale += 1,
                TxnOutcome::Aborted(AbortReason::SsiDangerousStructure) => {
                    stats.aborted_ssi += 1;
                }
                TxnOutcome::Aborted(AbortReason::EndorsementMismatch) => {
                    stats.aborted_endorsement += 1;
                }
                TxnOutcome::Aborted(AbortReason::GraphCycle) => stats.aborted_graph += 1,
            }
        }
        stats
    }

    /// Multi-partition transactions that won the reservation.
    #[must_use]
    pub fn cross_committed(&self) -> usize {
        self.decisions
            .iter()
            .filter(|d| **d == TxnOutcome::Committed)
            .count()
    }
}

/// One synchronous broadcast round: every shard ships its owned read
/// fragments of the block's multi-partition transactions to the other
/// shards; the round completes when the slowest sender finishes fanning
/// out. Fragment sizes are estimated from the read/write-set shapes.
fn exchange_ns(
    router: &ShardRouter,
    latency: &LatencyModel,
    shards: usize,
    cross_rwsets: &[Option<RwSet>],
) -> u64 {
    if shards <= 1 || cross_rwsets.iter().all(Option::is_none) {
        return 0;
    }
    let mut bytes_per_shard = vec![0u64; shards];
    for rwset in cross_rwsets.iter().flatten() {
        for r in &rwset.reads {
            // Key + observed value (row-sized) + version tag.
            bytes_per_shard[router.shard_of_key(&r.key)] += r.key.row().len() as u64 + 72;
        }
        for (key, seq) in &rwset.updates {
            // Keys + encoded commands travel with the write fragment.
            bytes_per_shard[router.shard_of_key(key)] +=
                key.row().len() as u64 + 24 * seq.len() as u64;
        }
    }
    (0..shards)
        .map(|s| {
            let fan_out = bytes_per_shard[s] * (shards as u64 - 1);
            latency.delay_ns(s, (s + 1) % shards, fan_out)
        })
        .max()
        .unwrap_or(0)
}

/// Split a surviving multi-partition transaction's read-write set into one
/// fragment per logical partition, ascending partition order.
fn split_fragments(
    router: &ShardRouter,
    rwset: &RwSet,
    global: usize,
) -> Vec<(u32, FragmentContract)> {
    let mut by_partition: BTreeMap<u32, FragmentContract> = BTreeMap::new();
    for r in &rwset.reads {
        by_partition
            .entry(router.partition_of(&r.key))
            .or_insert_with(|| FragmentContract::new(global))
            .reads
            .push(r.key.clone());
    }
    for (key, seq) in &rwset.updates {
        by_partition
            .entry(router.partition_of(key))
            .or_insert_with(|| FragmentContract::new(global))
            .updates
            .push((key.clone(), seq.clone()));
    }
    by_partition.into_iter().collect()
}

/// Contract name every cross-shard fragment carries.
pub const FRAGMENT_NAME: &str = "xshard-fragment";

/// A shard-local fragment of a multi-partition transaction: replays the
/// owned point reads (so local dependency tracking sees them) and re-issues
/// the owned update commands (which the engine evaluates against the same
/// snapshot the global simulation read — deterministic equality).
///
/// Scan predicates are *not* replayed: the cross-shard reservation already
/// serialized every surviving transaction against all predicate overlaps.
///
/// The payload encodes the complete fragment (global index, read keys, and
/// update command sequences), so a sealed sub-block commits to the
/// cross-shard writes in its Merkle root and a logged sub-block replays
/// them without re-deriving the plan.
pub struct FragmentContract {
    global: usize,
    reads: Vec<Key>,
    updates: Vec<(Key, CommandSeq)>,
}

impl FragmentContract {
    fn new(global: usize) -> FragmentContract {
        FragmentContract {
            global,
            reads: Vec::new(),
            updates: Vec::new(),
        }
    }

    /// Global index of the transaction this fragment belongs to.
    #[must_use]
    pub fn global(&self) -> usize {
        self.global
    }
}

fn put_key(w: &mut Writer, key: &Key) {
    w.put_u16(key.table().0);
    w.put_bytes(key.row());
}

fn get_key(r: &mut Reader<'_>) -> Result<Key> {
    let table = TableId(r.get_u16()?);
    let row = r.get_bytes()?;
    Ok(Key::new(table, row))
}

impl Contract for FragmentContract {
    fn execute(&self, ctx: &mut TxnCtx<'_>) -> Result<(), UserAbort> {
        for key in &self.reads {
            ctx.read(key).map_err(|e| UserAbort(e.to_string()))?;
        }
        for (key, seq) in &self.updates {
            for cmd in seq.commands() {
                ctx.update(key.clone(), cmd.clone());
            }
        }
        Ok(())
    }

    fn name(&self) -> &str {
        FRAGMENT_NAME
    }

    fn payload(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(64);
        w.put_u64(self.global as u64);
        w.put_u32(u32::try_from(self.reads.len()).expect("read count"));
        for key in &self.reads {
            put_key(&mut w, key);
        }
        w.put_u32(u32::try_from(self.updates.len()).expect("update count"));
        for (key, seq) in &self.updates {
            put_key(&mut w, key);
            seq.encode_into(&mut w);
        }
        w.finish().to_vec()
    }
}

/// [`ContractCodec`] reconstructing [`FragmentContract`]s from sealed
/// sub-blocks — composed (via [`harmony_txn::MultiCodec`]) with a
/// workload's codec to form a sharded replica's full decoding registry.
pub struct FragmentCodec;

impl ContractCodec for FragmentCodec {
    fn decode(&self, bytes: &[u8]) -> Result<Arc<dyn Contract>> {
        let (name, payload) = split_encoded(bytes)?;
        if name != FRAGMENT_NAME {
            return Err(Error::Corruption(format!(
                "not a cross-shard fragment: {name}"
            )));
        }
        let mut r = Reader::new(payload);
        let global = r.get_u64()? as usize;
        // Counts come off the wire: grow by pushing (truncation errors on
        // the first short read) instead of pre-allocating a
        // corruption-controlled capacity.
        let n_reads = r.get_u32()? as usize;
        let mut reads = Vec::new();
        for _ in 0..n_reads {
            reads.push(get_key(&mut r)?);
        }
        let n_updates = r.get_u32()? as usize;
        let mut updates = Vec::new();
        for _ in 0..n_updates {
            let key = get_key(&mut r)?;
            let seq = CommandSeq::decode_from(&mut r)?;
            updates.push((key, seq));
        }
        Ok(Arc::new(FragmentContract {
            global,
            reads,
            updates,
        }))
    }
}

/// Snapshot view assembling the whole keyspace from the owner shards.
struct MultiStoreView<'a> {
    router: &'a ShardRouter,
    stores: &'a [Arc<SnapshotStore>],
    snapshot: BlockId,
}

impl SnapshotView for MultiStoreView<'_> {
    fn get(&self, key: &Key) -> Result<Option<Value>> {
        self.stores[self.router.shard_of_key(key)].read_at(self.snapshot, key)
    }

    fn scan(
        &self,
        table: TableId,
        start: &[u8],
        end: Option<&[u8]>,
        f: &mut dyn FnMut(&[u8], &Value) -> bool,
    ) -> Result<()> {
        // Shards hold disjoint row sets: merge their snapshot scans into
        // one ordered stream. The callback-based `scan_at` cannot be
        // suspended for a streaming k-way merge, so the whole range is
        // materialized before the caller's early-stop is honored — fine
        // for the conservative cross path (declared-footprint workloads
        // never scan), but a LIMIT-style scan over a huge table would pay
        // for the full range.
        let mut merged: BTreeMap<Vec<u8>, Value> = BTreeMap::new();
        for store in self.stores {
            store.scan_at(self.snapshot, table, start, end, &mut |k, v| {
                merged.insert(k.to_vec(), v.clone());
                true
            })?;
        }
        for (k, v) in &merged {
            if !f(k, v) {
                break;
            }
        }
        Ok(())
    }

    fn version_of(&self, key: &Key) -> Option<u64> {
        self.stores[self.router.shard_of_key(key)].version_at(self.snapshot, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_txn::UpdateCommand;

    #[test]
    fn fragment_payload_roundtrip() {
        let mut seq = CommandSeq::new();
        seq.push(UpdateCommand::AddI64 {
            offset: 0,
            delta: -7,
        });
        seq.push(UpdateCommand::SetBytes {
            offset: 8,
            bytes: bytes::Bytes::from_static(b"zz"),
        });
        let frag = FragmentContract {
            global: 42,
            reads: vec![Key::from_u64(TableId(1), 9), Key::from_u64(TableId(2), 3)],
            updates: vec![(Key::from_u64(TableId(1), 9), seq.clone())],
        };
        let encoded = harmony_txn::encode_contract(&frag);
        let decoded = FragmentCodec.decode(&encoded).unwrap();
        assert_eq!(decoded.name(), FRAGMENT_NAME);
        assert_eq!(decoded.payload(), frag.payload());
        // Re-encoding the decoded fragment is byte-identical — sub-block
        // Merkle roots computed before and after a log replay agree.
        assert_eq!(harmony_txn::encode_contract(decoded.as_ref()), encoded);
    }

    #[test]
    fn fragment_codec_rejects_foreign_contracts() {
        let other = harmony_txn::FnContract::new("sb-deposit", |_: &mut TxnCtx<'_>| Ok(()));
        let encoded = harmony_txn::encode_contract(&other);
        assert!(FragmentCodec.decode(&encoded).is_err());
    }
}
