//! Planner observability: what the cross-shard planner decided, per
//! block.
//!
//! The handles live in the shard crate so both entry points — the
//! standalone [`ShardGroup`](crate::ShardGroup) and the sharded replica
//! node in `harmony-node` — report through the same family; the caller
//! picks the static label set (e.g. `replica="2"`) at registration.

use harmony_common::error::AbortReason;
use harmony_core::executor::TxnOutcome;
use harmony_metrics::{Counter, Histogram, Registry};

use crate::plan::BlockPlan;

/// Survivor-set-size histogram bounds: powers of two up to a full
/// 64-transaction cross-shard block.
pub const SURVIVOR_SET_BOUNDS: [u64; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Metric handles for the deterministic cross-shard planner.
#[derive(Clone)]
pub struct PlannerMetrics {
    /// `harmony_xshard_cross_txns_total` — transactions classified
    /// multi-partition.
    pub cross_txns: Counter,
    /// `harmony_xshard_single_txns_total` — transactions classified
    /// single-partition.
    pub single_txns: Counter,
    /// `harmony_xshard_survivors_total` — multi-partition transactions
    /// that won their reservations and were fragmented for execution.
    pub survivors: Counter,
    /// `harmony_xshard_reservation_conflicts_total` — multi-partition
    /// transactions deterministically aborted by a reservation loss.
    pub reservation_conflicts: Counter,
    /// `harmony_xshard_survivor_set_size` — per-block survivor-set size
    /// over blocks that carried at least one multi-partition transaction.
    pub survivor_set_size: Histogram,
}

impl PlannerMetrics {
    /// Register the planner metric families in `registry` under the
    /// given static labels.
    #[must_use]
    pub fn register(registry: &Registry, labels: &[(&str, &str)]) -> PlannerMetrics {
        PlannerMetrics {
            cross_txns: registry.counter_with(
                "harmony_xshard_cross_txns_total",
                "Transactions classified as multi-partition by the planner.",
                labels,
            ),
            single_txns: registry.counter_with(
                "harmony_xshard_single_txns_total",
                "Transactions classified as single-partition by the planner.",
                labels,
            ),
            survivors: registry.counter_with(
                "harmony_xshard_survivors_total",
                "Multi-partition transactions that won their reservations.",
                labels,
            ),
            reservation_conflicts: registry.counter_with(
                "harmony_xshard_reservation_conflicts_total",
                "Multi-partition transactions aborted by a deterministic reservation loss.",
                labels,
            ),
            survivor_set_size: registry.histogram_with(
                "harmony_xshard_survivor_set_size",
                "Per-block survivor-set size over blocks with cross-shard work.",
                &SURVIVOR_SET_BOUNDS,
                labels,
            ),
        }
    }

    /// Handles not attached to any registry.
    #[must_use]
    pub fn detached() -> PlannerMetrics {
        PlannerMetrics {
            cross_txns: Counter::detached(),
            single_txns: Counter::detached(),
            survivors: Counter::detached(),
            reservation_conflicts: Counter::detached(),
            survivor_set_size: Histogram::detached(&SURVIVOR_SET_BOUNDS),
        }
    }

    /// Record one planned block.
    pub fn observe(&self, plan: &BlockPlan) {
        let cross = plan.cross_idx.len();
        self.cross_txns.add(cross as u64);
        self.single_txns.add((plan.txns - cross) as u64);
        if cross > 0 {
            let survivors = plan.cross_committed();
            let conflicts = plan
                .decisions
                .iter()
                .filter(|d| **d == TxnOutcome::Aborted(AbortReason::CrossShardConflict))
                .count();
            self.survivors.add(survivors as u64);
            self.reservation_conflicts.add(conflicts as u64);
            self.survivor_set_size.observe(survivors as u64);
        }
    }
}
