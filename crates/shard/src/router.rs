//! The shard router: placing transactions onto physical shards.
//!
//! The router composes a [`Partitioner`] (fixed logical partitions) with a
//! physical shard count. Logical partition `p` lives on shard
//! `p mod shards`, so re-deploying the same chain with a different shard
//! count never changes which *partition* a key belongs to — only where
//! that partition is hosted. Transaction classification (single- vs
//! multi-partition) therefore depends only on the partitioner, which keeps
//! every commit/abort decision shard-count-invariant.

use std::sync::Arc;

use harmony_common::ids::TableId;
use harmony_txn::{Contract, Key};

use crate::partition::Partitioner;

/// Where a transaction executes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Placement {
    /// All declared keys fall into one logical partition: the transaction
    /// runs entirely inside that partition's shard, through its engine.
    Single {
        /// Hosting shard.
        shard: usize,
        /// The single logical partition touched.
        partition: u32,
    },
    /// The declared keys span several partitions — or the contract declared
    /// nothing (data-dependent accesses, scans) and must be routed
    /// conservatively. Runs through the deterministic cross-shard protocol.
    MultiPartition,
}

/// Maps logical partitions onto physical shards and classifies
/// transactions.
#[derive(Clone)]
pub struct ShardRouter {
    partitioner: Arc<dyn Partitioner>,
    shards: usize,
    /// Tables whose rows every shard keeps in full (read-only dimension
    /// tables, e.g. TPC-C `item`). Their keys are invisible to
    /// classification and exempt from genesis pruning.
    replicated: Vec<TableId>,
}

impl ShardRouter {
    /// Build a router hosting `partitioner`'s partitions on `shards`
    /// physical shards.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    #[must_use]
    pub fn new(partitioner: Arc<dyn Partitioner>, shards: usize) -> ShardRouter {
        assert!(shards > 0, "need at least one shard");
        ShardRouter {
            partitioner,
            shards,
            replicated: Vec::new(),
        }
    }

    /// Mark `tables` as **replicated**: every shard hosts their full
    /// contents (genesis pruning skips them), and their keys are ignored
    /// when classifying a transaction's declared footprint — a read of a
    /// replicated row is satisfiable on whichever shard the transaction
    /// runs.
    ///
    /// Replicated tables must be written only at genesis (`setup`): a
    /// post-genesis write would update one shard's copy and silently
    /// diverge the others. TPC-C's `item` price list is the canonical
    /// case.
    #[must_use]
    pub fn with_replicated(mut self, mut tables: Vec<TableId>) -> ShardRouter {
        tables.sort_unstable();
        tables.dedup();
        self.replicated = tables;
        self
    }

    /// Whether `table` is hosted in full on every shard.
    #[must_use]
    pub fn is_replicated(&self, table: TableId) -> bool {
        self.replicated.binary_search(&table).is_ok()
    }

    /// Number of physical shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of logical partitions.
    #[must_use]
    pub fn partitions(&self) -> u32 {
        self.partitioner.partitions()
    }

    /// Logical partition of `key`.
    #[must_use]
    pub fn partition_of(&self, key: &Key) -> u32 {
        self.partitioner.partition_of(key)
    }

    /// Hosting shard of logical partition `partition`.
    #[must_use]
    pub fn shard_of_partition(&self, partition: u32) -> usize {
        partition as usize % self.shards
    }

    /// Hosting shard of `key`.
    #[must_use]
    pub fn shard_of_key(&self, key: &Key) -> usize {
        self.shard_of_partition(self.partition_of(key))
    }

    /// Classify a transaction from its declared footprint. Keys in
    /// replicated tables are skipped: every shard can serve them, so
    /// they never force a transaction cross-shard.
    #[must_use]
    pub fn classify(&self, txn: &dyn Contract) -> Placement {
        let Some(keys) = txn.declared_keys() else {
            return Placement::MultiPartition;
        };
        let mut single: Option<u32> = None;
        for key in keys {
            if self.is_replicated(key.table()) {
                continue;
            }
            let p = self.partition_of(key);
            match single {
                None => single = Some(p),
                Some(q) if q == p => {}
                Some(_) => return Placement::MultiPartition,
            }
        }
        // A declared-empty footprint is trivially single-partition.
        let partition = single.unwrap_or(0);
        Placement::Single {
            shard: self.shard_of_partition(partition),
            partition,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::HashPartitioner;
    use harmony_common::ids::TableId;
    use harmony_txn::{FnContract, TxnCtx};

    fn router(partitions: u32, shards: usize) -> ShardRouter {
        ShardRouter::new(Arc::new(HashPartitioner::new(partitions)), shards)
    }

    fn txn_with_keys(
        keys: Vec<Key>,
    ) -> FnContract<impl Fn(&mut TxnCtx<'_>) -> Result<(), harmony_txn::UserAbort> + Send + Sync>
    {
        FnContract::new("t", |_: &mut TxnCtx<'_>| Ok(())).with_footprint(keys)
    }

    #[test]
    fn partition_to_shard_is_modular() {
        let r = router(8, 3);
        for p in 0..8 {
            assert_eq!(r.shard_of_partition(p), p as usize % 3);
        }
    }

    #[test]
    fn single_partition_footprint_routes_single() {
        let r = router(8, 4);
        let k = Key::from_u64(TableId(0), 42);
        let p = r.partition_of(&k);
        // Same row in two tables: still one partition (table-blind hash).
        let txn = txn_with_keys(vec![k.clone(), Key::from_u64(TableId(1), 42)]);
        assert_eq!(
            r.classify(&txn),
            Placement::Single {
                shard: r.shard_of_partition(p),
                partition: p
            }
        );
    }

    #[test]
    fn spanning_footprint_routes_multi() {
        let r = router(8, 4);
        // Find two u64 keys in different partitions.
        let a = Key::from_u64(TableId(0), 0);
        let b = (1..100u64)
            .map(|i| Key::from_u64(TableId(0), i))
            .find(|k| r.partition_of(k) != r.partition_of(&a))
            .expect("hash spreads");
        let txn = txn_with_keys(vec![a, b]);
        assert_eq!(r.classify(&txn), Placement::MultiPartition);
    }

    #[test]
    fn undeclared_footprint_is_conservative() {
        let r = router(4, 2);
        let txn = FnContract::new("opaque", |_: &mut TxnCtx<'_>| Ok(()));
        assert_eq!(r.classify(&txn), Placement::MultiPartition);
    }

    #[test]
    fn replicated_table_keys_never_force_cross_shard() {
        let r = router(8, 4).with_replicated(vec![TableId(7)]);
        let local = Key::from_u64(TableId(0), 42);
        let p = r.partition_of(&local);
        // A read of a replicated dimension row (any partition) plus one
        // partition's worth of real keys: still single-partition.
        let dim = (0..100u64)
            .map(|i| Key::from_u64(TableId(7), i))
            .find(|k| r.partition_of(k) != p)
            .expect("hash spreads");
        let txn = txn_with_keys(vec![local.clone(), dim]);
        assert_eq!(
            r.classify(&txn),
            Placement::Single {
                shard: r.shard_of_partition(p),
                partition: p
            }
        );
        assert!(r.is_replicated(TableId(7)));
        assert!(!r.is_replicated(TableId(0)));
    }

    #[test]
    fn replicated_only_footprint_runs_on_partition_zero() {
        // Degenerate but legal: a read-only txn touching nothing but
        // replicated tables can run anywhere; it pins to partition 0 so
        // every replica places it identically.
        let r = router(8, 4).with_replicated(vec![TableId(7)]);
        let txn = txn_with_keys(vec![Key::from_u64(TableId(7), 3)]);
        assert_eq!(
            r.classify(&txn),
            Placement::Single {
                shard: 0,
                partition: 0
            }
        );
    }

    #[test]
    fn one_shard_hosts_everything() {
        let r = router(16, 1);
        for id in 0..50 {
            assert_eq!(r.shard_of_key(&Key::from_u64(TableId(0), id)), 0);
        }
    }
}
