//! The shard router: placing transactions onto physical shards.
//!
//! The router composes a [`Partitioner`] (fixed logical partitions) with a
//! physical shard count. Logical partition `p` lives on shard
//! `p mod shards`, so re-deploying the same chain with a different shard
//! count never changes which *partition* a key belongs to — only where
//! that partition is hosted. Transaction classification (single- vs
//! multi-partition) therefore depends only on the partitioner, which keeps
//! every commit/abort decision shard-count-invariant.

use std::sync::Arc;

use harmony_common::ids::TableId;
use harmony_txn::{Contract, Key};

use crate::partition::Partitioner;

/// Where a transaction executes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Placement {
    /// All declared keys fall into one logical partition: the transaction
    /// runs entirely inside that partition's shard, through its engine.
    Single {
        /// Hosting shard.
        shard: usize,
        /// The single logical partition touched.
        partition: u32,
    },
    /// The declared keys span several partitions — or the contract declared
    /// nothing (data-dependent accesses, scans) and must be routed
    /// conservatively. Runs through the deterministic cross-shard protocol.
    MultiPartition,
}

/// Maps logical partitions onto physical shards and classifies
/// transactions.
#[derive(Clone)]
pub struct ShardRouter {
    partitioner: Arc<dyn Partitioner>,
    shards: usize,
    /// Tables whose rows every shard keeps in full (read-only dimension
    /// tables, e.g. TPC-C `item`). Their keys are invisible to
    /// classification and exempt from genesis pruning.
    replicated: Vec<TableId>,
}

impl ShardRouter {
    /// Build a router hosting `partitioner`'s partitions on `shards`
    /// physical shards.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    #[must_use]
    pub fn new(partitioner: Arc<dyn Partitioner>, shards: usize) -> ShardRouter {
        assert!(shards > 0, "need at least one shard");
        ShardRouter {
            partitioner,
            shards,
            replicated: Vec::new(),
        }
    }

    /// Mark `tables` as **replicated**: every shard hosts their full
    /// contents (genesis pruning skips them), and their keys are ignored
    /// when classifying a transaction's declared footprint — a read of a
    /// replicated row is satisfiable on whichever shard the transaction
    /// runs.
    ///
    /// Replicated tables must be written only at genesis (`setup`): a
    /// post-genesis write would update one shard's copy and silently
    /// diverge the others. TPC-C's `item` price list is the canonical
    /// case.
    #[must_use]
    pub fn with_replicated(mut self, mut tables: Vec<TableId>) -> ShardRouter {
        tables.sort_unstable();
        tables.dedup();
        self.replicated = tables;
        self
    }

    /// Whether `table` is hosted in full on every shard.
    #[must_use]
    pub fn is_replicated(&self, table: TableId) -> bool {
        self.replicated.binary_search(&table).is_ok()
    }

    /// Number of physical shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of logical partitions.
    #[must_use]
    pub fn partitions(&self) -> u32 {
        self.partitioner.partitions()
    }

    /// Logical partition of `key`.
    #[must_use]
    pub fn partition_of(&self, key: &Key) -> u32 {
        self.partitioner.partition_of(key)
    }

    /// Hosting shard of logical partition `partition`.
    #[must_use]
    pub fn shard_of_partition(&self, partition: u32) -> usize {
        partition as usize % self.shards
    }

    /// The same logical database re-hosted on `new_shards` physical
    /// shards: identical partitioner, identical replicated set, new
    /// partition→shard placement. This is the atomic router swap a
    /// topology-change (reshard) block performs at its epoch boundary —
    /// classification is untouched, so every commit/abort decision made
    /// under the old epoch is also the decision the new epoch would have
    /// made.
    ///
    /// # Panics
    /// Panics if `new_shards == 0`.
    #[must_use]
    pub fn resharded(&self, new_shards: usize) -> ShardRouter {
        assert!(new_shards > 0, "need at least one shard");
        ShardRouter {
            partitioner: Arc::clone(&self.partitioner),
            shards: new_shards,
            replicated: self.replicated.clone(),
        }
    }

    /// Hosting shard of `key`.
    #[must_use]
    pub fn shard_of_key(&self, key: &Key) -> usize {
        self.shard_of_partition(self.partition_of(key))
    }

    /// Classify a transaction from its declared footprint. Keys in
    /// replicated tables are skipped: every shard can serve them, so
    /// they never force a transaction cross-shard.
    #[must_use]
    pub fn classify(&self, txn: &dyn Contract) -> Placement {
        let Some(keys) = txn.declared_keys() else {
            return Placement::MultiPartition;
        };
        let mut single: Option<u32> = None;
        for key in keys {
            if self.is_replicated(key.table()) {
                continue;
            }
            let p = self.partition_of(key);
            match single {
                None => single = Some(p),
                Some(q) if q == p => {}
                Some(_) => return Placement::MultiPartition,
            }
        }
        // A declared-empty footprint is trivially single-partition.
        let partition = single.unwrap_or(0);
        Placement::Single {
            shard: self.shard_of_partition(partition),
            partition,
        }
    }
}

/// Magic prefix identifying a reshard marker payload inside an ordered
/// block. Chosen to collide with no contract codec: every workload codec
/// tags its payloads with a short discriminant, none of which starts with
/// this four-byte sequence.
const RESHARD_MAGIC: &[u8; 4] = b"HRSH";

/// Marker encoding version (for forward compatibility of the ordered
/// stream itself, independent of the transport wire version).
const RESHARD_VERSION: u8 = 1;

/// The payload of a **topology-change block**: the orderer seals a block
/// whose single transaction is this marker, and every sharded replica —
/// on delivering it at the same height — drains its in-flight sub-blocks,
/// re-partitions its state onto `new_shards` shards, swaps its
/// [`ShardRouter`] via [`ShardRouter::resharded`], and resumes. Because
/// the marker rides the ordered, hash-chained stream, the reshard point
/// is replicated exactly like any transaction: all replicas switch at the
/// same height or not at all.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReshardMarker {
    /// Physical shard count after the epoch boundary.
    pub new_shards: u32,
    /// Monotonic topology epoch (0 = genesis layout; each sealed marker
    /// increments it).
    pub epoch: u64,
}

impl ReshardMarker {
    /// Exact encoded length: magic + version + new_shards + epoch.
    pub const ENCODED_LEN: usize = 4 + 1 + 4 + 8;

    /// Serialize for sealing into an ordered block.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::ENCODED_LEN);
        out.extend_from_slice(RESHARD_MAGIC);
        out.push(RESHARD_VERSION);
        out.extend_from_slice(&self.new_shards.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out
    }

    /// Parse a block payload as a reshard marker. Returns `None` for
    /// anything that is not a well-formed marker (ordinary transaction
    /// payloads, short frames, unknown marker versions), so this doubles
    /// as the detection predicate replicas run before contract decoding.
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<ReshardMarker> {
        if bytes.len() != Self::ENCODED_LEN || &bytes[..4] != RESHARD_MAGIC {
            return None;
        }
        if bytes[4] != RESHARD_VERSION {
            return None;
        }
        let new_shards = u32::from_le_bytes(bytes[5..9].try_into().expect("4 bytes"));
        let epoch = u64::from_le_bytes(bytes[9..17].try_into().expect("8 bytes"));
        Some(ReshardMarker { new_shards, epoch })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::HashPartitioner;
    use harmony_common::ids::TableId;
    use harmony_txn::{FnContract, TxnCtx};

    fn router(partitions: u32, shards: usize) -> ShardRouter {
        ShardRouter::new(Arc::new(HashPartitioner::new(partitions)), shards)
    }

    fn txn_with_keys(
        keys: Vec<Key>,
    ) -> FnContract<impl Fn(&mut TxnCtx<'_>) -> Result<(), harmony_txn::UserAbort> + Send + Sync>
    {
        FnContract::new("t", |_: &mut TxnCtx<'_>| Ok(())).with_footprint(keys)
    }

    #[test]
    fn partition_to_shard_is_modular() {
        let r = router(8, 3);
        for p in 0..8 {
            assert_eq!(r.shard_of_partition(p), p as usize % 3);
        }
    }

    #[test]
    fn single_partition_footprint_routes_single() {
        let r = router(8, 4);
        let k = Key::from_u64(TableId(0), 42);
        let p = r.partition_of(&k);
        // Same row in two tables: still one partition (table-blind hash).
        let txn = txn_with_keys(vec![k.clone(), Key::from_u64(TableId(1), 42)]);
        assert_eq!(
            r.classify(&txn),
            Placement::Single {
                shard: r.shard_of_partition(p),
                partition: p
            }
        );
    }

    #[test]
    fn spanning_footprint_routes_multi() {
        let r = router(8, 4);
        // Find two u64 keys in different partitions.
        let a = Key::from_u64(TableId(0), 0);
        let b = (1..100u64)
            .map(|i| Key::from_u64(TableId(0), i))
            .find(|k| r.partition_of(k) != r.partition_of(&a))
            .expect("hash spreads");
        let txn = txn_with_keys(vec![a, b]);
        assert_eq!(r.classify(&txn), Placement::MultiPartition);
    }

    #[test]
    fn undeclared_footprint_is_conservative() {
        let r = router(4, 2);
        let txn = FnContract::new("opaque", |_: &mut TxnCtx<'_>| Ok(()));
        assert_eq!(r.classify(&txn), Placement::MultiPartition);
    }

    #[test]
    fn replicated_table_keys_never_force_cross_shard() {
        let r = router(8, 4).with_replicated(vec![TableId(7)]);
        let local = Key::from_u64(TableId(0), 42);
        let p = r.partition_of(&local);
        // A read of a replicated dimension row (any partition) plus one
        // partition's worth of real keys: still single-partition.
        let dim = (0..100u64)
            .map(|i| Key::from_u64(TableId(7), i))
            .find(|k| r.partition_of(k) != p)
            .expect("hash spreads");
        let txn = txn_with_keys(vec![local.clone(), dim]);
        assert_eq!(
            r.classify(&txn),
            Placement::Single {
                shard: r.shard_of_partition(p),
                partition: p
            }
        );
        assert!(r.is_replicated(TableId(7)));
        assert!(!r.is_replicated(TableId(0)));
    }

    #[test]
    fn replicated_only_footprint_runs_on_partition_zero() {
        // Degenerate but legal: a read-only txn touching nothing but
        // replicated tables can run anywhere; it pins to partition 0 so
        // every replica places it identically.
        let r = router(8, 4).with_replicated(vec![TableId(7)]);
        let txn = txn_with_keys(vec![Key::from_u64(TableId(7), 3)]);
        assert_eq!(
            r.classify(&txn),
            Placement::Single {
                shard: 0,
                partition: 0
            }
        );
    }

    #[test]
    fn one_shard_hosts_everything() {
        let r = router(16, 1);
        for id in 0..50 {
            assert_eq!(r.shard_of_key(&Key::from_u64(TableId(0), id)), 0);
        }
    }

    #[test]
    fn with_replicated_dedups_and_sorts() {
        let r = router(8, 2).with_replicated(vec![TableId(5), TableId(3), TableId(5), TableId(3)]);
        assert!(r.is_replicated(TableId(3)));
        assert!(r.is_replicated(TableId(5)));
        assert!(!r.is_replicated(TableId(4)));
        // Duplicates collapse: classification of a replicated-only txn is
        // unaffected by how often the operator listed the table.
        let txn = txn_with_keys(vec![Key::from_u64(TableId(5), 1)]);
        assert_eq!(
            r.classify(&txn),
            Placement::Single {
                shard: 0,
                partition: 0
            }
        );
    }

    #[test]
    fn with_replicated_empty_list_replicates_nothing() {
        let r = router(8, 2).with_replicated(Vec::new());
        for t in 0..8 {
            assert!(!r.is_replicated(TableId(t)));
        }
        // No table is exempt: a two-partition footprint is cross-shard.
        let a = Key::from_u64(TableId(0), 1);
        let b = (0..100u64)
            .map(|i| Key::from_u64(TableId(0), i))
            .find(|k| r.partition_of(k) != r.partition_of(&a))
            .expect("hash spreads");
        assert_eq!(
            r.classify(&txn_with_keys(vec![a, b])),
            Placement::MultiPartition
        );
    }

    #[test]
    fn resharded_preserves_partitions_and_replicated_set() {
        let r = router(16, 2).with_replicated(vec![TableId(9)]);
        let r4 = r.resharded(4);
        assert_eq!(r4.shards(), 4);
        assert_eq!(r4.partitions(), 16);
        assert!(r4.is_replicated(TableId(9)));
        // partition_of is epoch-invariant: the swap only moves hosting.
        for id in 0..64u64 {
            let k = Key::from_u64(TableId(0), id);
            assert_eq!(r.partition_of(&k), r4.partition_of(&k));
            assert_eq!(r4.shard_of_key(&k), r4.partition_of(&k) as usize % 4);
        }
        // Replicated keys stay invisible to classification after the swap.
        let txn = txn_with_keys(vec![Key::from_u64(TableId(9), 7)]);
        assert_eq!(
            r4.classify(&txn),
            Placement::Single {
                shard: 0,
                partition: 0
            }
        );
        // Merging back down restores the original placement function.
        let r2 = r4.resharded(2);
        for id in 0..64u64 {
            let k = Key::from_u64(TableId(0), id);
            assert_eq!(r2.shard_of_key(&k), r.shard_of_key(&k));
        }
    }

    #[test]
    fn reshard_marker_roundtrip_and_rejection() {
        let m = ReshardMarker {
            new_shards: 4,
            epoch: 3,
        };
        let bytes = m.encode();
        assert_eq!(bytes.len(), ReshardMarker::ENCODED_LEN);
        assert_eq!(ReshardMarker::decode(&bytes), Some(m));
        // Not markers: short frames, wrong magic, unknown version,
        // trailing garbage.
        assert_eq!(ReshardMarker::decode(b"HRSH"), None);
        assert_eq!(ReshardMarker::decode(&[]), None);
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert_eq!(ReshardMarker::decode(&wrong_magic), None);
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 99;
        assert_eq!(ReshardMarker::decode(&wrong_version), None);
        let mut long = bytes;
        long.push(0);
        assert_eq!(ReshardMarker::decode(&long), None);
    }
}
