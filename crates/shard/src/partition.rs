//! Keyspace partitioners.
//!
//! A partitioner carves the keyspace into a fixed number of **logical
//! partitions**. Logical partitions are deliberately decoupled from
//! physical shards (see [`crate::router::ShardRouter`]): a transaction's
//! classification as single- or multi-partition depends only on the
//! partitioner, so the commit/abort decision of every transaction is
//! *independent of the shard count* — the property the N-shard vs 1-shard
//! state-root equivalence tests rely on.
//!
//! Partitioners hash/compare only the **row bytes** of a key, never the
//! table: an entity keyed identically across tables (e.g. a Smallbank
//! customer's `checking` and `savings` rows) co-locates on one partition.

use std::sync::Arc;

use harmony_common::hash::fnv1a64;
use harmony_txn::Key;

/// Assigns every key to one of a fixed number of logical partitions.
///
/// Implementations must be pure functions of the key bytes: every replica
/// and every shard derives the same placement with no coordination.
pub trait Partitioner: Send + Sync {
    /// Number of logical partitions (≥ 1).
    fn partitions(&self) -> u32;

    /// The partition owning `key`.
    fn partition_of(&self, key: &Key) -> u32;
}

/// Hash partitioner: stable FNV-1a over the row bytes, modulo the partition
/// count. The same function the partition-aware workload generators use, so
/// their `multi_partition_ratio` knob translates exactly into cross-shard
/// transactions.
#[derive(Clone, Debug)]
pub struct HashPartitioner {
    partitions: u32,
}

impl HashPartitioner {
    /// Build with `partitions` logical partitions.
    ///
    /// # Panics
    /// Panics if `partitions == 0`.
    #[must_use]
    pub fn new(partitions: u32) -> HashPartitioner {
        assert!(partitions > 0, "need at least one partition");
        HashPartitioner { partitions }
    }
}

impl Partitioner for HashPartitioner {
    fn partitions(&self) -> u32 {
        self.partitions
    }

    fn partition_of(&self, key: &Key) -> u32 {
        (fnv1a64(key.row()) % u64::from(self.partitions)) as u32
    }
}

/// Bytes of the row prefix [`PrefixPartitioner`] hashes: one big-endian
/// `u64` entity id.
pub const ENTITY_PREFIX_BYTES: usize = 8;

/// Entity-prefix partitioner: hashes only the first
/// [`ENTITY_PREFIX_BYTES`] bytes of the row (the whole row when
/// shorter), so every key sharing an 8-byte entity prefix lands on one
/// partition.
///
/// This is the partitioner for workloads whose composite keys embed a
/// leading owning-entity id — TPC-C, where district/customer/stock/
/// orders/order-line/history keys all start with the big-endian
/// warehouse id. Under it, a contract whose whole footprint hangs off
/// one warehouse is single-partition even when some of its keys (the
/// order id handed out by the district row at execution time) cannot be
/// named in advance: any key that *will* share a declared key's prefix
/// is guaranteed the same placement.
///
/// For keys of exactly 8 bytes this is bit-identical to
/// [`HashPartitioner`] — `Key::from_u64` workloads (Smallbank, YCSB)
/// place identically under either, so switching a deployment's
/// [`Partitioning`] never moves their rows.
#[derive(Clone, Debug)]
pub struct PrefixPartitioner {
    partitions: u32,
}

impl PrefixPartitioner {
    /// Build with `partitions` logical partitions.
    ///
    /// # Panics
    /// Panics if `partitions == 0`.
    #[must_use]
    pub fn new(partitions: u32) -> PrefixPartitioner {
        assert!(partitions > 0, "need at least one partition");
        PrefixPartitioner { partitions }
    }
}

impl Partitioner for PrefixPartitioner {
    fn partitions(&self) -> u32 {
        self.partitions
    }

    fn partition_of(&self, key: &Key) -> u32 {
        let row = key.row();
        let prefix = &row[..row.len().min(ENTITY_PREFIX_BYTES)];
        (fnv1a64(prefix) % u64::from(self.partitions)) as u32
    }
}

/// Deployment knob selecting the partitioning function of a sharded
/// replica — a pure function of the key bytes, so it must be identical
/// on every replica of a chain.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Partitioning {
    /// [`HashPartitioner`] over the whole row: best spread, right for
    /// single-segment keys (Smallbank, YCSB).
    #[default]
    Hash,
    /// [`PrefixPartitioner`] over the leading 8 row bytes: co-locates
    /// composite keys with their owning entity (TPC-C warehouses),
    /// which is what lets warehouse-local NewOrder/Payment run
    /// single-shard.
    Prefix,
}

impl Partitioning {
    /// Instantiate the partitioner for `partitions` logical partitions.
    ///
    /// # Panics
    /// Panics if `partitions == 0`.
    #[must_use]
    pub fn build(self, partitions: u32) -> Arc<dyn Partitioner> {
        match self {
            Partitioning::Hash => Arc::new(HashPartitioner::new(partitions)),
            Partitioning::Prefix => Arc::new(PrefixPartitioner::new(partitions)),
        }
    }
}

/// Range partitioner: ordered split points over the row bytes. Partition
/// `i` owns rows in `[bounds[i-1], bounds[i])` (with open ends), so ordered
/// scans stay shard-local when their range respects the split points.
#[derive(Clone, Debug)]
pub struct RangePartitioner {
    /// Ascending exclusive upper bounds of partitions `0..n-1`; the last
    /// partition is unbounded above.
    bounds: Vec<Vec<u8>>,
}

impl RangePartitioner {
    /// Build from ascending split points. `n` split points define `n + 1`
    /// partitions.
    ///
    /// # Panics
    /// Panics if the split points are not strictly ascending.
    #[must_use]
    pub fn new(bounds: Vec<Vec<u8>>) -> RangePartitioner {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "split points must be strictly ascending"
        );
        RangePartitioner { bounds }
    }

    /// Even split of a dense `u64` big-endian keyspace `[0, keys)` into
    /// `partitions` contiguous ranges.
    ///
    /// # Panics
    /// Panics if `partitions == 0`.
    #[must_use]
    pub fn u64_uniform(partitions: u32, keys: u64) -> RangePartitioner {
        assert!(partitions > 0, "need at least one partition");
        let stride = (keys / u64::from(partitions)).max(1);
        let bounds = (1..partitions)
            .map(|i| (u64::from(i) * stride).to_be_bytes().to_vec())
            .collect();
        RangePartitioner::new(bounds)
    }
}

impl Partitioner for RangePartitioner {
    fn partitions(&self) -> u32 {
        self.bounds.len() as u32 + 1
    }

    fn partition_of(&self, key: &Key) -> u32 {
        // First split point strictly greater than the row = its partition.
        self.bounds
            .partition_point(|b| b.as_slice() <= key.row().as_ref()) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_common::ids::TableId;

    fn key(id: u64) -> Key {
        Key::from_u64(TableId(0), id)
    }

    #[test]
    fn hash_partitioner_is_table_blind_and_stable() {
        let p = HashPartitioner::new(8);
        for id in 0..200u64 {
            let a = Key::from_u64(TableId(0), id);
            let b = Key::from_u64(TableId(5), id);
            assert_eq!(p.partition_of(&a), p.partition_of(&b), "co-location");
            assert!(p.partition_of(&a) < 8);
            assert_eq!(p.partition_of(&a), p.partition_of(&a));
        }
    }

    #[test]
    fn hash_partitioner_agrees_with_canonical_u64_partitioning() {
        // The partition-aware workload generators steer keys using
        // `harmony_common::hash::partition_of_u64`; the router places keys
        // with `HashPartitioner`. The two must agree or the workloads'
        // multi_partition_ratio knob stops meaning "cross-shard".
        let p = HashPartitioner::new(8);
        for id in 0..500u64 {
            assert_eq!(
                u64::from(p.partition_of(&key(id))),
                harmony_common::hash::partition_of_u64(id, 8),
                "divergence at id {id}"
            );
        }
    }

    #[test]
    fn hash_partitioner_spreads() {
        let p = HashPartitioner::new(4);
        let mut counts = [0u32; 4];
        for id in 0..1000u64 {
            counts[p.partition_of(&key(id)) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 150), "{counts:?}");
    }

    #[test]
    fn prefix_partitioner_matches_hash_on_u64_keys() {
        // Smallbank/YCSB keys are exactly 8 bytes, so a deployment may
        // switch Hash ↔ Prefix without moving any of their rows.
        let h = HashPartitioner::new(16);
        let p = PrefixPartitioner::new(16);
        for id in 0..500u64 {
            assert_eq!(h.partition_of(&key(id)), p.partition_of(&key(id)));
        }
    }

    #[test]
    fn prefix_partitioner_colocates_composite_keys_with_their_entity() {
        // TPC-C-style composite keys: warehouse id, then district /
        // customer / order suffixes of various lengths.
        let p = PrefixPartitioner::new(16);
        for w in 0..50u64 {
            let entity = p.partition_of(&key(w));
            for suffix_len in 1..16usize {
                let mut row = w.to_be_bytes().to_vec();
                row.extend(std::iter::repeat_n(0xAB, suffix_len));
                assert_eq!(
                    p.partition_of(&Key::new(TableId(3), row)),
                    entity,
                    "suffix of {suffix_len} bytes moved warehouse {w}"
                );
            }
        }
    }

    #[test]
    fn prefix_partitioner_hashes_short_rows_whole() {
        let p = PrefixPartitioner::new(16);
        let short = Key::new(TableId(0), vec![1, 2, 3, 4]);
        assert!(p.partition_of(&short) < 16);
        // Stable: same 4-byte row, same partition, regardless of table.
        assert_eq!(
            p.partition_of(&short),
            p.partition_of(&Key::new(TableId(9), vec![1, 2, 3, 4]))
        );
    }

    #[test]
    fn partitioning_knob_builds_both_kinds() {
        let h = Partitioning::Hash.build(8);
        let p = Partitioning::Prefix.build(8);
        assert_eq!(h.partitions(), 8);
        assert_eq!(p.partitions(), 8);
        assert_eq!(Partitioning::default(), Partitioning::Hash);
    }

    #[test]
    fn range_partitioner_respects_bounds() {
        let p = RangePartitioner::new(vec![
            10u64.to_be_bytes().to_vec(),
            20u64.to_be_bytes().to_vec(),
        ]);
        assert_eq!(p.partitions(), 3);
        assert_eq!(p.partition_of(&key(0)), 0);
        assert_eq!(p.partition_of(&key(9)), 0);
        assert_eq!(p.partition_of(&key(10)), 1);
        assert_eq!(p.partition_of(&key(19)), 1);
        assert_eq!(p.partition_of(&key(20)), 2);
        assert_eq!(p.partition_of(&key(u64::MAX)), 2);
    }

    #[test]
    fn u64_uniform_covers_all_partitions() {
        let p = RangePartitioner::u64_uniform(4, 100);
        assert_eq!(p.partitions(), 4);
        let mut seen = std::collections::HashSet::new();
        for id in 0..100u64 {
            seen.insert(p.partition_of(&key(id)));
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn range_partitioner_rejects_unsorted_bounds() {
        let _ = RangePartitioner::new(vec![vec![5], vec![5]]);
    }
}
