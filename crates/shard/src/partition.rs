//! Keyspace partitioners.
//!
//! A partitioner carves the keyspace into a fixed number of **logical
//! partitions**. Logical partitions are deliberately decoupled from
//! physical shards (see [`crate::router::ShardRouter`]): a transaction's
//! classification as single- or multi-partition depends only on the
//! partitioner, so the commit/abort decision of every transaction is
//! *independent of the shard count* — the property the N-shard vs 1-shard
//! state-root equivalence tests rely on.
//!
//! Partitioners hash/compare only the **row bytes** of a key, never the
//! table: an entity keyed identically across tables (e.g. a Smallbank
//! customer's `checking` and `savings` rows) co-locates on one partition.

use harmony_common::hash::fnv1a64;
use harmony_txn::Key;

/// Assigns every key to one of a fixed number of logical partitions.
///
/// Implementations must be pure functions of the key bytes: every replica
/// and every shard derives the same placement with no coordination.
pub trait Partitioner: Send + Sync {
    /// Number of logical partitions (≥ 1).
    fn partitions(&self) -> u32;

    /// The partition owning `key`.
    fn partition_of(&self, key: &Key) -> u32;
}

/// Hash partitioner: stable FNV-1a over the row bytes, modulo the partition
/// count. The same function the partition-aware workload generators use, so
/// their `multi_partition_ratio` knob translates exactly into cross-shard
/// transactions.
#[derive(Clone, Debug)]
pub struct HashPartitioner {
    partitions: u32,
}

impl HashPartitioner {
    /// Build with `partitions` logical partitions.
    ///
    /// # Panics
    /// Panics if `partitions == 0`.
    #[must_use]
    pub fn new(partitions: u32) -> HashPartitioner {
        assert!(partitions > 0, "need at least one partition");
        HashPartitioner { partitions }
    }
}

impl Partitioner for HashPartitioner {
    fn partitions(&self) -> u32 {
        self.partitions
    }

    fn partition_of(&self, key: &Key) -> u32 {
        (fnv1a64(key.row()) % u64::from(self.partitions)) as u32
    }
}

/// Range partitioner: ordered split points over the row bytes. Partition
/// `i` owns rows in `[bounds[i-1], bounds[i])` (with open ends), so ordered
/// scans stay shard-local when their range respects the split points.
#[derive(Clone, Debug)]
pub struct RangePartitioner {
    /// Ascending exclusive upper bounds of partitions `0..n-1`; the last
    /// partition is unbounded above.
    bounds: Vec<Vec<u8>>,
}

impl RangePartitioner {
    /// Build from ascending split points. `n` split points define `n + 1`
    /// partitions.
    ///
    /// # Panics
    /// Panics if the split points are not strictly ascending.
    #[must_use]
    pub fn new(bounds: Vec<Vec<u8>>) -> RangePartitioner {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "split points must be strictly ascending"
        );
        RangePartitioner { bounds }
    }

    /// Even split of a dense `u64` big-endian keyspace `[0, keys)` into
    /// `partitions` contiguous ranges.
    ///
    /// # Panics
    /// Panics if `partitions == 0`.
    #[must_use]
    pub fn u64_uniform(partitions: u32, keys: u64) -> RangePartitioner {
        assert!(partitions > 0, "need at least one partition");
        let stride = (keys / u64::from(partitions)).max(1);
        let bounds = (1..partitions)
            .map(|i| (u64::from(i) * stride).to_be_bytes().to_vec())
            .collect();
        RangePartitioner::new(bounds)
    }
}

impl Partitioner for RangePartitioner {
    fn partitions(&self) -> u32 {
        self.bounds.len() as u32 + 1
    }

    fn partition_of(&self, key: &Key) -> u32 {
        // First split point strictly greater than the row = its partition.
        self.bounds
            .partition_point(|b| b.as_slice() <= key.row().as_ref()) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_common::ids::TableId;

    fn key(id: u64) -> Key {
        Key::from_u64(TableId(0), id)
    }

    #[test]
    fn hash_partitioner_is_table_blind_and_stable() {
        let p = HashPartitioner::new(8);
        for id in 0..200u64 {
            let a = Key::from_u64(TableId(0), id);
            let b = Key::from_u64(TableId(5), id);
            assert_eq!(p.partition_of(&a), p.partition_of(&b), "co-location");
            assert!(p.partition_of(&a) < 8);
            assert_eq!(p.partition_of(&a), p.partition_of(&a));
        }
    }

    #[test]
    fn hash_partitioner_agrees_with_canonical_u64_partitioning() {
        // The partition-aware workload generators steer keys using
        // `harmony_common::hash::partition_of_u64`; the router places keys
        // with `HashPartitioner`. The two must agree or the workloads'
        // multi_partition_ratio knob stops meaning "cross-shard".
        let p = HashPartitioner::new(8);
        for id in 0..500u64 {
            assert_eq!(
                u64::from(p.partition_of(&key(id))),
                harmony_common::hash::partition_of_u64(id, 8),
                "divergence at id {id}"
            );
        }
    }

    #[test]
    fn hash_partitioner_spreads() {
        let p = HashPartitioner::new(4);
        let mut counts = [0u32; 4];
        for id in 0..1000u64 {
            counts[p.partition_of(&key(id)) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 150), "{counts:?}");
    }

    #[test]
    fn range_partitioner_respects_bounds() {
        let p = RangePartitioner::new(vec![
            10u64.to_be_bytes().to_vec(),
            20u64.to_be_bytes().to_vec(),
        ]);
        assert_eq!(p.partitions(), 3);
        assert_eq!(p.partition_of(&key(0)), 0);
        assert_eq!(p.partition_of(&key(9)), 0);
        assert_eq!(p.partition_of(&key(10)), 1);
        assert_eq!(p.partition_of(&key(19)), 1);
        assert_eq!(p.partition_of(&key(20)), 2);
        assert_eq!(p.partition_of(&key(u64::MAX)), 2);
    }

    #[test]
    fn u64_uniform_covers_all_partitions() {
        let p = RangePartitioner::u64_uniform(4, 100);
        assert_eq!(p.partitions(), 4);
        let mut seen = std::collections::HashSet::new();
        for id in 0..100u64 {
            seen.insert(p.partition_of(&key(id)));
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn range_partitioner_rejects_unsorted_bounds() {
        let _ = RangePartitioner::new(vec![vec![5], vec![5]]);
    }
}
