//! Minimal fork-join helper.
//!
//! Spawns `workers` scoped threads that pull task indices from a shared
//! counter and run `f(index)`. Each worker buffers its `(index, result)`
//! pairs locally and the caller scatters the merged buffers into a
//! pre-sized slot vector, so output order is by task index regardless of
//! scheduling — one ingredient of Harmony's determinism under real
//! parallelism — with no per-item synchronization on the hot path.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Run `f` for every index in `0..n` on up to `workers` threads, returning
/// results in index order.
pub fn run_indexed<T, F>(n: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_with(n, workers, || (), |(), i| f(i))
}

/// Like [`run_indexed`], but each worker thread first builds a scratch
/// state with `init` and hands `f` a mutable reference to it for every
/// task it pulls. Hot loops use this to reuse per-worker buffers (e.g.
/// the reservation table's shard-grouping scratch) across transactions
/// instead of reallocating them per task.
pub fn run_indexed_with<S, T, I, F>(n: usize, workers: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    assert!(workers > 0, "need at least one worker");
    if n == 0 {
        return Vec::new();
    }
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    if workers == 1 || n == 1 {
        let mut scratch = init();
        for (i, slot) in slots.iter_mut().enumerate() {
            *slot = Some(f(&mut scratch, i));
        }
    } else {
        let next = AtomicUsize::new(0);
        let buffers: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers.min(n))
                .map(|_| {
                    let next = &next;
                    let init = &init;
                    let f = &f;
                    scope.spawn(move || {
                        let mut scratch = init();
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, f(&mut scratch, i)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        for (i, out) in buffers.into_iter().flatten() {
            slots[i] = Some(out);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every task index filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_in_index_order() {
        let out = run_indexed(100, 4, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_matches_parallel() {
        let seq = run_indexed(50, 1, |i| i * i);
        let par = run_indexed(50, 8, |i| i * i);
        assert_eq!(seq, par);
    }

    #[test]
    fn zero_tasks() {
        let out: Vec<u32> = run_indexed(0, 4, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_tasks() {
        let out = run_indexed(3, 16, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn scratch_is_reused_within_a_worker() {
        // Each worker's scratch counts the tasks it ran; the counts must
        // sum to n (every task sees a scratch, no scratch is shared).
        use std::sync::atomic::AtomicUsize;
        let total = AtomicUsize::new(0);
        let out = run_indexed_with(
            64,
            4,
            || 0usize,
            |count, i| {
                *count += 1;
                total.fetch_add(1, Ordering::Relaxed);
                (i, *count)
            },
        );
        assert_eq!(total.load(Ordering::Relaxed), 64);
        // Within one worker the per-scratch count strictly increases, so
        // at least one task must observe a reused scratch when n > workers.
        assert!(out.iter().any(|&(_, c)| c > 1), "scratch never reused");
    }

    #[test]
    fn each_task_runs_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let counters: Vec<AtomicU32> = (0..200).map(|_| AtomicU32::new(0)).collect();
        run_indexed(200, 8, |i| {
            counters[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "task {i}");
        }
    }
}
