//! Per-block reservation tables.
//!
//! During the simulation step every transaction registers its read-write
//! set here (the paper's `update_reservation` hash table, Algorithm 2,
//! generalized with reader tracking and range predicates). After the block
//! barrier, [`ReservationTable::fire_rw_events`] walks each key entry and
//! fires the `on_seeing_rw_dependency` events of Algorithm 1 into the
//! [`TxnMeta`](crate::meta::TxnMeta) accumulators.
//!
//! Because every transaction in a block reads the same snapshot, *every*
//! (reader, writer) pair on one key is an rw-dependency: the reader saw the
//! before-image of the writer's write.
//!
//! Registration is the write-hot path (every simulated transaction calls
//! it once), so it is tuned accordingly: shard selection reuses the key's
//! cached FNV-1a digest ([`Key::hash64`]), the per-shard maps use the
//! pass-through [`BuildNoRehash`] hasher (row bytes are hashed exactly
//! once, at key construction), and [`ReservationTable::register_with`]
//! groups a transaction's read-write set by shard so each shard lock is
//! taken once per transaction instead of once per key.

use std::collections::HashMap;

use harmony_common::hash::BuildNoRehash;
use harmony_txn::{Key, RangePredicate, RwSet};
use parking_lot::Mutex;

use crate::meta::TxnMeta;

const SHARDS: usize = 32;

/// Inline capacity of an [`IdxList`]. In a typical block almost every key
/// sees at most a couple of readers/writers, so the common case costs no
/// heap allocation at all.
const INLINE: usize = 3;

/// A `u32` list that stores its first [`INLINE`] elements inline and only
/// spills to a `Vec` beyond that. Registering a block allocates one list
/// pair per touched key; keeping the common case allocation-free is a
/// measurable win on the register hot path.
enum IdxList {
    Inline { len: u8, buf: [u32; INLINE] },
    Heap(Vec<u32>),
}

impl Default for IdxList {
    fn default() -> IdxList {
        IdxList::Inline {
            len: 0,
            buf: [0; INLINE],
        }
    }
}

impl IdxList {
    fn push(&mut self, v: u32) {
        match self {
            IdxList::Inline { len, buf } => {
                if usize::from(*len) < INLINE {
                    buf[usize::from(*len)] = v;
                    *len += 1;
                } else {
                    let mut heap = Vec::with_capacity(INLINE * 2 + 2);
                    heap.extend_from_slice(&buf[..]);
                    heap.push(v);
                    *self = IdxList::Heap(heap);
                }
            }
            IdxList::Heap(vec) => vec.push(v),
        }
    }

    fn as_slice(&self) -> &[u32] {
        match self {
            IdxList::Inline { len, buf } => &buf[..usize::from(*len)],
            IdxList::Heap(vec) => vec,
        }
    }
}

#[derive(Default)]
struct KeyEntry {
    readers: IdxList,
    writers: IdxList,
}

type KeyShard = HashMap<Key, KeyEntry, BuildNoRehash>;

/// Pre-sized per-shard map capacity: a block's keys spread over [`SHARDS`]
/// shards, so a handful of buckets per shard absorbs typical blocks
/// without rehash-and-move cycles during registration.
const SHARD_CAPACITY: usize = 32;

/// Reusable per-worker scratch for [`ReservationTable::register_with`]:
/// holds the shard-grouped `(shard, op)` pairs of one transaction so the
/// grouping buffer is allocated once per worker, not once per transaction.
#[derive(Default)]
pub struct RegisterScratch {
    /// `(shard, op index)` — ops below the transaction's read count are
    /// reads, the rest writes. Sorted to group ops by shard.
    ops: Vec<(u32, u32)>,
}

/// Reservation table for one block.
pub struct ReservationTable {
    shards: Vec<Mutex<KeyShard>>,
    preds: Mutex<Vec<(u32, RangePredicate)>>,
}

impl Default for ReservationTable {
    fn default() -> Self {
        ReservationTable::new()
    }
}

impl ReservationTable {
    /// Empty table.
    #[must_use]
    pub fn new() -> ReservationTable {
        ReservationTable {
            shards: (0..SHARDS)
                .map(|_| {
                    Mutex::new(KeyShard::with_capacity_and_hasher(
                        SHARD_CAPACITY,
                        BuildNoRehash::default(),
                    ))
                })
                .collect(),
            preds: Mutex::new(Vec::new()),
        }
    }

    fn shard_index(key: &Key) -> u32 {
        // Cached FNV-1a digest: stable across releases and never re-walks
        // the row bytes. The *high* half picks the shard — the in-shard
        // map indexes buckets with the low bits of the same digest, so
        // using the low bits here would cluster every key of a shard into
        // the same buckets.
        #[allow(clippy::cast_possible_truncation)]
        {
            ((key.hash64() >> 32) % SHARDS as u64) as u32
        }
    }

    /// Register the read-write set of the transaction at block index
    /// `idx`. Thread-safe; called concurrently as simulations finish.
    /// Convenience wrapper over [`Self::register_with`] with a throwaway
    /// scratch — workers that register many transactions should hold one
    /// [`RegisterScratch`] and reuse it.
    pub fn register(&self, idx: u32, rwset: &RwSet) {
        self.register_with(idx, rwset, &mut RegisterScratch::default());
    }

    /// Register a read-write set, grouping its keys by shard first so each
    /// shard lock is taken once per transaction rather than once per key.
    pub fn register_with(&self, idx: u32, rwset: &RwSet, scratch: &mut RegisterScratch) {
        let reads = u32::try_from(rwset.reads.len()).expect("rw-set fits u32");
        let ops = &mut scratch.ops;
        ops.clear();
        for (i, r) in rwset.reads.iter().enumerate() {
            ops.push((Self::shard_index(&r.key), i as u32));
        }
        for (i, (key, _)) in rwset.updates.iter().enumerate() {
            ops.push((Self::shard_index(key), reads + i as u32));
        }
        // Group by shard (ties keep op order: reads before writes).
        ops.sort_unstable();
        let mut at = 0;
        while at < ops.len() {
            let shard = ops[at].0;
            let mut guard = self.shards[shard as usize].lock();
            while at < ops.len() && ops[at].0 == shard {
                let op = ops[at].1;
                if op < reads {
                    let key = &rwset.reads[op as usize].key;
                    guard.entry(key.clone()).or_default().readers.push(idx);
                } else {
                    let key = &rwset.updates[(op - reads) as usize].0;
                    guard.entry(key.clone()).or_default().writers.push(idx);
                }
                at += 1;
            }
        }
        if !rwset.scans.is_empty() {
            let mut preds = self.preds.lock();
            for s in &rwset.scans {
                preds.push((idx, s.clone()));
            }
        }
    }

    /// Fire every intra-block rw-dependency event into the metas:
    /// for each key, each (reader `T_j`, writer `T_i`) pair yields
    /// `T_i ←rw T_j` — `T_j.note_out_edge(i)`, `T_i.note_in_edge(j)`.
    /// Predicate readers are treated as readers of every written key their
    /// range covers (phantom protection).
    pub fn fire_rw_events(&self, metas: &[TxnMeta]) {
        let preds = self.preds.lock();
        for shard in &self.shards {
            let shard = shard.lock();
            for (key, entry) in shard.iter() {
                for &w in entry.writers.as_slice() {
                    let w_tid = metas[w as usize].tid;
                    for &r in entry.readers.as_slice() {
                        if r == w {
                            continue;
                        }
                        let r_tid = metas[r as usize].tid;
                        metas[r as usize].note_out_edge(w_tid);
                        metas[w as usize].note_in_edge(r_tid);
                    }
                    for (r, pred) in preds.iter() {
                        if *r == w || !pred.covers(key) {
                            continue;
                        }
                        let r_tid = metas[*r as usize].tid;
                        metas[*r as usize].note_out_edge(w_tid);
                        metas[w as usize].note_in_edge(r_tid);
                    }
                }
            }
        }
    }

    /// Smallest writer TID per key (Aria-style ww validation used when
    /// update reordering is disabled): `T_j` has a ww-dependency iff some
    /// key it writes has `min_writer_tid < j`.
    #[must_use]
    pub fn min_writer_tids(&self, metas: &[TxnMeta]) -> HashMap<Key, u64> {
        let mut out = HashMap::new();
        for shard in &self.shards {
            let shard = shard.lock();
            for (key, entry) in shard.iter() {
                if let Some(min) = entry
                    .writers
                    .as_slice()
                    .iter()
                    .map(|&w| metas[w as usize].tid)
                    .min()
                {
                    out.insert(key.clone(), min);
                }
            }
        }
        out
    }

    /// Visit every written key and its writer indices.
    pub fn for_each_written_key(&self, mut f: impl FnMut(&Key, &[u32])) {
        for shard in &self.shards {
            let shard = shard.lock();
            for (key, entry) in shard.iter() {
                let writers = entry.writers.as_slice();
                if !writers.is_empty() {
                    f(key, writers);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use harmony_common::ids::TableId;
    use harmony_txn::UpdateCommand;

    fn key(s: &str) -> Key {
        Key::new(TableId(0), s.as_bytes().to_vec())
    }

    fn rw(reads: &[&str], writes: &[&str]) -> RwSet {
        let mut set = RwSet::default();
        for r in reads {
            set.record_read(key(r), None);
        }
        for w in writes {
            set.record_update(key(w), UpdateCommand::Put(Bytes::from_static(b"v")));
        }
        set
    }

    fn metas(tids: &[u64]) -> Vec<TxnMeta> {
        tids.iter().map(|&t| TxnMeta::new(t)).collect()
    }

    #[test]
    fn reader_writer_pair_fires_both_edges() {
        let table = ReservationTable::new();
        // T1 writes x; T2 reads x.
        table.register(0, &rw(&[], &["x"]));
        table.register(1, &rw(&["x"], &[]));
        let m = metas(&[1, 2]);
        table.fire_rw_events(&m);
        // Edge T1 ←rw T2: T2.min_out = 1, T1.max_in = 2.
        assert_eq!(m[1].min_out(), 1);
        assert_eq!(m[0].max_in(), 2);
    }

    #[test]
    fn figure_3a_two_txn_cycle_detected() {
        // T1 reads y writes x; T2 reads x writes y.
        let table = ReservationTable::new();
        table.register(0, &rw(&["y"], &["x"]));
        table.register(1, &rw(&["x"], &["y"]));
        let m = metas(&[1, 2]);
        table.fire_rw_events(&m);
        assert!(
            m[1].in_backward_dangerous_structure(),
            "T2 must be aborted (write-skew)"
        );
        assert!(
            !m[0].in_backward_dangerous_structure(),
            "T1 commits: min_out unchanged (its out-edge targets T2 > T1)"
        );
    }

    #[test]
    fn ww_only_conflict_fires_no_rw_events() {
        let table = ReservationTable::new();
        table.register(0, &rw(&[], &["x"]));
        table.register(1, &rw(&[], &["x"]));
        let m = metas(&[1, 2]);
        table.fire_rw_events(&m);
        assert!(!m[0].in_backward_dangerous_structure());
        assert!(!m[1].in_backward_dangerous_structure());
        // But ww map sees the conflict.
        let min_writers = table.min_writer_tids(&m);
        assert_eq!(min_writers[&key("x")], 1);
    }

    #[test]
    fn self_read_write_not_an_edge() {
        let table = ReservationTable::new();
        table.register(0, &rw(&["x"], &["x"]));
        let m = metas(&[1]);
        table.fire_rw_events(&m);
        assert_eq!(m[0].min_out(), 2, "no self-edge");
        assert_eq!(m[0].max_in(), crate::meta::NEG_INF);
    }

    #[test]
    fn predicate_read_covers_insert() {
        // T2 scans [a, m); T1 inserts "g" — a phantom. Edge T1 ←rw T2.
        let table = ReservationTable::new();
        table.register(0, &rw(&[], &["g"]));
        let mut scanner = RwSet::default();
        scanner.record_scan(RangePredicate {
            table: TableId(0),
            start: Bytes::from_static(b"a"),
            end: Some(Bytes::from_static(b"m")),
        });
        table.register(1, &scanner);
        let m = metas(&[1, 2]);
        table.fire_rw_events(&m);
        assert_eq!(m[1].min_out(), 1, "phantom registered as out-edge");
        assert_eq!(m[0].max_in(), 2);
    }

    #[test]
    fn predicate_outside_range_no_edge() {
        let table = ReservationTable::new();
        table.register(0, &rw(&[], &["z"]));
        let mut scanner = RwSet::default();
        scanner.record_scan(RangePredicate {
            table: TableId(0),
            start: Bytes::from_static(b"a"),
            end: Some(Bytes::from_static(b"m")),
        });
        table.register(1, &scanner);
        let m = metas(&[1, 2]);
        table.fire_rw_events(&m);
        assert_eq!(m[1].min_out(), 3, "no edge for out-of-range write");
    }

    #[test]
    fn multi_writer_multi_reader_hotspot() {
        // Writers T1..T3 and readers T4, T5 on one hot key.
        let table = ReservationTable::new();
        for i in 0..3 {
            table.register(i, &rw(&[], &["hot"]));
        }
        table.register(3, &rw(&["hot"], &[]));
        table.register(4, &rw(&["hot"], &[]));
        let m = metas(&[1, 2, 3, 4, 5]);
        table.fire_rw_events(&m);
        // Readers' min_out = smallest writer (1).
        assert_eq!(m[3].min_out(), 1);
        assert_eq!(m[4].min_out(), 1);
        // Writers' max_in = largest reader (5).
        for meta in m.iter().take(3) {
            assert_eq!(meta.max_in(), 5);
        }
        // No reader writes, so nobody is in a dangerous structure.
        for meta in &m {
            assert!(!meta.in_backward_dangerous_structure());
        }
    }

    #[test]
    fn idx_list_spills_past_inline_capacity() {
        let mut list = IdxList::default();
        let n = u32::try_from(INLINE).unwrap() + 5;
        for i in 0..n {
            list.push(i);
        }
        assert_eq!(list.as_slice(), (0..n).collect::<Vec<_>>().as_slice());
        assert!(matches!(list, IdxList::Heap(_)), "spilled to the heap");
    }

    #[test]
    fn hotspot_key_tracks_many_readers_and_writers() {
        // More readers/writers on one key than the inline capacity: the
        // spill path must keep every index.
        let table = ReservationTable::new();
        for i in 0..10 {
            table.register(i, &rw(&["hot"], &["hot"]));
        }
        let mut writer_count = 0;
        table.for_each_written_key(|_, ws| writer_count = ws.len());
        assert_eq!(writer_count, 10);
        let m = metas(&(1..=10).collect::<Vec<_>>());
        let min_writers = table.min_writer_tids(&m);
        assert_eq!(min_writers[&key("hot")], 1);
    }

    #[test]
    fn register_with_reused_scratch_matches_register() {
        let fresh = ReservationTable::new();
        let reused = ReservationTable::new();
        let mut scratch = RegisterScratch::default();
        let sets = [
            rw(&["a", "b"], &["x"]),
            rw(&["x"], &["a", "y"]),
            rw(&[], &["b", "x", "y"]),
        ];
        for (i, set) in sets.iter().enumerate() {
            fresh.register(i as u32, set);
            reused.register_with(i as u32, set, &mut scratch);
        }
        let m = metas(&[1, 2, 3]);
        let n = metas(&[1, 2, 3]);
        fresh.fire_rw_events(&m);
        reused.fire_rw_events(&n);
        for (a, b) in m.iter().zip(n.iter()) {
            assert_eq!(a.min_out(), b.min_out());
            assert_eq!(a.max_in(), b.max_in());
        }
        assert_eq!(fresh.min_writer_tids(&m), reused.min_writer_tids(&n));
    }

    #[test]
    fn for_each_written_key_visits_all() {
        let table = ReservationTable::new();
        table.register(0, &rw(&[], &["a", "b"]));
        table.register(1, &rw(&[], &["b"]));
        let mut seen: Vec<(String, usize)> = Vec::new();
        table.for_each_written_key(|k, ws| {
            seen.push((String::from_utf8_lossy(k.row()).into_owned(), ws.len()));
        });
        seen.sort();
        assert_eq!(seen, vec![("a".into(), 1), ("b".into(), 2)]);
    }
}
