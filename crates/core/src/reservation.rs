//! Per-block reservation tables.
//!
//! During the simulation step every transaction registers its read-write
//! set here (the paper's `update_reservation` hash table, Algorithm 2,
//! generalized with reader tracking and range predicates). After the block
//! barrier, [`ReservationTable::fire_rw_events`] walks each key entry and
//! fires the `on_seeing_rw_dependency` events of Algorithm 1 into the
//! [`TxnMeta`](crate::meta::TxnMeta) accumulators.
//!
//! Because every transaction in a block reads the same snapshot, *every*
//! (reader, writer) pair on one key is an rw-dependency: the reader saw the
//! before-image of the writer's write.

use std::collections::HashMap;

use harmony_txn::{Key, RangePredicate, RwSet};
use parking_lot::Mutex;

use crate::meta::TxnMeta;

const SHARDS: usize = 32;

#[derive(Default)]
struct KeyEntry {
    readers: Vec<u32>,
    writers: Vec<u32>,
}

/// Reservation table for one block.
pub struct ReservationTable {
    shards: Vec<Mutex<HashMap<Key, KeyEntry>>>,
    preds: Mutex<Vec<(u32, RangePredicate)>>,
}

impl Default for ReservationTable {
    fn default() -> Self {
        ReservationTable::new()
    }
}

impl ReservationTable {
    /// Empty table.
    #[must_use]
    pub fn new() -> ReservationTable {
        ReservationTable {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            preds: Mutex::new(Vec::new()),
        }
    }

    fn shard_for(&self, key: &Key) -> &Mutex<HashMap<Key, KeyEntry>> {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Register the read-write set of the transaction at block index
    /// `idx`. Thread-safe; called concurrently as simulations finish.
    pub fn register(&self, idx: u32, rwset: &RwSet) {
        for r in &rwset.reads {
            self.shard_for(&r.key)
                .lock()
                .entry(r.key.clone())
                .or_default()
                .readers
                .push(idx);
        }
        for (key, _) in &rwset.updates {
            self.shard_for(key)
                .lock()
                .entry(key.clone())
                .or_default()
                .writers
                .push(idx);
        }
        if !rwset.scans.is_empty() {
            let mut preds = self.preds.lock();
            for s in &rwset.scans {
                preds.push((idx, s.clone()));
            }
        }
    }

    /// Fire every intra-block rw-dependency event into the metas:
    /// for each key, each (reader `T_j`, writer `T_i`) pair yields
    /// `T_i ←rw T_j` — `T_j.note_out_edge(i)`, `T_i.note_in_edge(j)`.
    /// Predicate readers are treated as readers of every written key their
    /// range covers (phantom protection).
    pub fn fire_rw_events(&self, metas: &[TxnMeta]) {
        let preds = self.preds.lock();
        for shard in &self.shards {
            let shard = shard.lock();
            for (key, entry) in shard.iter() {
                for &w in &entry.writers {
                    let w_tid = metas[w as usize].tid;
                    for &r in &entry.readers {
                        if r == w {
                            continue;
                        }
                        let r_tid = metas[r as usize].tid;
                        metas[r as usize].note_out_edge(w_tid);
                        metas[w as usize].note_in_edge(r_tid);
                    }
                    for (r, pred) in preds.iter() {
                        if *r == w || !pred.covers(key) {
                            continue;
                        }
                        let r_tid = metas[*r as usize].tid;
                        metas[*r as usize].note_out_edge(w_tid);
                        metas[w as usize].note_in_edge(r_tid);
                    }
                }
            }
        }
    }

    /// Smallest writer TID per key (Aria-style ww validation used when
    /// update reordering is disabled): `T_j` has a ww-dependency iff some
    /// key it writes has `min_writer_tid < j`.
    #[must_use]
    pub fn min_writer_tids(&self, metas: &[TxnMeta]) -> HashMap<Key, u64> {
        let mut out = HashMap::new();
        for shard in &self.shards {
            let shard = shard.lock();
            for (key, entry) in shard.iter() {
                if let Some(min) = entry.writers.iter().map(|&w| metas[w as usize].tid).min() {
                    out.insert(key.clone(), min);
                }
            }
        }
        out
    }

    /// Visit every written key and its writer indices.
    pub fn for_each_written_key(&self, mut f: impl FnMut(&Key, &[u32])) {
        for shard in &self.shards {
            let shard = shard.lock();
            for (key, entry) in shard.iter() {
                if !entry.writers.is_empty() {
                    f(key, &entry.writers);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use harmony_common::ids::TableId;
    use harmony_txn::UpdateCommand;

    fn key(s: &str) -> Key {
        Key::new(TableId(0), s.as_bytes().to_vec())
    }

    fn rw(reads: &[&str], writes: &[&str]) -> RwSet {
        let mut set = RwSet::default();
        for r in reads {
            set.record_read(key(r), None);
        }
        for w in writes {
            set.record_update(key(w), UpdateCommand::Put(Bytes::from_static(b"v")));
        }
        set
    }

    fn metas(tids: &[u64]) -> Vec<TxnMeta> {
        tids.iter().map(|&t| TxnMeta::new(t)).collect()
    }

    #[test]
    fn reader_writer_pair_fires_both_edges() {
        let table = ReservationTable::new();
        // T1 writes x; T2 reads x.
        table.register(0, &rw(&[], &["x"]));
        table.register(1, &rw(&["x"], &[]));
        let m = metas(&[1, 2]);
        table.fire_rw_events(&m);
        // Edge T1 ←rw T2: T2.min_out = 1, T1.max_in = 2.
        assert_eq!(m[1].min_out(), 1);
        assert_eq!(m[0].max_in(), 2);
    }

    #[test]
    fn figure_3a_two_txn_cycle_detected() {
        // T1 reads y writes x; T2 reads x writes y.
        let table = ReservationTable::new();
        table.register(0, &rw(&["y"], &["x"]));
        table.register(1, &rw(&["x"], &["y"]));
        let m = metas(&[1, 2]);
        table.fire_rw_events(&m);
        assert!(
            m[1].in_backward_dangerous_structure(),
            "T2 must be aborted (write-skew)"
        );
        assert!(
            !m[0].in_backward_dangerous_structure(),
            "T1 commits: min_out unchanged (its out-edge targets T2 > T1)"
        );
    }

    #[test]
    fn ww_only_conflict_fires_no_rw_events() {
        let table = ReservationTable::new();
        table.register(0, &rw(&[], &["x"]));
        table.register(1, &rw(&[], &["x"]));
        let m = metas(&[1, 2]);
        table.fire_rw_events(&m);
        assert!(!m[0].in_backward_dangerous_structure());
        assert!(!m[1].in_backward_dangerous_structure());
        // But ww map sees the conflict.
        let min_writers = table.min_writer_tids(&m);
        assert_eq!(min_writers[&key("x")], 1);
    }

    #[test]
    fn self_read_write_not_an_edge() {
        let table = ReservationTable::new();
        table.register(0, &rw(&["x"], &["x"]));
        let m = metas(&[1]);
        table.fire_rw_events(&m);
        assert_eq!(m[0].min_out(), 2, "no self-edge");
        assert_eq!(m[0].max_in(), crate::meta::NEG_INF);
    }

    #[test]
    fn predicate_read_covers_insert() {
        // T2 scans [a, m); T1 inserts "g" — a phantom. Edge T1 ←rw T2.
        let table = ReservationTable::new();
        table.register(0, &rw(&[], &["g"]));
        let mut scanner = RwSet::default();
        scanner.record_scan(RangePredicate {
            table: TableId(0),
            start: Bytes::from_static(b"a"),
            end: Some(Bytes::from_static(b"m")),
        });
        table.register(1, &scanner);
        let m = metas(&[1, 2]);
        table.fire_rw_events(&m);
        assert_eq!(m[1].min_out(), 1, "phantom registered as out-edge");
        assert_eq!(m[0].max_in(), 2);
    }

    #[test]
    fn predicate_outside_range_no_edge() {
        let table = ReservationTable::new();
        table.register(0, &rw(&[], &["z"]));
        let mut scanner = RwSet::default();
        scanner.record_scan(RangePredicate {
            table: TableId(0),
            start: Bytes::from_static(b"a"),
            end: Some(Bytes::from_static(b"m")),
        });
        table.register(1, &scanner);
        let m = metas(&[1, 2]);
        table.fire_rw_events(&m);
        assert_eq!(m[1].min_out(), 3, "no edge for out-of-range write");
    }

    #[test]
    fn multi_writer_multi_reader_hotspot() {
        // Writers T1..T3 and readers T4, T5 on one hot key.
        let table = ReservationTable::new();
        for i in 0..3 {
            table.register(i, &rw(&[], &["hot"]));
        }
        table.register(3, &rw(&["hot"], &[]));
        table.register(4, &rw(&["hot"], &[]));
        let m = metas(&[1, 2, 3, 4, 5]);
        table.fire_rw_events(&m);
        // Readers' min_out = smallest writer (1).
        assert_eq!(m[3].min_out(), 1);
        assert_eq!(m[4].min_out(), 1);
        // Writers' max_in = largest reader (5).
        for meta in m.iter().take(3) {
            assert_eq!(meta.max_in(), 5);
        }
        // No reader writes, so nobody is in a dangerous structure.
        for meta in &m {
            assert!(!meta.in_backward_dangerous_structure());
        }
    }

    #[test]
    fn for_each_written_key_visits_all() {
        let table = ReservationTable::new();
        table.register(0, &rw(&[], &["a", "b"]));
        table.register(1, &rw(&[], &["b"]));
        let mut seen: Vec<(String, usize)> = Vec::new();
        table.for_each_written_key(|k, ws| {
            seen.push((String::from_utf8_lossy(&k.row).into_owned(), ws.len()));
        });
        seen.sort();
        assert_eq!(seen, vec![("a".into(), 1), ("b".into(), 2)]);
    }
}
