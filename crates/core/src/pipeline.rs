//! The inter-block pipeline (§3.4).
//!
//! Without inter-block parallelism, blocks run strictly one after another.
//! With it, block `i`'s *simulation* overlaps block `i−1`'s *commit* (the
//! commit steps still run in block order, which is what keeps Rule 3
//! deterministic). The overlap here is real — two thread teams — while the
//! virtual-time scheduler in `harmony-sim` models the same overlap for the
//! throughput figures.

use std::sync::Arc;

use harmony_common::{BlockId, Result};

use crate::config::HarmonyConfig;
use crate::executor::{BlockExecutor, BlockResult, BlockSummary, ExecBlock};
use crate::snapshot::SnapshotStore;
use crate::stats::BlockStats;

/// Aggregate report over a run of blocks.
#[derive(Debug, Default)]
pub struct PipelineReport {
    /// Per-block results in block order.
    pub blocks: Vec<BlockResult>,
    /// Aggregated counters.
    pub totals: BlockStats,
}

/// Drives consecutive blocks through a [`BlockExecutor`].
pub struct ChainPipeline {
    executor: BlockExecutor,
    prev_summary: Option<BlockSummary>,
    next_block: BlockId,
}

impl ChainPipeline {
    /// New pipeline starting at block 1 over the given store.
    #[must_use]
    pub fn new(store: Arc<SnapshotStore>, config: HarmonyConfig) -> ChainPipeline {
        ChainPipeline::starting_at(store, config, BlockId(1), None)
    }

    /// Resume a pipeline at an arbitrary block (recovery). `prev_summary`
    /// must be the summary the immediately preceding block produced in the
    /// original execution, so Rule 3 replays identically.
    #[must_use]
    pub fn starting_at(
        store: Arc<SnapshotStore>,
        config: HarmonyConfig,
        next_block: BlockId,
        prev_summary: Option<crate::executor::BlockSummary>,
    ) -> ChainPipeline {
        ChainPipeline {
            executor: BlockExecutor::new(store, config),
            prev_summary,
            next_block,
        }
    }

    /// The executor (for snapshot/config access).
    #[must_use]
    pub fn executor(&self) -> &BlockExecutor {
        &self.executor
    }

    /// Id the next submitted block must carry.
    #[must_use]
    pub fn next_block(&self) -> BlockId {
        self.next_block
    }

    /// Execute one block (no overlap with a previous call).
    pub fn execute_one(&mut self, block: &ExecBlock) -> Result<BlockResult> {
        assert_eq!(block.id, self.next_block, "blocks must be consecutive");
        let ibp = self.executor.config().inter_block_parallelism;
        let prev = if ibp {
            self.prev_summary.as_ref()
        } else {
            None
        };
        let result = self.executor.execute(block, prev)?;
        self.after_commit(&result);
        Ok(result)
    }

    fn after_commit(&mut self, result: &BlockResult) {
        // After committing block i, the oldest snapshot any in-flight block
        // can still request is i−1 (block i+1 simulates against i−1 under
        // IBP), so undo entries for writers ≤ i−1 are dead.
        self.executor
            .store()
            .gc(BlockId(result.block.0.saturating_sub(1)));
        self.prev_summary = Some(result.summary.clone());
        self.next_block = result.block.next();
    }

    /// Execute a batch of consecutive blocks. Under inter-block
    /// parallelism, block `i+1`'s simulation genuinely overlaps block
    /// `i`'s commit on separate threads.
    pub fn run_blocks(&mut self, blocks: &[ExecBlock]) -> Result<PipelineReport> {
        let mut report = PipelineReport::default();
        if blocks.is_empty() {
            return Ok(report);
        }
        let ibp = self.executor.config().inter_block_parallelism;
        if !ibp {
            for block in blocks {
                let result = self.execute_one(block)?;
                report.totals.absorb(&result.stats);
                report.blocks.push(result);
            }
            return Ok(report);
        }

        // Pipelined: sim(i+1) ∥ commit(i).
        assert_eq!(blocks[0].id, self.next_block, "blocks must be consecutive");
        for w in blocks.windows(2) {
            assert_eq!(w[0].id.next(), w[1].id, "blocks must be consecutive");
        }
        let mut sim = self.executor.simulate(&blocks[0]);
        for i in 0..blocks.len() {
            let commit_block = &blocks[i];
            let next = blocks.get(i + 1);
            let (commit_res, next_sim) = std::thread::scope(|scope| {
                let committer = scope.spawn(|| {
                    self.executor
                        .commit(commit_block, sim, self.prev_summary.as_ref())
                });
                let next_sim = next.map(|b| self.executor.simulate(b));
                (committer.join().expect("commit thread"), next_sim)
            });
            let result = commit_res?;
            self.after_commit(&result);
            report.totals.absorb(&result.stats);
            report.blocks.push(result);
            match next_sim {
                Some(s) => sim = s,
                None => break,
            }
        }
        Ok(report)
    }
}
