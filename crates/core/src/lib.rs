//! **Harmony** — the paper's deterministic concurrency control protocol.
//!
//! Harmony is an optimistic DCC: a block of transactions is *simulated*
//! against a deterministic block snapshot (read-write sets + update
//! commands captured), then *committed* with:
//!
//! 1. **Abort-minimizing validation** (Rule 1 / Algorithm 1): abort `T_j`
//!    only if it sits in a *backward dangerous structure*
//!    `T_i ←rw T_j ←rw T_k` with `i < j`, `i ≤ k` — tracked in O(e) with
//!    two per-transaction scalars `min_out` / `max_in` ([`meta`]).
//! 2. **Update reordering** (Rule 2): ww/wr conflicts never abort; update
//!    commands on one record are applied in ascending `(min_out, tid)`
//!    order, provably consistent with a topological order of the
//!    rw-subgraph ([`reorder`]).
//! 3. **Update coalescence**: all commands on one record collapse into one
//!    read-modify-write — one index lookup, one page write ([`reorder`]).
//! 4. **Inter-block parallelism** (Rule 3): block `i` simulates against the
//!    snapshot of block `i−2` while block `i−1` commits; an enhanced abort
//!    policy keeps the outcome deterministic under network asynchrony
//!    ([`pipeline`]).
//!
//! The protocol toggles (`update_reordering`, `update_coalescence`,
//! `inter_block_parallelism`) reproduce the paper's ablation (Figure 20).

pub mod config;
pub mod executor;
pub mod meta;
pub mod par;
pub mod pipeline;
pub mod reorder;
pub mod reservation;
pub mod snapshot;
pub mod stats;

pub use config::HarmonyConfig;
pub use executor::{BlockExecutor, ExecBlock, TxnOutcome, TxnResult};
pub use pipeline::{ChainPipeline, PipelineReport};
pub use snapshot::{SnapshotStore, SnapshotViewAt};
pub use stats::BlockStats;
