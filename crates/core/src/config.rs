//! Protocol configuration.

/// Harmony configuration. Default = the full protocol; the toggles
/// reproduce the paper's ablation tiers (Figure 20):
///
/// * raw-Harmony: `update_reordering = false`, `update_coalescence =
///   false`, `inter_block_parallelism = false` (ww-dependencies abort,
///   Aria-style, to preserve correctness);
/// * (II) = raw + `update_reordering`;
/// * (III) = (II) + `update_coalescence`;
/// * HarmonyBC = (III) + `inter_block_parallelism`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HarmonyConfig {
    /// Number of worker threads executing simulation / commit tasks.
    pub workers: usize,
    /// Rule 2: reorder conflicting update commands instead of aborting on
    /// ww-dependencies.
    pub update_reordering: bool,
    /// Merge all update commands on one record into a single
    /// read-modify-write (one index lookup + one page write).
    pub update_coalescence: bool,
    /// Rule 3: overlap block `i`'s simulation with block `i−1`'s commit,
    /// simulating against the snapshot of block `i−2`.
    pub inter_block_parallelism: bool,
}

impl Default for HarmonyConfig {
    fn default() -> Self {
        HarmonyConfig {
            workers: 8,
            update_reordering: true,
            update_coalescence: true,
            inter_block_parallelism: true,
        }
    }
}

impl HarmonyConfig {
    /// The paper's "raw-HarmonyBC": only abort-minimizing validation.
    #[must_use]
    pub fn raw() -> HarmonyConfig {
        HarmonyConfig {
            workers: 8,
            update_reordering: false,
            update_coalescence: false,
            inter_block_parallelism: false,
        }
    }

    /// Ablation tier (II): raw + update reordering.
    #[must_use]
    pub fn with_reordering() -> HarmonyConfig {
        HarmonyConfig {
            update_reordering: true,
            ..HarmonyConfig::raw()
        }
    }

    /// Ablation tier (III): (II) + update coalescence.
    #[must_use]
    pub fn with_coalescence() -> HarmonyConfig {
        HarmonyConfig {
            update_coalescence: true,
            ..HarmonyConfig::with_reordering()
        }
    }

    /// Single-threaded variant (useful in tests).
    #[must_use]
    pub fn single_threaded(mut self) -> HarmonyConfig {
        self.workers = 1;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_tiers_are_ordered() {
        let raw = HarmonyConfig::raw();
        assert!(!raw.update_reordering && !raw.update_coalescence);
        let t2 = HarmonyConfig::with_reordering();
        assert!(t2.update_reordering && !t2.update_coalescence);
        let t3 = HarmonyConfig::with_coalescence();
        assert!(t3.update_reordering && t3.update_coalescence);
        assert!(!t3.inter_block_parallelism);
        let full = HarmonyConfig::default();
        assert!(full.update_reordering && full.update_coalescence && full.inter_block_parallelism);
    }

    #[test]
    fn single_threaded_sets_workers() {
        assert_eq!(HarmonyConfig::default().single_threaded().workers, 1);
    }
}
