//! Update reordering (Rule 2) and update coalescence — Algorithm 2.
//!
//! After validation, the update commands of *committed* transactions are
//! grouped per key, sorted by ascending `(min_out, tid)` (Rule 2 — provably
//! a topological order of the rw-subgraph once Rule 1 eliminated all
//! backward dangerous structures, Theorem 2), and folded into one
//! *coalesced* read-modify-write per key. Exactly one transaction — the
//! plan's deterministic owner — applies each key's plan; the paper uses
//! first-comer claiming under a critical section, we assign the owner
//! deterministically (the first committed writer in apply order), which
//! has the same parallelism and makes cost attribution reproducible.

use harmony_common::{BlockId, Error, Result};
use harmony_txn::{CommandSeq, Key, RwSet};

use crate::meta::TxnMeta;
use crate::reservation::ReservationTable;
use crate::snapshot::SnapshotStore;

/// The apply plan for one key: every committed writer's command sequence in
/// serialization order, plus the owner that executes the plan.
#[derive(Debug, Clone)]
pub struct KeyPlan {
    /// The record all commands target.
    pub key: Key,
    /// `(tid, block-index, commands)` in apply order.
    pub cmds: Vec<(u64, u32, CommandSeq)>,
    /// Block index of the transaction that applies this plan.
    pub owner: u32,
}

/// Build apply plans for a block.
///
/// * `committed[idx]` — validation outcome per transaction.
/// * `reordering = true` — sort each key's updaters by `(min_out, tid)`
///   (Rule 2); `false` — sort by TID (only meaningful when ww-aborts
///   already guaranteed one committed writer per key).
pub fn build_apply_plans(
    table: &ReservationTable,
    metas: &[TxnMeta],
    rwsets: &[Option<RwSet>],
    committed: &[bool],
    reordering: bool,
) -> Vec<KeyPlan> {
    let mut plans = Vec::new();
    table.for_each_written_key(|key, writers| {
        let mut cmds: Vec<(u64, u64, u32, CommandSeq)> = writers
            .iter()
            .filter(|&&w| committed[w as usize])
            .filter_map(|&w| {
                let meta = &metas[w as usize];
                let seq = rwsets[w as usize]
                    .as_ref()
                    .and_then(|rw| rw.pending_for(key))
                    .cloned()?;
                Some((meta.min_out(), meta.tid, w, seq))
            })
            .collect();
        if cmds.is_empty() {
            return;
        }
        if reordering {
            // Rule 2: ascending min_out, ties broken by TID.
            cmds.sort_by_key(|a| (a.0, a.1));
        } else {
            cmds.sort_by_key(|c| c.1);
        }
        let owner = cmds[0].2;
        plans.push(KeyPlan {
            key: key.clone(),
            cmds: cmds
                .into_iter()
                .map(|(_, tid, idx, seq)| (tid, idx, seq))
                .collect(),
            owner,
        });
    });
    // Deterministic plan order (parallel apply iterates per owner anyway).
    plans.sort_by(|a, b| a.key.cmp(&b.key));
    plans
}

/// Apply one key's plan to the store.
///
/// With `coalesce = true` the whole plan costs one read and one write
/// (Figure 5b); with `coalesce = false` every writer's commands pay their
/// own lookup and page write (Figure 5a).
///
/// Read-modify-write commands hitting a missing record are *no-ops* (SQL
/// `UPDATE` matching zero rows); the number of skipped commands is
/// returned.
pub fn apply_key_plan(
    store: &SnapshotStore,
    block: BlockId,
    plan: &KeyPlan,
    coalesce: bool,
) -> Result<u64> {
    let mut noops = 0u64;
    let last_tid = plan.cmds.last().expect("plan never empty").0;
    if coalesce {
        // One read: current value (state after the previous block).
        let mut cur = store
            .engine()
            .get(plan.key.table(), plan.key.row())?
            .map(harmony_txn::Value::from);
        for (_, _, seq) in &plan.cmds {
            for cmd in seq.commands() {
                match cmd.apply(cur.as_ref()) {
                    Ok(v) => cur = v,
                    Err(Error::InvalidArgument(_)) => noops += 1,
                    Err(e) => return Err(e),
                }
            }
        }
        // One write (plus the undo record for snapshot readers).
        store.apply_write(block, last_tid, &plan.key, cur.as_ref())?;
    } else {
        // Each writer pays its own round trip, in plan order.
        let mut first = true;
        for (tid, _, seq) in &plan.cmds {
            let mut cur = store
                .engine()
                .get(plan.key.table(), plan.key.row())?
                .map(harmony_txn::Value::from);
            for cmd in seq.commands() {
                match cmd.apply(cur.as_ref()) {
                    Ok(v) => cur = v,
                    Err(Error::InvalidArgument(_)) => noops += 1,
                    Err(e) => return Err(e),
                }
            }
            if first {
                store.apply_write(block, *tid, &plan.key, cur.as_ref())?;
                first = false;
            } else {
                store.overwrite_in_block(*tid, &plan.key, cur.as_ref())?;
            }
        }
    }
    Ok(noops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use harmony_common::ids::TableId;
    use harmony_common::TxnId;
    use harmony_storage::{StorageConfig, StorageEngine};
    use harmony_txn::UpdateCommand;
    use std::sync::Arc;

    fn setup() -> (Arc<SnapshotStore>, TableId) {
        let engine = Arc::new(StorageEngine::open(&StorageConfig::memory()).unwrap());
        let t = engine.create_table("t").unwrap();
        (Arc::new(SnapshotStore::new(engine)), t)
    }

    fn f64v(x: f64) -> Bytes {
        Bytes::from(x.to_le_bytes().to_vec())
    }

    fn as_f64(v: &[u8]) -> f64 {
        f64::from_le_bytes(v.try_into().unwrap())
    }

    fn tid(block: u64, idx: u32) -> u64 {
        TxnId::new(BlockId(block), idx).0
    }

    /// Reproduce the paper's §3.3.1 example: T1 = add(x,10), T2 = mul(x,3),
    /// rw-subgraph says T2 must precede T1 (T1 ←rw T2 ... realised by
    /// min_out(T2) < min_out(T1)). Expected result: mul first, add second
    /// ⇒ x = 10*3 + 10 = 40.
    #[test]
    fn paper_example_reorders_mul_before_add() {
        let (store, t) = setup();
        store.engine().put(t, b"x", &10f64.to_le_bytes()).unwrap();
        let key = Key::new(t, &b"x"[..]);

        let table = ReservationTable::new();
        let t1 = tid(1, 0);
        let t2 = tid(1, 1);
        let metas = vec![TxnMeta::new(t1), TxnMeta::new(t2)];
        // T1 ←rw T2 (T2 read x's before-image of T1's write).
        metas[1].note_out_edge(t1);

        let mut rw1 = RwSet::default();
        rw1.record_update(
            key.clone(),
            UpdateCommand::AddF64 {
                offset: 0,
                delta: 10.0,
            },
        );
        let mut rw2 = RwSet::default();
        rw2.record_read(key.clone(), None);
        rw2.record_update(
            key.clone(),
            UpdateCommand::MulF64 {
                offset: 0,
                factor: 3.0,
            },
        );
        table.register(0, &rw1);
        table.register(1, &rw2);

        let rwsets = vec![Some(rw1), Some(rw2)];
        let plans = build_apply_plans(&table, &metas, &rwsets, &[true, true], true);
        assert_eq!(plans.len(), 1);
        // min_out(T2) = t1 < min_out(T1) = t1+1 ⇒ T2 first.
        assert_eq!(plans[0].cmds[0].0, t2);
        assert_eq!(plans[0].cmds[1].0, t1);

        apply_key_plan(&store, BlockId(1), &plans[0], true).unwrap();
        let v = store.engine().get(t, b"x").unwrap().unwrap();
        assert_eq!(as_f64(&v), 40.0);
    }

    #[test]
    fn without_reordering_tid_order_applies() {
        let (store, t) = setup();
        store.engine().put(t, b"x", &10f64.to_le_bytes()).unwrap();
        let key = Key::new(t, &b"x"[..]);
        let table = ReservationTable::new();
        let metas = vec![TxnMeta::new(tid(1, 0)), TxnMeta::new(tid(1, 1))];
        metas[1].note_out_edge(tid(1, 0));
        let mut rw1 = RwSet::default();
        rw1.record_update(
            key.clone(),
            UpdateCommand::AddF64 {
                offset: 0,
                delta: 10.0,
            },
        );
        let mut rw2 = RwSet::default();
        rw2.record_update(
            key.clone(),
            UpdateCommand::MulF64 {
                offset: 0,
                factor: 3.0,
            },
        );
        table.register(0, &rw1);
        table.register(1, &rw2);
        let rwsets = vec![Some(rw1), Some(rw2)];
        let plans = build_apply_plans(&table, &metas, &rwsets, &[true, true], false);
        // TID order: add first, mul second ⇒ (10+10)*3 = 60.
        apply_key_plan(&store, BlockId(1), &plans[0], true).unwrap();
        let v = store.engine().get(t, b"x").unwrap().unwrap();
        assert_eq!(as_f64(&v), 60.0);
    }

    #[test]
    fn aborted_writers_filtered_out() {
        let (store, t) = setup();
        store.engine().put(t, b"x", &f64v(1.0)).unwrap();
        let key = Key::new(t, &b"x"[..]);
        let table = ReservationTable::new();
        let metas = vec![TxnMeta::new(tid(1, 0)), TxnMeta::new(tid(1, 1))];
        let mut rw1 = RwSet::default();
        rw1.record_update(
            key.clone(),
            UpdateCommand::AddF64 {
                offset: 0,
                delta: 100.0,
            },
        );
        let mut rw2 = RwSet::default();
        rw2.record_update(
            key.clone(),
            UpdateCommand::AddF64 {
                offset: 0,
                delta: 1.0,
            },
        );
        table.register(0, &rw1);
        table.register(1, &rw2);
        let rwsets = vec![Some(rw1), Some(rw2)];
        // T1 aborted.
        let plans = build_apply_plans(&table, &metas, &rwsets, &[false, true], true);
        assert_eq!(plans[0].cmds.len(), 1);
        apply_key_plan(&store, BlockId(1), &plans[0], true).unwrap();
        let v = store.engine().get(t, b"x").unwrap().unwrap();
        assert_eq!(as_f64(&v), 2.0, "only T2's +1 applied");
    }

    #[test]
    fn all_writers_aborted_no_plan() {
        let (_store, t) = setup();
        let key = Key::new(t, &b"x"[..]);
        let table = ReservationTable::new();
        let metas = vec![TxnMeta::new(tid(1, 0))];
        let mut rw = RwSet::default();
        rw.record_update(key, UpdateCommand::Delete);
        table.register(0, &rw);
        let plans = build_apply_plans(&table, &metas, &[Some(rw)], &[false], true);
        assert!(plans.is_empty());
    }

    #[test]
    fn coalesced_and_uncoalesced_same_result_different_io() {
        for coalesce in [true, false] {
            let (store, t) = setup();
            store.engine().put(t, b"hot", &f64v(5.0)).unwrap();
            let key = Key::new(t, &b"hot"[..]);
            let table = ReservationTable::new();
            let n = 8u32;
            let metas: Vec<TxnMeta> = (0..n).map(|i| TxnMeta::new(tid(1, i))).collect();
            let mut rwsets = Vec::new();
            for i in 0..n {
                let mut rw = RwSet::default();
                rw.record_update(
                    key.clone(),
                    UpdateCommand::AddF64 {
                        offset: 0,
                        delta: 1.0,
                    },
                );
                table.register(i, &rw);
                rwsets.push(Some(rw));
            }
            let committed = vec![true; n as usize];
            let plans = build_apply_plans(&table, &metas, &rwsets, &committed, true);
            let io_before = store.engine().io_snapshot();
            apply_key_plan(&store, BlockId(1), &plans[0], coalesce).unwrap();
            let io_after = store.engine().io_snapshot().delta_since(&io_before);
            let v = store.engine().get(t, b"hot").unwrap().unwrap();
            assert_eq!(as_f64(&v), 13.0, "coalesce={coalesce}");
            if coalesce {
                assert!(
                    io_after.pool.hits <= 6,
                    "coalesced plan should touch few pages, saw {}",
                    io_after.pool.hits
                );
            }
        }
    }

    #[test]
    fn rmw_on_missing_record_is_noop() {
        let (store, t) = setup();
        let key = Key::new(t, &b"ghost"[..]);
        let table = ReservationTable::new();
        let metas = vec![TxnMeta::new(tid(1, 0))];
        let mut rw = RwSet::default();
        rw.record_update(
            key.clone(),
            UpdateCommand::AddI64 {
                offset: 0,
                delta: 5,
            },
        );
        table.register(0, &rw);
        let plans = build_apply_plans(&table, &metas, &[Some(rw)], &[true], true);
        let noops = apply_key_plan(&store, BlockId(1), &plans[0], true).unwrap();
        assert_eq!(noops, 1);
        assert_eq!(store.engine().get(t, b"ghost").unwrap(), None);
    }

    #[test]
    fn delete_then_rmw_in_plan_order() {
        // T1 deletes x, T2 adds to x; in TID order the add becomes a no-op
        // (zero-row UPDATE), matching serial execution T1; T2.
        let (store, t) = setup();
        store.engine().put(t, b"x", &f64v(9.0)).unwrap();
        let key = Key::new(t, &b"x"[..]);
        let table = ReservationTable::new();
        let metas = vec![TxnMeta::new(tid(1, 0)), TxnMeta::new(tid(1, 1))];
        let mut rw1 = RwSet::default();
        rw1.record_update(key.clone(), UpdateCommand::Delete);
        let mut rw2 = RwSet::default();
        rw2.record_update(
            key.clone(),
            UpdateCommand::AddF64 {
                offset: 0,
                delta: 1.0,
            },
        );
        table.register(0, &rw1);
        table.register(1, &rw2);
        let plans = build_apply_plans(&table, &metas, &[Some(rw1), Some(rw2)], &[true, true], true);
        let noops = apply_key_plan(&store, BlockId(1), &plans[0], true).unwrap();
        assert_eq!(noops, 1);
        assert_eq!(store.engine().get(t, b"x").unwrap(), None);
    }
}
