//! Block-snapshot MVCC over the storage engine.
//!
//! Snapshot-based ODCCs (Aria, RBC, Harmony — Table 2c of the paper) need a
//! *deterministic block snapshot*: the state after a specific block, used
//! as the single source of truth by every replica. [`SnapshotStore`] layers
//! an undo-based multi-version overlay on the storage engine:
//!
//! * commits write the engine *in place* (paying the realistic buffer-pool
//!   / disk costs) while recording per-key before-images tagged with the
//!   writer block;
//! * `read_at(s, key)` reconstructs the state after block `s` by returning
//!   the before-image of the oldest writer newer than `s`;
//! * once no in-flight block can request a snapshot older than `s`,
//!   [`SnapshotStore::gc`] drops the stale undo entries (pipeline depth is
//!   2, so the undo chain per key stays ≤ 2 entries).
//!
//! # Hot-path layout
//!
//! The overlay sits on the per-transaction critical path, so its layout is
//! tuned for the access mix the executor produces:
//!
//! * **Zero re-hashing.** Shard selection uses the key's cached FNV-1a
//!   digest ([`Key::hash64`]) and the per-shard map uses the pass-through
//!   [`BuildNoRehash`] hasher, so a key's row bytes are hashed exactly once
//!   — at key construction — no matter how many probes follow. (FNV-1a is
//!   also stable across releases, unlike `std`'s `DefaultHasher`, which
//!   keeps hash-derived placement deterministic.)
//! * **One map, one arena.** Undo chains and writer (version) history for
//!   a key live in a single [`KeyState`] entry; undo nodes are allocated
//!   from a per-shard arena with a free list (chains stay ≤ pipeline
//!   depth, so slots recycle instead of churning the allocator), and
//!   `apply_write` clones the key only on first touch instead of once per
//!   chain.
//! * **Range-probed scans.** Each shard keeps a per-table ordered index of
//!   rows with live before-images; `scan_at` range-probes only the scanned
//!   interval instead of walking every undo chain in every shard, and a
//!   per-shard block→keys log gives `export_undo_for` and `gc` the exact
//!   candidate set.
//! * **Lock-free empty checks.** Each shard maintains atomic counters of
//!   live undo entries and resident keys; `read_at`/`version_at` skip the
//!   shard lock entirely in the common no-overlay case, and `gc` skips
//!   shards with nothing to collect.

use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use harmony_common::hash::BuildNoRehash;
use harmony_common::ids::TableId;
use harmony_common::{BlockId, Result};
use harmony_storage::StorageEngine;
use harmony_txn::{Key, SnapshotView, Value};
use parking_lot::RwLock;

const SHARDS: usize = 64;

/// Sentinel arena index: "no undo node".
const NIL: u32 = u32::MAX;

/// One before-image in a shard's undo arena. Chains are threaded through
/// `prev` (newest node first), so pushing a version is O(1) and no per-key
/// `Vec` is allocated.
#[derive(Debug)]
struct UndoNode {
    writer_block: BlockId,
    before: Option<Value>,
    /// Arena index of the next-older entry for the same key, or [`NIL`].
    prev: u32,
}

/// Per-key overlay state: the newest undo node plus the writer history.
/// Sharing one map entry across both chains is what lets `apply_write`
/// clone the key once (a cheap `Bytes` refcount bump) instead of twice.
#[derive(Debug)]
struct KeyState {
    /// Newest live undo node (arena index), or [`NIL`].
    undo_head: u32,
    /// Writer history, oldest→newest `(block, tid)` — versions for
    /// SOV-style stale-read validation at any retained snapshot.
    versions: Vec<(BlockId, u64)>,
}

impl Default for KeyState {
    fn default() -> KeyState {
        KeyState {
            undo_head: NIL,
            versions: Vec::new(),
        }
    }
}

#[derive(Default)]
struct Shard {
    /// Overlay state per key, probed with the key's cached hash.
    map: HashMap<Key, KeyState, BuildNoRehash>,
    /// Undo node storage; freed slots are recycled via `free`.
    arena: Vec<UndoNode>,
    free: Vec<u32>,
    /// Per-table ordered index of rows with live before-images. `scan_at`
    /// range-probes this instead of walking the whole map; the stored
    /// `Key` shares the row's `Bytes` and carries the cached hash for the
    /// map probe.
    rows: HashMap<TableId, BTreeMap<Bytes, Key>>,
    /// Keys that recorded an undo entry per writer block — the exact
    /// candidate sets for `export_undo_for` and `gc`.
    by_block: BTreeMap<BlockId, Vec<Key>>,
}

struct ShardCell {
    shard: RwLock<Shard>,
    /// Live undo nodes in the shard. Read via one atomic load by the
    /// `read_at`/`scan_at` fast paths and the `gc` skip.
    undo_entries: AtomicUsize,
    /// Keys resident in the map (version history outlives undo entries).
    keys: AtomicUsize,
}

impl Default for ShardCell {
    fn default() -> ShardCell {
        ShardCell {
            shard: RwLock::new(Shard::default()),
            undo_entries: AtomicUsize::new(0),
            keys: AtomicUsize::new(0),
        }
    }
}

impl ShardCell {
    /// Record one before-image for `(key, block)` — the single insertion
    /// path shared by `apply_write` and `import_undo_for`, so the atomic
    /// counters, row index and block log can never drift apart.
    fn insert_undo(&self, key: &Key, block: BlockId, tid: u64, before: Option<Value>) {
        let mut guard = self.shard.write();
        if !guard.map.contains_key(key) {
            guard.map.insert(key.clone(), KeyState::default());
            self.keys.fetch_add(1, Ordering::Release);
        }
        let Shard {
            map,
            arena,
            free,
            rows,
            by_block,
        } = &mut *guard;
        let state = map.get_mut(key).expect("resident just above");
        debug_assert!(
            state.undo_head == NIL || arena[state.undo_head as usize].writer_block < block,
            "undo chains grow strictly newer (one entry per (key, block))"
        );
        let node = UndoNode {
            writer_block: block,
            before,
            prev: state.undo_head,
        };
        let first_live = state.undo_head == NIL;
        let idx = match free.pop() {
            Some(slot) => {
                arena[slot as usize] = node;
                slot
            }
            None => {
                arena.push(node);
                u32::try_from(arena.len() - 1).expect("arena fits u32")
            }
        };
        state.undo_head = idx;
        state.versions.push((block, tid));
        if first_live {
            rows.entry(key.table())
                .or_default()
                .insert(key.row().clone(), key.clone());
        }
        by_block.entry(block).or_default().push(key.clone());
        self.undo_entries.fetch_add(1, Ordering::Release);
    }
}

impl Shard {
    /// Walk `key`'s undo chain for the visible node at `snapshot`: the
    /// *oldest* writer newer than the snapshot holds the before-image.
    fn visible_undo(&self, state: &KeyState, snapshot: BlockId) -> Option<&UndoNode> {
        let mut visible = None;
        let mut idx = state.undo_head;
        while idx != NIL {
            let node = &self.arena[idx as usize];
            if node.writer_block <= snapshot {
                break;
            }
            visible = Some(node);
            idx = node.prev;
        }
        visible
    }
}

/// Multi-version snapshot overlay over a [`StorageEngine`].
pub struct SnapshotStore {
    engine: Arc<StorageEngine>,
    shards: Vec<ShardCell>,
}

impl SnapshotStore {
    /// Wrap an engine. The engine's current contents are defined to be the
    /// state after `BlockId(0)` (genesis / initial load).
    #[must_use]
    pub fn new(engine: Arc<StorageEngine>) -> SnapshotStore {
        SnapshotStore {
            engine,
            shards: (0..SHARDS).map(|_| ShardCell::default()).collect(),
        }
    }

    /// The wrapped engine.
    #[must_use]
    pub fn engine(&self) -> &Arc<StorageEngine> {
        &self.engine
    }

    fn cell_for(&self, key: &Key) -> &ShardCell {
        // The cached FNV-1a digest replaces the per-access `DefaultHasher`
        // pass over the row bytes (and is stable across releases). Shard
        // selection uses the *high* half of the digest: the in-shard hash
        // map indexes buckets with the low bits of the same value, so
        // carving the shard out of the low bits would make every key in a
        // shard collide into the same bucket cluster.
        &self.shards[((key.hash64() >> 32) as usize) % SHARDS]
    }

    /// Apply one committed write on behalf of block `block` / writer `tid`.
    /// Must be called at most once per (key, block) — Harmony's coalescence
    /// guarantees that. Records the before-image for snapshot readers.
    ///
    /// GC horizons must not move backwards across calls (the pipeline's
    /// are monotonic), see [`SnapshotStore::gc`].
    pub fn apply_write(
        &self,
        block: BlockId,
        tid: u64,
        key: &Key,
        value: Option<&Value>,
    ) -> Result<()> {
        let before = self.engine.get(key.table(), key.row())?.map(Value::from);
        self.cell_for(key).insert_undo(key, block, tid, before);
        match value {
            Some(v) => self.engine.put(key.table(), key.row(), v)?,
            None => {
                let _ = self.engine.delete(key.table(), key.row())?;
            }
        }
        Ok(())
    }

    /// Overwrite `key` again *within the block that already recorded its
    /// undo entry* (uncoalesced apply path: later writers of the same key
    /// re-write the record without adding undo entries).
    ///
    /// Contract: the caller must have issued `apply_write` for this key's
    /// block first. If no version entry exists the engine write still goes
    /// through but the version history is left untouched — snapshot
    /// readers then have no before-image to hide the write (pinned by the
    /// `overwrite_without_prior_version_is_engine_only` test).
    pub fn overwrite_in_block(&self, tid: u64, key: &Key, value: Option<&Value>) -> Result<()> {
        {
            let mut shard = self.cell_for(key).shard.write();
            if let Some(last) = shard
                .map
                .get_mut(key)
                .and_then(|state| state.versions.last_mut())
            {
                last.1 = tid;
            }
        }
        match value {
            Some(v) => self.engine.put(key.table(), key.row(), v)?,
            None => {
                let _ = self.engine.delete(key.table(), key.row())?;
            }
        }
        Ok(())
    }

    /// Read `key` as of the state after block `snapshot`.
    pub fn read_at(&self, snapshot: BlockId, key: &Key) -> Result<Option<Value>> {
        let cell = self.cell_for(key);
        // Common case: the shard holds no before-images at all — serve the
        // engine value without taking the shard lock.
        if cell.undo_entries.load(Ordering::Acquire) != 0 {
            let shard = cell.shard.read();
            if let Some(state) = shard.map.get(key) {
                if let Some(node) = shard.visible_undo(state, snapshot) {
                    return Ok(node.before.clone());
                }
            }
        }
        Ok(self.engine.get(key.table(), key.row())?.map(Value::from))
    }

    /// Ordered scan of `[start, end)` in `table` as of the state after
    /// block `snapshot`. Only rows of the scanned interval are probed for
    /// overrides (via each shard's per-table ordered row index).
    pub fn scan_at(
        &self,
        snapshot: BlockId,
        table: TableId,
        start: &[u8],
        end: Option<&[u8]>,
        f: &mut dyn FnMut(&[u8], &Value) -> bool,
    ) -> Result<()> {
        // Collect snapshot-visible overrides for keys with newer writers.
        let mut overrides: BTreeMap<Bytes, Option<Value>> = BTreeMap::new();
        let bounds: (Bound<&[u8]>, Bound<&[u8]>) = (
            Bound::Included(start),
            end.map_or(Bound::Unbounded, Bound::Excluded),
        );
        for cell in &self.shards {
            if cell.undo_entries.load(Ordering::Acquire) == 0 {
                continue;
            }
            let shard = cell.shard.read();
            let Some(index) = shard.rows.get(&table) else {
                continue;
            };
            for (row, key) in index.range::<[u8], _>(bounds) {
                let state = shard.map.get(key).expect("indexed rows are resident");
                if let Some(node) = shard.visible_undo(state, snapshot) {
                    overrides.insert(row.clone(), node.before.clone());
                }
            }
        }
        if overrides.is_empty() {
            return self
                .engine
                .scan(table, start, end, |k, v| f(k, &Value::copy_from_slice(v)));
        }
        // Merge engine rows with overrides (override wins; None hides).
        let mut merged: BTreeMap<Bytes, Value> = BTreeMap::new();
        self.engine.scan(table, start, end, |k, v| {
            merged.insert(Bytes::copy_from_slice(k), Value::copy_from_slice(v));
            true
        })?;
        for (row, before) in overrides {
            match before {
                Some(v) => {
                    merged.insert(row, v);
                }
                None => {
                    merged.remove(&row);
                }
            }
        }
        for (k, v) in &merged {
            if !f(k, v) {
                break;
            }
        }
        Ok(())
    }

    /// Last-writer TID of `key` (`None` before any overlay write).
    #[must_use]
    pub fn version_of(&self, key: &Key) -> Option<u64> {
        let cell = self.cell_for(key);
        if cell.keys.load(Ordering::Acquire) == 0 {
            return None;
        }
        cell.shard
            .read()
            .map
            .get(key)
            .and_then(|state| state.versions.last())
            .map(|(_, tid)| *tid)
    }

    /// Last-writer TID of `key` as of the state after block `snapshot`
    /// (`None` = written only by the initial load, or never).
    #[must_use]
    pub fn version_at(&self, snapshot: BlockId, key: &Key) -> Option<u64> {
        let cell = self.cell_for(key);
        if cell.keys.load(Ordering::Acquire) == 0 {
            return None;
        }
        cell.shard
            .read()
            .map
            .get(key)
            .and_then(|state| state.versions.iter().rev().find(|(b, _)| *b <= snapshot))
            .map(|(_, tid)| *tid)
    }

    /// Drop undo entries that no live snapshot can request: everything
    /// with `writer_block <= oldest_needed` (a snapshot at `s` needs
    /// before-images of writers `> s` only). Version history keeps the
    /// newest entry at-or-before the horizon as the base version.
    ///
    /// Shards holding no undo entries are skipped without taking their
    /// write lock; the number of shards actually swept is returned
    /// (diagnostics / tests). Horizons must be non-decreasing across calls
    /// — the per-shard block log this walks is pruned as it collects, so a
    /// later call with an older horizon would find nothing.
    pub fn gc(&self, oldest_needed: BlockId) -> usize {
        let mut swept = 0;
        for cell in &self.shards {
            // Fast path: nothing to collect in this shard.
            if cell.undo_entries.load(Ordering::Acquire) == 0 {
                continue;
            }
            let mut guard = cell.shard.write();
            let live = guard.by_block.split_off(&BlockId(oldest_needed.0 + 1));
            let stale = std::mem::replace(&mut guard.by_block, live);
            if stale.is_empty() {
                continue; // undo entries exist but all are newer than the horizon
            }
            swept += 1;
            let Shard {
                map,
                arena,
                free,
                rows,
                ..
            } = &mut *guard;
            let mut freed = 0usize;
            for key in stale.values().flatten() {
                let Some(state) = map.get_mut(key) else {
                    continue;
                };
                // Split the chain at the newest stale node. Stale nodes
                // form the old suffix because blocks only grow.
                let mut newest_live = None;
                let mut idx = state.undo_head;
                while idx != NIL && arena[idx as usize].writer_block > oldest_needed {
                    newest_live = Some(idx);
                    idx = arena[idx as usize].prev;
                }
                if idx == NIL {
                    continue; // already collected via another block's list
                }
                match newest_live {
                    Some(n) => arena[n as usize].prev = NIL,
                    None => state.undo_head = NIL,
                }
                while idx != NIL {
                    let prev = arena[idx as usize].prev;
                    arena[idx as usize].before = None; // release the value now
                    free.push(idx);
                    freed += 1;
                    idx = prev;
                }
                if state.undo_head == NIL {
                    if let Some(index) = rows.get_mut(&key.table()) {
                        index.remove(key.row().as_ref() as &[u8]);
                    }
                }
                if let Some(base) = state
                    .versions
                    .iter()
                    .rposition(|(b, _)| *b <= oldest_needed)
                {
                    state.versions.drain(..base);
                }
            }
            cell.undo_entries.fetch_sub(freed, Ordering::Release);
        }
        swept
    }

    /// Number of keys with live undo entries (tests / diagnostics).
    #[must_use]
    pub fn undo_keys(&self) -> usize {
        self.shards
            .iter()
            .map(|cell| {
                cell.shard
                    .read()
                    .rows
                    .values()
                    .map(BTreeMap::len)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Export the before-images recorded by block `block` (checkpointing
    /// support: under inter-block parallelism, block `c + 1` simulates
    /// against snapshot `c − 1`, so recovery from a checkpoint at `c` must
    /// be able to reconstruct that older snapshot). Probes only the keys
    /// the block actually wrote (per-shard block log), not every chain.
    #[must_use]
    pub fn export_undo_for(&self, block: BlockId) -> Vec<(Key, Option<Value>)> {
        let mut out = Vec::new();
        for cell in &self.shards {
            if cell.undo_entries.load(Ordering::Acquire) == 0 {
                continue;
            }
            let shard = cell.shard.read();
            let Some(keys) = shard.by_block.get(&block) else {
                continue;
            };
            for key in keys {
                let Some(state) = shard.map.get(key) else {
                    continue;
                };
                let mut idx = state.undo_head;
                while idx != NIL {
                    let node = &shard.arena[idx as usize];
                    if node.writer_block < block {
                        break;
                    }
                    if node.writer_block == block {
                        out.push((key.clone(), node.before.clone()));
                        break;
                    }
                    idx = node.prev;
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// The write-set of block `block`: every key it wrote, sorted and
    /// deduplicated. This is what the chain layer folds into the incremental
    /// state commitment at apply time — the per-shard block logs record
    /// exactly one entry per (key, block), and the log for `block` survives
    /// until GC advances past it, so the fold must happen before the *next*
    /// block's GC runs (i.e. during apply of `block` itself).
    #[must_use]
    pub fn keys_written_in(&self, block: BlockId) -> Vec<Key> {
        let mut out = Vec::new();
        for cell in &self.shards {
            if cell.undo_entries.load(Ordering::Acquire) == 0 {
                continue;
            }
            let shard = cell.shard.read();
            if let Some(keys) = shard.by_block.get(&block) {
                out.extend(keys.iter().cloned());
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Re-install before-images exported by [`Self::export_undo_for`]
    /// (recovery path). Also restores the version history entry for the
    /// writing block.
    pub fn import_undo_for(&self, block: BlockId, entries: &[(Key, Option<Value>)], tid: u64) {
        for (key, before) in entries {
            self.cell_for(key)
                .insert_undo(key, block, tid, before.clone());
        }
    }

    /// A [`SnapshotView`] of the state after `block`.
    #[must_use]
    pub fn view_at(&self, block: BlockId) -> SnapshotViewAt<'_> {
        SnapshotViewAt { store: self, block }
    }
}

/// [`SnapshotView`] adapter: reads the state after a fixed block.
pub struct SnapshotViewAt<'a> {
    store: &'a SnapshotStore,
    block: BlockId,
}

impl SnapshotView for SnapshotViewAt<'_> {
    fn get(&self, key: &Key) -> Result<Option<Value>> {
        self.store.read_at(self.block, key)
    }

    fn scan(
        &self,
        table: TableId,
        start: &[u8],
        end: Option<&[u8]>,
        f: &mut dyn FnMut(&[u8], &Value) -> bool,
    ) -> Result<()> {
        self.store.scan_at(self.block, table, start, end, f)
    }

    fn version_of(&self, key: &Key) -> Option<u64> {
        self.store.version_at(self.block, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_storage::StorageConfig;

    fn store() -> (SnapshotStore, TableId) {
        let engine = Arc::new(StorageEngine::open(&StorageConfig::memory()).unwrap());
        let t = engine.create_table("t").unwrap();
        (SnapshotStore::new(engine), t)
    }

    fn key(t: TableId, s: &str) -> Key {
        Key::new(t, s.as_bytes().to_vec())
    }

    fn val(s: &str) -> Value {
        Value::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn snapshot_isolation_across_blocks() {
        let (s, t) = store();
        s.engine().put(t, b"x", b"v0").unwrap(); // genesis state
        s.apply_write(BlockId(1), 100, &key(t, "x"), Some(&val("v1")))
            .unwrap();
        s.apply_write(BlockId(2), 200, &key(t, "x"), Some(&val("v2")))
            .unwrap();
        assert_eq!(
            s.read_at(BlockId(0), &key(t, "x")).unwrap(),
            Some(val("v0"))
        );
        assert_eq!(
            s.read_at(BlockId(1), &key(t, "x")).unwrap(),
            Some(val("v1"))
        );
        assert_eq!(
            s.read_at(BlockId(2), &key(t, "x")).unwrap(),
            Some(val("v2"))
        );
        assert_eq!(
            s.read_at(BlockId(9), &key(t, "x")).unwrap(),
            Some(val("v2"))
        );
    }

    #[test]
    fn keys_written_in_exports_sorted_per_block_write_set() {
        let (s, t) = store();
        s.apply_write(BlockId(1), 1, &key(t, "b"), Some(&val("b1")))
            .unwrap();
        s.apply_write(BlockId(1), 2, &key(t, "a"), Some(&val("a1")))
            .unwrap();
        s.apply_write(BlockId(1), 3, &key(t, "c"), None).unwrap(); // delete counts
        s.apply_write(BlockId(2), 4, &key(t, "a"), Some(&val("a2")))
            .unwrap();
        assert_eq!(
            s.keys_written_in(BlockId(1)),
            vec![key(t, "a"), key(t, "b"), key(t, "c")]
        );
        assert_eq!(s.keys_written_in(BlockId(2)), vec![key(t, "a")]);
        assert!(s.keys_written_in(BlockId(3)).is_empty());
        // GC past block 1 drops its log but keeps block 2's.
        s.gc(BlockId(1));
        assert!(s.keys_written_in(BlockId(1)).is_empty());
        assert_eq!(s.keys_written_in(BlockId(2)), vec![key(t, "a")]);
    }

    #[test]
    fn snapshot_hides_insert_and_restores_delete() {
        let (s, t) = store();
        s.engine().put(t, b"old", b"o").unwrap();
        s.apply_write(BlockId(1), 1, &key(t, "new"), Some(&val("n")))
            .unwrap();
        s.apply_write(BlockId(1), 2, &key(t, "old"), None).unwrap();
        // At snapshot 0: "new" invisible, "old" still present.
        assert_eq!(s.read_at(BlockId(0), &key(t, "new")).unwrap(), None);
        assert_eq!(
            s.read_at(BlockId(0), &key(t, "old")).unwrap(),
            Some(val("o"))
        );
        // At snapshot 1: reversed.
        assert_eq!(
            s.read_at(BlockId(1), &key(t, "new")).unwrap(),
            Some(val("n"))
        );
        assert_eq!(s.read_at(BlockId(1), &key(t, "old")).unwrap(), None);
    }

    #[test]
    fn scan_at_sees_snapshot_consistent_rows() {
        let (s, t) = store();
        s.engine().put(t, b"a", b"a0").unwrap();
        s.engine().put(t, b"c", b"c0").unwrap();
        s.apply_write(BlockId(1), 1, &key(t, "b"), Some(&val("b1")))
            .unwrap(); // insert
        s.apply_write(BlockId(1), 2, &key(t, "c"), None).unwrap(); // delete
        s.apply_write(BlockId(1), 3, &key(t, "a"), Some(&val("a1")))
            .unwrap(); // update

        let collect = |snap: u64| {
            let mut rows = Vec::new();
            s.scan_at(BlockId(snap), t, b"", None, &mut |k, v| {
                rows.push((k.to_vec(), v.clone()));
                true
            })
            .unwrap();
            rows
        };
        let snap0 = collect(0);
        assert_eq!(
            snap0,
            vec![(b"a".to_vec(), val("a0")), (b"c".to_vec(), val("c0")),]
        );
        let snap1 = collect(1);
        assert_eq!(
            snap1,
            vec![(b"a".to_vec(), val("a1")), (b"b".to_vec(), val("b1")),]
        );
    }

    #[test]
    fn scan_at_range_probes_only_the_interval() {
        let (s, t) = store();
        for i in 0..100u64 {
            s.engine().put(t, &i.to_be_bytes(), b"base").unwrap();
        }
        for i in 0..100u64 {
            s.apply_write(BlockId(1), i, &Key::from_u64(t, i), Some(&val("new")))
                .unwrap();
        }
        let mut rows = Vec::new();
        s.scan_at(
            BlockId(0),
            t,
            &40u64.to_be_bytes(),
            Some(&45u64.to_be_bytes()),
            &mut |k, v| {
                rows.push((k.to_vec(), v.clone()));
                true
            },
        )
        .unwrap();
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().all(|(_, v)| v == &val("base")));
    }

    #[test]
    fn versions_track_last_writer() {
        let (s, t) = store();
        assert_eq!(s.version_of(&key(t, "x")), None);
        s.apply_write(BlockId(1), 111, &key(t, "x"), Some(&val("v")))
            .unwrap();
        assert_eq!(s.version_of(&key(t, "x")), Some(111));
        s.apply_write(BlockId(2), 222, &key(t, "x"), Some(&val("w")))
            .unwrap();
        assert_eq!(s.version_of(&key(t, "x")), Some(222));
    }

    #[test]
    fn gc_drops_only_stale_entries() {
        let (s, t) = store();
        s.engine().put(t, b"x", b"v0").unwrap();
        s.apply_write(BlockId(1), 1, &key(t, "x"), Some(&val("v1")))
            .unwrap();
        s.apply_write(BlockId(2), 2, &key(t, "x"), Some(&val("v2")))
            .unwrap();
        assert_eq!(s.undo_keys(), 1);
        s.gc(BlockId(1));
        // Snapshot 1 must still be reconstructible.
        assert_eq!(
            s.read_at(BlockId(1), &key(t, "x")).unwrap(),
            Some(val("v1"))
        );
        s.gc(BlockId(2));
        assert_eq!(s.undo_keys(), 0);
        // Latest state still served from the engine.
        assert_eq!(
            s.read_at(BlockId(5), &key(t, "x")).unwrap(),
            Some(val("v2"))
        );
    }

    #[test]
    fn gc_fast_path_skips_clean_shards() {
        let (s, t) = store();
        // Nothing written: no shard is swept.
        assert_eq!(s.gc(BlockId(5)), 0);
        s.apply_write(BlockId(1), 1, &key(t, "a"), Some(&val("v")))
            .unwrap();
        s.apply_write(BlockId(1), 2, &key(t, "b"), Some(&val("v")))
            .unwrap();
        // Undo entries exist but are newer than the horizon: nothing swept.
        assert_eq!(s.gc(BlockId(0)), 0);
        assert_eq!(s.undo_keys(), 2);
        // Two keys land in at most two shards; only those are swept.
        let swept = s.gc(BlockId(1));
        assert!((1..=2).contains(&swept), "swept {swept} shards");
        assert_eq!(s.undo_keys(), 0);
        // Everything already collected: the whole pass is lock-free.
        assert_eq!(s.gc(BlockId(2)), 0);
    }

    #[test]
    fn arena_slots_are_recycled_across_gc_cycles() {
        let (s, t) = store();
        s.engine().put(t, b"x", b"v0").unwrap();
        // Steady-state pipeline: one write + one gc per block. The arena
        // must not grow with the number of blocks.
        for b in 1..=100u64 {
            s.apply_write(BlockId(b), b, &key(t, "x"), Some(&val("v")))
                .unwrap();
            s.gc(BlockId(b.saturating_sub(1)));
        }
        let cell = s.cell_for(&key(t, "x"));
        let arena_len = cell.shard.read().arena.len();
        assert!(arena_len <= 2, "arena grew to {arena_len} slots");
    }

    #[test]
    fn overwrite_without_prior_version_is_engine_only() {
        // Contract pin: overwrite_in_block on a key with no prior version
        // entry writes the engine but records neither a version nor an
        // undo entry (callers must apply_write first; see the method docs).
        let (s, t) = store();
        s.overwrite_in_block(7, &key(t, "ghost"), Some(&val("g")))
            .unwrap();
        assert_eq!(s.engine().get(t, b"ghost").unwrap().unwrap(), b"g");
        assert_eq!(s.version_of(&key(t, "ghost")), None, "no version recorded");
        assert_eq!(s.undo_keys(), 0, "no undo entry recorded");
        // Snapshot readers consequently see the overwrite at any snapshot.
        assert_eq!(
            s.read_at(BlockId(0), &key(t, "ghost")).unwrap(),
            Some(val("g"))
        );
    }

    #[test]
    fn overwrite_after_apply_write_updates_last_writer() {
        let (s, t) = store();
        s.engine().put(t, b"x", b"v0").unwrap();
        s.apply_write(BlockId(1), 10, &key(t, "x"), Some(&val("v1")))
            .unwrap();
        s.overwrite_in_block(11, &key(t, "x"), Some(&val("v1b")))
            .unwrap();
        assert_eq!(s.version_of(&key(t, "x")), Some(11));
        // The undo chain still restores the pre-block value.
        assert_eq!(
            s.read_at(BlockId(0), &key(t, "x")).unwrap(),
            Some(val("v0"))
        );
    }

    #[test]
    fn scan_at_consistent_under_concurrent_later_block_writes() {
        // Robustness pin: scans of an old snapshot racing the *next*
        // block's apply step must neither deadlock nor tear rows — every
        // returned value is one of the two committed states of its row,
        // and once the writer joins the scan is exact.
        let (s, t) = store();
        for i in 0..200u64 {
            s.engine().put(t, &i.to_be_bytes(), b"v1").unwrap();
        }
        let writer = |store: &SnapshotStore| {
            for i in 0..200u64 {
                store
                    .apply_write(BlockId(2), i, &Key::from_u64(t, i), Some(&val("v2")))
                    .unwrap();
            }
        };
        std::thread::scope(|scope| {
            let sref = &s;
            scope.spawn(move || writer(sref));
            for _ in 0..20 {
                let mut rows = 0usize;
                sref.scan_at(BlockId(1), t, b"", None, &mut |_, v| {
                    assert!(v == &val("v1") || v == &val("v2"), "torn row value {v:?}");
                    rows += 1;
                    true
                })
                .unwrap();
                assert_eq!(rows, 200, "rows must never disappear mid-apply");
            }
        });
        // Writer finished: snapshot 1 is exactly the pre-block state.
        let mut seen = 0usize;
        s.scan_at(BlockId(1), t, b"", None, &mut |_, v| {
            assert_eq!(v, &val("v1"));
            seen += 1;
            true
        })
        .unwrap();
        assert_eq!(seen, 200);
        // And snapshot 2 is the post-block state.
        s.scan_at(BlockId(2), t, b"", None, &mut |_, v| {
            assert_eq!(v, &val("v2"));
            true
        })
        .unwrap();
    }

    #[test]
    fn export_import_roundtrip_restores_snapshots() {
        let (s, t) = store();
        s.engine().put(t, b"x", b"v0").unwrap();
        s.apply_write(BlockId(1), 1, &key(t, "x"), Some(&val("v1")))
            .unwrap();
        s.apply_write(BlockId(2), 2, &key(t, "x"), Some(&val("v2")))
            .unwrap();
        s.apply_write(BlockId(2), 3, &key(t, "y"), Some(&val("y2")))
            .unwrap();
        let undo2 = s.export_undo_for(BlockId(2));
        assert_eq!(undo2.len(), 2, "block 2 wrote x and y");
        // Fresh store at the post-block-2 state.
        let (s2, t2) = store();
        assert_eq!(t, t2);
        s2.engine().put(t, b"x", b"v2").unwrap();
        s2.engine().put(t, b"y", b"y2").unwrap();
        s2.import_undo_for(BlockId(2), &undo2, 9);
        assert_eq!(
            s2.read_at(BlockId(1), &key(t, "x")).unwrap(),
            Some(val("v1"))
        );
        assert_eq!(s2.read_at(BlockId(1), &key(t, "y")).unwrap(), None);
        assert_eq!(s2.version_of(&key(t, "y")), Some(9));
    }

    #[test]
    fn view_adapter_implements_snapshot_view() {
        let (s, t) = store();
        s.engine().put(t, b"k", b"v").unwrap();
        s.apply_write(BlockId(3), 1, &key(t, "k"), Some(&val("w")))
            .unwrap();
        let v0 = s.view_at(BlockId(0));
        assert_eq!(v0.get(&key(t, "k")).unwrap(), Some(val("v")));
        let v3 = s.view_at(BlockId(3));
        assert_eq!(v3.get(&key(t, "k")).unwrap(), Some(val("w")));
        assert_eq!(v3.version_of(&key(t, "k")), Some(1));
    }
}
