//! Block-snapshot MVCC over the storage engine.
//!
//! Snapshot-based ODCCs (Aria, RBC, Harmony — Table 2c of the paper) need a
//! *deterministic block snapshot*: the state after a specific block, used
//! as the single source of truth by every replica. [`SnapshotStore`] layers
//! an undo-based multi-version overlay on the storage engine:
//!
//! * commits write the engine *in place* (paying the realistic buffer-pool
//!   / disk costs) while recording per-key before-images tagged with the
//!   writer block;
//! * `read_at(s, key)` reconstructs the state after block `s` by returning
//!   the before-image of the oldest writer newer than `s`;
//! * once no in-flight block can request a snapshot older than `s`,
//!   [`SnapshotStore::gc`] drops the stale undo entries (pipeline depth is
//!   2, so the undo chain per key stays ≤ 2 entries).

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use harmony_common::ids::TableId;
use harmony_common::{BlockId, Result};
use harmony_storage::StorageEngine;
use harmony_txn::{Key, SnapshotView, Value};
use parking_lot::RwLock;

const SHARDS: usize = 64;

#[derive(Clone, Debug)]
struct UndoEntry {
    writer_block: BlockId,
    before: Option<Value>,
}

#[derive(Default)]
struct Shard {
    /// Undo chains ordered oldest→newest per key.
    undo: HashMap<Key, Vec<UndoEntry>>,
    /// Writer history per key, oldest→newest `(block, tid)` — versions for
    /// SOV-style stale-read validation at any retained snapshot.
    versions: HashMap<Key, Vec<(BlockId, u64)>>,
}

/// Multi-version snapshot overlay over a [`StorageEngine`].
pub struct SnapshotStore {
    engine: Arc<StorageEngine>,
    shards: Vec<RwLock<Shard>>,
}

impl SnapshotStore {
    /// Wrap an engine. The engine's current contents are defined to be the
    /// state after `BlockId(0)` (genesis / initial load).
    #[must_use]
    pub fn new(engine: Arc<StorageEngine>) -> SnapshotStore {
        SnapshotStore {
            engine,
            shards: (0..SHARDS).map(|_| RwLock::new(Shard::default())).collect(),
        }
    }

    /// The wrapped engine.
    #[must_use]
    pub fn engine(&self) -> &Arc<StorageEngine> {
        &self.engine
    }

    fn shard_for(&self, key: &Key) -> &RwLock<Shard> {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Apply one committed write on behalf of block `block` / writer `tid`.
    /// Must be called at most once per (key, block) — Harmony's coalescence
    /// guarantees that. Records the before-image for snapshot readers.
    pub fn apply_write(
        &self,
        block: BlockId,
        tid: u64,
        key: &Key,
        value: Option<&Value>,
    ) -> Result<()> {
        let before = self.engine.get(key.table, &key.row)?.map(Value::from);
        {
            let mut shard = self.shard_for(key).write();
            let chain = shard.undo.entry(key.clone()).or_default();
            debug_assert!(
                chain.last().is_none_or(|e| e.writer_block < block),
                "apply_write called twice for one (key, block)"
            );
            chain.push(UndoEntry {
                writer_block: block,
                before,
            });
            shard
                .versions
                .entry(key.clone())
                .or_default()
                .push((block, tid));
        }
        match value {
            Some(v) => self.engine.put(key.table, &key.row, v)?,
            None => {
                let _ = self.engine.delete(key.table, &key.row)?;
            }
        }
        Ok(())
    }

    /// Overwrite `key` again *within the block that already recorded its
    /// undo entry* (uncoalesced apply path: later writers of the same key
    /// re-write the record without adding undo entries).
    pub fn overwrite_in_block(&self, tid: u64, key: &Key, value: Option<&Value>) -> Result<()> {
        {
            let mut shard = self.shard_for(key).write();
            if let Some(last) = shard
                .versions
                .get_mut(key)
                .and_then(|chain| chain.last_mut())
            {
                last.1 = tid;
            }
        }
        match value {
            Some(v) => self.engine.put(key.table, &key.row, v)?,
            None => {
                let _ = self.engine.delete(key.table, &key.row)?;
            }
        }
        Ok(())
    }

    /// Read `key` as of the state after block `snapshot`.
    pub fn read_at(&self, snapshot: BlockId, key: &Key) -> Result<Option<Value>> {
        {
            let shard = self.shard_for(key).read();
            if let Some(chain) = shard.undo.get(key) {
                // Oldest writer newer than the snapshot holds the visible
                // before-image.
                if let Some(e) = chain.iter().find(|e| e.writer_block > snapshot) {
                    return Ok(e.before.clone());
                }
            }
        }
        Ok(self.engine.get(key.table, &key.row)?.map(Value::from))
    }

    /// Ordered scan of `[start, end)` in `table` as of the state after
    /// block `snapshot`.
    pub fn scan_at(
        &self,
        snapshot: BlockId,
        table: TableId,
        start: &[u8],
        end: Option<&[u8]>,
        f: &mut dyn FnMut(&[u8], &Value) -> bool,
    ) -> Result<()> {
        // Collect snapshot-visible overrides for keys with newer writers.
        let mut overrides: BTreeMap<Vec<u8>, Option<Value>> = BTreeMap::new();
        for shard in &self.shards {
            let shard = shard.read();
            for (key, chain) in &shard.undo {
                if key.table != table
                    || key.row.as_ref() < start
                    || end.is_some_and(|e| key.row.as_ref() >= e)
                {
                    continue;
                }
                if let Some(e) = chain.iter().find(|e| e.writer_block > snapshot) {
                    overrides.insert(key.row.to_vec(), e.before.clone());
                }
            }
        }
        if overrides.is_empty() {
            return self
                .engine
                .scan(table, start, end, |k, v| f(k, &Value::copy_from_slice(v)));
        }
        // Merge engine rows with overrides (override wins; None hides).
        let mut merged: BTreeMap<Vec<u8>, Value> = BTreeMap::new();
        self.engine.scan(table, start, end, |k, v| {
            merged.insert(k.to_vec(), Value::copy_from_slice(v));
            true
        })?;
        for (row, before) in overrides {
            match before {
                Some(v) => {
                    merged.insert(row, v);
                }
                None => {
                    merged.remove(&row);
                }
            }
        }
        for (k, v) in &merged {
            if !f(k, v) {
                break;
            }
        }
        Ok(())
    }

    /// Last-writer TID of `key` (`None` before any overlay write).
    #[must_use]
    pub fn version_of(&self, key: &Key) -> Option<u64> {
        self.shard_for(key)
            .read()
            .versions
            .get(key)
            .and_then(|chain| chain.last())
            .map(|(_, tid)| *tid)
    }

    /// Last-writer TID of `key` as of the state after block `snapshot`
    /// (`None` = written only by the initial load, or never).
    #[must_use]
    pub fn version_at(&self, snapshot: BlockId, key: &Key) -> Option<u64> {
        self.shard_for(key)
            .read()
            .versions
            .get(key)
            .and_then(|chain| chain.iter().rev().find(|(b, _)| *b <= snapshot))
            .map(|(_, tid)| *tid)
    }

    /// Drop undo entries that no live snapshot can request: everything
    /// with `writer_block <= oldest_needed` (a snapshot at `s` needs
    /// before-images of writers `> s` only). Version history keeps the
    /// newest entry at-or-before the horizon as the base version.
    pub fn gc(&self, oldest_needed: BlockId) {
        for shard in &self.shards {
            let mut shard = shard.write();
            shard.undo.retain(|_, chain| {
                chain.retain(|e| e.writer_block > oldest_needed);
                !chain.is_empty()
            });
            for chain in shard.versions.values_mut() {
                if let Some(base) = chain.iter().rposition(|(b, _)| *b <= oldest_needed) {
                    chain.drain(..base);
                }
            }
        }
    }

    /// Number of keys with live undo entries (tests / diagnostics).
    #[must_use]
    pub fn undo_keys(&self) -> usize {
        self.shards.iter().map(|s| s.read().undo.len()).sum()
    }

    /// Export the before-images recorded by block `block` (checkpointing
    /// support: under inter-block parallelism, block `c + 1` simulates
    /// against snapshot `c − 1`, so recovery from a checkpoint at `c` must
    /// be able to reconstruct that older snapshot).
    #[must_use]
    pub fn export_undo_for(&self, block: BlockId) -> Vec<(Key, Option<Value>)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.read();
            for (key, chain) in &shard.undo {
                if let Some(e) = chain.iter().find(|e| e.writer_block == block) {
                    out.push((key.clone(), e.before.clone()));
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Re-install before-images exported by [`Self::export_undo_for`]
    /// (recovery path). Also restores the version history entry for the
    /// writing block.
    pub fn import_undo_for(&self, block: BlockId, entries: &[(Key, Option<Value>)], tid: u64) {
        for (key, before) in entries {
            let mut shard = self.shard_for(key).write();
            shard.undo.entry(key.clone()).or_default().push(UndoEntry {
                writer_block: block,
                before: before.clone(),
            });
            shard
                .versions
                .entry(key.clone())
                .or_default()
                .push((block, tid));
        }
    }

    /// A [`SnapshotView`] of the state after `block`.
    #[must_use]
    pub fn view_at(&self, block: BlockId) -> SnapshotViewAt<'_> {
        SnapshotViewAt { store: self, block }
    }
}

/// [`SnapshotView`] adapter: reads the state after a fixed block.
pub struct SnapshotViewAt<'a> {
    store: &'a SnapshotStore,
    block: BlockId,
}

impl SnapshotView for SnapshotViewAt<'_> {
    fn get(&self, key: &Key) -> Result<Option<Value>> {
        self.store.read_at(self.block, key)
    }

    fn scan(
        &self,
        table: TableId,
        start: &[u8],
        end: Option<&[u8]>,
        f: &mut dyn FnMut(&[u8], &Value) -> bool,
    ) -> Result<()> {
        self.store.scan_at(self.block, table, start, end, f)
    }

    fn version_of(&self, key: &Key) -> Option<u64> {
        self.store.version_at(self.block, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_storage::StorageConfig;

    fn store() -> (SnapshotStore, TableId) {
        let engine = Arc::new(StorageEngine::open(&StorageConfig::memory()).unwrap());
        let t = engine.create_table("t").unwrap();
        (SnapshotStore::new(engine), t)
    }

    fn key(t: TableId, s: &str) -> Key {
        Key::new(t, s.as_bytes().to_vec())
    }

    fn val(s: &str) -> Value {
        Value::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn snapshot_isolation_across_blocks() {
        let (s, t) = store();
        s.engine().put(t, b"x", b"v0").unwrap(); // genesis state
        s.apply_write(BlockId(1), 100, &key(t, "x"), Some(&val("v1")))
            .unwrap();
        s.apply_write(BlockId(2), 200, &key(t, "x"), Some(&val("v2")))
            .unwrap();
        assert_eq!(
            s.read_at(BlockId(0), &key(t, "x")).unwrap(),
            Some(val("v0"))
        );
        assert_eq!(
            s.read_at(BlockId(1), &key(t, "x")).unwrap(),
            Some(val("v1"))
        );
        assert_eq!(
            s.read_at(BlockId(2), &key(t, "x")).unwrap(),
            Some(val("v2"))
        );
        assert_eq!(
            s.read_at(BlockId(9), &key(t, "x")).unwrap(),
            Some(val("v2"))
        );
    }

    #[test]
    fn snapshot_hides_insert_and_restores_delete() {
        let (s, t) = store();
        s.engine().put(t, b"old", b"o").unwrap();
        s.apply_write(BlockId(1), 1, &key(t, "new"), Some(&val("n")))
            .unwrap();
        s.apply_write(BlockId(1), 2, &key(t, "old"), None).unwrap();
        // At snapshot 0: "new" invisible, "old" still present.
        assert_eq!(s.read_at(BlockId(0), &key(t, "new")).unwrap(), None);
        assert_eq!(
            s.read_at(BlockId(0), &key(t, "old")).unwrap(),
            Some(val("o"))
        );
        // At snapshot 1: reversed.
        assert_eq!(
            s.read_at(BlockId(1), &key(t, "new")).unwrap(),
            Some(val("n"))
        );
        assert_eq!(s.read_at(BlockId(1), &key(t, "old")).unwrap(), None);
    }

    #[test]
    fn scan_at_sees_snapshot_consistent_rows() {
        let (s, t) = store();
        s.engine().put(t, b"a", b"a0").unwrap();
        s.engine().put(t, b"c", b"c0").unwrap();
        s.apply_write(BlockId(1), 1, &key(t, "b"), Some(&val("b1")))
            .unwrap(); // insert
        s.apply_write(BlockId(1), 2, &key(t, "c"), None).unwrap(); // delete
        s.apply_write(BlockId(1), 3, &key(t, "a"), Some(&val("a1")))
            .unwrap(); // update

        let collect = |snap: u64| {
            let mut rows = Vec::new();
            s.scan_at(BlockId(snap), t, b"", None, &mut |k, v| {
                rows.push((k.to_vec(), v.clone()));
                true
            })
            .unwrap();
            rows
        };
        let snap0 = collect(0);
        assert_eq!(
            snap0,
            vec![(b"a".to_vec(), val("a0")), (b"c".to_vec(), val("c0")),]
        );
        let snap1 = collect(1);
        assert_eq!(
            snap1,
            vec![(b"a".to_vec(), val("a1")), (b"b".to_vec(), val("b1")),]
        );
    }

    #[test]
    fn versions_track_last_writer() {
        let (s, t) = store();
        assert_eq!(s.version_of(&key(t, "x")), None);
        s.apply_write(BlockId(1), 111, &key(t, "x"), Some(&val("v")))
            .unwrap();
        assert_eq!(s.version_of(&key(t, "x")), Some(111));
        s.apply_write(BlockId(2), 222, &key(t, "x"), Some(&val("w")))
            .unwrap();
        assert_eq!(s.version_of(&key(t, "x")), Some(222));
    }

    #[test]
    fn gc_drops_only_stale_entries() {
        let (s, t) = store();
        s.engine().put(t, b"x", b"v0").unwrap();
        s.apply_write(BlockId(1), 1, &key(t, "x"), Some(&val("v1")))
            .unwrap();
        s.apply_write(BlockId(2), 2, &key(t, "x"), Some(&val("v2")))
            .unwrap();
        assert_eq!(s.undo_keys(), 1);
        s.gc(BlockId(1));
        // Snapshot 1 must still be reconstructible.
        assert_eq!(
            s.read_at(BlockId(1), &key(t, "x")).unwrap(),
            Some(val("v1"))
        );
        s.gc(BlockId(2));
        assert_eq!(s.undo_keys(), 0);
        // Latest state still served from the engine.
        assert_eq!(
            s.read_at(BlockId(5), &key(t, "x")).unwrap(),
            Some(val("v2"))
        );
    }

    #[test]
    fn view_adapter_implements_snapshot_view() {
        let (s, t) = store();
        s.engine().put(t, b"k", b"v").unwrap();
        s.apply_write(BlockId(3), 1, &key(t, "k"), Some(&val("w")))
            .unwrap();
        let v0 = s.view_at(BlockId(0));
        assert_eq!(v0.get(&key(t, "k")).unwrap(), Some(val("v")));
        let v3 = s.view_at(BlockId(3));
        assert_eq!(v3.get(&key(t, "k")).unwrap(), Some(val("w")));
        assert_eq!(v3.version_of(&key(t, "k")), Some(1));
    }
}
