//! Per-block execution statistics.

use std::fmt;

/// Counters produced by executing one block (or aggregated over many).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BlockStats {
    /// Transactions in the block.
    pub txns: usize,
    /// Committed transactions.
    pub committed: usize,
    /// Aborts by Rule 1 (intra-block backward dangerous structure).
    pub aborted_rule1: usize,
    /// Aborts by Rule 3(ii) (inter-block dangerous structure).
    pub aborted_interblock: usize,
    /// Aborts by ww-dependency (Aria/RBC first-committer-wins; Harmony
    /// only when update reordering is disabled).
    pub aborted_ww: usize,
    /// Stale-read aborts (Fabric MVCC validation, Aria raw-dependency).
    pub aborted_stale: usize,
    /// SSI dangerous-structure aborts (RBC).
    pub aborted_ssi: usize,
    /// Endorsement mismatch aborts (SOV architectures).
    pub aborted_endorsement: usize,
    /// Dependency-graph cycle / graph-cap drops (FastFabric#).
    pub aborted_graph: usize,
    /// Deterministic cross-shard reservation losses (sharded execution).
    pub aborted_cross_shard: usize,
    /// Deterministic business aborts (contract logic).
    pub user_aborted: usize,
    /// RMW commands skipped because their record was missing at apply time
    /// (zero-row UPDATE semantics).
    pub apply_noop_commands: u64,
    /// Total virtual nanoseconds spent in the simulation step.
    pub sim_ns_total: u64,
    /// Total virtual nanoseconds spent in the commit step.
    pub commit_ns_total: u64,
}

impl BlockStats {
    /// Protocol-induced aborts (excludes user aborts).
    #[must_use]
    pub fn protocol_aborts(&self) -> usize {
        self.aborted_rule1
            + self.aborted_interblock
            + self.aborted_ww
            + self.aborted_stale
            + self.aborted_ssi
            + self.aborted_endorsement
            + self.aborted_graph
            + self.aborted_cross_shard
    }

    /// Abort rate over protocol-eligible transactions
    /// (`protocol aborts / (txns - user aborts)`), the metric the paper's
    /// abort-rate plots use.
    #[must_use]
    pub fn abort_rate(&self) -> f64 {
        let eligible = self.txns.saturating_sub(self.user_aborted);
        if eligible == 0 {
            0.0
        } else {
            self.protocol_aborts() as f64 / eligible as f64
        }
    }

    /// Static metric labels for every abort cause, in the order
    /// [`Self::abort_counts`] reports them — the full label set of the
    /// `..._aborted_txns_total{reason=...}` families.
    pub const ABORT_REASONS: [&'static str; 9] = [
        "rule1",
        "interblock",
        "ww",
        "stale",
        "ssi",
        "endorsement",
        "graph",
        "cross_shard",
        "user",
    ];

    /// Every abort counter paired with its static metric label (order of
    /// [`Self::ABORT_REASONS`]). Deriving labels here keeps the
    /// per-field counters and any labeled metric view in permanent
    /// agreement.
    #[must_use]
    pub fn abort_counts(&self) -> [(&'static str, usize); 9] {
        [
            (Self::ABORT_REASONS[0], self.aborted_rule1),
            (Self::ABORT_REASONS[1], self.aborted_interblock),
            (Self::ABORT_REASONS[2], self.aborted_ww),
            (Self::ABORT_REASONS[3], self.aborted_stale),
            (Self::ABORT_REASONS[4], self.aborted_ssi),
            (Self::ABORT_REASONS[5], self.aborted_endorsement),
            (Self::ABORT_REASONS[6], self.aborted_graph),
            (Self::ABORT_REASONS[7], self.aborted_cross_shard),
            (Self::ABORT_REASONS[8], self.user_aborted),
        ]
    }

    /// Accumulate another block's counters.
    pub fn absorb(&mut self, other: &BlockStats) {
        self.txns += other.txns;
        self.committed += other.committed;
        self.aborted_rule1 += other.aborted_rule1;
        self.aborted_interblock += other.aborted_interblock;
        self.aborted_ww += other.aborted_ww;
        self.aborted_stale += other.aborted_stale;
        self.aborted_ssi += other.aborted_ssi;
        self.aborted_endorsement += other.aborted_endorsement;
        self.aborted_graph += other.aborted_graph;
        self.aborted_cross_shard += other.aborted_cross_shard;
        self.user_aborted += other.user_aborted;
        self.apply_noop_commands += other.apply_noop_commands;
        self.sim_ns_total += other.sim_ns_total;
        self.commit_ns_total += other.commit_ns_total;
    }
}

impl fmt::Display for BlockStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "txns={} committed={} rule1={} inter={} ww={} user={} abort_rate={:.3}",
            self.txns,
            self.committed,
            self.aborted_rule1,
            self.aborted_interblock,
            self.aborted_ww,
            self.user_aborted,
            self.abort_rate()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_rate_excludes_user_aborts() {
        let s = BlockStats {
            txns: 10,
            committed: 6,
            aborted_rule1: 2,
            user_aborted: 2,
            ..BlockStats::default()
        };
        assert_eq!(s.protocol_aborts(), 2);
        assert!((s.abort_rate() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn empty_block_zero_rate() {
        assert_eq!(BlockStats::default().abort_rate(), 0.0);
    }

    #[test]
    fn absorb_accumulates() {
        let mut a = BlockStats {
            txns: 5,
            committed: 5,
            sim_ns_total: 100,
            ..BlockStats::default()
        };
        let b = BlockStats {
            txns: 3,
            committed: 1,
            aborted_ww: 2,
            commit_ns_total: 50,
            ..BlockStats::default()
        };
        a.absorb(&b);
        assert_eq!(a.txns, 8);
        assert_eq!(a.committed, 6);
        assert_eq!(a.aborted_ww, 2);
        assert_eq!(a.sim_ns_total, 100);
        assert_eq!(a.commit_ns_total, 50);
    }

    #[test]
    fn display_renders() {
        let s = BlockStats {
            txns: 4,
            committed: 4,
            ..BlockStats::default()
        };
        assert!(s.to_string().contains("txns=4"));
    }
}
