//! The Harmony block executor: simulation step + commit step.
//!
//! `simulate` runs every transaction of a block in parallel against the
//! deterministic block snapshot, capturing read-write sets and firing the
//! rw-dependency events of Algorithm 1. `commit` folds in inter-block
//! dependencies (Rule 3), validates (Rule 1), and applies the surviving
//! update commands with Rule-2 reordering and coalescence.
//!
//! Determinism: validation depends only on `min_out`/`max_in` (commutative
//! accumulators), apply order is `(min_out, tid)`-sorted, and each key has
//! a deterministic owner — so the committed state is a pure function of
//! (snapshot, block contents, config), independent of thread count and
//! interleaving.

use std::collections::HashMap;
use std::sync::Arc;

use harmony_common::error::AbortReason;
use harmony_common::{vtime, BlockId, Result, TxnId};
use harmony_txn::{Contract, Key, RangePredicate, RwSet, TxnCtx};

use crate::config::HarmonyConfig;
use crate::meta::TxnMeta;
use crate::par::{run_indexed, run_indexed_with};
use crate::reorder::{apply_key_plan, build_apply_plans};
use crate::reservation::{RegisterScratch, ReservationTable};
use crate::snapshot::SnapshotStore;
use crate::stats::BlockStats;

/// A block of transactions ready for execution.
pub struct ExecBlock {
    /// Block id (must be ≥ 1; `BlockId(0)` is the genesis state).
    pub id: BlockId,
    /// The transactions in consensus order.
    pub txns: Vec<Arc<dyn Contract>>,
}

impl ExecBlock {
    /// Build a block.
    ///
    /// # Panics
    /// Panics if `id` is the genesis block.
    #[must_use]
    pub fn new(id: BlockId, txns: Vec<Arc<dyn Contract>>) -> ExecBlock {
        assert!(id.0 >= 1, "block 0 is the genesis state");
        ExecBlock { id, txns }
    }
}

/// Outcome of one transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxnOutcome {
    /// Committed; its effects are in the post-block state.
    Committed,
    /// Aborted for the given reason.
    Aborted(AbortReason),
}

impl TxnOutcome {
    /// Whether the transaction committed.
    #[must_use]
    pub fn is_committed(self) -> bool {
        self == TxnOutcome::Committed
    }
}

/// Per-transaction result.
#[derive(Clone, Debug)]
pub struct TxnResult {
    /// Global transaction id.
    pub tid: TxnId,
    /// Commit/abort outcome.
    pub outcome: TxnOutcome,
    /// Virtual nanoseconds of simulation work.
    pub sim_ns: u64,
    /// Virtual nanoseconds of commit work attributed to this transaction.
    pub commit_ns: u64,
}

/// Information the *next* block needs about a committed writer
/// (Rule 3 bookkeeping).
#[derive(Clone, Copy, Debug)]
pub struct WriterInfo {
    /// Smallest committed writer TID of the key in the block.
    pub min_tid: u64,
    /// Whether any committed writer of the key has an outgoing backward
    /// edge (`min_out < tid`) — arms Rule 3(ii) for later readers.
    pub backward_out: bool,
}

/// Digest of a committed block consumed by the next block's commit step.
#[derive(Clone, Debug, Default)]
pub struct BlockSummary {
    /// The committed block.
    pub block: BlockId,
    /// Keys written by committed transactions.
    pub committed_writes: HashMap<Key, WriterInfo>,
    /// Max committed reader TID per point-read key.
    pub committed_reads: HashMap<Key, u64>,
    /// Range predicates of committed transactions (reader TID, predicate).
    pub committed_read_preds: Vec<(u64, RangePredicate)>,
}

/// Result of executing one block.
#[derive(Debug)]
pub struct BlockResult {
    /// The block id.
    pub block: BlockId,
    /// Per-transaction results (block order).
    pub results: Vec<TxnResult>,
    /// Captured read-write sets (`None` for user-aborted transactions).
    pub rwsets: Vec<Option<RwSet>>,
    /// Counters.
    pub stats: BlockStats,
    /// Digest for the next block's inter-block validation.
    pub summary: BlockSummary,
}

/// Output of the simulation step, consumed by `commit`.
pub struct SimOutput {
    snapshot: BlockId,
    rwsets: Vec<Option<RwSet>>,
    metas: Vec<TxnMeta>,
    table: ReservationTable,
    sim_ns: Vec<u64>,
}

impl SimOutput {
    /// The snapshot the block simulated against.
    #[must_use]
    pub fn snapshot(&self) -> BlockId {
        self.snapshot
    }
}

/// Executes blocks with the Harmony DCC against a [`SnapshotStore`].
pub struct BlockExecutor {
    store: Arc<SnapshotStore>,
    config: HarmonyConfig,
}

impl BlockExecutor {
    /// Build an executor.
    #[must_use]
    pub fn new(store: Arc<SnapshotStore>, config: HarmonyConfig) -> BlockExecutor {
        BlockExecutor { store, config }
    }

    /// The snapshot store.
    #[must_use]
    pub fn store(&self) -> &Arc<SnapshotStore> {
        &self.store
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> HarmonyConfig {
        self.config
    }

    /// Snapshot block a given block simulates against: `i − 1`, or `i − 2`
    /// under inter-block parallelism (§3.4).
    #[must_use]
    pub fn snapshot_for(&self, block: BlockId) -> BlockId {
        let depth = if self.config.inter_block_parallelism {
            2
        } else {
            1
        };
        BlockId(block.0.saturating_sub(depth))
    }

    /// Simulation step: execute every transaction against the block
    /// snapshot in parallel, capture read-write sets, and fire the
    /// rw-dependency events.
    pub fn simulate(&self, block: &ExecBlock) -> SimOutput {
        let snapshot = self.snapshot_for(block.id);
        let n = block.txns.len();
        let metas: Vec<TxnMeta> = (0..n)
            .map(|i| TxnMeta::new(TxnId::new(block.id, i as u32).0))
            .collect();
        let table = ReservationTable::new();

        // Each worker keeps one snapshot view and one reservation scratch
        // for its whole run — no per-transaction allocations for either.
        let sims = run_indexed_with(
            n,
            self.config.workers,
            || (self.store.view_at(snapshot), RegisterScratch::default()),
            |(view, scratch), i| {
                let (outcome, sim_ns) = vtime::scope(|| {
                    vtime::charge(block.txns[i].think_time_ns());
                    let mut ctx = TxnCtx::new(&*view);
                    match block.txns[i].execute(&mut ctx) {
                        Ok(()) => Ok(ctx.into_rwset()),
                        Err(user) => Err(user),
                    }
                });
                if let Ok(rwset) = &outcome {
                    table.register_with(i as u32, rwset, scratch);
                }
                (outcome, sim_ns)
            },
        );

        let mut rwsets = Vec::with_capacity(n);
        let mut sim_ns = Vec::with_capacity(n);
        for (outcome, ns) in sims {
            sim_ns.push(ns);
            rwsets.push(outcome.ok());
        }
        table.fire_rw_events(&metas);
        SimOutput {
            snapshot,
            rwsets,
            metas,
            table,
            sim_ns,
        }
    }

    /// Commit step. `prev` is the summary of the immediately preceding
    /// block when it was *concurrent* with this block's simulation
    /// (inter-block parallelism); `None` otherwise.
    pub fn commit(
        &self,
        block: &ExecBlock,
        sim: SimOutput,
        prev: Option<&BlockSummary>,
    ) -> Result<BlockResult> {
        let n = block.txns.len();
        let SimOutput {
            rwsets,
            metas,
            table,
            sim_ns,
            ..
        } = sim;

        // ── Inter-block dependency events (Rule 3) ─────────────────────
        let mut inter_flag = vec![false; n];
        if let Some(prev) = prev {
            debug_assert_eq!(prev.block.next(), block.id, "pipeline order");
            for (i, rwset) in rwsets.iter().enumerate() {
                let Some(rwset) = rwset else { continue };
                // Outgoing inter edges: this txn read the before-image of a
                // committed writer in the previous block.
                for r in &rwset.reads {
                    if let Some(w) = prev.committed_writes.get(&r.key) {
                        metas[i].note_out_edge(w.min_tid);
                        if w.backward_out {
                            inter_flag[i] = true; // Rule 3(ii): abort T_k.
                        }
                    }
                }
                for pred in &rwset.scans {
                    for (key, w) in &prev.committed_writes {
                        if pred.covers(key) {
                            metas[i].note_out_edge(w.min_tid);
                            if w.backward_out {
                                inter_flag[i] = true;
                            }
                        }
                    }
                }
                // Incoming inter edges: a committed earlier-block reader
                // saw the before-image of this txn's write. Documented
                // deviation: such structures abort *this* (later) txn via
                // the ordinary Rule-1 condition, deterministically.
                for (key, _) in &rwset.updates {
                    if let Some(&reader) = prev.committed_reads.get(key) {
                        metas[i].note_in_edge(reader);
                    }
                    for (reader, pred) in &prev.committed_read_preds {
                        if pred.covers(key) {
                            metas[i].note_in_edge(*reader);
                        }
                    }
                }
            }
        }

        // ── Validation (Rule 1 / Rule 3, plus ww-aborts in raw mode) ───
        let min_writers = if self.config.update_reordering {
            HashMap::new()
        } else {
            table.min_writer_tids(&metas)
        };
        let mut outcomes: Vec<TxnOutcome> = Vec::with_capacity(n);
        for i in 0..n {
            let outcome = if rwsets[i].is_none() {
                TxnOutcome::Aborted(AbortReason::UserAbort)
            } else if metas[i].in_backward_dangerous_structure() {
                TxnOutcome::Aborted(AbortReason::BackwardDangerousStructure)
            } else if inter_flag[i] {
                TxnOutcome::Aborted(AbortReason::InterBlockDangerousStructure)
            } else if !self.config.update_reordering
                && rwsets[i].as_ref().is_some_and(|rw| {
                    rw.write_keys()
                        .any(|k| min_writers.get(k).copied().unwrap_or(u64::MAX) < metas[i].tid)
                })
            {
                TxnOutcome::Aborted(AbortReason::WwConflict)
            } else {
                TxnOutcome::Committed
            };
            outcomes.push(outcome);
        }
        let committed: Vec<bool> = outcomes.iter().map(|o| o.is_committed()).collect();

        // ── Apply (Rule 2 reordering + coalescence) ────────────────────
        let plans = build_apply_plans(
            &table,
            &metas,
            &rwsets,
            &committed,
            self.config.update_reordering,
        );
        let mut plans_by_owner: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (pi, plan) in plans.iter().enumerate() {
            plans_by_owner[plan.owner as usize].push(pi);
        }
        let coalesce = self.config.update_coalescence;
        let store = &self.store;
        let apply_out = run_indexed(n, self.config.workers, |i| {
            vtime::scope(|| {
                let mut noops = 0u64;
                for &pi in &plans_by_owner[i] {
                    noops += apply_key_plan(store, block.id, &plans[pi], coalesce)?;
                }
                Ok::<u64, harmony_common::Error>(noops)
            })
        });

        let mut commit_ns = vec![0u64; n];
        let mut noop_total = 0u64;
        for (i, (res, ns)) in apply_out.into_iter().enumerate() {
            commit_ns[i] = ns;
            noop_total += res?;
        }

        // ── Summary for the next block (Rule 3 bookkeeping) ────────────
        let mut summary = BlockSummary {
            block: block.id,
            ..BlockSummary::default()
        };
        for plan in &plans {
            let min_tid = plan
                .cmds
                .iter()
                .map(|(tid, _, _)| *tid)
                .min()
                .expect("plan non-empty");
            let backward_out = plan
                .cmds
                .iter()
                .any(|(_, idx, _)| metas[*idx as usize].has_backward_out());
            summary.committed_writes.insert(
                plan.key.clone(),
                WriterInfo {
                    min_tid,
                    backward_out,
                },
            );
        }
        for (i, rwset) in rwsets.iter().enumerate() {
            if !committed[i] {
                continue;
            }
            let Some(rwset) = rwset else { continue };
            let tid = metas[i].tid;
            for r in &rwset.reads {
                summary
                    .committed_reads
                    .entry(r.key.clone())
                    .and_modify(|t| *t = (*t).max(tid))
                    .or_insert(tid);
            }
            for pred in &rwset.scans {
                summary.committed_read_preds.push((tid, pred.clone()));
            }
        }

        // ── Stats & results ────────────────────────────────────────────
        let mut stats = BlockStats {
            txns: n,
            apply_noop_commands: noop_total,
            sim_ns_total: sim_ns.iter().sum(),
            commit_ns_total: commit_ns.iter().sum(),
            ..BlockStats::default()
        };
        let mut results = Vec::with_capacity(n);
        for (i, outcome) in outcomes.iter().enumerate() {
            match outcome {
                TxnOutcome::Committed => stats.committed += 1,
                TxnOutcome::Aborted(AbortReason::BackwardDangerousStructure) => {
                    stats.aborted_rule1 += 1;
                }
                TxnOutcome::Aborted(AbortReason::InterBlockDangerousStructure) => {
                    stats.aborted_interblock += 1;
                }
                TxnOutcome::Aborted(AbortReason::WwConflict) => stats.aborted_ww += 1,
                TxnOutcome::Aborted(AbortReason::UserAbort) => stats.user_aborted += 1,
                TxnOutcome::Aborted(_) => {}
            }
            results.push(TxnResult {
                tid: TxnId::new(block.id, i as u32),
                outcome: *outcome,
                sim_ns: sim_ns[i],
                commit_ns: commit_ns[i],
            });
        }
        Ok(BlockResult {
            block: block.id,
            results,
            rwsets,
            stats,
            summary,
        })
    }

    /// Convenience: simulate + commit in one call (no pipeline overlap).
    pub fn execute(&self, block: &ExecBlock, prev: Option<&BlockSummary>) -> Result<BlockResult> {
        let sim = self.simulate(block);
        self.commit(block, sim, prev)
    }
}
