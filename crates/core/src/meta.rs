//! Per-transaction validation state — Algorithm 1 of the paper.
//!
//! Each transaction `T_j` carries two scalars maintained by rw-dependency
//! events:
//!
//! * `min_out = min{ i | T_i ←rw T_j, i < j }` (default `j + 1`): the
//!   smallest TID among *earlier* transactions whose before-image `T_j`
//!   read;
//! * `max_in = max{ k | T_j ←rw T_k }` (default −∞): the largest TID among
//!   transactions that read `T_j`'s before-images.
//!
//! Rule 1 then aborts `T_j` iff `min_out < j && min_out <= max_in`. Both
//! accumulators are commutative (`min`/`max`), so the outcome is
//! independent of event ordering — the root of Harmony's determinism under
//! real parallelism.

use std::sync::atomic::{AtomicU64, Ordering};

/// `max_in`'s "−∞". Real TIDs are `block * 2^20 + idx` with `block >= 1`
/// for executable blocks, so 0 is never a valid reader TID.
pub const NEG_INF: u64 = 0;

/// Validation state for one transaction.
#[derive(Debug)]
pub struct TxnMeta {
    /// Raw global TID.
    pub tid: u64,
    min_out: AtomicU64,
    max_in: AtomicU64,
}

impl TxnMeta {
    /// Fresh state: `min_out = tid + 1`, `max_in = −∞`.
    #[must_use]
    pub fn new(tid: u64) -> TxnMeta {
        TxnMeta {
            tid,
            min_out: AtomicU64::new(tid + 1),
            max_in: AtomicU64::new(NEG_INF),
        }
    }

    /// Event: this transaction read the before-image of `writer_tid`'s
    /// write (edge `T_writer ←rw T_self`). Only earlier writers update
    /// `min_out`, per the paper's definition.
    pub fn note_out_edge(&self, writer_tid: u64) {
        if writer_tid < self.tid {
            self.min_out.fetch_min(writer_tid, Ordering::AcqRel);
        }
    }

    /// Event: `reader_tid` read the before-image of this transaction's
    /// write (edge `T_self ←rw T_reader`).
    pub fn note_in_edge(&self, reader_tid: u64) {
        if reader_tid != self.tid {
            self.max_in.fetch_max(reader_tid, Ordering::AcqRel);
        }
    }

    /// Current `min_out`.
    #[must_use]
    pub fn min_out(&self) -> u64 {
        self.min_out.load(Ordering::Acquire)
    }

    /// Current `max_in` (`NEG_INF` when no incoming edge).
    #[must_use]
    pub fn max_in(&self) -> u64 {
        self.max_in.load(Ordering::Acquire)
    }

    /// Rule 1 (line #12 of Algorithm 1): abort iff
    /// `min_out < tid && min_out <= max_in`.
    #[must_use]
    pub fn in_backward_dangerous_structure(&self) -> bool {
        let min_out = self.min_out();
        min_out < self.tid && min_out <= self.max_in()
    }

    /// Whether this transaction has an outgoing backward edge
    /// (`min_out < tid`). Committed transactions with this flag arm Rule
    /// 3(ii) for readers in later blocks.
    #[must_use]
    pub fn has_backward_out(&self) -> bool {
        self.min_out() < self.tid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let m = TxnMeta::new(100);
        assert_eq!(m.min_out(), 101);
        assert_eq!(m.max_in(), NEG_INF);
        assert!(!m.in_backward_dangerous_structure());
        assert!(!m.has_backward_out());
    }

    #[test]
    fn two_txn_cycle_matches_figure_3a() {
        // T1 ←rw T2 ←rw T1 (i = k = 1, j = 2): abort T2.
        let t2 = TxnMeta::new(2);
        t2.note_out_edge(1); // T1 ←rw T2
        t2.note_in_edge(1); // T2 ←rw T1
        assert!(t2.in_backward_dangerous_structure());
    }

    #[test]
    fn single_out_edge_does_not_abort() {
        // Fabric would abort on a single stale read; Rule 1 does not.
        let t2 = TxnMeta::new(2);
        t2.note_out_edge(1);
        assert!(t2.has_backward_out());
        assert!(!t2.in_backward_dangerous_structure());
    }

    #[test]
    fn single_in_edge_does_not_abort() {
        let t1 = TxnMeta::new(1);
        t1.note_in_edge(2);
        assert!(!t1.in_backward_dangerous_structure());
    }

    #[test]
    fn figure_3b_structure() {
        // T1 ←rw T3 ←rw T4 (i=1 < j=3, k=4 ≥ 1): abort T3.
        let t3 = TxnMeta::new(3);
        t3.note_out_edge(1);
        t3.note_in_edge(4);
        assert!(t3.in_backward_dangerous_structure());
    }

    #[test]
    fn incoming_smaller_than_min_out_is_safe() {
        // T2 ←rw T3 with T3.min_out pointing at T2's *successor*: no abort.
        // Structure T_i ← T_j ← T_k needs i <= k.
        let t3 = TxnMeta::new(30);
        t3.note_out_edge(20); // min_out = 20
        t3.note_in_edge(10); // max_in = 10 < 20 => condition fails
        assert!(!t3.in_backward_dangerous_structure());
    }

    #[test]
    fn out_edge_to_larger_tid_ignored_for_min_out() {
        // Out-edges to later transactions don't count toward min_out (the
        // paper defines min_out over i < j only).
        let t2 = TxnMeta::new(2);
        t2.note_out_edge(5);
        assert_eq!(t2.min_out(), 3, "unchanged default");
        assert!(!t2.has_backward_out());
    }

    #[test]
    fn min_max_accumulate() {
        let m = TxnMeta::new(10);
        m.note_out_edge(7);
        m.note_out_edge(3);
        m.note_out_edge(9);
        assert_eq!(m.min_out(), 3);
        m.note_in_edge(4);
        m.note_in_edge(12);
        m.note_in_edge(6);
        assert_eq!(m.max_in(), 12);
        assert!(m.in_backward_dangerous_structure());
    }

    #[test]
    fn event_order_does_not_matter() {
        use harmony_common::DetRng;
        let mut rng = DetRng::new(3);
        let edges_out = [7u64, 3, 9, 1, 8];
        let edges_in = [4u64, 12, 6, 2];
        for _ in 0..20 {
            let m = TxnMeta::new(10);
            let mut ops: Vec<(bool, u64)> = edges_out
                .iter()
                .map(|&e| (true, e))
                .chain(edges_in.iter().map(|&e| (false, e)))
                .collect();
            rng.shuffle(&mut ops);
            for (is_out, tid) in ops {
                if is_out {
                    m.note_out_edge(tid);
                } else {
                    m.note_in_edge(tid);
                }
            }
            assert_eq!(m.min_out(), 1);
            assert_eq!(m.max_in(), 12);
        }
    }

    #[test]
    fn self_in_edge_ignored() {
        let m = TxnMeta::new(5);
        m.note_in_edge(5);
        assert_eq!(m.max_in(), NEG_INF);
    }

    #[test]
    fn concurrent_event_firing() {
        use std::sync::Arc;
        let m = Arc::new(TxnMeta::new(1000));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    m.note_out_edge(t * 100 + (i % 50));
                    m.note_in_edge(2000 + t * 10 + (i % 7));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.min_out(), 0);
        assert_eq!(m.max_in(), 2076);
    }
}
