//! Protocol-level tests for the Harmony executor and pipeline:
//! dangerous-structure aborts, reordering semantics, determinism under
//! parallelism, inter-block behaviour, and a serializability oracle over
//! randomized workloads.

use std::collections::BTreeMap;
use std::sync::Arc;

use harmony_common::error::AbortReason;
use harmony_common::ids::TableId;
use harmony_common::{BlockId, DetRng};
use harmony_core::executor::{BlockExecutor, ExecBlock, TxnOutcome};
use harmony_core::{ChainPipeline, HarmonyConfig, SnapshotStore};
use harmony_storage::{StorageConfig, StorageEngine};
use harmony_txn::{Contract, FnContract, Key, TxnCtx, UserAbort};

fn setup(n_keys: u64) -> (Arc<SnapshotStore>, TableId) {
    let engine = Arc::new(StorageEngine::open(&StorageConfig::memory()).unwrap());
    let t = engine.create_table("t").unwrap();
    for i in 0..n_keys {
        engine
            .put(t, &i.to_be_bytes(), &100i64.to_le_bytes())
            .unwrap();
    }
    (Arc::new(SnapshotStore::new(engine)), t)
}

fn key(t: TableId, i: u64) -> Key {
    Key::from_u64(t, i)
}

fn read_i64(store: &SnapshotStore, t: TableId, i: u64) -> Option<i64> {
    store
        .engine()
        .get(t, &i.to_be_bytes())
        .unwrap()
        .map(|v| i64::from_le_bytes(v.as_slice().try_into().unwrap()))
}

/// A transaction that reads `reads`, then adds 1 to each key in `writes`.
fn read_add_txn(t: TableId, reads: Vec<u64>, writes: Vec<u64>) -> Arc<dyn Contract> {
    Arc::new(FnContract::new("read-add", move |ctx: &mut TxnCtx<'_>| {
        for &r in &reads {
            ctx.read(&key(t, r)).map_err(|e| UserAbort(e.to_string()))?;
        }
        for &w in &writes {
            ctx.add_i64(key(t, w), 0, 1);
        }
        Ok(())
    }))
}

/// A blind overwrite transaction.
fn put_txn(t: TableId, k: u64, v: i64) -> Arc<dyn Contract> {
    Arc::new(FnContract::new("put", move |ctx: &mut TxnCtx<'_>| {
        ctx.put(key(t, k), v.to_le_bytes().to_vec());
        Ok(())
    }))
}

#[test]
fn disjoint_txns_all_commit() {
    let (store, t) = setup(16);
    let exec = BlockExecutor::new(
        Arc::clone(&store),
        HarmonyConfig::default().single_threaded(),
    );
    let txns: Vec<_> = (0..8)
        .map(|i| read_add_txn(t, vec![i], vec![i + 8]))
        .collect();
    let res = exec
        .execute(&ExecBlock::new(BlockId(1), txns), None)
        .unwrap();
    assert_eq!(res.stats.committed, 8);
    assert_eq!(res.stats.protocol_aborts(), 0);
    for i in 8..16 {
        assert_eq!(read_i64(&store, t, i), Some(101));
    }
}

#[test]
fn write_skew_aborts_exactly_one() {
    // Classic write-skew: T0 reads x writes y; T1 reads y writes x.
    // Rule 1 must abort exactly the larger-TID participant (T1).
    let (store, t) = setup(2);
    let exec = BlockExecutor::new(Arc::clone(&store), HarmonyConfig::default());
    let txns = vec![
        read_add_txn(t, vec![0], vec![1]),
        read_add_txn(t, vec![1], vec![0]),
    ];
    let res = exec
        .execute(&ExecBlock::new(BlockId(1), txns), None)
        .unwrap();
    assert_eq!(res.stats.committed, 1);
    assert_eq!(res.stats.aborted_rule1, 1);
    assert_eq!(
        res.results[1].outcome,
        TxnOutcome::Aborted(AbortReason::BackwardDangerousStructure),
        "the larger TID is the one in the backward structure"
    );
    assert_eq!(res.results[0].outcome, TxnOutcome::Committed);
}

#[test]
fn ww_conflicts_all_commit_via_reordering() {
    // Ten concurrent `add(hot, 1)` txns: Aria aborts nine; Harmony commits
    // all ten through update reordering + coalescence.
    let (store, t) = setup(1);
    let exec = BlockExecutor::new(Arc::clone(&store), HarmonyConfig::default());
    let txns: Vec<_> = (0..10).map(|_| read_add_txn(t, vec![], vec![0])).collect();
    let res = exec
        .execute(&ExecBlock::new(BlockId(1), txns), None)
        .unwrap();
    assert_eq!(res.stats.committed, 10);
    assert_eq!(read_i64(&store, t, 0), Some(110));
}

#[test]
fn ww_conflicts_abort_without_reordering() {
    // Ablation raw mode: ww-dependency aborts all but the smallest TID.
    let (store, t) = setup(1);
    let exec = BlockExecutor::new(Arc::clone(&store), HarmonyConfig::raw());
    let txns: Vec<_> = (0..10).map(|_| read_add_txn(t, vec![], vec![0])).collect();
    let res = exec
        .execute(&ExecBlock::new(BlockId(1), txns), None)
        .unwrap();
    assert_eq!(res.stats.committed, 1);
    assert_eq!(res.stats.aborted_ww, 9);
    assert_eq!(read_i64(&store, t, 0), Some(101));
}

#[test]
fn rmw_then_read_consistency_matches_paper_example() {
    // T0: add(x, 10); T1: reads x then writes x = read*3 expressed as a
    // single RMW (mul) — both must commit and compose.
    let (store, t) = setup(1);
    store
        .engine()
        .put(t, &0u64.to_be_bytes(), &10i64.to_le_bytes())
        .unwrap();
    let exec = BlockExecutor::new(Arc::clone(&store), HarmonyConfig::default());
    let t0 = Arc::new(FnContract::new("add", move |ctx: &mut TxnCtx<'_>| {
        ctx.add_i64(key(t, 0), 0, 10);
        Ok(())
    })) as Arc<dyn Contract>;
    let t1 = Arc::new(FnContract::new("read-mul", move |ctx: &mut TxnCtx<'_>| {
        // Read + separate RMW update (reads snapshot).
        let _ = ctx.read(&key(t, 0)).map_err(|e| UserAbort(e.to_string()))?;
        ctx.add_i64(key(t, 0), 0, 5);
        Ok(())
    })) as Arc<dyn Contract>;
    let res = exec
        .execute(&ExecBlock::new(BlockId(1), vec![t0, t1]), None)
        .unwrap();
    // T1 read x (before-image of T0's write): edge T0 ←rw T1. T1's update
    // is reordered before T0's. Both commit; total = 10 + 10 + 5.
    assert_eq!(res.stats.committed, 2);
    assert_eq!(read_i64(&store, t, 0), Some(25));
}

#[test]
fn user_abort_is_final_and_isolated() {
    let (store, t) = setup(2);
    let exec = BlockExecutor::new(Arc::clone(&store), HarmonyConfig::default());
    let aborter = Arc::new(FnContract::new("aborter", move |ctx: &mut TxnCtx<'_>| {
        ctx.put(key(t, 0), 999i64.to_le_bytes().to_vec());
        ctx.user_abort("business rule")
    })) as Arc<dyn Contract>;
    let res = exec
        .execute(
            &ExecBlock::new(BlockId(1), vec![aborter, put_txn(t, 1, 7)]),
            None,
        )
        .unwrap();
    assert_eq!(res.stats.user_aborted, 1);
    assert_eq!(res.stats.committed, 1);
    assert_eq!(read_i64(&store, t, 0), Some(100), "aborted write invisible");
    assert_eq!(read_i64(&store, t, 1), Some(7));
}

#[test]
fn determinism_across_worker_counts() {
    // The committed state must be identical for 1, 2, and 8 workers.
    let final_state = |workers: usize| -> Vec<(u64, i64)> {
        let (store, t) = setup(32);
        let config = HarmonyConfig {
            workers,
            ..HarmonyConfig::default()
        };
        let mut pipeline = ChainPipeline::new(Arc::clone(&store), config);
        let mut rng = DetRng::new(777);
        let mut blocks = Vec::new();
        for b in 1..=10u64 {
            let txns: Vec<_> = (0..20)
                .map(|_| {
                    let reads = vec![rng.gen_range(32)];
                    let writes = vec![rng.gen_range(32)];
                    read_add_txn(t, reads, writes)
                })
                .collect();
            blocks.push(ExecBlock::new(BlockId(b), txns));
        }
        pipeline.run_blocks(&blocks).unwrap();
        (0..32)
            .map(|i| (i, read_i64(&store, t, i).unwrap()))
            .collect()
    };
    let s1 = final_state(1);
    let s2 = final_state(2);
    let s8 = final_state(8);
    assert_eq!(s1, s2);
    assert_eq!(s1, s8);
}

#[test]
fn interblock_write_skew_across_blocks_aborts() {
    // Block 1: T reads x writes y. Block 2: T' reads y (from snapshot 0 —
    // stale) writes x. Under IBP this is the cross-block write-skew the
    // enhanced validation must catch.
    let (store, t) = setup(2);
    let config = HarmonyConfig {
        inter_block_parallelism: true,
        ..HarmonyConfig::default()
    };
    let mut pipeline = ChainPipeline::new(Arc::clone(&store), config);
    let blocks = vec![
        ExecBlock::new(BlockId(1), vec![read_add_txn(t, vec![0], vec![1])]),
        ExecBlock::new(BlockId(2), vec![read_add_txn(t, vec![1], vec![0])]),
    ];
    let report = pipeline.run_blocks(&blocks).unwrap();
    let total_commits = report.totals.committed;
    let total_aborts = report.totals.protocol_aborts();
    // One of the two must abort; committing both would be unserializable
    // (each read the other's before-image).
    assert_eq!(total_commits, 1, "aborts={total_aborts}");
    assert_eq!(total_aborts, 1);
}

#[test]
fn interblock_snapshot_is_two_blocks_back() {
    let (store, t) = setup(1);
    let config = HarmonyConfig::default(); // IBP on
    let mut pipeline = ChainPipeline::new(Arc::clone(&store), config);
    // Block 1 sets x=1; block 2 sets x=2; block 3 reads x.
    let seen = Arc::new(parking_lot::Mutex::new(None));
    let seen2 = Arc::clone(&seen);
    let reader = Arc::new(FnContract::new("reader", move |ctx: &mut TxnCtx<'_>| {
        let v = ctx
            .read(&key(t, 0))
            .map_err(|e| UserAbort(e.to_string()))?
            .map(|v| i64::from_le_bytes(v.as_ref().try_into().unwrap()));
        *seen2.lock() = v;
        Ok(())
    })) as Arc<dyn Contract>;
    let blocks = vec![
        ExecBlock::new(BlockId(1), vec![put_txn(t, 0, 1)]),
        ExecBlock::new(BlockId(2), vec![put_txn(t, 0, 2)]),
        ExecBlock::new(BlockId(3), vec![reader]),
    ];
    pipeline.run_blocks(&blocks).unwrap();
    // Block 3 simulates against the snapshot of block 1 (i − 2).
    assert_eq!(*seen.lock(), Some(1));
}

#[test]
fn pipeline_gc_bounds_undo_memory() {
    let (store, t) = setup(4);
    let mut pipeline = ChainPipeline::new(Arc::clone(&store), HarmonyConfig::default());
    let blocks: Vec<_> = (1..=50u64)
        .map(|b| ExecBlock::new(BlockId(b), vec![read_add_txn(t, vec![], vec![b % 4])]))
        .collect();
    pipeline.run_blocks(&blocks).unwrap();
    assert!(
        store.undo_keys() <= 8,
        "undo chains must be GC'd, saw {}",
        store.undo_keys()
    );
}

#[test]
fn phantom_scan_vs_insert_is_detected() {
    // T0 inserts a key into the scanned range; T1 scans the range and
    // writes based on the count. T1 read the before-image of T0's insert.
    let (store, t) = setup(4);
    let exec = BlockExecutor::new(Arc::clone(&store), HarmonyConfig::default());
    let inserter = Arc::new(FnContract::new("ins", move |ctx: &mut TxnCtx<'_>| {
        // Also read something T1 writes so a cycle forms.
        let _ = ctx
            .read(&key(t, 100))
            .map_err(|e| UserAbort(e.to_string()))?;
        ctx.put(key(t, 2), 1i64.to_le_bytes().to_vec());
        Ok(())
    })) as Arc<dyn Contract>;
    let scanner = Arc::new(FnContract::new("scan", move |ctx: &mut TxnCtx<'_>| {
        let rows = ctx
            .scan(t, &0u64.to_be_bytes(), Some(&4u64.to_be_bytes()), 100)
            .map_err(|e| UserAbort(e.to_string()))?;
        ctx.put(key(t, 100), (rows.len() as i64).to_le_bytes().to_vec());
        Ok(())
    })) as Arc<dyn Contract>;
    let res = exec
        .execute(&ExecBlock::new(BlockId(1), vec![inserter, scanner]), None)
        .unwrap();
    // T1 (scanner) has out-edge to T0 (phantom) and in-edge from T0
    // (key 100): backward dangerous structure => abort scanner.
    assert_eq!(res.stats.committed, 1);
    assert_eq!(
        res.results[1].outcome,
        TxnOutcome::Aborted(AbortReason::BackwardDangerousStructure)
    );
}

/// Serializability oracle: replay committed transactions serially in every
/// topological-compatible order we derive (we use commit apply order:
/// ascending (min_out, tid) is guaranteed equivalent) and compare final
/// states. For this oracle we replay in apply order per key — which the
/// protocol itself guarantees — so instead we check a stronger property on
/// a restricted workload: for add-only RMW workloads, any serial order
/// yields the same sums, so the committed state must equal "initial +
/// number of committed adds per key".
#[test]
fn additive_workload_commits_are_exact() {
    let (store, t) = setup(8);
    let mut pipeline = ChainPipeline::new(Arc::clone(&store), HarmonyConfig::default());
    let mut rng = DetRng::new(42);
    let mut expected = [0i64; 8];
    let mut blocks = Vec::new();
    let mut planned: Vec<Vec<u64>> = Vec::new();
    for b in 1..=20u64 {
        let mut txns = Vec::new();
        for _ in 0..15 {
            let k = rng.gen_range(8);
            planned.push(vec![b, k]);
            txns.push(read_add_txn(t, vec![], vec![k]));
        }
        blocks.push(ExecBlock::new(BlockId(b), txns));
    }
    let report = pipeline.run_blocks(&blocks).unwrap();
    // Blind adds never create rw-dependencies => nothing may abort.
    assert_eq!(report.totals.protocol_aborts(), 0);
    let mut idx = 0;
    for plan in &planned {
        let _b = plan[0];
        expected[plan[1] as usize] += 1;
        idx += 1;
    }
    assert_eq!(idx, 300);
    for k in 0..8u64 {
        assert_eq!(
            read_i64(&store, t, k),
            Some(100 + expected[k as usize]),
            "key {k}"
        );
    }
}

/// Randomized serializability check: build the dependency graph over the
/// *committed* transactions of each block from their rwsets and assert it
/// is acyclic when edges are oriented by the apply order Harmony chose.
#[test]
fn committed_graph_is_acyclic_randomized() {
    for seed in [1u64, 7, 99] {
        let (store, t) = setup(10);
        let exec = BlockExecutor::new(Arc::clone(&store), HarmonyConfig::default());
        let mut rng = DetRng::new(seed);
        for b in 1..=10u64 {
            let txns: Vec<_> = (0..25)
                .map(|_| {
                    let reads: Vec<u64> =
                        (0..rng.gen_range(3)).map(|_| rng.gen_range(10)).collect();
                    let writes: Vec<u64> =
                        (0..=rng.gen_range(2)).map(|_| rng.gen_range(10)).collect();
                    read_add_txn(t, reads, writes)
                })
                .collect();
            let block = ExecBlock::new(BlockId(b), txns);
            let res = exec.execute(&block, None).unwrap();

            // Build the rw-subgraph over committed txns and verify no
            // backward dangerous structure survived (sound because the
            // structure is a necessary condition for rw-cycles).
            let committed: Vec<usize> = res
                .results
                .iter()
                .enumerate()
                .filter(|(_, r)| r.outcome.is_committed())
                .map(|(i, _)| i)
                .collect();
            let mut writes_by_key: BTreeMap<Key, Vec<usize>> = BTreeMap::new();
            for &i in &committed {
                if let Some(rw) = &res.rwsets[i] {
                    for k in rw.write_keys() {
                        writes_by_key.entry(k.clone()).or_default().push(i);
                    }
                }
            }
            for &j in &committed {
                let Some(rw_j) = &res.rwsets[j] else { continue };
                // min_out/max_in over committed subgraph.
                let mut min_out = u64::MAX;
                let mut max_in = 0u64;
                for k in rw_j.read_keys() {
                    for &w in writes_by_key.get(k).into_iter().flatten() {
                        if w != j && (w as u64) < (j as u64) {
                            min_out = min_out.min(w as u64);
                        }
                    }
                }
                for k in rw_j.write_keys() {
                    for &r in &committed {
                        if r == j {
                            continue;
                        }
                        if let Some(rw_r) = &res.rwsets[r] {
                            if rw_r.read_keys().any(|rk| rk == k) {
                                max_in = max_in.max(r as u64 + 1);
                            }
                        }
                    }
                }
                if min_out != u64::MAX && max_in > 0 {
                    assert!(
                        min_out + 1 > max_in || min_out >= j as u64,
                        "backward dangerous structure survived in block {b} txn {j} \
                         (min_out={min_out}, max_in={}, seed={seed})",
                        max_in - 1
                    );
                }
            }
            // Feed next block.
            let _ = res;
        }
    }
}
