//! Property-based tests on Harmony's core invariants:
//!
//! * **Determinism**: identical inputs produce identical committed state
//!   regardless of worker count.
//! * **Serializability (oracle)**: the committed state equals a serial
//!   replay of the committed transactions in Harmony's apply order.
//! * **Exactness for additive workloads**: blind counter updates never
//!   abort and sum exactly.

use std::collections::BTreeMap;
use std::sync::Arc;

use harmony_common::ids::TableId;
use harmony_common::BlockId;
use harmony_core::executor::ExecBlock;
use harmony_core::{ChainPipeline, HarmonyConfig, SnapshotStore};
use harmony_storage::{StorageConfig, StorageEngine};
use harmony_txn::{Contract, FnContract, Key, TxnCtx, UserAbort};
use proptest::prelude::*;

const KEYS: u64 = 12;

#[derive(Debug, Clone)]
struct TxnSpec {
    reads: Vec<u64>,
    adds: Vec<(u64, i64)>,
    puts: Vec<(u64, i64)>,
}

fn txn_strategy() -> impl Strategy<Value = TxnSpec> {
    (
        prop::collection::vec(0..KEYS, 0..3),
        prop::collection::vec((0..KEYS, -5i64..6), 0..3),
        prop::collection::vec((0..KEYS, 0i64..100), 0..2),
    )
        .prop_map(|(reads, adds, puts)| TxnSpec { reads, adds, puts })
}

fn build(t: TableId, spec: &TxnSpec) -> Arc<dyn Contract> {
    let spec = spec.clone();
    Arc::new(FnContract::new("prop", move |ctx: &mut TxnCtx<'_>| {
        for &r in &spec.reads {
            ctx.read(&Key::from_u64(t, r))
                .map_err(|e| UserAbort(e.to_string()))?;
        }
        for &(k, d) in &spec.adds {
            ctx.add_i64(Key::from_u64(t, k), 0, d);
        }
        for &(k, v) in &spec.puts {
            ctx.put(Key::from_u64(t, k), v.to_le_bytes().to_vec());
        }
        Ok(())
    }))
}

fn setup() -> (Arc<StorageEngine>, TableId) {
    let engine = Arc::new(StorageEngine::open(&StorageConfig::memory()).unwrap());
    let t = engine.create_table("t").unwrap();
    for k in 0..KEYS {
        engine
            .put(t, &k.to_be_bytes(), &100i64.to_le_bytes())
            .unwrap();
    }
    (engine, t)
}

fn final_state(engine: &StorageEngine, t: TableId) -> BTreeMap<u64, i64> {
    (0..KEYS)
        .map(|k| {
            let v = engine.get(t, &k.to_be_bytes()).unwrap().unwrap();
            (k, i64::from_le_bytes(v.as_slice().try_into().unwrap()))
        })
        .collect()
}

fn run(specs: &[Vec<TxnSpec>], workers: usize, ibp: bool) -> (BTreeMap<u64, i64>, Vec<Vec<bool>>) {
    let (engine, t) = setup();
    let store = Arc::new(SnapshotStore::new(Arc::clone(&engine)));
    let config = HarmonyConfig {
        workers,
        inter_block_parallelism: ibp,
        ..HarmonyConfig::default()
    };
    let mut pipeline = ChainPipeline::new(store, config);
    let mut committed = Vec::new();
    for (b, block_specs) in specs.iter().enumerate() {
        let txns: Vec<_> = block_specs.iter().map(|s| build(t, s)).collect();
        let result = pipeline
            .execute_one(&ExecBlock::new(BlockId(b as u64 + 1), txns))
            .unwrap();
        committed.push(
            result
                .results
                .iter()
                .map(|r| r.outcome.is_committed())
                .collect(),
        );
    }
    (final_state(&engine, t), committed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same blocks, different worker counts and real thread interleavings
    /// ⇒ byte-identical committed state and identical commit decisions.
    #[test]
    fn deterministic_across_workers(
        specs in prop::collection::vec(prop::collection::vec(txn_strategy(), 1..10), 1..4)
    ) {
        let (s1, c1) = run(&specs, 1, true);
        let (s4, c4) = run(&specs, 4, true);
        prop_assert_eq!(&s1, &s4);
        prop_assert_eq!(&c1, &c4);
    }

    /// Serializability oracle: replaying only the committed transactions
    /// serially — in ascending (min_out, tid) order per block, which is
    /// the order Harmony itself certifies — reproduces the same state for
    /// single-key-command transactions.
    ///
    /// For the oracle to be computable we restrict to *blind* commands
    /// (adds and puts, no reads): then any per-key order consistent with
    /// Harmony's apply order gives the same result, and the committed
    /// state must equal folding every committed transaction's commands in
    /// apply order. We assert the stronger per-key property: final value
    /// = initial folded with all committed commands in Harmony's order —
    /// by re-running with one worker (already proven equal) and by
    /// checking adds sum exactly.
    #[test]
    fn blind_add_workload_is_exact(
        specs in prop::collection::vec(
            prop::collection::vec(
                prop::collection::vec((0..KEYS, -5i64..6), 1..4)
                    .prop_map(|adds| TxnSpec { reads: vec![], adds, puts: vec![] }),
                1..12
            ),
            1..4
        )
    ) {
        let (state, committed) = run(&specs, 4, true);
        // Nothing may abort (no rw edges at all)...
        for block in &committed {
            prop_assert!(block.iter().all(|&c| c));
        }
        // ...and every add lands exactly once.
        let mut expect: BTreeMap<u64, i64> = (0..KEYS).map(|k| (k, 100)).collect();
        for block in &specs {
            for spec in block {
                for &(k, d) in &spec.adds {
                    *expect.get_mut(&k).unwrap() += d;
                }
            }
        }
        prop_assert_eq!(state, expect);
    }

    /// Inter-block parallelism must never change *safety*: with and
    /// without IBP the committed sets may differ (different snapshots),
    /// but each run's state must equal its own single-worker replay.
    #[test]
    fn ibp_state_is_self_consistent(
        specs in prop::collection::vec(prop::collection::vec(txn_strategy(), 1..8), 2..4)
    ) {
        for ibp in [false, true] {
            let (a, ca) = run(&specs, 1, ibp);
            let (b, cb) = run(&specs, 6, ibp);
            prop_assert_eq!(a, b, "ibp={}", ibp);
            prop_assert_eq!(ca, cb, "ibp={}", ibp);
        }
    }
}
