//! Schema check for the committed `BENCH_PR*.json` perf-trajectory files.
//!
//! The workspace has no JSON dependency (offline build), so this uses a
//! small purpose-built scanner: enough to verify the files are
//! well-formed, carry the expected schema tag and required benches, and
//! that the committed speedups back the PR's acceptance floor. CI runs
//! this as part of the test suite *and* the bench-smoke job, so a drifted
//! or hand-mangled benchmark file fails fast.

use std::path::Path;

/// Check the byte stream is plausibly well-formed JSON: braces/brackets
/// balance outside of strings and the document is a single object.
fn check_balanced(text: &str) {
    let mut depth_obj = 0i64;
    let mut depth_arr = 0i64;
    let mut in_string = false;
    let mut escaped = false;
    for c in text.chars() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => depth_obj += 1,
            '}' => depth_obj -= 1,
            '[' => depth_arr += 1,
            ']' => depth_arr -= 1,
            _ => {}
        }
        assert!(depth_obj >= 0 && depth_arr >= 0, "unbalanced nesting");
    }
    assert!(!in_string, "unterminated string");
    assert_eq!(depth_obj, 0, "unbalanced braces");
    assert_eq!(depth_arr, 0, "unbalanced brackets");
}

/// Extract the numeric value following `"field":` after `from` (index).
fn number_after(text: &str, from: usize, field: &str) -> f64 {
    let probe = format!("\"{field}\":");
    let at = text[from..]
        .find(&probe)
        .unwrap_or_else(|| panic!("missing field {field}"));
    let rest = text[from + at + probe.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end]
        .parse()
        .unwrap_or_else(|e| panic!("bad number for {field}: {e}"))
}

/// Schema check for the bench-smoke artifact `fig24_sharded_node.json`
/// (written by the `fig24_sharded_node` binary earlier in the CI job).
/// Skips when the artifact has not been generated locally — the figure
/// binary is the generator, this test is the gate.
#[test]
fn fig24_json_matches_schema_when_present() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../EXPERIMENTS-results/fig24_sharded_node.json");
    let Ok(text) = std::fs::read_to_string(&path) else {
        eprintln!("fig24_sharded_node.json not generated; skipping schema check");
        return;
    };
    check_balanced(&text);
    assert!(
        text.contains("\"schema\": \"harmonybc-fig24/v1\""),
        "schema tag"
    );
    assert!(text.contains("\"points\""), "points array");
    assert!(
        !text.contains("\"roots_identical\": false"),
        "every point must report identical replica roots"
    );
    // Every point carries positive throughput on both runtimes and a
    // scaling shape that stayed inside the figure's acceptance band.
    let mut checked = 0;
    let mut from = 0;
    while let Some(at) = text[from..].find("\"node_tps\":") {
        let entry = from + at;
        let node_tps = number_after(&text, entry, "node_tps");
        let fig22_tps = number_after(&text, entry, "fig22_tps");
        let shape = number_after(&text, entry, "shape_ratio");
        assert!(node_tps > 0.0 && fig22_tps > 0.0, "positive throughput");
        assert!(
            (0.85..=1.15).contains(&shape),
            "shape_ratio {shape} outside the acceptance band"
        );
        checked += 1;
        from = entry + "\"node_tps\":".len();
    }
    // At least one engine × three shard counts.
    assert!(checked >= 3, "expected >= 3 points, found {checked}");
}

/// Schema check for the chaos-smoke artifact `fig25_overload.json`
/// (written by the `chaos_smoke` binary earlier in the CI job). Skips
/// when not generated locally.
#[test]
fn fig25_json_matches_schema_when_present() {
    let path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../EXPERIMENTS-results/fig25_overload.json");
    let Ok(text) = std::fs::read_to_string(&path) else {
        eprintln!("fig25_overload.json not generated; skipping schema check");
        return;
    };
    check_balanced(&text);
    assert!(
        text.contains("\"schema\": \"harmonybc-fig25/v1\""),
        "schema tag"
    );
    // The chaos leg converged on the no-fault reference and exercised
    // the recovery machinery.
    assert!(
        text.contains("\"roots_identical\": true"),
        "chaos leg must report identical roots"
    );
    let chaos_at = text.find("\"chaos\"").expect("chaos leg object");
    assert!(
        number_after(&text, chaos_at, "observer_committed") > 0.0,
        "observer starved"
    );
    assert!(
        number_after(&text, chaos_at, "quarantines") >= 1.0,
        "no self-quarantine recorded"
    );
    // The overload sweep: goodput rises to a knee, then holds — the
    // deepest-overload point keeps at least 70% of peak goodput.
    let mut goodputs = Vec::new();
    let mut from = 0;
    while let Some(at) = text[from..].find("\"offered_tps\":") {
        let entry = from + at;
        let offered = number_after(&text, entry, "offered_tps");
        let goodput = number_after(&text, entry, "goodput_tps");
        assert!(offered > 0.0 && goodput > 0.0, "positive rates");
        goodputs.push(goodput);
        from = entry + "\"offered_tps\":".len();
    }
    assert!(goodputs.len() >= 4, "expected >= 4 sweep points");
    let peak = goodputs.iter().fold(0.0f64, |a, &b| a.max(b));
    let deepest = *goodputs.last().unwrap();
    assert!(
        deepest >= 0.7 * peak,
        "goodput collapsed past saturation: {deepest} vs peak {peak}"
    );
}

/// Schema check for the reshard-smoke artifact `reshard_smoke.json`
/// (written by the `reshard_smoke` binary earlier in the CI job). Skips
/// when not generated locally.
#[test]
fn reshard_smoke_json_matches_schema_when_present() {
    let path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../EXPERIMENTS-results/reshard_smoke.json");
    let Ok(text) = std::fs::read_to_string(&path) else {
        eprintln!("reshard_smoke.json not generated; skipping schema check");
        return;
    };
    check_balanced(&text);
    assert!(
        text.contains("\"schema\": \"harmonybc-reshard/v1\""),
        "schema tag"
    );
    // Every engine's elastic 1→2→4 run matched the fixed-count
    // reference, on the folded root and on per-table heads.
    assert!(
        !text.contains("\"logical_identical\": false")
            && !text.contains("\"heads_identical\": false"),
        "an elastic run diverged from its fixed-count reference"
    );
    let mut engines = 0;
    let mut from = 0;
    while let Some(at) = text[from..].find("\"engine\":") {
        let entry = from + at;
        assert!(
            number_after(&text, entry, "committed") > 0.0,
            "engine point committed nothing"
        );
        assert!(
            number_after(&text, entry, "sealed_blocks") > 0.0,
            "engine point sealed nothing"
        );
        engines += 1;
        from = entry + "\"engine\":".len();
    }
    assert!(engines >= 5, "expected all five engines, found {engines}");
    // The crash leg rejoined across the topology boundary bit-identically.
    assert!(
        text.contains("\"roots_identical\": true"),
        "crash leg must report identical roots"
    );
    let crash_at = text.find("\"crash\"").expect("crash leg object");
    assert!(
        number_after(&text, crash_at, "recoveries") >= 1.0,
        "no recovery recorded"
    );
    assert!(
        number_after(&text, crash_at, "hosted_shards") == 4.0,
        "victim rejoined on a stale layout"
    );
}

/// Schema check for the metrics-smoke timeline artifact
/// `metrics_timeline.json` (written by the `metrics_smoke` binary
/// earlier in the CI job). Skips when not generated locally.
#[test]
fn metrics_timeline_json_matches_schema_when_present() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../EXPERIMENTS-results/metrics_timeline.json");
    let Ok(text) = std::fs::read_to_string(&path) else {
        eprintln!("metrics_timeline.json not generated; skipping schema check");
        return;
    };
    check_balanced(&text);
    assert!(
        text.contains("\"schema\": \"harmonybc-timeline/v1\""),
        "schema tag"
    );
    for field in [
        "\"system\":",
        "\"seed\":",
        "\"interval_ns\":",
        "\"snapshots\":",
    ] {
        assert!(text.contains(field), "missing top-level field {field}");
    }
    // Snapshots are stamped in virtual time and strictly increasing.
    let mut last = -1.0;
    let mut snapshots = 0;
    let mut from = 0;
    while let Some(at) = text[from..].find("\"t_ns\":") {
        let entry = from + at;
        let t = number_after(&text, entry, "t_ns");
        assert!(
            t > last,
            "timeline not strictly increasing: {t} after {last}"
        );
        last = t;
        snapshots += 1;
        from = entry + "\"t_ns\":".len();
    }
    assert!(snapshots >= 2, "expected >= 2 snapshots, found {snapshots}");
    // Sampled metric values are integers (determinism contract: no
    // floats anywhere in the timeline).
    assert!(!text.contains("\"value\": -0"), "negative-zero value");
    let mut from = 0;
    while let Some(at) = text[from..].find("\"value\":") {
        let entry = from + at;
        let rest = text[entry + "\"value\":".len()..].trim_start();
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || c == '-'))
            .unwrap_or(rest.len());
        assert!(
            !rest[..end].is_empty() && !rest[..end.min(rest.len())].contains('.'),
            "non-integer sample value near byte {entry}"
        );
        from = entry + "\"value\":".len();
    }
}

#[test]
fn bench_pr3_json_matches_schema_and_floors() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR3.json");
    let text = std::fs::read_to_string(&path).expect("BENCH_PR3.json committed at the repo root");
    check_balanced(&text);
    assert!(
        text.contains("\"schema\": \"harmonybc-bench/v1\""),
        "schema tag"
    );
    assert!(text.contains("\"suite\": \"hotpath\""), "suite tag");
    assert!(text.contains("\"benches\""), "benches array");

    // Every bench entry must carry before/after/speedup, and the speedup
    // must match before/after within rounding.
    let mut checked = 0;
    let mut from = 0;
    while let Some(at) = text[from..].find("\"before_ns\":") {
        let entry = from + at;
        let before = number_after(&text, entry, "before_ns");
        let after = number_after(&text, entry, "after_ns");
        let speedup = number_after(&text, entry, "speedup");
        assert!(before > 0.0 && after > 0.0, "positive timings");
        let actual = before / after;
        assert!(
            (actual - speedup).abs() / actual < 0.05,
            "speedup field {speedup} inconsistent with {before}/{after} = {actual:.2}"
        );
        checked += 1;
        from = entry + "\"before_ns\":".len();
    }
    assert!(checked >= 6, "expected >= 6 bench entries, found {checked}");

    // PR3 acceptance floor: >= 1.5x on the two named microbenches.
    for name in ["reservation/register", "snapshot/read_hot"] {
        let at = text
            .find(&format!("\"{name}\""))
            .unwrap_or_else(|| panic!("missing required bench {name}"));
        let speedup = number_after(&text, at, "speedup");
        assert!(
            speedup >= 1.5,
            "{name} speedup {speedup} below the 1.5x floor"
        );
    }
}

#[test]
fn bench_pr6_json_matches_schema_and_floors() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR6.json");
    let text = std::fs::read_to_string(&path).expect("BENCH_PR6.json committed at the repo root");
    check_balanced(&text);
    assert!(
        text.contains("\"schema\": \"harmonybc-bench/v1\""),
        "schema tag"
    );
    assert!(text.contains("\"suite\": \"state_root\""), "suite tag");
    assert!(text.contains("\"benches\""), "benches array");

    let mut checked = 0;
    let mut from = 0;
    while let Some(at) = text[from..].find("\"before_ns\":") {
        let entry = from + at;
        let before = number_after(&text, entry, "before_ns");
        let after = number_after(&text, entry, "after_ns");
        let speedup = number_after(&text, entry, "speedup");
        assert!(before > 0.0 && after > 0.0, "positive timings");
        let actual = before / after;
        assert!(
            (actual - speedup).abs() / actual < 0.05,
            "speedup field {speedup} inconsistent with {before}/{after} = {actual:.2}"
        );
        checked += 1;
        from = entry + "\"before_ns\":".len();
    }
    assert!(checked >= 3, "expected >= 3 bench entries, found {checked}");

    // PR6 acceptance floor: >= 10x on root-after-block at 100k keys (the
    // measured fold is ~300x; the floor leaves room for slower hosts).
    for name in [
        "state_root/root_after_block_100k_delta100",
        "state_root/warm_root_query_100k",
    ] {
        let at = text
            .find(&format!("\"{name}\""))
            .unwrap_or_else(|| panic!("missing required bench {name}"));
        let speedup = number_after(&text, at, "speedup");
        assert!(
            speedup >= 10.0,
            "{name} speedup {speedup} below the 10x floor"
        );
    }
}
