//! Criterion micro-benchmarks over the core primitives: Harmony block
//! execution vs Aria, B+Tree access paths, and the crypto substrate.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use harmony_core::executor::ExecBlock;
use harmony_core::{HarmonyConfig, SnapshotStore};
use harmony_dcc_baselines::{Aria, AriaConfig, DccEngine, HarmonyEngine};
use harmony_storage::{StorageConfig, StorageEngine};
use harmony_workloads::{Workload, Ycsb, YcsbConfig};
use std::sync::Arc;

fn bench_block_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("block_execution");
    group.sample_size(20);
    for (name, harmony) in [("harmony", true), ("aria", false)] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let engine = Arc::new(StorageEngine::open(&StorageConfig::memory()).unwrap());
                    let mut w = Ycsb::new(YcsbConfig {
                        keys: 2_000,
                        theta: 0.6,
                        ..YcsbConfig::default()
                    });
                    w.setup(&engine).unwrap();
                    let store = Arc::new(SnapshotStore::new(engine));
                    let dcc: Arc<dyn DccEngine> = if harmony {
                        Arc::new(HarmonyEngine::new(
                            Arc::clone(&store),
                            HarmonyConfig {
                                workers: 4,
                                ..HarmonyConfig::default()
                            },
                        ))
                    } else {
                        Arc::new(Aria::new(
                            Arc::clone(&store),
                            AriaConfig {
                                workers: 4,
                                reordering: true,
                            },
                        ))
                    };
                    let mut rng = harmony_common::DetRng::new(7);
                    let txns = w.next_block(&mut rng, 50);
                    (dcc, txns)
                },
                |(dcc, txns)| {
                    let block = ExecBlock::new(harmony_common::BlockId(1), txns);
                    dcc.execute_block(&block).unwrap()
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_btree(c: &mut Criterion) {
    use harmony_storage::btree::BTree;
    use harmony_storage::{BufferPool, StorageCost};
    let mut group = c.benchmark_group("btree");
    group.bench_function("get_hot", |b| {
        let pool = Arc::new(BufferPool::new(
            Arc::new(harmony_storage::MemDisk::new()),
            1024,
            StorageCost::free(),
        ));
        let mut tree = BTree::create(pool, StorageCost::free()).unwrap();
        for i in 0..10_000u64 {
            tree.put(&i.to_be_bytes(), &i.to_le_bytes()).unwrap();
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 997) % 10_000;
            tree.get(&i.to_be_bytes()).unwrap()
        });
    });
    group.bench_function("insert", |b| {
        b.iter_batched(
            || {
                let pool = Arc::new(BufferPool::new(
                    Arc::new(harmony_storage::MemDisk::new()),
                    1024,
                    StorageCost::free(),
                ));
                BTree::create(pool, StorageCost::free()).unwrap()
            },
            |mut tree| {
                for i in 0..1_000u64 {
                    tree.put(&i.to_be_bytes(), &i.to_le_bytes()).unwrap();
                }
                tree
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_crypto(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto");
    let data = vec![0xABu8; 4096];
    group.bench_function("sha256_4k", |b| {
        b.iter(|| harmony_crypto::sha256(&data));
    });
    let leaves: Vec<Vec<u8>> = (0..100).map(|i| format!("txn-{i}").into_bytes()).collect();
    group.bench_function("merkle_100", |b| {
        b.iter(|| harmony_crypto::MerkleTree::build(&leaves).root());
    });
    group.finish();
}

criterion_group!(benches, bench_block_execution, bench_btree, bench_crypto);
criterion_main!(benches);
