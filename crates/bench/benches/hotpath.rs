//! Hot-path micro-benchmarks: the per-transaction critical path.
//!
//! Every simulated read and every registered read-write set crosses
//! `SnapshotStore` and `ReservationTable`; this suite times those two
//! structures in isolation (snapshot read/write/scan, reservation
//! register/fire) plus one end-to-end Smallbank block, so each PR leaves
//! a measured perf trajectory in `BENCH_PR*.json` (see the README "perf"
//! section for how the numbers are produced and compared).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use harmony_common::{BlockId, DetRng};
use harmony_core::executor::ExecBlock;
use harmony_core::meta::TxnMeta;
use harmony_core::reservation::{RegisterScratch, ReservationTable};
use harmony_core::{BlockExecutor, HarmonyConfig, SnapshotStore};
use harmony_storage::{StorageConfig, StorageEngine};
use harmony_txn::{Key, RwSet, UpdateCommand, Value};
use harmony_workloads::{Smallbank, SmallbankConfig, Workload};

const KEYS: u64 = 10_000;

/// Engine with one table preloaded with `KEYS` little-endian u64 rows.
fn loaded_store() -> (Arc<SnapshotStore>, Vec<Key>) {
    let engine = Arc::new(StorageEngine::open(&StorageConfig::memory()).unwrap());
    let t = engine.create_table("hot").unwrap();
    for i in 0..KEYS {
        engine.put(t, &i.to_be_bytes(), &i.to_le_bytes()).unwrap();
    }
    let keys: Vec<Key> = (0..KEYS).map(|i| Key::from_u64(t, i)).collect();
    (Arc::new(SnapshotStore::new(engine)), keys)
}

/// Overlay every key with a block-1 write so snapshot-0 reads hit the
/// undo chains rather than the engine.
fn overlaid_store() -> (Arc<SnapshotStore>, Vec<Key>) {
    let (store, keys) = loaded_store();
    let v = Value::copy_from_slice(b"overlaid");
    for (i, key) in keys.iter().enumerate() {
        store
            .apply_write(BlockId(1), i as u64, key, Some(&v))
            .unwrap();
    }
    (store, keys)
}

fn bench_snapshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot");

    // Snapshot-0 point reads served from the undo overlay (no engine I/O):
    // isolates key hashing + shard lock + chain probe.
    let (store, keys) = overlaid_store();
    let mut i = 0usize;
    group.sample_size(100_000);
    group.bench_function("read_hot", |b| {
        b.iter(|| {
            i = (i + 7919) % keys.len();
            store.read_at(BlockId(0), &keys[i]).unwrap()
        });
    });

    // Point reads against an empty overlay: the common no-overlay case
    // (every read falls through to the engine).
    let (store, keys) = loaded_store();
    let mut i = 0usize;
    group.sample_size(20_000);
    group.bench_function("read_no_overlay", |b| {
        b.iter(|| {
            i = (i + 7919) % keys.len();
            store.read_at(BlockId(1), &keys[i]).unwrap()
        });
    });

    // Committed writes: undo + version bookkeeping plus the engine put.
    group.sample_size(30);
    group.bench_function("write_block", |b| {
        b.iter_batched(
            loaded_store,
            |(store, keys)| {
                let v = Value::copy_from_slice(b"committed");
                for (i, key) in keys.iter().take(1_000).enumerate() {
                    store
                        .apply_write(BlockId(1), i as u64, key, Some(&v))
                        .unwrap();
                }
                store
            },
            BatchSize::SmallInput,
        );
    });

    // Narrow scan over a fully-overlaid table, snapshot 0: ~100 of the
    // 10k undo chains fall inside the scanned interval.
    let (store, keys) = overlaid_store();
    let t = keys[0].table();
    let start = 5_000u64.to_be_bytes();
    let end = 5_100u64.to_be_bytes();
    group.sample_size(1_000);
    group.bench_function("scan_narrow_overlaid", |b| {
        b.iter(|| {
            let mut rows = 0u64;
            store
                .scan_at(BlockId(0), t, &start, Some(&end), &mut |_, _| {
                    rows += 1;
                    true
                })
                .unwrap();
            rows
        });
    });

    // Same scan at snapshot 1: no override is visible, but discovering
    // that must not cost a walk over every undo chain.
    group.bench_function("scan_narrow_clean", |b| {
        b.iter(|| {
            let mut rows = 0u64;
            store
                .scan_at(BlockId(1), t, &start, Some(&end), &mut |_, _| {
                    rows += 1;
                    true
                })
                .unwrap();
            rows
        });
    });

    group.finish();
}

/// 100 transactions, each reading 4 keys and writing 4 keys of a 10k
/// keyspace (deterministic), mirroring an OLTP block's reservation load.
fn block_rwsets() -> Vec<RwSet> {
    let t = harmony_common::ids::TableId(0);
    let mut rng = DetRng::new(42);
    (0..100)
        .map(|_| {
            let mut rw = RwSet::default();
            for _ in 0..4 {
                rw.record_read(Key::from_u64(t, rng.next_u64() % KEYS), None);
            }
            for _ in 0..4 {
                rw.record_update(
                    Key::from_u64(t, rng.next_u64() % KEYS),
                    UpdateCommand::AddI64 {
                        offset: 0,
                        delta: 1,
                    },
                );
            }
            rw
        })
        .collect()
}

fn bench_reservation(c: &mut Criterion) {
    let mut group = c.benchmark_group("reservation");
    let rwsets = block_rwsets();

    // Production path: each worker holds one scratch for the whole block
    // (see `BlockExecutor::simulate`), so the bench reuses one too.
    let mut scratch = RegisterScratch::default();
    group.sample_size(1_000);
    group.bench_function("register", |b| {
        b.iter_batched(
            ReservationTable::new,
            |table| {
                for (i, rw) in rwsets.iter().enumerate() {
                    table.register_with(i as u32, rw, &mut scratch);
                }
                table
            },
            BatchSize::SmallInput,
        );
    });

    let table = ReservationTable::new();
    for (i, rw) in rwsets.iter().enumerate() {
        table.register(i as u32, rw);
    }
    let metas: Vec<TxnMeta> = (0..rwsets.len()).map(|i| TxnMeta::new(i as u64)).collect();
    group.sample_size(20_000);
    group.bench_function("fire", |b| {
        b.iter(|| table.fire_rw_events(&metas));
    });

    group.finish();
}

fn bench_block(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2e");
    group.sample_size(20);
    group.bench_function("smallbank_block", |b| {
        b.iter_batched(
            || {
                let engine = Arc::new(StorageEngine::open(&StorageConfig::memory()).unwrap());
                let mut w = Smallbank::new(SmallbankConfig {
                    accounts: 1_000,
                    ..SmallbankConfig::default()
                });
                w.setup(&engine).unwrap();
                let store = Arc::new(SnapshotStore::new(engine));
                let exec = BlockExecutor::new(
                    store,
                    HarmonyConfig {
                        workers: 4,
                        ..HarmonyConfig::default()
                    },
                );
                let mut rng = DetRng::new(7);
                let txns = w.next_block(&mut rng, 100);
                (exec, txns)
            },
            |(exec, txns)| {
                let block = ExecBlock::new(BlockId(1), txns);
                exec.execute(&block, None).unwrap()
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_snapshot, bench_reservation, bench_block);
criterion_main!(benches);
