//! State-root benchmarks: full-scan oracle vs incremental commitment.
//!
//! The numbers behind `BENCH_PR6.json`: on a 100k-row store, computing
//! the root by full rescan (`harmony_chain::state_root`, the pre-PR6
//! behaviour after every block) against folding a 100-key block
//! write-set into an already-built [`StateCommitment`] (the apply-time
//! path) and reading the cached root (the warm `OeChain::state_root`).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use harmony_chain::{state_root, StateCommitment};
use harmony_common::ids::TableId;
use harmony_storage::{StorageConfig, StorageEngine};
use harmony_txn::Key;

const KEYS: u64 = 100_000;
const DELTA: u64 = 100;

/// Engine with one table preloaded with `KEYS` rows of 24-byte values.
fn loaded_engine() -> (Arc<StorageEngine>, TableId) {
    let engine = Arc::new(StorageEngine::open(&StorageConfig::memory()).unwrap());
    let t = engine.create_table("accounts").unwrap();
    for i in 0..KEYS {
        engine
            .put(t, &i.to_be_bytes(), format!("balance-{i:016}").as_bytes())
            .unwrap();
    }
    (engine, t)
}

fn bench_state_root(c: &mut Criterion) {
    let mut group = c.benchmark_group("state_root");
    let (engine, t) = loaded_engine();

    // Pre-PR6 behaviour: every root query rescans and rehashes the whole
    // store (O(n) sha256 leaves + treap build).
    group.sample_size(10);
    group.bench_function("full_rescan_100k", |b| {
        b.iter(|| state_root(&engine).unwrap());
    });

    // Apply-time fold: a 100-key block write-set upserted into the live
    // commitment, then the root recomputed along the touched spines —
    // O(Δ·log n) instead of O(n).
    let mut commit = StateCommitment::build(&engine).unwrap();
    let mut epoch = 0u64;
    group.sample_size(200);
    group.bench_function("incremental_delta100_100k", |b| {
        b.iter(|| {
            epoch += 1;
            let lo = (epoch * DELTA) % KEYS;
            let mut keys = Vec::with_capacity(DELTA as usize);
            for i in lo..lo + DELTA {
                let k = (i % KEYS).to_be_bytes();
                engine
                    .put(t, &k, format!("balance-{epoch:08}-{i:07}").as_bytes())
                    .unwrap();
                keys.push(Key::new(t, k.to_vec()));
            }
            commit.apply_writes(&engine, &keys).unwrap();
            commit.root()
        });
    });

    // Warm cached root: what `OeChain::state_root` costs between blocks.
    group.sample_size(100_000);
    group.bench_function("cached_root_100k", |b| {
        b.iter(|| commit.root());
    });

    group.finish();
}

criterion_group!(benches, bench_state_root);
criterion_main!(benches);
