//! Benchmark harness: regenerates every table and figure of the paper's
//! evaluation (§5). Each `src/bin/figXX_*` binary prints the same
//! rows/series the paper reports and appends CSV files under
//! `EXPERIMENTS-results/`.
//!
//! Absolute numbers come from the virtual-time model (see DESIGN.md); the
//! *shapes* — who wins, by what factor, where crossovers fall — are the
//! reproduction targets recorded in EXPERIMENTS.md.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

use harmony_common::{BlockId, DetRng, Result};
use harmony_core::executor::{ExecBlock, TxnOutcome};
use harmony_core::HarmonyConfig;
use harmony_dcc_baselines::ProtocolBlockResult;
use harmony_sim::{run_experiment, EngineKind, RunConfig, RunMetrics};
use harmony_storage::{DiskProfile, StorageConfig, StorageEngine};
use harmony_txn::Key;
use harmony_workloads::{Smallbank, SmallbankConfig, Tpcc, TpccConfig, Workload, Ycsb, YcsbConfig};

/// Parse a comma-separated engine list (the `HARMONY_ENGINES` format).
/// Unknown names abort loudly — a silently empty figure is worse than a
/// crash.
///
/// # Panics
/// Panics on an unknown engine name.
#[must_use]
pub fn parse_engines(list: &str) -> Vec<EngineKind> {
    list.split(',')
        .map(|name| {
            name.parse()
                .unwrap_or_else(|e| panic!("HARMONY_ENGINES: {e}"))
        })
        .collect()
}

/// The engine set selected by the `HARMONY_ENGINES` environment variable
/// (comma-separated names, e.g. `HARMONY_ENGINES=harmony,aria`), or
/// `default` when unset/empty.
///
/// # Panics
/// Panics if the variable names an unknown engine.
#[must_use]
pub fn engines_from_env(default: Vec<EngineKind>) -> Vec<EngineKind> {
    match std::env::var("HARMONY_ENGINES") {
        Ok(list) if !list.trim().is_empty() => parse_engines(&list),
        _ => default,
    }
}

/// The five systems of the evaluation, in the paper's plotting order
/// (overridable via `HARMONY_ENGINES`).
#[must_use]
pub fn all_systems() -> Vec<EngineKind> {
    engines_from_env(vec![
        EngineKind::Fabric,
        EngineKind::FastFabric,
        EngineKind::Rbc,
        EngineKind::Aria,
        EngineKind::Harmony(HarmonyConfig::default()),
    ])
}

/// The OE/relational subset used for TPC-C and the hotspot study. A
/// `HARMONY_ENGINES` override is *intersected* with this subset: the
/// paper's methodology excludes the SOV engines from these figures
/// (Fabric/FastFabric# are not relational), so the env var can narrow the
/// set but never smuggle an unsupported engine in.
#[must_use]
pub fn relational_systems() -> Vec<EngineKind> {
    let relational = vec![
        EngineKind::Rbc,
        EngineKind::Aria,
        EngineKind::Harmony(HarmonyConfig::default()),
    ];
    engines_from_env(relational)
        .into_iter()
        .filter(|k| {
            matches!(
                k,
                EngineKind::Rbc | EngineKind::Aria | EngineKind::Harmony(_)
            )
        })
        .collect()
}

/// Workload factories at paper scale.
pub enum WorkloadKind {
    /// YCSB with the given skew.
    Ycsb {
        /// Zipfian theta.
        theta: f64,
    },
    /// YCSB hotspot variant (Figure 14).
    YcsbHotspot {
        /// Per-statement hot probability.
        hot_prob: f64,
    },
    /// Smallbank with the given skew.
    Smallbank {
        /// Zipfian theta.
        theta: f64,
    },
    /// TPC-C with the given warehouse count.
    Tpcc {
        /// Warehouses.
        warehouses: u64,
    },
}

impl WorkloadKind {
    /// Instantiate the workload.
    #[must_use]
    pub fn build(&self) -> Box<dyn Workload> {
        match self {
            WorkloadKind::Ycsb { theta } => Box::new(Ycsb::new(YcsbConfig {
                theta: *theta,
                ..YcsbConfig::default()
            })),
            WorkloadKind::YcsbHotspot { hot_prob } => {
                Box::new(Ycsb::new(YcsbConfig::hotspot(*hot_prob)))
            }
            WorkloadKind::Smallbank { theta } => Box::new(Smallbank::new(SmallbankConfig {
                theta: *theta,
                ..SmallbankConfig::default()
            })),
            WorkloadKind::Tpcc { warehouses } => Box::new(Tpcc::new(TpccConfig {
                warehouses: *warehouses,
                scale: 0.02,
                ..TpccConfig::default()
            })),
        }
    }
}

/// Default experiment scale: enough blocks for stable rates, small enough
/// for laptop runs.
#[must_use]
pub fn default_run(block_size: usize) -> RunConfig {
    RunConfig {
        blocks: 30,
        block_size,
        workers: 8,
        storage: StorageConfig::default(),
        seed: 0x5EED,
        retry_aborts: true,
    }
}

/// Run one (system × workload) point.
pub fn measure(
    kind: EngineKind,
    workload: &WorkloadKind,
    config: &RunConfig,
) -> Result<RunMetrics> {
    let mut w = workload.build();
    run_experiment(kind, w.as_mut(), config)
}

/// Run a block-size sweep and return `(best_block_size, best_metrics)` by
/// throughput — the paper's "block size tuned to optimal per system".
pub fn measure_tuned(
    kind: EngineKind,
    workload: &WorkloadKind,
    sizes: &[usize],
) -> Result<(usize, RunMetrics)> {
    let mut best: Option<(usize, RunMetrics)> = None;
    for &size in sizes {
        let m = measure(kind, workload, &default_run(size))?;
        if best
            .as_ref()
            .is_none_or(|(_, b)| m.throughput_tps > b.throughput_tps)
        {
            best = Some((size, m));
        }
    }
    Ok(best.expect("non-empty sizes"))
}

/// Standard block-size candidates (Figure 9/10 x-axis).
pub const BLOCK_SIZES: [usize; 5] = [5, 25, 50, 75, 100];

// ── Per-block inspection (false-abort accounting, Figure 13) ────────────

/// Drive an engine block-by-block, calling `inspect` with every result.
/// No retries (each attempt counted once), as Figure 13 requires.
pub fn run_with_inspector(
    kind: EngineKind,
    workload: &WorkloadKind,
    blocks: usize,
    block_size: usize,
    mut inspect: impl FnMut(&ProtocolBlockResult),
) -> Result<()> {
    let mut w = workload.build();
    let engine = std::sync::Arc::new(StorageEngine::open(&StorageConfig::default())?);
    w.setup(&engine)?;
    let store = std::sync::Arc::new(harmony_core::SnapshotStore::new(engine));
    let dcc = kind.build(std::sync::Arc::clone(&store), 8);
    let mut rng = DetRng::new(0xF16);
    for b in 0..blocks {
        let block = ExecBlock::new(BlockId(b as u64 + 1), w.next_block(&mut rng, block_size));
        let result = dcc.execute_block(&block)?;
        inspect(&result);
    }
    Ok(())
}

/// Count false aborts in one block result: an abort is *false* if adding
/// the transaction to the block's committed set keeps the dependency
/// graph acyclic (i.e. the protocol could have committed it).
#[must_use]
pub fn false_aborts_in(result: &ProtocolBlockResult) -> (u64, u64) {
    use std::collections::HashMap;
    let committed: Vec<usize> = result
        .outcomes
        .iter()
        .enumerate()
        .filter(|(_, o)| o.is_committed())
        .map(|(i, _)| i)
        .collect();
    let mut aborts = 0u64;
    let mut false_aborts = 0u64;
    for (j, outcome) in result.outcomes.iter().enumerate() {
        let TxnOutcome::Aborted(reason) = outcome else {
            continue;
        };
        if *reason == harmony_common::error::AbortReason::UserAbort {
            continue;
        }
        aborts += 1;
        if result.rwsets[j].is_none() {
            continue;
        }
        // Build the dependency graph over committed ∪ {j}.
        let mut members = committed.clone();
        members.push(j);
        let mut writers: HashMap<&Key, Vec<usize>> = HashMap::new();
        for &m in &members {
            if let Some(rw) = &result.rwsets[m] {
                for k in rw.write_keys() {
                    writers.entry(k).or_default().push(m);
                }
            }
        }
        // Edges: reader → writer (rw, reader first), smaller-tid writer →
        // larger (ww). All reads are snapshot reads, so wr edges cannot
        // occur inside a block.
        let mut succ: HashMap<usize, Vec<usize>> = HashMap::new();
        for &m in &members {
            let Some(rw) = &result.rwsets[m] else {
                continue;
            };
            for k in rw.read_keys() {
                for &w in writers.get(k).into_iter().flatten() {
                    if w != m {
                        succ.entry(m).or_default().push(w);
                    }
                }
            }
            for k in rw.write_keys() {
                for &w in writers.get(k).into_iter().flatten() {
                    if w > m {
                        succ.entry(m).or_default().push(w);
                    }
                }
            }
        }
        if !has_cycle(&succ, &members) {
            false_aborts += 1;
        }
    }
    (false_aborts, aborts)
}

fn has_cycle(succ: &std::collections::HashMap<usize, Vec<usize>>, nodes: &[usize]) -> bool {
    // Iterative three-color DFS.
    use std::collections::HashMap;
    let mut color: HashMap<usize, u8> = HashMap::new();
    for &start in nodes {
        if color.get(&start).copied().unwrap_or(0) != 0 {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        color.insert(start, 1);
        while let Some(&(node, idx)) = stack.last() {
            let next = succ.get(&node).and_then(|s| s.get(idx)).copied();
            match next {
                Some(n) => {
                    stack.last_mut().expect("non-empty").1 += 1;
                    match color.get(&n).copied().unwrap_or(0) {
                        0 => {
                            color.insert(n, 1);
                            stack.push((n, 0));
                        }
                        1 => return true,
                        _ => {}
                    }
                }
                None => {
                    color.insert(node, 2);
                    stack.pop();
                }
            }
        }
    }
    false
}

// ── Output helpers ───────────────────────────────────────────────────────

/// Results directory (created on demand).
#[must_use]
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("EXPERIMENTS-results");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// A printable/CSV-able result table.
pub struct Table {
    /// Table name (file stem).
    pub name: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a header row.
    #[must_use]
    pub fn new(name: &str, header: &[&str]) -> Table {
        Table {
            name: name.to_string(),
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity");
        self.rows.push(cells);
    }

    /// Render aligned for the terminal.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Print to stdout and write `EXPERIMENTS-results/<name>.csv`.
    pub fn emit(&self) {
        println!("\n== {} ==", self.name);
        print!("{}", self.render());
        let mut csv = self.header.join(",") + "\n";
        for row in &self.rows {
            csv.push_str(&row.join(","));
            csv.push('\n');
        }
        let path = results_dir().join(format!("{}.csv", self.name));
        if let Err(e) = fs::write(&path, csv) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
}

/// Format helper: two decimal places.
#[must_use]
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format helper: percentage with one decimal.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Storage configuration for a disk profile (Figure 21 axis).
#[must_use]
pub fn storage_with_profile(profile: DiskProfile) -> StorageConfig {
    StorageConfig {
        disk_profile: profile,
        log_sync_ns: profile.sync_ns,
        ..StorageConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_and_aligns() {
        let mut t = Table::new("demo", &["sys", "tps"]);
        t.row(vec!["HarmonyBC".into(), "123.45".into()]);
        let s = t.render();
        assert!(s.contains("HarmonyBC"));
        assert!(s.contains("tps"));
    }

    #[test]
    fn false_abort_detection_on_synthetic_result() {
        // One committed writer of x, one aborted txn that only read y:
        // clearly a false abort.
        use harmony_common::error::AbortReason;
        use harmony_txn::{RwSet, UpdateCommand};
        let t = harmony_common::ids::TableId(0);
        let mut rw0 = RwSet::default();
        rw0.record_update(Key::from_u64(t, 0), UpdateCommand::Delete);
        let mut rw1 = RwSet::default();
        rw1.record_read(Key::from_u64(t, 1), None);
        let result = ProtocolBlockResult {
            block: BlockId(1),
            outcomes: vec![
                TxnOutcome::Committed,
                TxnOutcome::Aborted(AbortReason::WwConflict),
            ],
            rwsets: vec![Some(rw0), Some(rw1)],
            stats: harmony_core::BlockStats::default(),
            sim_ns: vec![0, 0],
            commit_ns: vec![0, 0],
            orderer_ns: 0,
            summary: None,
        };
        assert_eq!(false_aborts_in(&result), (1, 1));
    }

    #[test]
    fn true_abort_detected_as_cycle() {
        // Write-skew pair: aborted txn genuinely completes a cycle.
        use harmony_common::error::AbortReason;
        use harmony_txn::{RwSet, UpdateCommand};
        let t = harmony_common::ids::TableId(0);
        let mut rw0 = RwSet::default();
        rw0.record_read(Key::from_u64(t, 1), None);
        rw0.record_update(Key::from_u64(t, 0), UpdateCommand::Delete);
        let mut rw1 = RwSet::default();
        rw1.record_read(Key::from_u64(t, 0), None);
        rw1.record_update(Key::from_u64(t, 1), UpdateCommand::Delete);
        let result = ProtocolBlockResult {
            block: BlockId(1),
            outcomes: vec![
                TxnOutcome::Committed,
                TxnOutcome::Aborted(AbortReason::BackwardDangerousStructure),
            ],
            rwsets: vec![Some(rw0), Some(rw1)],
            stats: harmony_core::BlockStats::default(),
            sim_ns: vec![0, 0],
            commit_ns: vec![0, 0],
            orderer_ns: 0,
            summary: None,
        };
        assert_eq!(false_aborts_in(&result), (0, 1));
    }

    #[test]
    fn engine_list_parses() {
        // Test the pure parser: mutating the real environment variable in
        // a multithreaded test harness would race other tests.
        let set = parse_engines("harmony, rbc");
        assert_eq!(set.len(), 2);
        assert_eq!(set[0].name(), "HarmonyBC");
        assert_eq!(set[1].name(), "RBC");
        assert_eq!(parse_engines("fastfabric#")[0].name(), "FastFabric#");
    }

    #[test]
    #[should_panic(expected = "HARMONY_ENGINES")]
    fn engine_list_rejects_unknown_names() {
        let _ = parse_engines("harmony,postgres");
    }

    #[test]
    fn quick_measure_smoke() {
        let config = RunConfig {
            blocks: 4,
            block_size: 10,
            ..default_run(10)
        };
        let m = measure(
            EngineKind::Harmony(HarmonyConfig::default()),
            &WorkloadKind::Smallbank { theta: 0.4 },
            &config,
        )
        .unwrap();
        assert!(m.stats.committed > 0);
    }
}
