//! Figure 8: overall throughput and latency on YCSB.

use harmony_bench::{all_systems, f2, measure_tuned, Table, WorkloadKind, BLOCK_SIZES};

fn main() {
    let mut t = Table::new(
        "fig08_overall_ycsb",
        &[
            "system",
            "block_size",
            "throughput_tps",
            "latency_ms",
            "abort_rate",
        ],
    );
    for kind in all_systems() {
        let (size, m) =
            measure_tuned(kind, &WorkloadKind::Ycsb { theta: 0.6 }, &BLOCK_SIZES).unwrap();
        t.row(vec![
            m.system.into(),
            size.to_string(),
            f2(m.throughput_tps),
            f2(m.latency_ms),
            f2(m.abort_rate),
        ]);
    }
    t.emit();
}
