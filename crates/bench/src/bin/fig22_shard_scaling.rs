//! Figure 22 (extension): shard-scaling. Throughput vs shard count
//! (1/2/4/8/16) at 0%, 5% and 20% cross-shard transaction ratios, on
//! partition-aware Smallbank.
//!
//! Expected shape: a fully partitionable workload scales near-linearly
//! with the shard count (sub-blocks shrink, shards execute concurrently);
//! the cross-shard series pay the read-fragment exchange round plus the
//! unsharded re-simulation stage and degrade gracefully as the ratio
//! grows. Select a subset of engines with e.g.
//! `HARMONY_ENGINES=harmony,aria` to bound runtime.

use harmony_bench::{all_systems, f2, pct, Table};
use harmony_sim::{run_sharded_experiment, RunConfig, ShardRunConfig};
use harmony_workloads::{Smallbank, SmallbankConfig};

/// Logical partitions — fixed across shard counts (must cover the largest).
const PARTITIONS: u32 = 16;
const SHARD_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];
/// Target *block-level* fraction of cross-shard transactions.
const CROSS_RATIOS: [f64; 3] = [0.0, 0.05, 0.20];
/// Smallbank's `multi_partition_ratio` knob applies only to the
/// two-account procedures (Amalgamate 0.15 + SendPayment 0.15 of the
/// mix), so the per-procedure knob is the block-level target divided by
/// that share.
const TWO_ACCOUNT_SHARE: f64 = 0.30;

fn main() {
    let mut t = Table::new(
        "fig22_shard_scaling",
        &[
            "system",
            "shards",
            "cross_ratio",
            "throughput_tps",
            "latency_ms",
            "abort_rate",
        ],
    );
    for kind in all_systems() {
        for &ratio in &CROSS_RATIOS {
            for &shards in &SHARD_COUNTS {
                let mut w = Smallbank::new(SmallbankConfig {
                    partitions: u64::from(PARTITIONS),
                    multi_partition_ratio: (ratio / TWO_ACCOUNT_SHARE).min(1.0),
                    ..SmallbankConfig::default()
                });
                let config = ShardRunConfig {
                    base: RunConfig {
                        blocks: 8,
                        block_size: 480,
                        ..RunConfig::default()
                    },
                    shards,
                    partitions: PARTITIONS,
                    ..ShardRunConfig::default()
                };
                let m = run_sharded_experiment(kind, &mut w, &config).unwrap();
                t.row(vec![
                    format!("{}@{:.0}%", kind.name(), ratio * 100.0),
                    shards.to_string(),
                    pct(ratio),
                    f2(m.throughput_tps),
                    f2(m.latency_ms),
                    f2(m.abort_rate),
                ]);
            }
        }
    }
    t.emit();
}
