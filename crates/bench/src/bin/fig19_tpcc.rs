//! Figure 19: TPC-C, sweeping the warehouse count (contention ↘, database
//! size ↗). Fabric/FastFabric# excluded (not relational), as in the paper.

use harmony_bench::{default_run, f2, measure, relational_systems, Table, WorkloadKind};

fn main() {
    let mut t = Table::new(
        "fig19_tpcc",
        &[
            "system",
            "warehouses",
            "throughput_tps",
            "latency_ms",
            "abort_rate",
        ],
    );
    for kind in relational_systems() {
        for warehouses in [1u64, 20, 40, 60, 80] {
            let m = measure(kind, &WorkloadKind::Tpcc { warehouses }, &default_run(25)).unwrap();
            t.row(vec![
                m.system.into(),
                warehouses.to_string(),
                f2(m.throughput_tps),
                f2(m.latency_ms),
                f2(m.abort_rate),
            ]);
        }
    }
    t.emit();
}
