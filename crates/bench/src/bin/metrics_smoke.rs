//! CI metrics smoke: run a small 4-replica × 2-shard cluster and assert
//! the observability plane is live end to end — the Prometheus
//! exposition is non-empty and covers every subsystem's families, and
//! the virtual-time JSON timeline carries its schema tag and snapshots.
//!
//! Artifacts (uploaded by CI's metrics-smoke step, schema-checked by
//! `crates/bench/tests/bench_schema.rs`):
//!
//! * `EXPERIMENTS-results/metrics_timeline.json` — the per-run timeline
//!   (`harmonybc-timeline/v1`).
//! * `EXPERIMENTS-results/metrics_exposition.prom` — the final scrape.

use harmony_bench::results_dir;
use harmony_chain::ChainConfig;
use harmony_core::HarmonyConfig;
use harmony_crypto::CryptoCost;
use harmony_metrics::TIMELINE_SCHEMA;
use harmony_node::{
    Cluster, ClusterConfig, ClusterWorkload, MempoolConfig, OrderingMode, ReplicaConfig,
    ShardTopology, SyncPolicy,
};
use harmony_sim::EngineKind;
use harmony_storage::StorageConfig;
use harmony_workloads::{OpenLoopConfig, SmallbankConfig};

const PARTITIONS: u32 = 16;

fn main() {
    let report = Cluster::new(ClusterConfig {
        replicas: 4,
        replica: ReplicaConfig {
            chain: ChainConfig {
                storage: StorageConfig::memory(),
                crypto: CryptoCost::free(),
                checkpoint_every: 5,
                ..ChainConfig::default()
            },
            engine: EngineKind::Harmony(HarmonyConfig::default()),
            workers: 2,
            gossip_every: 5,
        },
        topology: Some(ShardTopology {
            shards: 2,
            partitions: PARTITIONS,
            partitioning: None,
            checkpoint_stagger: 0,
        }),
        workload: ClusterWorkload::Smallbank(SmallbankConfig {
            accounts: 400,
            theta: 0.6,
            partitions: u64::from(PARTITIONS),
            multi_partition_ratio: 0.2,
        }),
        ordering: OrderingMode::Kafka { brokers: 3 },
        mempool: MempoolConfig {
            capacity: 2_048,
            ..MempoolConfig::default()
        },
        open_loop: OpenLoopConfig {
            clients: 8,
            rate_tps: 40_000.0,
            hot_share: 0.0,
        },
        load_ns: 15_000_000,
        drain_ns: 600_000_000,
        block_txns: 24,
        batch_interval_ns: 500_000,
        window: 4,
        sync: SyncPolicy::default(),
        seed: 0x53CE,
        ..ClusterConfig::default()
    })
    .run()
    .expect("smoke cluster run");

    assert!(report.consistent, "replicas diverged");
    let exp = &report.exposition;
    assert!(!exp.is_empty(), "empty exposition");
    for family in [
        "harmony_mempool_depth",
        "harmony_mempool_admitted_total",
        "harmony_mempool_rejected_total",
        "harmony_replica_committed_txns_total",
        "harmony_replica_aborted_txns_total",
        "harmony_replica_commit_latency_ns_bucket",
        "harmony_replica_root_fold_ns",
        "harmony_shard_committed_txns_total",
        "harmony_xshard_cross_txns_total",
        "harmony_statesync_transfer_bytes_total",
    ] {
        assert!(exp.contains(family), "exposition missing family {family}");
    }
    assert!(
        report.timeline.contains(TIMELINE_SCHEMA),
        "timeline missing schema tag"
    );
    let snapshots = report.timeline.matches("\"t_ns\":").count();
    assert!(snapshots >= 2, "timeline too short: {snapshots} snapshots");

    let dir = results_dir();
    for (name, text) in [
        ("metrics_timeline.json", report.timeline.as_str()),
        ("metrics_exposition.prom", exp.as_str()),
    ] {
        let path = dir.join(name);
        std::fs::write(&path, text).expect("write artifact");
        println!("wrote {}", path.display());
    }
    println!(
        "metrics smoke OK: {} exposition lines, {snapshots} timeline snapshots, \
         {} committed txns",
        exp.lines().count(),
        report.metrics.stats.committed
    );
}
